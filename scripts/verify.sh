#!/usr/bin/env bash
# Tier-1 verification: format, build, test, lint, smoke. Run from the
# repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors) + doctests"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
cargo test --doc --workspace -q

echo "==> repro_all --quick smoke"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run --release -p bench --bin repro_all -- --quick --out "$SMOKE_DIR" \
  > "$SMOKE_DIR/stdout.txt"

# Every artifact the harness promises, plus its run manifest.
for stem in table1 table2 \
    fig5_uniform fig5_complement fig5_transpose fig5_bitrev \
    fig6_uniform fig6_complement fig6_transpose fig6_bitrev \
    fig7_uniform fig7_complement fig7_transpose fig7_bitrev \
    saturation; do
  for f in "$SMOKE_DIR/$stem.csv" "$SMOKE_DIR/$stem.manifest.json"; do
    [ -s "$f" ] || { echo "smoke: missing artifact $f" >&2; exit 1; }
  done
done
for f in "$SMOKE_DIR/report.md" "$SMOKE_DIR/plot.gp"; do
  [ -s "$f" ] || { echo "smoke: missing artifact $f" >&2; exit 1; }
done

# The manifests must be valid JSON with the expected schema, and the
# CSVs must parse with a stable header.
python3 - "$SMOKE_DIR" <<'EOF'
import csv, glob, json, sys
out = sys.argv[1]
manifests = glob.glob(out + "/*.manifest.json")
assert manifests, "no manifests written"
for path in manifests:
    with open(path) as f:
        m = json.load(f)
    assert m["schema"] == "netperf-run-manifest/1", path
    assert "seed_salt" in m and "counters" in m, path
for path in glob.glob(out + "/*.csv"):
    with open(path) as f:
        rows = list(csv.reader(f))
    assert len(rows) >= 2 and rows[0], path
print(f"smoke: {len(manifests)} manifests, all artifacts parse")
EOF

echo "==> traced telemetry smoke"
# Separate directory: traced manifests carry the /2 schema and must not
# trip the /1 assertion over the repro_all smoke dir above.
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACE_DIR"' EXIT
cargo run --release --bin netperf -- run cube-duato-tiny --load 0.4 --quick \
  --trace "$TRACE_DIR/t" --csv "$TRACE_DIR/run.csv" > "$TRACE_DIR/stdout.txt"
cargo run --release -p bench --bin latency_breakdown -- --quick --out "$TRACE_DIR" \
  >> "$TRACE_DIR/stdout.txt"
for f in t.trace.jsonl t.trace.json t.breakdown.csv t.util.csv \
    run.csv run.manifest.json latency_breakdown.csv latency_breakdown.manifest.json; do
  [ -s "$TRACE_DIR/$f" ] || { echo "traced smoke: missing artifact $f" >&2; exit 1; }
done

# Validate the JSONL event log against the checked-in JSON schema
# (dependency-free validator covering the subset the schema uses),
# the Chrome trace envelope, the /2 manifests and the decomposition
# identity in the breakdown CSVs.
python3 - "$TRACE_DIR" scripts/trace.schema.json <<'EOF'
import csv, json, sys
out, schema_path = sys.argv[1], sys.argv[2]
schema = json.load(open(schema_path))

def check(obj, sch, path="$"):
    if "const" in sch and obj != sch["const"]:
        return f"{path}: {obj!r} != const {sch['const']!r}"
    if "enum" in sch and obj not in sch["enum"]:
        return f"{path}: {obj!r} not in enum"
    t = sch.get("type")
    if t == "object" and not isinstance(obj, dict):
        return f"{path}: not an object"
    if isinstance(obj, dict):
        for key in sch.get("required", []):
            if key not in obj:
                return f"{path}: missing required {key}"
        props = sch.get("properties", {})
        if sch.get("additionalProperties", True) is False:
            for key in obj:
                if key not in props:
                    return f"{path}: unexpected key {key}"
        for key, sub in props.items():
            if key in obj:
                err = check(obj[key], sub, f"{path}.{key}")
                if err:
                    return err
    if t == "integer":
        if not isinstance(obj, int) or isinstance(obj, bool):
            return f"{path}: not an integer"
        if "minimum" in sch and obj < sch["minimum"]:
            return f"{path}: {obj} < minimum {sch['minimum']}"
    elif t == "boolean":
        if not isinstance(obj, bool):
            return f"{path}: not a boolean"
    if "oneOf" in sch:
        hits = [s for s in sch["oneOf"] if check(obj, s, path) is None]
        if len(hits) != 1:
            return f"{path}: matches {len(hits)} oneOf branches, want 1"
    return None

n = 0
with open(out + "/t.trace.jsonl") as f:
    for i, line in enumerate(f, 1):
        err = check(json.loads(line), schema)
        assert err is None, f"t.trace.jsonl line {i}: {err}"
        n += 1
assert n > 0, "empty event log"

chrome = json.load(open(out + "/t.trace.json"))
assert chrome["traceEvents"], "empty Chrome trace"
assert chrome["displayTimeUnit"] == "ms"
phases = {e.get("ph") for e in chrome["traceEvents"]}
assert "X" in phases and "M" in phases, f"unexpected phase set {phases}"

for name in ("run", "latency_breakdown"):
    m = json.load(open(f"{out}/{name}.manifest.json"))
    assert m["schema"] == "netperf-run-manifest/2", name
    assert m["telemetry"]["stride"] >= 1, name

for name, cols in (("t.breakdown", None), ("latency_breakdown", "mean")):
    with open(f"{out}/{name}.csv") as f:
        rows = list(csv.DictReader(f))
    assert rows, f"{name}.csv is empty"
    pre = "mean_" if cols else ""
    tol = 1e-6 if cols else 0
    for row in rows:
        parts = sum(float(row[pre + c]) for c in ("src_queue", "routing", "blocked", "transfer"))
        total = float(row[pre + "total"] if cols else row["total"])
        assert abs(parts - total) <= tol, f"{name}.csv: {parts} != {total}"
print(f"traced smoke: {n} events valid, decomposition sums check out")
EOF

echo "==> fault-plane smoke"
# Separate directory again: faulted manifests carry the /3 schema and
# must not trip the /1 and /2 assertions above.
FAULT_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACE_DIR" "$FAULT_DIR"' EXIT
cargo run --release --bin netperf -- run cube-duato-tiny --load 0.4 --quick \
  --faults links=0.1,routers=1 --csv "$FAULT_DIR/run.csv" > "$FAULT_DIR/stdout.txt"
cargo run --release -p bench --bin fault_sweep -- --quick --out "$FAULT_DIR" \
  >> "$FAULT_DIR/stdout.txt" 2>&1
# A malformed spec must fail structured: exit 2, one "error:" line.
if cargo run --release -q --bin netperf -- run cube-duato-tiny --faults bogus \
    2> "$FAULT_DIR/err.txt"; then
  echo "fault smoke: bad --faults spec was accepted" >&2; exit 1
fi
grep -q '^error:' "$FAULT_DIR/err.txt" \
  || { echo "fault smoke: unstructured error output" >&2; cat "$FAULT_DIR/err.txt" >&2; exit 1; }

python3 - "$FAULT_DIR" <<'EOF'
import csv, json, sys
out = sys.argv[1]
for name in ("run", "fault_sweep"):
    m = json.load(open(f"{out}/{name}.manifest.json"))
    assert m["schema"] == "netperf-run-manifest/3", name
    assert "dropped_packets" in m["counters"], name
scenarios = json.load(open(out + "/fault_sweep.manifest.json"))["scenarios"]
assert scenarios and all("faults" in s for s in scenarios)
for s in scenarios:
    assert s["faults"]["spec"] and s["faults"]["digest"].startswith("0x")
with open(out + "/fault_sweep.csv") as f:
    rows = list(csv.DictReader(f))
configs = {r["config"] for r in rows}
fracs = {r["fault_fraction"] for r in rows}
assert len(configs) == 5, f"want 5 configs, got {sorted(configs)}"
assert len(fracs) >= 3, f"want >=3 fault fractions, got {sorted(fracs)}"
any_dropped = False
for r in rows:
    created, delivered = int(float(r["created_packets"])), int(float(r["delivered_packets"]))
    dropped, unroutable = int(float(r["dropped_packets"])), int(float(r["unroutable_packets"]))
    if float(r["fault_fraction"]) == 0:
        assert dropped == 0 and unroutable == 0, r
    any_dropped |= dropped > 0
    # Counters are windowed (post-warm-up); packets in flight at the
    # window boundary allow a small carryover, so the accounting check
    # is exact only after drain (tests/fault_plane.rs) and bounded here.
    assert delivered + dropped + unroutable <= created + 0.1 * created + 64, r
assert any_dropped, "no faulted row dropped anything"
print(f"fault smoke: {len(rows)} rows, 5 configs x {len(fracs)} fractions, accounting holds")
EOF

echo "==> shard-equivalence smoke"
# A sharded run is an execution detail: the CSV must be byte-identical
# to the serial run's, and the manifest identical up to wall-clock
# time. Same relative artifact name in both directories so the
# manifests' "artifact" fields match too.
SHARD_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACE_DIR" "$FAULT_DIR" "$SHARD_DIR"' EXIT
mkdir -p "$SHARD_DIR/serial" "$SHARD_DIR/sharded"
( cd "$SHARD_DIR/serial" && "$OLDPWD/target/release/netperf" run cube-duato-tiny \
    --load 0.4 --quick --csv run.csv > stdout.txt )
( cd "$SHARD_DIR/sharded" && "$OLDPWD/target/release/netperf" run cube-duato-tiny \
    --load 0.4 --quick --shards 2 --csv run.csv > stdout.txt )
cmp "$SHARD_DIR/serial/run.csv" "$SHARD_DIR/sharded/run.csv" \
  || { echo "shard smoke: sharded CSV differs from serial" >&2; exit 1; }
diff <(grep -v '"wall_clock_secs"' "$SHARD_DIR/serial/run.manifest.json") \
     <(grep -v '"wall_clock_secs"' "$SHARD_DIR/sharded/run.manifest.json") \
  || { echo "shard smoke: sharded manifest differs from serial" >&2; exit 1; }
# Bad shard counts must fail structured: exit 2, one "error:" line.
if cargo run --release -q --bin netperf -- run cube-duato-tiny --shards 0 \
    2> "$SHARD_DIR/err.txt"; then
  echo "shard smoke: --shards 0 was accepted" >&2; exit 1
fi
grep -q '^error:' "$SHARD_DIR/err.txt" \
  || { echo "shard smoke: unstructured error output" >&2; cat "$SHARD_DIR/err.txt" >&2; exit 1; }
if NETPERF_THREADS=abc cargo run --release -q --bin netperf -- \
    run cube-duato-tiny --quick 2> "$SHARD_DIR/err2.txt"; then
  echo "shard smoke: bad NETPERF_THREADS was accepted" >&2; exit 1
fi
grep -q '^error:' "$SHARD_DIR/err2.txt" \
  || { echo "shard smoke: unstructured error output" >&2; cat "$SHARD_DIR/err2.txt" >&2; exit 1; }
echo "shard smoke: serial and --shards 2 artifacts are byte-identical"

echo "==> design-space smoke"
DESIGN_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACE_DIR" "$FAULT_DIR" "$SHARD_DIR" "$DESIGN_DIR"' EXIT
cargo run --release --bin netperf -- design --nodes 256 --pin-budget 160 --quick \
  --out "$DESIGN_DIR/design_report" > "$DESIGN_DIR/stdout.txt"
for f in design_report.csv design_report.json design_report.manifest.json; do
  [ -s "$DESIGN_DIR/$f" ] || { echo "design smoke: missing artifact $f" >&2; exit 1; }
done
python3 - "$DESIGN_DIR" scripts/design_report.schema.json <<'EOF'
import csv, json, sys
out, schema_path = sys.argv[1], sys.argv[2]
schema = json.load(open(schema_path))

def check(obj, sch, path="$"):
    if "const" in sch and obj != sch["const"]:
        return f"{path}: {obj!r} != const {sch['const']!r}"
    if "enum" in sch and obj not in sch["enum"]:
        return f"{path}: {obj!r} not in enum"
    t = sch.get("type")
    if t == "object" and not isinstance(obj, dict):
        return f"{path}: not an object"
    if isinstance(obj, dict):
        for key in sch.get("required", []):
            if key not in obj:
                return f"{path}: missing required {key}"
        props = sch.get("properties", {})
        if sch.get("additionalProperties", True) is False:
            for key in obj:
                if key not in props:
                    return f"{path}: unexpected key {key}"
        for key, sub in props.items():
            if key in obj:
                err = check(obj[key], sub, f"{path}.{key}")
                if err:
                    return err
    if t == "integer":
        if not isinstance(obj, int) or isinstance(obj, bool):
            return f"{path}: not an integer"
    elif t == "number":
        if not isinstance(obj, (int, float)) or isinstance(obj, bool):
            return f"{path}: not a number"
    elif t == "boolean":
        if not isinstance(obj, bool):
            return f"{path}: not a boolean"
    elif t == "string":
        if not isinstance(obj, str):
            return f"{path}: not a string"
    elif t == "array":
        if not isinstance(obj, list):
            return f"{path}: not an array"
        for i, item in enumerate(obj):
            err = check(item, sch.get("items", {}), f"{path}[{i}]")
            if err:
                return err
    if t in ("integer", "number") and "minimum" in sch and obj < sch["minimum"]:
        return f"{path}: {obj} < minimum {sch['minimum']}"
    return None

report = json.load(open(out + "/design_report.json"))
err = check(report, schema)
assert err is None, f"design_report.json: {err}"
points = report["points"]
assert report["candidates"] == len(points)
budget = report["budget"]["pin_budget"]
feasible = [p for p in points if p["feasible"]]
assert report["feasible"] == len(feasible)
assert feasible, "no feasible design point at the paper's budget"
# Feasibility is exactly the pin predicate; ranks are contiguous from 1
# in descending measured-throughput order; only feasible points carry
# simulation results.
for p in points:
    assert p["feasible"] == (p["pins_per_router"] <= budget), p["id"]
    assert p["feasible"] == ("measured_bits_per_ns" in p), p["id"]
ranks = [p["rank"] for p in points if "rank" in p]
assert ranks == list(range(1, len(feasible) + 1)), ranks
measured = [p["measured_bits_per_ns"] for p in feasible]
assert measured == sorted(measured, reverse=True), "points not ranked"
# The paper's Section 10 ordering at equal cost: the 16-ary 2-cube
# beats every full fat-tree of the same node count.
by_id = {p["id"]: p for p in points}
cube = by_id["cube k=16 n=2 duato-4vc"]
trees = [p for p in feasible if p["family"] == "tree"]
assert trees and all(
    cube["measured_bits_per_ns"] > t["measured_bits_per_ns"] for t in trees
), "cube-vs-tree ordering not reproduced"
with open(out + "/design_report.csv") as f:
    rows = list(csv.DictReader(f))
assert len(rows) == len(points)
m = json.load(open(out + "/design_report.manifest.json"))
assert m["schema"] == "netperf-design-manifest/1"
assert m["available_parallelism"] >= 1
assert m["counters"]["simulated"] == len(feasible)
print(f"design smoke: {len(points)} points ({len(feasible)} feasible) validate; "
      f"best = {feasible[0]['id']}")
EOF

echo "==> scale_sweep --quick smoke"
cargo run --release -p bench --bin scale_sweep -- --quick --out "$SHARD_DIR" \
  > "$SHARD_DIR/stdout.txt" 2>&1
python3 - "$SHARD_DIR" <<'EOF'
import csv, json, sys
out = sys.argv[1]
panel = json.load(open(out + "/scale_sweep.json"))
assert panel["host_cpus"] >= 1 and panel["quick"] is True
assert panel["available_parallelism"] >= 1
cells = panel["cells"]
assert cells, "empty scale panel"
by_cfg = {}
for c in cells:
    by_cfg.setdefault(c["config"], []).append(c)
for cfg, group in by_cfg.items():
    moves = {c["flit_moves"] for c in group}
    assert len(moves) == 1, f"{cfg}: flit_moves differ across shard counts: {moves}"
    shard_counts = sorted(c["shards"] for c in group)
    assert shard_counts[0] == 1 and len(shard_counts) >= 3, (cfg, shard_counts)
with open(out + "/scale_sweep.csv") as f:
    rows = list(csv.DictReader(f))
assert len(rows) == len(cells)
print(f"scale smoke: {len(cells)} cells over {len(by_cfg)} sizes, counters agree")
EOF

echo "verify: OK"
