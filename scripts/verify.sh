#!/usr/bin/env bash
# Tier-1 verification: format, build, test, lint, smoke. Run from the
# repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> repro_all --quick smoke"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run --release -p bench --bin repro_all -- --quick --out "$SMOKE_DIR" \
  > "$SMOKE_DIR/stdout.txt"

# Every artifact the harness promises, plus its run manifest.
for stem in table1 table2 \
    fig5_uniform fig5_complement fig5_transpose fig5_bitrev \
    fig6_uniform fig6_complement fig6_transpose fig6_bitrev \
    fig7_uniform fig7_complement fig7_transpose fig7_bitrev \
    saturation; do
  for f in "$SMOKE_DIR/$stem.csv" "$SMOKE_DIR/$stem.manifest.json"; do
    [ -s "$f" ] || { echo "smoke: missing artifact $f" >&2; exit 1; }
  done
done
for f in "$SMOKE_DIR/report.md" "$SMOKE_DIR/plot.gp"; do
  [ -s "$f" ] || { echo "smoke: missing artifact $f" >&2; exit 1; }
done

# The manifests must be valid JSON with the expected schema, and the
# CSVs must parse with a stable header.
python3 - "$SMOKE_DIR" <<'EOF'
import csv, glob, json, sys
out = sys.argv[1]
manifests = glob.glob(out + "/*.manifest.json")
assert manifests, "no manifests written"
for path in manifests:
    with open(path) as f:
        m = json.load(f)
    assert m["schema"] == "netperf-run-manifest/1", path
    assert "seed_salt" in m and "counters" in m, path
for path in glob.glob(out + "/*.csv"):
    with open(path) as f:
        rows = list(csv.reader(f))
    assert len(rows) >= 2 and rows[0], path
print(f"smoke: {len(manifests)} manifests, all artifacts parse")
EOF

echo "verify: OK"
