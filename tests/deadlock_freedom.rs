//! Deadlock-freedom, statically and dynamically.
//!
//! Static: the channel-dependency-graph checker replays each routing
//! function over every reachable state and proves the relevant
//! acyclicity condition. Dynamic: simulations driven far beyond
//! saturation must keep making progress (the engine's watchdog panics
//! after a long global stall, so mere completion is the assertion) and
//! drain completely once sources stop.

use netperf::netsim::sim::{run_simulation, InjectionSpec};
use netperf::prelude::*;
use netperf::routing::{build_cdg, RoutingAlgorithm};
use netperf::traffic::Pattern as P;

#[test]
fn static_dor_acyclic_across_radices() {
    for (k, n) in [(4usize, 2usize), (5, 2), (8, 2), (3, 3), (4, 3), (2, 4)] {
        let algo = CubeDeterministic::new(KAryNCube::new(k, n));
        let g = build_cdg(&algo, |_| true);
        assert!(g.find_cycle().is_none(), "cycle on {k}-ary {n}-cube");
    }
}

#[test]
fn static_tree_acyclic_across_shapes() {
    for (k, n, v) in [
        (2usize, 2usize, 1usize),
        (2, 3, 4),
        (3, 2, 2),
        (4, 2, 4),
        (2, 4, 2),
        (5, 2, 1),
    ] {
        let algo = TreeAdaptive::new(KAryNTree::new(k, n), v);
        let g = build_cdg(&algo, |_| true);
        assert!(
            g.find_cycle().is_none(),
            "cycle on {k}-ary {n}-tree with {v} vc"
        );
    }
}

#[test]
fn static_duato_escape_acyclic_across_radices() {
    for (k, n) in [(4usize, 2usize), (6, 2), (3, 3)] {
        let algo = CubeDuato::new(KAryNCube::new(k, n));
        let escape = build_cdg(&algo, |l| algo.is_escape_vc(l.vc as usize));
        assert!(
            escape.find_cycle().is_none(),
            "escape cycle on {k}-ary {n}-cube"
        );
        let full = build_cdg(&algo, |_| true);
        assert!(
            full.find_cycle().is_some(),
            "expected adaptive cycles on {k}-ary {n}-cube"
        );
    }
}

fn overload_config(
    spec: &ExperimentSpec,
    pattern: P,
    cycles: u32,
) -> netperf::netsim::sim::SimConfig {
    let mut cfg = spec.config_at(
        pattern,
        1.0,
        RunLength {
            warmup: cycles / 4,
            total: cycles,
        },
    );
    // Double the nominal full load: deep saturation.
    if let InjectionSpec::Bernoulli { packets_per_cycle } = cfg.injection {
        cfg.injection = InjectionSpec::Bernoulli {
            packets_per_cycle: (2.0 * packets_per_cycle).min(1.0),
        };
    }
    cfg
}

#[test]
fn dynamic_survival_beyond_saturation_paper_networks() {
    // Every paper configuration, every paper pattern, at twice the
    // capacity, for a shortened run: must complete without tripping the
    // watchdog and must keep delivering.
    for spec in ExperimentSpec::paper_five() {
        for pattern in P::PAPER_SET {
            let algo = spec.build_algorithm();
            let cfg = overload_config(&spec, pattern, 4_000);
            let out = run_simulation(algo.as_ref(), &cfg);
            assert!(
                out.delivered_packets > 100,
                "{} under {} delivered only {}",
                spec.label(),
                pattern.name(),
                out.delivered_packets
            );
        }
    }
}

#[test]
fn dynamic_survival_adversarial_patterns_small() {
    // Hot-spot and tornado on small networks with every algorithm.
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(CubeDeterministic::new(KAryNCube::new(4, 2))),
        Box::new(CubeDuato::new(KAryNCube::new(4, 2))),
        Box::new(TreeAdaptive::new(KAryNTree::new(4, 2), 1)),
        Box::new(TreeAdaptive::new(KAryNTree::new(2, 4), 2)),
    ];
    for algo in &algos {
        for pattern in [
            P::HotSpot {
                hot: 3,
                percent: 50,
            },
            P::Tornado,
            P::NearestNeighbor,
        ] {
            let cfg = netperf::netsim::sim::SimConfig {
                seed: 7,
                warmup_cycles: 500,
                total_cycles: 4_000,
                buffer_depth: 4,
                flits_per_packet: 16,
                capacity_flits_per_cycle: 1.0,
                injection: InjectionSpec::Bernoulli {
                    packets_per_cycle: 0.05,
                },
                pattern,
                injection_limit: None,
                request_reply: false,
            };
            let out = run_simulation(algo.as_ref(), &cfg);
            assert!(
                out.delivered_packets > 50,
                "{} under {} delivered only {}",
                algo.name(),
                pattern.name(),
                out.delivered_packets
            );
        }
    }
}

#[test]
fn network_drains_after_burst_all_algorithms() {
    // A burst of traffic, then silence: every flit must eventually
    // arrive (conservation) for every algorithm on mid-size networks.
    use netperf::netsim::engine::Engine;
    use netperf::traffic::{InjectionProcess, Rng64, TrafficGen};

    struct Burst(u32);
    impl InjectionProcess for Burst {
        fn tick(&mut self, rng: &mut Rng64) -> bool {
            if self.0 > 0 {
                self.0 -= 1;
                rng.chance(0.08)
            } else {
                false
            }
        }
        fn mean_rate(&self) -> f64 {
            0.0
        }
    }

    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(CubeDeterministic::new(KAryNCube::new(8, 2))),
        Box::new(CubeDuato::new(KAryNCube::new(8, 2))),
        Box::new(TreeAdaptive::new(KAryNTree::new(4, 3), 1)),
        Box::new(TreeAdaptive::new(KAryNTree::new(4, 3), 4)),
    ];
    for algo in &algos {
        let n = algo.topology().num_nodes();
        let pattern = TrafficGen::new(P::Uniform, n);
        let mut eng = Engine::new(algo.as_ref(), 4, 16, pattern, &|_| Box::new(Burst(500)), 21);
        eng.run(500 + 20_000);
        let c = eng.counters();
        assert!(c.created_packets > 100, "{}", algo.name());
        assert_eq!(
            c.delivered_packets,
            c.created_packets,
            "{} lost packets",
            algo.name()
        );
        assert_eq!(c.in_flight_flits, 0, "{} stranded flits", algo.name());
        assert_eq!(eng.buffered_flits(), 0, "{}", algo.name());
        // After a complete drain every credit counter must be back at
        // the full buffer depth.
        eng.check_credit_invariant()
            .unwrap_or_else(|v| panic!("{}: credit invariant violated at {v:?}", algo.name()));
    }
}
