//! Equivalence guard for the scenario refactor.
//!
//! The golden tuples below were captured from the pre-scenario
//! `ExperimentSpec` implementation (label, pattern, offered load →
//! derived seed, created packets, delivered packets, accepted-fraction
//! bits) at `RunLength::quick()`. The scenario plane must reproduce
//! them **bit-for-bit**: same FNV-derived seeds, same injection rates,
//! same throttle rule, hence the same packet counters and the same f64
//! accepted fraction down to the last ulp.
//!
//! If one of these assertions fires after an intentional
//! physics/engine change, recapture the goldens and say so loudly in
//! the PR; if it fires after a refactor, the refactor is wrong.

use netperf::prelude::*;

/// (label, pattern, load, seed, created, delivered, accepted.to_bits()).
const GOLDEN: &[(&str, &str, f64, u64, u64, u64, u64)] = &[
    (
        "cube, deterministic",
        "uniform",
        0.3,
        0x7395d988bd306e9e,
        12074,
        11940,
        0x3fd3513404ea4a8c,
    ),
    (
        "cube, deterministic",
        "uniform",
        0.6,
        0x73cc5988bd5ed78e,
        24056,
        22069,
        0x3fe213cd35a85879,
    ),
    (
        "cube, deterministic",
        "uniform",
        0.9,
        0xabd12e00d61c8ebe,
        36068,
        19960,
        0x3fe095ed288ce704,
    ),
    (
        "cube, deterministic",
        "transpose",
        0.3,
        0x1ed47719eb3ade61,
        11326,
        9041,
        0x3fce28a71de69ad4,
    ),
    (
        "cube, deterministic",
        "transpose",
        0.6,
        0x1f777719ebc53fb1,
        22468,
        9169,
        0x3fcf23886594af4f,
    ),
    (
        "cube, deterministic",
        "transpose",
        0.9,
        0x4ae8c01dfa3e7995,
        33545,
        9186,
        0x3fcf305532617c1c,
    ),
    (
        "cube, Duato",
        "uniform",
        0.3,
        0x7b5b32331019f41d,
        11968,
        11838,
        0x3fd32474538ef34d,
    ),
    (
        "cube, Duato",
        "uniform",
        0.6,
        0x7ab832330f8f92cd,
        23782,
        23434,
        0x3fe300ef34d6a162,
    ),
    (
        "cube, Duato",
        "uniform",
        0.9,
        0xc60bf27f90b4d159,
        35720,
        33011,
        0x3feb01f212d77319,
    ),
    (
        "cube, Duato",
        "transpose",
        0.3,
        0x55a53a1028cbb53e,
        11328,
        11198,
        0x3fd21c154c985f07,
    ),
    (
        "cube, Duato",
        "transpose",
        0.6,
        0x55023a10284153ee,
        22450,
        18567,
        0x3fdec1de69ad42c4,
    ),
    (
        "cube, Duato",
        "transpose",
        0.9,
        0xa5665c8a3735b89e,
        33766,
        19299,
        0x3fe0284ea4a8c155,
    ),
    (
        "fat tree, 1 vc",
        "uniform",
        0.3,
        0x15e5356d48c53172,
        12011,
        11777,
        0x3fd32793dd97f62b,
    ),
    (
        "fat tree, 1 vc",
        "uniform",
        0.6,
        0x15af356d4897a202,
        24083,
        13864,
        0x3fd6e474538ef34d,
    ),
    (
        "fat tree, 1 vc",
        "uniform",
        0.9,
        0x309abb03d7389b8a,
        36341,
        13869,
        0x3fd6e92d77318fc5,
    ),
    (
        "fat tree, 1 vc",
        "transpose",
        0.3,
        0x3884bf236dfaaf7d,
        11167,
        10995,
        0x3fd1dc1bda5119ce,
    ),
    (
        "fat tree, 1 vc",
        "transpose",
        0.6,
        0x38bb3f236e29186d,
        22179,
        14633,
        0x3fd810624dd2f1aa,
    ),
    (
        "fat tree, 1 vc",
        "transpose",
        0.9,
        0xd5ecec7e9f1780f9,
        33215,
        14412,
        0x3fd7b8fc504816f0,
    ),
    (
        "fat tree, 2 vc",
        "uniform",
        0.3,
        0x1b5d2fdb2b53ba17,
        11991,
        11780,
        0x3fd326cf41f212d7,
    ),
    (
        "fat tree, 2 vc",
        "uniform",
        0.6,
        0x1c00afdb2bdef4e7,
        24223,
        21366,
        0x3fe197126e978d50,
    ),
    (
        "fat tree, 2 vc",
        "uniform",
        0.9,
        0x1f4310219fdd6827,
        35918,
        21259,
        0x3fe1a2e7d566cf42,
    ),
    (
        "fat tree, 2 vc",
        "transpose",
        0.3,
        0xbd7d1e7788479b74,
        11332,
        11160,
        0x3fd21a5119ce075f,
    ),
    (
        "fat tree, 2 vc",
        "transpose",
        0.6,
        0xbcd99e7787bc60a4,
        22359,
        21338,
        0x3fe17f53f7ced917,
    ),
    (
        "fat tree, 2 vc",
        "transpose",
        0.9,
        0xbedee9a4fc81d770,
        33786,
        22494,
        0x3fe295a6b50b0f28,
    ),
    (
        "fat tree, 4 vc",
        "uniform",
        0.3,
        0xa3c1307b28370f05,
        12078,
        11905,
        0x3fd35484b5dcc63f,
    ),
    (
        "fat tree, 4 vc",
        "uniform",
        0.6,
        0xa464307b28c17055,
        23873,
        23215,
        0x3fe31947ae147ae1,
    ),
    (
        "fat tree, 4 vc",
        "uniform",
        0.9,
        0xaf4edc87c8dc15d1,
        35555,
        27248,
        0x3fe6a5b573eab368,
    ),
    (
        "fat tree, 4 vc",
        "transpose",
        0.3,
        0x87f9f0d63d05ad06,
        11193,
        11011,
        0x3fd1e36ae7d566cf,
    ),
    (
        "fat tree, 4 vc",
        "transpose",
        0.6,
        0x87c370d63cd74416,
        22191,
        21680,
        0x3fe1c6a161e4f766,
    ),
    (
        "fat tree, 4 vc",
        "transpose",
        0.9,
        0x95efd39430ccfbb6,
        33811,
        27796,
        0x3fe6fee48e8a71de,
    ),
];

fn paper_scenario_by_label(label: &str) -> Scenario {
    paper_scenarios()
        .into_iter()
        .find(|s| s.label() == label)
        .unwrap_or_else(|| panic!("no paper scenario labelled {label:?}"))
}

fn golden(
    label: &str,
    pattern: &str,
    load: f64,
) -> &'static (&'static str, &'static str, f64, u64, u64, u64, u64) {
    GOLDEN
        .iter()
        .find(|g| g.0 == label && g.1 == pattern && g.2 == load)
        .expect("golden entry present")
}

#[test]
fn derived_seeds_match_the_pre_refactor_goldens() {
    for &(label, pattern, load, seed, ..) in GOLDEN {
        let scenario = paper_scenario_by_label(label)
            .with_pattern(Pattern::parse(pattern).unwrap())
            .with_run_length(RunLength::quick());
        assert_eq!(
            scenario.config_at(load).seed,
            seed,
            "seed mismatch for {label} / {pattern} @ {load}"
        );
        // The legacy wrapper derives the very same seed.
        assert_eq!(
            derived_seed(label, Pattern::parse(pattern).unwrap(), load),
            seed
        );
    }
}

#[test]
fn registry_counters_are_bit_identical_to_the_legacy_harness() {
    // Uniform at three loads for all five paper entries (run in
    // parallel per scenario), transpose at the mid load only — enough
    // to cover every scenario × pattern combination without burning
    // minutes of test time.
    let loads = [0.3, 0.6, 0.9];
    for name in ["cube-det", "cube-duato", "tree-1vc", "tree-2vc", "tree-4vc"] {
        let scenario = named(name).unwrap().with_run_length(RunLength::quick());
        let outcomes = scenario.sweep_outcomes(&loads);
        for (load, out) in loads.iter().zip(&outcomes) {
            let &(.., created, delivered, bits) = golden(scenario.label(), "uniform", *load);
            assert_eq!(
                out.created_packets, created,
                "{name} uniform @ {load}: created"
            );
            assert_eq!(
                out.delivered_packets, delivered,
                "{name} uniform @ {load}: delivered"
            );
            assert_eq!(
                out.accepted_fraction.to_bits(),
                bits,
                "{name} uniform @ {load}: accepted fraction not bit-identical"
            );
        }

        let transposed = scenario.with_pattern(Pattern::Transpose);
        let out = transposed.simulate(0.6);
        let &(.., created, delivered, bits) = golden(transposed.label(), "transpose", 0.6);
        assert_eq!(out.created_packets, created, "{name} transpose: created");
        assert_eq!(
            out.delivered_packets, delivered,
            "{name} transpose: delivered"
        );
        assert_eq!(
            out.accepted_fraction.to_bits(),
            bits,
            "{name} transpose: accepted"
        );
    }
}

#[test]
fn experiment_spec_wrapper_and_registry_agree_on_configs() {
    // The deprecated-alias path (ExperimentSpec) and the registry path
    // must hand the engine the exact same SimConfig at every paper
    // configuration and load.
    let specs = ExperimentSpec::paper_five();
    let scenarios = paper_scenarios();
    assert_eq!(specs.len(), scenarios.len());
    for (spec, scenario) in specs.iter().zip(&scenarios) {
        assert_eq!(spec.label(), scenario.label());
        for pattern in [Pattern::Uniform, Pattern::Complement, Pattern::BitReversal] {
            for load in [0.15, 0.5, 0.85] {
                let legacy = spec.config_at(pattern, load, RunLength::paper());
                let new = scenario
                    .clone()
                    .with_pattern(pattern)
                    .with_run_length(RunLength::paper())
                    .config_at(load);
                assert_eq!(legacy.seed, new.seed);
                assert_eq!(legacy.flits_per_packet, new.flits_per_packet);
                assert_eq!(legacy.injection_limit, new.injection_limit);
                assert_eq!(legacy.buffer_depth, new.buffer_depth);
                assert_eq!(legacy.warmup_cycles, new.warmup_cycles);
                assert_eq!(legacy.total_cycles, new.total_cycles);
                assert_eq!(
                    legacy.injection.mean_rate().to_bits(),
                    new.injection.mean_rate().to_bits(),
                    "injection rate must be the same f64 expression"
                );
            }
        }
    }
}

#[test]
fn throttle_rule_matches_the_papers_reference_28() {
    // Cubes throttle at half their 2nV network lanes; trees never do.
    for name in ["cube-det", "cube-duato"] {
        let cfg = named(name).unwrap().config_at(0.5);
        assert_eq!(cfg.injection_limit, Some(8), "{name}");
    }
    for name in ["tree-1vc", "tree-2vc", "tree-4vc"] {
        let cfg = named(name).unwrap().config_at(0.5);
        assert_eq!(cfg.injection_limit, None, "{name}");
    }
}

#[test]
fn recording_probe_leaves_golden_counters_bit_identical() {
    // The telemetry plane must be a pure observer: running the same
    // scenario through `simulate_traced` (FlightRecorder probe, event
    // log on) must reproduce the NullProbe goldens bit-for-bit.
    for name in ["cube-duato", "tree-2vc"] {
        let scenario = named(name)
            .unwrap()
            .with_run_length(RunLength::quick())
            .with_telemetry(TelemetryConfig::default());
        for load in [0.3, 0.9] {
            let (out, rec) = scenario.simulate_traced(load);
            let &(.., created, delivered, bits) = golden(scenario.label(), "uniform", load);
            assert_eq!(out.created_packets, created, "{name} @ {load}: created");
            assert_eq!(
                out.delivered_packets, delivered,
                "{name} @ {load}: delivered"
            );
            assert_eq!(
                out.accepted_fraction.to_bits(),
                bits,
                "{name} @ {load}: accepted fraction perturbed by the probe"
            );
            // And the probe actually recorded the run it watched: it
            // sees every delivery, including the warm-up ones the
            // outcome's measured counter excludes.
            assert!(!rec.events().is_empty(), "{name} @ {load}: no events");
            assert!(
                rec.breakdowns().len() as u64 >= delivered,
                "{name} @ {load}: fewer breakdowns ({}) than measured deliveries ({delivered})",
                rec.breakdowns().len()
            );
        }
    }
}
