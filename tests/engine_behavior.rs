//! Behavioral tests of the router model itself: arbitration fairness,
//! source throttling, virtual-channel multiplexing, and ejection
//! bandwidth — the Section 4 mechanisms, observed from outside.

use netperf::netsim::engine::Engine;
use netperf::netsim::flit::NEVER;
use netperf::prelude::*;
use netperf::routing::RoutingAlgorithm;
use netperf::traffic::{InjectionProcess, Pattern as P, Rng64, TrafficGen};

/// Injects periodically from a fixed set of source nodes only.
struct FromNodes {
    active: bool,
    period: u64,
    count: u64,
}

impl InjectionProcess for FromNodes {
    fn tick(&mut self, _rng: &mut Rng64) -> bool {
        if !self.active {
            return false;
        }
        self.count += 1;
        self.count.is_multiple_of(self.period)
    }
    fn mean_rate(&self) -> f64 {
        if self.active {
            1.0 / self.period as f64
        } else {
            0.0
        }
    }
}

#[test]
fn ejection_link_is_shared_fairly() {
    // Nodes 0 and 1 (different leaf switches) both flood node 8 of a
    // 4-ary 2-tree. The last link (leaf switch -> node 8) is the shared
    // bottleneck; the round-robin arbiter must split it evenly.
    let tree = KAryNTree::new(4, 2);
    let algo = TreeAdaptive::new(tree, 2);
    let pattern = TrafficGen::new(
        P::HotSpot {
            hot: 8,
            percent: 100,
        },
        16,
    );
    let mut eng = Engine::new(
        &algo,
        4,
        16,
        pattern,
        &|n| {
            Box::new(FromNodes {
                active: n == 0 || n == 1,
                period: 16,
                count: 0,
            })
        },
        9,
    );
    eng.run(10_000);
    let mut per_source = [0u64; 2];
    for p in eng.packets() {
        if p.delivered != NEVER {
            assert_eq!(p.dest, 8);
            per_source[p.src as usize] += 1;
        }
    }
    let (a, b) = (per_source[0] as f64, per_source[1] as f64);
    assert!(a + b > 200.0, "not enough deliveries: {a} + {b}");
    assert!(
        (a / b - 1.0).abs() < 0.1,
        "unfair ejection sharing: {a} vs {b}"
    );
}

#[test]
fn competing_flows_through_a_shared_link_get_equal_shares() {
    // On a 2-ary 1-tree both nodes send to each other continuously;
    // the switch serves both directions independently, so both flows
    // must progress at the same rate.
    let algo = TreeAdaptive::new(KAryNTree::new(2, 1), 2);
    let pattern = TrafficGen::new(P::Complement, 2);
    let mut eng = Engine::new(
        &algo,
        4,
        8,
        pattern,
        &|_| {
            Box::new(FromNodes {
                active: true,
                period: 8,
                count: 0,
            })
        },
        4,
    );
    eng.run(8_000);
    let mut per_source = [0u64; 2];
    for p in eng.packets() {
        if p.delivered != NEVER {
            per_source[p.src as usize] += 1;
        }
    }
    assert!(per_source[0] > 300);
    assert_eq!(per_source[0], per_source[1]);
}

#[test]
fn injection_limit_throttles_starts_not_correctness() {
    // With a tiny injection limit the backlog grows, but everything
    // still drains once the sources stop, and nothing is lost.
    let algo = CubeDuato::new(KAryNCube::new(4, 2));
    struct Burst(u32);
    impl InjectionProcess for Burst {
        fn tick(&mut self, rng: &mut Rng64) -> bool {
            if self.0 > 0 {
                self.0 -= 1;
                rng.chance(0.05)
            } else {
                false
            }
        }
        fn mean_rate(&self) -> f64 {
            0.0
        }
    }
    let run = |limit: Option<u32>| {
        let pattern = TrafficGen::new(P::Uniform, 16);
        let mut eng = Engine::new(&algo, 4, 16, pattern, &|_| Box::new(Burst(1_000)), 77);
        eng.set_injection_limit(limit);
        eng.run(1_000);
        let mid_backlog = eng.source_queue_len();
        eng.run(30_000);
        let c = eng.counters();
        assert_eq!(
            c.delivered_packets, c.created_packets,
            "lost packets at {limit:?}"
        );
        assert_eq!(c.in_flight_flits, 0);
        mid_backlog
    };
    let unthrottled = run(None);
    let throttled = run(Some(2));
    assert!(
        throttled > unthrottled,
        "tight limit must hold packets back at the source: {throttled} vs {unthrottled}"
    );
}

#[test]
fn virtual_channels_multiplex_one_physical_link() {
    // Node 0 streams continuously to node 1 over the single link of a
    // 2-ary 1-tree. With 1 VC the link carries one worm at a time;
    // with 4 VCs, several worms interleave, so the *maximum gap*
    // between consecutive packet deliveries shrinks while aggregate
    // throughput stays link-bound (1 flit/cycle either way).
    let deliveries = |vcs: usize| -> Vec<u32> {
        let algo = TreeAdaptive::new(KAryNTree::new(2, 1), vcs);
        let pattern = TrafficGen::new(P::Complement, 2);
        let mut eng = Engine::new(
            &algo,
            4,
            16,
            pattern,
            &|n| {
                Box::new(FromNodes {
                    active: n == 0,
                    period: 4,
                    count: 0,
                })
            },
            6,
        );
        eng.run(4_000);
        let mut times: Vec<u32> = eng
            .packets()
            .iter()
            .filter(|p| p.delivered != NEVER)
            .map(|p| p.delivered)
            .collect();
        times.sort_unstable();
        times
    };
    let t1 = deliveries(1);
    let t4 = deliveries(4);
    // Throughput is the same (the physical link is the bottleneck)…
    assert!((t1.len() as f64 / t4.len() as f64 - 1.0).abs() < 0.05);
    // …and at steady state both deliver one 16-flit packet every ~16
    // cycles; multiplexing does not break the pipeline.
    let gaps = |ts: &[u32]| {
        ts.windows(2).map(|w| (w[1] - w[0]) as f64).sum::<f64>() / (ts.len() - 1) as f64
    };
    assert!((gaps(&t1) - 16.0).abs() < 1.0, "{}", gaps(&t1));
    assert!((gaps(&t4) - 16.0).abs() < 1.0, "{}", gaps(&t4));
}

#[test]
fn single_injection_channel_serializes_packet_starts() {
    // Even with 4 VCs, a node streams one packet at a time into the
    // network: the injected timestamps of consecutive packets from one
    // source must be at least a full packet apart.
    let algo = TreeAdaptive::new(KAryNTree::new(2, 1), 4);
    let pattern = TrafficGen::new(P::Complement, 2);
    let flits = 16u16;
    let mut eng = Engine::new(
        &algo,
        4,
        flits,
        pattern,
        &|n| {
            Box::new(FromNodes {
                active: n == 0,
                period: 2,
                count: 0,
            })
        },
        8,
    );
    eng.run(3_000);
    let mut injected: Vec<u32> = eng
        .packets()
        .iter()
        .filter(|p| p.injected != NEVER)
        .map(|p| p.injected)
        .collect();
    injected.sort_unstable();
    assert!(injected.len() > 50);
    for w in injected.windows(2) {
        assert!(
            w[1] - w[0] >= flits as u32,
            "packet started while the previous one was still streaming"
        );
    }
}

#[test]
fn routing_is_one_header_per_router_per_cycle() {
    // Flood a single leaf switch with headers from its 4 local nodes
    // plus descending traffic; routed_headers can grow by at most
    // num_routers per cycle — and for this 1-switch network, by 1.
    let algo = TreeAdaptive::new(KAryNTree::new(4, 1), 1);
    let pattern = TrafficGen::new(P::Uniform, 4);
    let mut eng = Engine::new(
        &algo,
        4,
        4,
        pattern,
        &|_| {
            Box::new(FromNodes {
                active: true,
                period: 5,
                count: 0,
            })
        },
        12,
    );
    let mut last = 0;
    for _ in 0..2_000 {
        eng.step();
        let now = eng.counters().routed_headers;
        assert!(
            now - last <= 1,
            "routed {} headers in one cycle",
            now - last
        );
        last = now;
    }
    assert!(last > 100);
}

#[test]
fn counters_escape_is_zero_for_fully_adaptive_algorithms() {
    let algo: Box<dyn RoutingAlgorithm> = Box::new(TreeAdaptive::new(KAryNTree::new(2, 3), 2));
    let pattern = TrafficGen::new(P::Uniform, 8);
    let mut eng = Engine::new(
        algo.as_ref(),
        4,
        16,
        pattern,
        &|_| {
            Box::new(FromNodes {
                active: true,
                period: 40,
                count: 0,
            })
        },
        2,
    );
    eng.run(5_000);
    assert_eq!(
        eng.counters().escape_routings,
        0,
        "trees have no escape class"
    );
    assert!(eng.counters().routed_headers > 100);
}
