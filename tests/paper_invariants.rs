//! Cross-crate checks of the paper's *static* claims: the normalization
//! algebra of Section 5, the cost-model tables, and the analytic
//! distance results. These involve no simulation and run instantly.

use netperf::costmodel::chien::{
    cube_deterministic_timing, cube_duato_timing, tree_adaptive_timing,
};
use netperf::prelude::*;
use netperf::routing::RoutingAlgorithm;

#[test]
fn normalization_conditions_of_section_5() {
    // k1^n1 = k2^n2 (same processors) and n1 k1^(n1-1) = k2^n2 (same
    // routers) imply k1 = n1; the paper's instance is k1 = 4.
    let tree = KAryNTree::new(4, 4);
    let cube = KAryNCube::new(16, 2);
    assert_eq!(tree.num_nodes(), cube.num_nodes());
    assert_eq!(tree.num_routers(), cube.num_routers());
    assert_eq!(tree.num_nodes(), 256);

    // Pin-count equalization: tree switch arity 8 x 2-byte paths equals
    // cube router arity 4 x 4-byte paths.
    let t = ExperimentSpec::tree_adaptive(TreeParams::paper(), 4).normalization();
    let c = ExperimentSpec::cube_duato(CubeParams::paper()).normalization();
    assert_eq!(8 * t.flit_bytes(), 4 * c.flit_bytes());

    // Equal peak aggregate bandwidth: twice the links at half the width
    // (1024 links x 2 bytes = 512 links x 4 bytes).
    let tree_links = tree.num_links(); // includes node links: n k^n
    let cube_net_links = cube.num_links() - cube.num_nodes();
    assert_eq!(tree_links, 2 * cube_net_links);
    assert_eq!(tree_links * t.flit_bytes(), cube_net_links * c.flit_bytes());

    // Same upper bound under uniform traffic: one 64-byte packet per
    // node per 32 cycles for both.
    assert!((t.packet_rate(1.0) - c.packet_rate(1.0)).abs() < 1e-12);
    assert!((t.packet_rate(1.0) - 1.0 / 32.0).abs() < 1e-12);
}

#[test]
fn table1_and_table2_reproduce() {
    let det = cube_deterministic_timing();
    let duato = cube_duato_timing();
    // Table 1 (tolerance: the paper truncates to 2 decimals).
    for (actual, expect) in [
        (det.t_routing_ns, 5.9),
        (det.t_crossbar_ns, 5.85),
        (det.t_link_ns, 6.34),
        (det.clock_ns(), 6.34),
        (duato.t_routing_ns, 7.8),
        (duato.clock_ns(), 7.8),
    ] {
        assert!(
            (actual - expect).abs() < 0.015,
            "{actual} vs paper {expect}"
        );
    }
    // Table 2.
    for (v, clock) in [(1usize, 9.64), (2, 10.24), (4, 10.84)] {
        let t = tree_adaptive_timing(4, v);
        assert!((t.clock_ns() - clock).abs() < 0.015, "{v} vc clock");
    }
}

#[test]
fn equation5_and_distance_distribution() {
    let tree = KAryNTree::new(4, 4);
    // Closed form vs brute force for both permutations it describes.
    let bits = netperf::traffic::AddressBits::for_nodes(256);
    let transpose = |x: NodeId| NodeId(bits.transpose(x.index()) as u32);
    let bitrev = |x: NodeId| NodeId(bits.reverse(x.index()) as u32);
    let dm = KAryNTree::eq5_mean_distance(4, 4);
    assert!((dm - 7.125).abs() < 1e-9);
    assert!((tree.mean_permutation_distance(transpose) - dm).abs() < 1e-9);
    assert!((tree.mean_permutation_distance(bitrev) - dm).abs() < 1e-9);

    // "kn/2 nodes at distance 0 and (k-1) k^(n/2+i-1) nodes at distance
    // n + 2i": check the histogram for bit reversal.
    let mut by_distance = std::collections::BTreeMap::new();
    for x in 0..256u32 {
        let d = tree.min_distance(NodeId(x), bitrev(NodeId(x)));
        *by_distance.entry(d).or_insert(0usize) += 1;
    }
    assert_eq!(by_distance.get(&0), Some(&16)); // k^(n/2)
    assert_eq!(by_distance.get(&6), Some(&48)); // (k-1) k^(n/2)   (i = 1)
    assert_eq!(by_distance.get(&8), Some(&192)); // (k-1) k^(n/2+1) (i = 2)
    assert_eq!(by_distance.len(), 3);
}

#[test]
fn capacity_definitions() {
    // Cube: 2B/N with the bisection counted in both directions = 8/k.
    for k in [4usize, 8, 16] {
        let cube = KAryNCube::new(k, 2);
        let expect = (8.0 / k as f64).min(1.0);
        assert!((cube.uniform_capacity_flits_per_cycle() - expect).abs() < 1e-12);
    }
    // Tree: injection-limited at 1 flit/cycle regardless of shape.
    for (k, n) in [(2usize, 2usize), (4, 4), (3, 3)] {
        assert_eq!(KAryNTree::new(k, n).uniform_capacity_flits_per_cycle(), 1.0);
    }
}

#[test]
fn figure7_axis_scales() {
    // The paper's Figure 7 x-axis tops out around 650 bits/ns: that is
    // the deterministic cube's aggregate capacity.
    let det = ExperimentSpec::cube_deterministic(CubeParams::paper()).normalization();
    let cap = det.capacity_bits_per_ns();
    assert!((cap - 646.0).abs() < 10.0, "{cap}");
    // The tree's 1 vc capacity is ~425 bits/ns.
    let t1 = ExperimentSpec::tree_adaptive(TreeParams::paper(), 1).normalization();
    assert!((t1.capacity_bits_per_ns() - 425.0).abs() < 10.0);
}

#[test]
fn degrees_of_freedom_match_section_5() {
    let cube = KAryNCube::new(16, 2);
    assert_eq!(CubeDeterministic::new(cube.clone()).degrees_of_freedom(), 2);
    assert_eq!(CubeDuato::new(cube).degrees_of_freedom(), 6);
    let tree = KAryNTree::new(4, 4);
    for (v, f) in [(1usize, 7usize), (2, 14), (4, 28)] {
        assert_eq!(TreeAdaptive::new(tree.clone(), v).degrees_of_freedom(), f);
    }
}
