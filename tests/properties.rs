//! Property-based tests (proptest) on the invariants the reproduction
//! rests on: topology structure, pattern algebra, routing minimality,
//! and full-simulation conservation laws under randomized
//! configurations.

use proptest::prelude::*;

use netperf::prelude::*;
use netperf::routing::RoutingAlgorithm;
use netperf::topology::cube::CubeDirection;
use netperf::topology::{families, validate, Digits, FamilyShape, PortPeer, PortRef};
use netperf::traffic::{Pattern as P, Rng64, TrafficGen};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cubes_validate(k in 2usize..9, n in 1usize..4) {
        let cube = KAryNCube::new(k, n);
        prop_assert!(validate(&cube).is_ok());
        prop_assert_eq!(cube.num_nodes(), k.pow(n as u32));
    }

    #[test]
    fn trees_validate(k in 2usize..7, n in 1usize..5) {
        prop_assume!(k.pow(n as u32) <= 4096);
        let tree = KAryNTree::new(k, n);
        prop_assert!(validate(&tree).is_ok());
        prop_assert_eq!(tree.num_routers(), n * k.pow(n as u32 - 1));
    }

    #[test]
    fn any_buildable_family_instance_is_a_valid_network(
        fi in 0usize..families().len(),
        k in 2usize..6,
        n in 1usize..4,
        taper in 1usize..5,
        s in any::<(u64, u64, u64)>(),
    ) {
        // The registry invariants every family must satisfy, whatever
        // its shape: the wiring validates, every port peering is
        // symmetric, and the port-level minimal distance is a metric.
        let f = &families()[fi];
        let shape = FamilyShape::tapered(k, n, taper);
        prop_assume!((f.num_nodes)(&shape) <= 2048);
        let topo = (f.build)(&shape);
        prop_assert!(validate(&*topo).is_ok(), "{} {:?}", f.slug, shape);
        for r in (0..topo.num_routers()).map(|r| RouterId(r as u32)) {
            for p in 0..topo.ports(r) {
                match topo.peer(PortRef::new(r, p)) {
                    PortPeer::Router(pr) => prop_assert_eq!(
                        topo.peer(pr),
                        PortPeer::Router(PortRef::new(r, p)),
                        "{} {:?}: asymmetric wiring at router {} port {}",
                        f.slug, shape, r.0, p
                    ),
                    PortPeer::Node(node) => {
                        prop_assert_eq!(topo.node_port(node), PortRef::new(r, p));
                    }
                    PortPeer::Unconnected => {}
                }
            }
        }
        let nn = topo.num_nodes() as u64;
        let (a, b, c) = (
            NodeId((s.0 % nn) as u32),
            NodeId((s.1 % nn) as u32),
            NodeId((s.2 % nn) as u32),
        );
        let d = |x, y| topo.min_distance(x, y);
        prop_assert_eq!(d(a, a), 0);
        prop_assert_eq!(d(a, b), d(b, a));
        prop_assert!(
            d(a, c) <= d(a, b) + d(b, c),
            "{} {:?}: triangle violated on {:?} {:?} {:?}",
            f.slug, shape, a, b, c
        );
    }

    #[test]
    fn digits_roundtrip(k in 2usize..8, n in 1usize..6, seed in any::<u64>()) {
        let d = Digits::new(k, n);
        let x = (seed % d.count() as u64) as usize;
        prop_assert_eq!(d.compose(&d.expand(x)), x);
        // Prefix length is symmetric.
        let y = (seed / 7 % d.count() as u64) as usize;
        prop_assert_eq!(d.common_prefix_len(x, y), d.common_prefix_len(y, x));
    }

    #[test]
    fn cube_distance_is_a_metric(k in 3usize..9, n in 1usize..4, s in any::<(u64, u64, u64)>()) {
        let cube = KAryNCube::new(k, n);
        let nn = cube.num_nodes() as u64;
        let (a, b, c) = (
            NodeId((s.0 % nn) as u32),
            NodeId((s.1 % nn) as u32),
            NodeId((s.2 % nn) as u32),
        );
        let d = |x, y| cube.hop_distance(x, y);
        prop_assert_eq!(d(a, a), 0);
        prop_assert_eq!(d(a, b), d(b, a));
        prop_assert!(d(a, c) <= d(a, b) + d(b, c));
        // Diameter bound: n * floor(k/2).
        prop_assert!(d(a, b) <= n * (k / 2));
    }

    #[test]
    fn tree_distance_matches_nca(k in 2usize..6, n in 2usize..5, s in any::<(u64, u64)>()) {
        prop_assume!(k.pow(n as u32) <= 4096);
        let tree = KAryNTree::new(k, n);
        let nn = tree.num_nodes() as u64;
        let (a, b) = (NodeId((s.0 % nn) as u32), NodeId((s.1 % nn) as u32));
        let d = tree.min_distance(a, b);
        prop_assert_eq!(d, tree.min_distance(b, a));
        if a == b {
            prop_assert_eq!(d, 0);
        } else {
            prop_assert_eq!(d, 2 * (n - tree.nca_level(a, b)));
            prop_assert!(d >= 2 && d <= 2 * n);
        }
    }

    #[test]
    fn bit_patterns_are_involutions_and_permutations(bits in 1u32..11, seed in any::<u64>()) {
        let n = 1usize << bits;
        let ab = netperf::traffic::AddressBits::for_nodes(n);
        let x = (seed % n as u64) as usize;
        prop_assert_eq!(ab.complement(ab.complement(x)), x);
        prop_assert_eq!(ab.reverse(ab.reverse(x)), x);
        if bits % 2 == 0 {
            prop_assert_eq!(ab.transpose(ab.transpose(x)), x);
        }
        prop_assert_eq!(ab.butterfly(ab.butterfly(x)), x);
        // Shuffle has order `bits`.
        let mut y = x;
        for _ in 0..bits {
            y = ab.shuffle(y);
        }
        prop_assert_eq!(y, x);
    }

    #[test]
    fn uniform_pattern_never_selects_self(n in 2usize..300, seed in any::<u64>()) {
        let g = TrafficGen::new(P::Uniform, n);
        let mut rng = Rng64::seed_from(seed);
        let src = NodeId((seed % n as u64) as u32);
        for _ in 0..50 {
            let d = g.dest(src, &mut rng).unwrap();
            prop_assert!(d != src);
            prop_assert!(d.index() < n);
        }
    }

    #[test]
    fn dor_paths_are_minimal_and_terminate(k in 3usize..9, n in 1usize..4, s in any::<(u64, u64)>()) {
        let cube = KAryNCube::new(k, n);
        let algo = CubeDeterministic::new(cube.clone());
        let nn = cube.num_nodes() as u64;
        let (a, b) = (NodeId((s.0 % nn) as u32), NodeId((s.1 % nn) as u32));
        let mut cur = a;
        let mut hops = 0usize;
        while let Some((dir, _)) = algo.next_hop(cur, b) {
            cur = cube.neighbor(cur, dir);
            hops += 1;
            prop_assert!(hops <= n * k);
        }
        prop_assert_eq!(cur, b);
        prop_assert_eq!(hops, cube.hop_distance(a, b));
    }

    #[test]
    fn duato_candidates_always_exist_and_are_minimal(
        k in 3usize..8, s in any::<(u64, u64)>()
    ) {
        let cube = KAryNCube::new(k, 2);
        let algo = CubeDuato::new(cube.clone());
        let nn = cube.num_nodes() as u64;
        let (a, b) = (NodeId((s.0 % nn) as u32), NodeId((s.1 % nn) as u32));
        prop_assume!(a != b);
        let mut cand = netperf::routing::CandidateSet::default();
        algo.route(RouterId(a.0), None, b, &mut cand);
        prop_assert!(!cand.preferred.is_empty(), "adaptive candidates required");
        prop_assert_eq!(cand.fallback.len(), 1, "exactly one escape lane");
        let base = cube.hop_distance(a, b);
        for c in cand.iter_all() {
            let dir = CubeDirection::from_port(c.port as usize, 2).unwrap();
            let next = cube.neighbor(a, dir);
            prop_assert_eq!(cube.hop_distance(next, b), base - 1);
        }
    }

    #[test]
    fn tree_routing_reaches_destination_via_any_ascent(
        k in 2usize..5, n in 2usize..4, s in any::<(u64, u64, u64)>()
    ) {
        let tree = KAryNTree::new(k, n);
        let algo = TreeAdaptive::new(tree.clone(), 2);
        let nn = tree.num_nodes() as u64;
        let (a, b) = (NodeId((s.0 % nn) as u32), NodeId((s.1 % nn) as u32));
        prop_assume!(a != b);
        // Walk one random candidate chain.
        let mut rng = Rng64::seed_from(s.2);
        let mut sw = tree.leaf_switch(a);
        let mut cand = netperf::routing::CandidateSet::default();
        let mut hops = 1usize;
        loop {
            algo.route(sw, None, b, &mut cand);
            prop_assert!(!cand.preferred.is_empty());
            let pick = cand.preferred[rng.index(cand.preferred.len())];
            match tree.peer(netperf::topology::PortRef::new(sw, pick.port as usize)) {
                netperf::topology::PortPeer::Node(node) => {
                    prop_assert_eq!(node, b);
                    hops += 1;
                    break;
                }
                netperf::topology::PortPeer::Router(pr) => {
                    sw = pr.router;
                    hops += 1;
                    prop_assert!(hops <= 2 * n + 1);
                }
                netperf::topology::PortPeer::Unconnected => {
                    prop_assert!(false, "routed into a dead port");
                }
            }
        }
        prop_assert_eq!(hops, tree.min_distance(a, b));
    }
}

proptest! {
    // Full-simulation properties are expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulation_conserves_packets_under_random_config(
        seed in any::<u64>(),
        rate_milli in 1u32..40,
        buf in 2usize..6,
        vcs in 1usize..5,
        tree_side in any::<bool>(),
    ) {
        use netperf::netsim::engine::Engine;
        use netperf::traffic::{InjectionProcess};

        struct Burst(u32, f64);
        impl InjectionProcess for Burst {
            fn tick(&mut self, rng: &mut Rng64) -> bool {
                if self.0 > 0 { self.0 -= 1; rng.chance(self.1) } else { false }
            }
            fn mean_rate(&self) -> f64 { 0.0 }
        }

        let algo: Box<dyn RoutingAlgorithm> = if tree_side {
            Box::new(TreeAdaptive::new(KAryNTree::new(2, 4), vcs))
        } else {
            Box::new(CubeDuato::new(KAryNCube::new(4, 2)))
        };
        let n = algo.topology().num_nodes();
        let rate = rate_milli as f64 / 1000.0;
        let pattern = TrafficGen::new(P::Uniform, n);
        let mut eng = Engine::new(
            algo.as_ref(), buf, 8, pattern,
            &move |_| Box::new(Burst(400, rate)), seed,
        );
        // Conservation at every step, then complete drainage.
        for _ in 0..100 {
            eng.step();
            prop_assert_eq!(eng.buffered_flits(), eng.counters().in_flight_flits);
        }
        eng.run(400 + 15_000 - 100);
        let c = eng.counters();
        prop_assert_eq!(c.delivered_packets, c.created_packets);
        prop_assert_eq!(c.in_flight_flits, 0);
        prop_assert!(eng.check_credit_invariant().is_ok());
        // Every delivered packet went to the right place with sane timing.
        for p in eng.packets() {
            prop_assert!(p.delivered != netperf::netsim::flit::NEVER);
            prop_assert!(p.injected >= p.created);
            let lat = p.latency().unwrap();
            prop_assert!(lat >= 8, "latency below serialization bound");
        }
    }
}
