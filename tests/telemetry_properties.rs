//! Property-based tests (proptest) for the telemetry plane: across
//! randomized small scenarios, every delivered packet's latency
//! decomposition must satisfy the exact accounting identity
//! `src_queue + routing + blocked + transfer == delivered − created`,
//! component by component against the raw packet trace.

use proptest::prelude::*;

use netperf::netsim::scenario::RoutingKind;
use netperf::prelude::*;

/// Small networks that keep a proptest case under ~50 ms.
fn spec_for(topo: usize) -> (TopologySpec, RoutingKind, usize) {
    match topo {
        0 => (TopologySpec::cube(4, 2), RoutingKind::Duato, 4),
        1 => (TopologySpec::tree(4, 2), RoutingKind::Adaptive, 2),
        _ => (TopologySpec::mesh(4, 2), RoutingKind::Adaptive, 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn latency_components_sum_exactly(
        topo in 0usize..3,
        pattern in 0usize..3,
        load_pct in 10u32..90,
        salt in any::<u64>(),
    ) {
        let load = f64::from(load_pct) / 100.0;
        let (spec, routing, vcs) = spec_for(topo);
        let pattern = [Pattern::Uniform, Pattern::Transpose, Pattern::Complement][pattern];
        let scenario = Scenario::builder()
            .topology(spec)
            .routing(routing)
            .vcs(vcs)
            .pattern(pattern)
            .seed(netperf::netsim::scenario::SeedMode::Derived { salt })
            .run_length(RunLength { warmup: 100, total: 1200 })
            .telemetry(TelemetryConfig { stride: 64, record_events: true })
            .build()
            .unwrap();
        let (_, rec) = scenario.simulate_traced(load);

        let breakdowns = rec.breakdowns();
        prop_assert_eq!(
            breakdowns.len(),
            rec.packet_traces().iter().filter(|t| t.delivered != netperf::telemetry::NEVER).count(),
            "one breakdown per delivered packet"
        );
        for b in &breakdowns {
            let t = &rec.packet_traces()[b.packet as usize];
            // The identity, checked against the raw per-packet stamps:
            // the four components partition delivered − created.
            prop_assert_eq!(
                b.src_queue + b.routing + b.blocked + b.transfer,
                t.delivered - t.created,
                "components of packet {} do not sum to its lifetime", b.packet
            );
            // And each component matches its defining stamp.
            prop_assert_eq!(b.src_queue, t.injected - t.created);
            prop_assert_eq!(b.routing, u32::from(t.hops));
            prop_assert_eq!(b.transfer, 2 * u32::from(t.hops) + u32::from(t.flits));
            prop_assert_eq!(b.total(), t.delivered - t.created);
        }
    }
}
