//! The paper's *qualitative* results, asserted end-to-end on the real
//! 256-node networks with shortened (but still converged) runs. These
//! are the claims the reproduction must preserve; the exact percentage
//! points live in EXPERIMENTS.md and come from full-length runs.
//!
//! Run-length note: 8000 cycles with a 2000-cycle warm-up is enough for
//! every assertion here to be stable across seeds (the full protocol
//! uses 20000 cycles and tightens the numbers but not the orderings).

use netperf::prelude::*;
use netperf::traffic::Pattern as P;

fn len() -> RunLength {
    RunLength {
        warmup: 2_000,
        total: 8_000,
    }
}

fn accepted(spec: &ExperimentSpec, pattern: P, load: f64) -> f64 {
    simulate_load(spec, pattern, load, len()).accepted_fraction
}

#[test]
fn tree_uniform_vc_ordering() {
    // Section 8: saturation 36% (1 vc), 55% (2 vc), 72% (4 vc); "with 4
    // virtual channels doubles the accepted bandwidth".
    let t1 = ExperimentSpec::tree_adaptive(TreeParams::paper(), 1);
    let t2 = ExperimentSpec::tree_adaptive(TreeParams::paper(), 2);
    let t4 = ExperimentSpec::tree_adaptive(TreeParams::paper(), 4);
    let (a1, a2, a4) = (
        accepted(&t1, P::Uniform, 0.95),
        accepted(&t2, P::Uniform, 0.95),
        accepted(&t4, P::Uniform, 0.95),
    );
    assert!(a1 < a2 && a2 < a4, "VC ordering violated: {a1} {a2} {a4}");
    assert!(a4 > 1.8 * a1, "4 VCs should ~double 1 VC: {a1} -> {a4}");
    assert!(
        (0.25..0.45).contains(&a1),
        "1 vc sustained {a1}, paper ~0.36"
    );
    assert!(
        (0.60..0.80).contains(&a4),
        "4 vc sustained {a4}, paper ~0.72"
    );
}

#[test]
fn tree_complement_is_congestion_free_and_insensitive_to_vcs() {
    // Section 8: complement saturates around 95% for every flow-control
    // variant, and extra VCs only add latency at moderate load.
    for vcs in [1usize, 2, 4] {
        let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), vcs);
        let out = simulate_load(&spec, P::Complement, 0.9, len());
        assert!(
            out.accepted_fraction > 0.80,
            "{vcs} vc accepted only {} under complement",
            out.accepted_fraction
        );
    }
    // Latency at moderate load: 1 vc is the fastest (no link
    // multiplexing of the worms).
    let lat = |vcs| {
        simulate_load(
            &ExperimentSpec::tree_adaptive(TreeParams::paper(), vcs),
            P::Complement,
            0.5,
            len(),
        )
        .mean_latency_cycles()
    };
    let (l1, l4) = (lat(1), lat(4));
    assert!(
        l1 < l4,
        "1 vc ({l1}) should beat 4 vc ({l4}) on complement latency"
    );
}

#[test]
fn tree_transpose_and_bitrev_track_flow_control() {
    // Section 8: saturation 33% / 60% / 78% for transpose; bit reversal
    // analogous ("performance results of these communication patterns
    // are very similar").
    for pattern in [P::Transpose, P::BitReversal] {
        let a1 = accepted(
            &ExperimentSpec::tree_adaptive(TreeParams::paper(), 1),
            pattern,
            0.95,
        );
        let a4 = accepted(
            &ExperimentSpec::tree_adaptive(TreeParams::paper(), 4),
            pattern,
            0.95,
        );
        assert!((0.25..0.48).contains(&a1), "{}: 1 vc {a1}", pattern.name());
        assert!((0.60..0.85).contains(&a4), "{}: 4 vc {a4}", pattern.name());
        assert!(a4 > 1.7 * a1, "{}: {a1} -> {a4}", pattern.name());
    }
    // "Very similar": transpose and bit reversal within a few points.
    let t = accepted(
        &ExperimentSpec::tree_adaptive(TreeParams::paper(), 2),
        P::Transpose,
        0.95,
    );
    let b = accepted(
        &ExperimentSpec::tree_adaptive(TreeParams::paper(), 2),
        P::BitReversal,
        0.95,
    );
    assert!((t - b).abs() < 0.08, "transpose {t} vs bitrev {b}");
}

#[test]
fn cube_uniform_adaptive_beats_deterministic() {
    // Section 9: Duato saturates ~80%, deterministic ~60%; latency low
    // for both before saturation.
    let det = ExperimentSpec::cube_deterministic(CubeParams::paper());
    let duato = ExperimentSpec::cube_duato(CubeParams::paper());
    let (ad, aa) = (
        accepted(&det, P::Uniform, 0.95),
        accepted(&duato, P::Uniform, 0.95),
    );
    assert!(
        aa > ad + 0.10,
        "Duato {aa} must clearly beat deterministic {ad}"
    );
    assert!(
        (0.45..0.65).contains(&ad),
        "deterministic sustained {ad}, paper ~0.60"
    );
    assert!(
        (0.70..0.92).contains(&aa),
        "Duato sustained {aa}, paper ~0.80"
    );

    // Pre-saturation latency around 70 cycles (paper Figure 6 b).
    let lat = simulate_load(&duato, P::Uniform, 0.5, len()).mean_latency_cycles();
    assert!(
        (45.0..100.0).contains(&lat),
        "latency {lat}, paper ~70 cycles"
    );
}

#[test]
fn cube_complement_inverts_the_ranking() {
    // Section 9: "the complement is unusual since dimension order
    // routing helps prevent conflicts": deterministic ~47% (close to
    // the 50% bound), Duato saturates early ~35%.
    let det = ExperimentSpec::cube_deterministic(CubeParams::paper());
    let duato = ExperimentSpec::cube_duato(CubeParams::paper());
    // Compare near the deterministic algorithm's sweet spot (its
    // throughput peaks around 50% offered, close to the bisection
    // bound) and at deep saturation.
    let ad_peak = accepted(&det, P::Complement, 0.5);
    let aa_peak = accepted(&duato, P::Complement, 0.5);
    assert!(
        ad_peak > aa_peak,
        "deterministic ({ad_peak}) must beat Duato ({aa_peak})"
    );
    assert!(
        (0.33..0.55).contains(&ad_peak),
        "det near the 50% bound: {ad_peak}"
    );
    let ad = accepted(&det, P::Complement, 0.9);
    let aa = accepted(&duato, P::Complement, 0.9);
    assert!(
        ad + 0.02 > aa,
        "det ({ad}) must not fall clearly behind Duato ({aa})"
    );
    assert!(ad < 0.55, "complement is bisection-bound at 50%: {ad}");
    assert!(
        (0.22..0.45).contains(&aa),
        "Duato early saturation {aa}, paper ~0.35"
    );
}

#[test]
fn cube_transpose_and_bitrev_favor_adaptivity() {
    // Section 9: transpose — adaptive 50% "more than twice" the
    // deterministic; bit reversal — 60% vs 20%.
    // Measured at 65% offered: at (or just past) Duato's saturation
    // for both patterns, where the paper reads off its numbers.
    let det = ExperimentSpec::cube_deterministic(CubeParams::paper());
    let duato = ExperimentSpec::cube_duato(CubeParams::paper());
    for (pattern, det_hi, duato_lo) in [(P::Transpose, 0.33, 0.40), (P::BitReversal, 0.30, 0.50)] {
        let ad = accepted(&det, pattern, 0.65);
        let aa = accepted(&duato, pattern, 0.65);
        assert!(aa > 1.8 * ad, "{}: Duato {aa} vs det {ad}", pattern.name());
        assert!(
            ad < det_hi,
            "{}: deterministic too good: {ad}",
            pattern.name()
        );
        assert!(aa > duato_lo, "{}: Duato too weak: {aa}", pattern.name());
    }
}

#[test]
fn figure7_absolute_rankings_uniform() {
    // Section 10: Duato ~440 bits/ns > deterministic ~350 > tree-4vc
    // ~280 > tree-1vc ~150; cube latency about half the tree's.
    let specs = ExperimentSpec::paper_five();
    let mut abs: std::collections::HashMap<&str, f64> = Default::default();
    let mut lat_ns: std::collections::HashMap<&str, f64> = Default::default();
    for spec in &specs {
        let norm = spec.normalization();
        let out = simulate_load(spec, P::Uniform, 0.95, len());
        abs.insert(
            spec.label(),
            norm.fraction_to_bits_per_ns(out.accepted_fraction),
        );
        let pre = simulate_load(spec, P::Uniform, 0.3, len());
        lat_ns.insert(spec.label(), norm.cycles_to_ns(pre.mean_latency_cycles()));
    }
    assert!(abs["cube, Duato"] > abs["cube, deterministic"]);
    assert!(abs["cube, deterministic"] > abs["fat tree, 4 vc"]);
    assert!(abs["fat tree, 4 vc"] > abs["fat tree, 1 vc"]);
    assert!(
        abs["cube, Duato"] > 2.0 * abs["fat tree, 1 vc"],
        "paper: best cube ~3x the 1-vc tree"
    );
    // Latency: cube about half the tree (paper: 0.5 us vs ~1 us at
    // normal load).
    assert!(lat_ns["cube, Duato"] * 1.5 < lat_ns["fat tree, 4 vc"]);
}

#[test]
fn post_saturation_throughput_is_stable() {
    // Section 6 asks for stable accepted bandwidth after saturation;
    // Sections 8-9 confirm it for every configuration.
    for (spec, pattern) in [
        (ExperimentSpec::cube_duato(CubeParams::paper()), P::Uniform),
        (
            ExperimentSpec::cube_deterministic(CubeParams::paper()),
            P::Transpose,
        ),
        (
            ExperimentSpec::tree_adaptive(TreeParams::paper(), 2),
            P::Uniform,
        ),
    ] {
        let at_sat = accepted(&spec, pattern, 0.85);
        let beyond = accepted(&spec, pattern, 1.0);
        assert!(
            beyond > 0.8 * at_sat,
            "{} under {}: {at_sat} collapses to {beyond}",
            spec.label(),
            pattern.name()
        );
    }
}
