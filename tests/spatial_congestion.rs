//! Section 9's spatial claims, asserted from the engine's per-channel
//! flit counters on the real 256-node cube.

use netperf::netsim::engine::Engine;
use netperf::prelude::*;
use netperf::traffic::{Bernoulli, Pattern as P, TrafficGen};

fn forwarded(pattern: P, cycles: u32) -> Vec<u64> {
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    let norm = spec.normalization();
    let algo = spec.build_algorithm();
    let rate = norm.packet_rate(0.5);
    let gen = TrafficGen::new(pattern, 256);
    let mut eng = Engine::new(
        algo.as_ref(),
        4,
        norm.flits_per_packet() as u16,
        gen,
        &move |_| Box::new(Bernoulli::new(rate)),
        0xC0FFEE,
    );
    eng.run(cycles);
    eng.router_forwarded_flits()
}

fn diagonal_mean(loads: &[u64]) -> f64 {
    (0..16).map(|i| loads[i + 16 * i]).sum::<u64>() as f64 / 16.0
}

fn grid_mean(loads: &[u64]) -> f64 {
    loads.iter().sum::<u64>() as f64 / loads.len() as f64
}

#[test]
fn transpose_congests_the_diagonal() {
    // "a continuous area of congestion along this diagonal".
    let loads = forwarded(P::Transpose, 6_000);
    let ratio = diagonal_mean(&loads) / grid_mean(&loads);
    assert!(ratio > 1.4, "diagonal only {ratio:.2}x the mean");
    // And it is *continuous*: every diagonal router is above the mean.
    let mean = grid_mean(&loads);
    for i in 0..16 {
        assert!(
            loads[i + 16 * i] as f64 > mean,
            "diagonal router ({i},{i}) below the grid mean"
        );
    }
}

#[test]
fn uniform_is_spatially_flat() {
    let loads = forwarded(P::Uniform, 6_000);
    let mean = grid_mean(&loads);
    let max = *loads.iter().max().unwrap() as f64;
    let min = *loads.iter().min().unwrap() as f64;
    assert!(
        max / mean < 1.15,
        "hot spot under uniform traffic: {}",
        max / mean
    );
    assert!(
        min / mean > 0.85,
        "cold spot under uniform traffic: {}",
        min / mean
    );
}

#[test]
fn bitrev_leaves_underloaded_areas() {
    // "some underloaded areas … according to a symmetric layout": the
    // spread of router loads is much wider than under uniform traffic,
    // and the minimum sits well below the mean.
    let loads = forwarded(P::BitReversal, 6_000);
    let mean = grid_mean(&loads);
    let min = *loads.iter().min().unwrap() as f64;
    // Uniform traffic keeps every router within ~15% of the mean (see
    // `uniform_is_spatially_flat`); bit reversal's silent palindromes
    // carve visibly colder regions.
    assert!(
        min / mean < 0.78,
        "no underloaded area: min/mean {}",
        min / mean
    );
    // Symmetric layout: the load map equals its transpose reflection
    // within noise, aggregated over quadrant sums.
    let q = |x0: usize, y0: usize| -> u64 {
        let mut sum = 0u64;
        for dy in 0..8 {
            for dx in 0..8 {
                sum += loads[(x0 + dx) + 16 * (y0 + dy)];
            }
        }
        sum
    };
    let (a, b, c, d) = (q(0, 0), q(8, 0), q(0, 8), q(8, 8));
    let offdiag_ratio = b as f64 / c as f64;
    assert!(
        (0.8..1.25).contains(&offdiag_ratio),
        "asymmetric quadrants: {offdiag_ratio}"
    );
    let diag_ratio = a as f64 / d as f64;
    assert!(
        (0.8..1.25).contains(&diag_ratio),
        "asymmetric diagonal quadrants: {diag_ratio}"
    );
}

#[test]
fn link_counters_are_consistent_with_delivery() {
    // Ejection-channel counters must sum to the delivered flits.
    let spec = ExperimentSpec::cube_duato(CubeParams::tiny());
    let norm = spec.normalization();
    let algo = spec.build_algorithm();
    let rate = norm.packet_rate(0.4);
    let gen = TrafficGen::new(P::Uniform, 16);
    let mut eng = Engine::new(
        algo.as_ref(),
        4,
        16,
        gen,
        &move |_| Box::new(Bernoulli::new(rate)),
        3,
    );
    eng.run(4_000);
    let eject_port = 2 * 2; // 2n for n = 2
    let ejected: u64 = (0..16).map(|r| eng.link_flits(r, eject_port)).sum();
    assert_eq!(ejected, eng.counters().delivered_flits);
    assert!(ejected > 0);
}
