//! End-to-end path minimality: every delivered packet must have been
//! routed by exactly `min_distance(src, dest) - 1` routers — the engine
//! counts actual routing decisions per packet, so this checks the whole
//! pipeline (injection, adaptive selection, escape fallbacks, ejection)
//! against the topology's shortest-path metric.

use netperf::netsim::engine::Engine;
use netperf::netsim::flit::NEVER;
use netperf::prelude::*;
use netperf::routing::RoutingAlgorithm;
use netperf::traffic::{Bernoulli, Pattern as P, TrafficGen};

fn check_minimality(algo: &dyn RoutingAlgorithm, pattern: P, rate: f64, cycles: u32) {
    let topo = algo.topology();
    let n = topo.num_nodes();
    let pattern_gen = TrafficGen::new(pattern, n);
    let mut eng = Engine::new(
        algo,
        4,
        16,
        pattern_gen,
        &move |_| Box::new(Bernoulli::new(rate)),
        0xFEED,
    );
    eng.run(cycles);
    let mut delivered = 0usize;
    for p in eng.packets() {
        if p.delivered == NEVER {
            continue;
        }
        delivered += 1;
        let dist = topo.min_distance(NodeId(p.src), NodeId(p.dest));
        assert_eq!(
            p.hops as usize,
            dist - 1,
            "{}: packet {} -> {} took {} routing steps, minimal is {}",
            algo.name(),
            p.src,
            p.dest,
            p.hops,
            dist - 1
        );
    }
    assert!(
        delivered > 200,
        "{}: only {delivered} packets delivered",
        algo.name()
    );
}

#[test]
fn deterministic_cube_is_minimal() {
    let algo = CubeDeterministic::new(KAryNCube::new(8, 2));
    check_minimality(&algo, P::Uniform, 0.02, 6_000);
}

#[test]
fn duato_cube_is_minimal_even_under_heavy_adaptive_pressure() {
    let algo = CubeDuato::new(KAryNCube::new(8, 2));
    // Drive it hard so escape channels and re-entry actually happen.
    check_minimality(&algo, P::Uniform, 0.04, 6_000);
    check_minimality(&algo, P::Transpose, 0.04, 6_000);
}

#[test]
fn tree_adaptive_is_minimal_for_all_vc_counts() {
    for vcs in [1usize, 2, 4] {
        let algo = TreeAdaptive::new(KAryNTree::new(4, 3), vcs);
        check_minimality(&algo, P::Uniform, 0.02, 6_000);
    }
}

#[test]
fn paper_networks_are_minimal_at_saturation() {
    // The real 256-node configurations at deep saturation: adaptivity,
    // escapes and throttling all active, yet every path stays minimal.
    for spec in [
        ExperimentSpec::cube_duato(CubeParams::paper()),
        ExperimentSpec::tree_adaptive(TreeParams::paper(), 4),
    ] {
        let algo = spec.build_algorithm();
        let topo = algo.topology();
        let n = topo.num_nodes();
        let norm = spec.normalization();
        let rate = norm.packet_rate(0.95);
        let gen = TrafficGen::new(P::BitReversal, n);
        let mut eng = Engine::new(
            algo.as_ref(),
            4,
            norm.flits_per_packet() as u16,
            gen,
            &move |_| Box::new(Bernoulli::new(rate)),
            0xABCD,
        );
        eng.run(4_000);
        let mut checked = 0;
        for p in eng.packets() {
            if p.delivered == NEVER {
                continue;
            }
            let dist = topo.min_distance(NodeId(p.src), NodeId(p.dest));
            assert_eq!(p.hops as usize, dist - 1, "{}", spec.label());
            checked += 1;
        }
        assert!(checked > 500, "{}: checked {checked}", spec.label());
    }
}
