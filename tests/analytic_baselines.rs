//! The closed-form models versus the flit-level simulator: agreement at
//! low load, divergence near saturation. This is the paper's Section 1
//! argument ("theoretical models … often prove overly simplistic")
//! turned into assertions.

use netperf::analytic::{CubeModel, TreeModel};
use netperf::prelude::*;

fn quick() -> RunLength {
    RunLength {
        warmup: 1_500,
        total: 7_000,
    }
}

#[test]
fn cube_zero_load_latency_matches_simulation_within_cycles() {
    let model = CubeModel::new(16, 2, 16);
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    let sim = simulate_load(&spec, Pattern::Uniform, 0.05, quick());
    let measured = sim.mean_latency_cycles();
    let predicted = model.predicted_latency(0.05);
    assert!(
        (measured - predicted).abs() < 6.0,
        "model {predicted:.1} vs simulation {measured:.1} at 5% load"
    );
}

#[test]
fn tree_zero_load_latency_matches_simulation_within_cycles() {
    let model = TreeModel::new(4, 4, 32);
    let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), 2);
    let sim = simulate_load(&spec, Pattern::Uniform, 0.05, quick());
    let measured = sim.mean_latency_cycles();
    let predicted = model.predicted_latency(0.05);
    assert!(
        (measured - predicted).abs() < 8.0,
        "model {predicted:.1} vs simulation {measured:.1} at 5% load"
    );
}

#[test]
fn models_track_light_load_then_overestimate_contention() {
    // At 20% load the model is within ~40% of the simulator; by 40%
    // it already overestimates latency markedly (single-server M/D/1
    // ignores that adaptive routing and virtual channels *evade* the
    // contention it charges) while staying within 2x. Both facts are
    // part of the paper's "overly simplistic" argument.
    let cube = CubeModel::new(16, 2, 16);
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());

    let measured = simulate_load(&spec, Pattern::Uniform, 0.2, quick()).mean_latency_cycles();
    let predicted = cube.predicted_latency(0.2);
    let err = (predicted - measured).abs() / measured;
    assert!(
        err < 0.4,
        "20% load: model {predicted:.1}, sim {measured:.1}"
    );

    let measured = simulate_load(&spec, Pattern::Uniform, 0.4, quick()).mean_latency_cycles();
    let predicted = cube.predicted_latency(0.4);
    assert!(
        predicted > measured,
        "the contention-blind model should over-predict: {predicted:.1} vs {measured:.1}"
    );
    assert!(predicted < 2.0 * measured, "but not by more than 2x here");
}

#[test]
fn models_are_overly_optimistic_at_saturation() {
    // The closed forms put saturation at 100% of capacity for both
    // networks; the simulator (like the paper) shows far earlier
    // saturation. That gap must persist — it is the reason the paper
    // exists.
    let cube = CubeModel::new(16, 2, 16);
    let tree = TreeModel::new(4, 4, 32);
    assert!(cube.saturation_fraction() > 0.99);
    assert!(tree.saturation_fraction() > 0.99);

    let det = ExperimentSpec::cube_deterministic(CubeParams::paper());
    let out = simulate_load(&det, Pattern::Uniform, 0.95, quick());
    assert!(
        out.accepted_fraction < 0.75,
        "simulated deterministic cube sustained {} — the model's 100% \
         prediction should be wrong by a wide margin",
        out.accepted_fraction
    );

    let t1 = ExperimentSpec::tree_adaptive(TreeParams::paper(), 1);
    let out = simulate_load(&t1, Pattern::Uniform, 0.95, quick());
    assert!(out.accepted_fraction < 0.55);
}

#[test]
fn analytic_mean_distances_match_topology() {
    let cube = CubeModel::new(16, 2, 16);
    assert!((cube.mean_distance() - KAryNCube::new(16, 2).mean_hop_distance()).abs() < 1e-12);
    // Tree model excludes self-pairs; verify against a direct average.
    let tree_model = TreeModel::new(4, 4, 32);
    let tree = KAryNTree::new(4, 4);
    let n = tree.num_nodes();
    let total: usize = (0..n)
        .flat_map(|a| (0..n).map(move |b| (a, b)))
        .filter(|&(a, b)| a != b)
        .map(|(a, b)| tree.min_distance(NodeId(a as u32), NodeId(b as u32)))
        .sum();
    let brute = total as f64 / (n * (n - 1)) as f64;
    assert!((tree_model.mean_distance() - brute).abs() < 1e-12);
}
