//! Integration tests for the telemetry plane: determinism of traced
//! runs, the latency-decomposition identity on real simulations, and
//! the shape of the JSONL / Chrome-trace exports.

use netperf::prelude::*;
use netperf::telemetry::trace;

fn traced_scenario(name: &str) -> Scenario {
    named(name)
        .unwrap()
        .with_run_length(RunLength::quick())
        .with_telemetry(TelemetryConfig::default())
}

#[test]
fn traced_runs_are_deterministic() {
    // Two traced runs of the same scenario and seed must produce the
    // exact same event stream, packet table and utilization samples —
    // the trace is a pure function of (scenario, load).
    let s = traced_scenario("cube-duato-tiny");
    let (out_a, rec_a) = s.simulate_traced(0.5);
    let (out_b, rec_b) = s.simulate_traced(0.5);
    assert_eq!(out_a.created_packets, out_b.created_packets);
    assert_eq!(out_a.delivered_packets, out_b.delivered_packets);
    assert_eq!(
        out_a.accepted_fraction.to_bits(),
        out_b.accepted_fraction.to_bits()
    );
    assert_eq!(rec_a.events(), rec_b.events(), "event streams diverged");
    assert_eq!(rec_a.packet_traces(), rec_b.packet_traces());
    assert_eq!(rec_a.samples(), rec_b.samples());
    assert_eq!(
        trace::events_jsonl(rec_a.events()),
        trace::events_jsonl(rec_b.events())
    );
    assert_eq!(trace::chrome_trace(&rec_a), trace::chrome_trace(&rec_b));
}

#[test]
fn latency_components_sum_to_total_on_real_runs() {
    for name in ["cube-duato-tiny", "tree-2vc-tiny"] {
        for load in [0.2, 0.8] {
            let (_, rec) = traced_scenario(name).simulate_traced(load);
            let breakdowns = rec.breakdowns();
            assert!(!breakdowns.is_empty(), "{name} @ {load}: no packets");
            for b in &breakdowns {
                assert_eq!(
                    b.src_queue + b.routing + b.blocked + b.transfer,
                    b.total(),
                    "{name} @ {load}: packet {} components do not sum",
                    b.packet
                );
                assert_eq!(b.routing + b.blocked + b.transfer, b.network());
                assert_eq!(b.transfer, 2 * b.hops as u32 + b.flits as u32);
            }
            let sum = rec.breakdown_summary().unwrap();
            assert_eq!(sum.packets, breakdowns.len() as u64);
            let mean_parts =
                sum.mean_src_queue + sum.mean_routing + sum.mean_blocked + sum.mean_transfer;
            assert!(
                (mean_parts - sum.mean_total).abs() < 1e-6,
                "{name} @ {load}: mean components do not sum"
            );
        }
    }
}

#[test]
fn jsonl_export_is_one_valid_object_per_event() {
    let (_, rec) = traced_scenario("cube-duato-tiny").simulate_traced(0.4);
    let jsonl = trace::events_jsonl(rec.events());
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), rec.events().len());
    let mut kinds = std::collections::BTreeSet::new();
    for line in &lines {
        assert!(line.starts_with("{\"cycle\":"), "bad line {line}");
        assert!(line.ends_with('}'), "bad line {line}");
        let ev = line
            .split("\"ev\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .unwrap_or_else(|| panic!("no ev field in {line}"));
        kinds.insert(ev.to_string());
    }
    // A saturating-enough run exercises every lifecycle stage.
    for kind in ["created", "injected", "routed", "blocked", "delivered"] {
        assert!(kinds.contains(kind), "no {kind} events in the stream");
    }
}

#[test]
fn chrome_trace_has_the_expected_envelope() {
    let (_, rec) = traced_scenario("tree-2vc-tiny").simulate_traced(0.6);
    let json = trace::chrome_trace(&rec);
    assert!(json.starts_with("{\"traceEvents\":[\n"));
    assert!(json.ends_with("\n],\"displayTimeUnit\":\"ms\"}\n"));
    assert!(json.contains("\"ph\":\"M\""), "missing metadata events");
    assert!(json.contains("\"ph\":\"X\""), "missing duration events");
    assert!(json.contains("\"name\":\"queued\""));
    // Every duration event carries a ts and dur (microsecond = cycle).
    let durations = json.matches("\"ph\":\"X\"").count();
    assert_eq!(durations, 2 * rec.breakdowns().len());
}

#[test]
fn utilization_sampling_respects_the_stride() {
    let s = named("cube-duato-tiny")
        .unwrap()
        .with_run_length(RunLength::quick())
        .with_telemetry(TelemetryConfig {
            stride: 250,
            record_events: false,
        });
    let (_, rec) = s.simulate_traced(0.5);
    assert!(rec.events().is_empty(), "events recorded despite opt-out");
    assert_eq!(rec.samples().len(), rec.cycles() as usize / 250);
    for (i, sample) in rec.samples().iter().enumerate() {
        assert_eq!(sample.end_cycle, (i as u32 + 1) * 250);
        // A window can never hold more busy cycles than its stride.
        assert!(sample.out.iter().all(|&c| c <= 250));
        assert!(sample.inj.iter().all(|&c| c <= 250));
    }
    // The per-channel series are monotone in x and bounded by 1.
    let (r, p, _) = rec.busiest_channels(1)[0];
    let series = rec.channel_series(r, p);
    assert!(!series.points.is_empty());
    assert!(series.max_y().unwrap() <= 1.0 + 1e-9);
}
