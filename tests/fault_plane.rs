//! Fault-plane contracts, observed from outside: a fault-free plan is
//! bit-identical to the healthy engine, fault outcomes are
//! deterministic across runs and thread counts, every created packet
//! is accounted for (delivered + dropped + unroutable), and the CLI
//! rejects malformed `--faults` specs with a structured error.

use netperf::netsim::engine::Engine;
use netperf::netsim::wiring::Wiring;
use netperf::prelude::*;
use netperf::routing::RoutingAlgorithm;
use netperf::traffic::{InjectionProcess, Rng64, TrafficGen};
use std::process::Command;

/// Injects one packet every `period` ticks until a fixed budget is
/// spent, then goes silent so the network can drain completely.
struct Windowed {
    period: u64,
    count: u64,
    remaining: u64,
}

impl InjectionProcess for Windowed {
    fn tick(&mut self, _rng: &mut Rng64) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.count += 1;
        if self.count.is_multiple_of(self.period) {
            self.remaining -= 1;
            true
        } else {
            false
        }
    }
    fn mean_rate(&self) -> f64 {
        1.0 / self.period as f64
    }
}

/// An empty `FaultPlan` still instantiates the faulted engine
/// (`FaultState` with `ACTIVE = true`), so this checks that the fault
/// machinery is inert — not merely compiled out — when every fault set
/// is empty: counters and the accepted fraction must match the healthy
/// monomorphized path bit for bit.
#[test]
fn empty_fault_plan_is_bit_identical_to_no_faults() {
    for name in ["cube-duato", "tree-4vc"] {
        let healthy = named(name).unwrap().with_run_length(RunLength::quick());
        let empty = FaultPlan::default();
        assert!(empty.is_empty());
        let faulted = healthy.clone().with_faults(Some(empty)).unwrap();
        for load in [0.3, 0.6] {
            let a = healthy.simulate(load);
            let b = faulted.simulate(load);
            assert_eq!(a.created_packets, b.created_packets, "{name} @ {load}");
            assert_eq!(a.delivered_packets, b.delivered_packets, "{name} @ {load}");
            assert_eq!(
                a.accepted_fraction.to_bits(),
                b.accepted_fraction.to_bits(),
                "{name} @ {load}: accepted fraction diverged"
            );
            assert_eq!(
                a.mean_latency_cycles().to_bits(),
                b.mean_latency_cycles().to_bits(),
                "{name} @ {load}: latency diverged"
            );
            assert_eq!(b.dropped_packets, 0, "{name} @ {load}");
            assert_eq!(b.unroutable_packets, 0, "{name} @ {load}");
        }
    }
}

/// Same seed + same fault spec must reproduce the exact same drop /
/// unroutable / delivery counters, run to run and regardless of the
/// sweep worker count.
#[test]
fn fault_outcomes_are_deterministic_across_runs_and_threads() {
    let s = named("cube-duato-5pct")
        .unwrap()
        .with_run_length(RunLength::quick());
    assert!(s.faults().is_some(), "registry entry lost its fault plan");
    let loads = [0.4, 0.8];

    let run = |threads: &str| -> Vec<(u64, u64, u64, u64)> {
        std::env::set_var("NETPERF_THREADS", threads);
        let outs = s.try_sweep_outcomes(&loads).unwrap();
        outs.iter()
            .map(|o| {
                (
                    o.created_packets,
                    o.delivered_packets,
                    o.dropped_packets,
                    o.unroutable_packets,
                )
            })
            .collect()
    };

    let four_a = run("4");
    let four_b = run("4");
    let one = run("1");
    std::env::remove_var("NETPERF_THREADS");

    assert_eq!(four_a, four_b, "run-to-run nondeterminism");
    assert_eq!(four_a, one, "thread-count changed fault outcomes");
    let total_dropped: u64 = one.iter().map(|c| c.2 + c.3).sum();
    assert!(total_dropped > 0, "5% dead links dropped nothing");
}

/// Drive the engine directly with a finite packet budget, let it drain,
/// and check the conservation identity under a heavy fault load:
/// created = delivered + dropped + unroutable, with nothing left in
/// flight or queued at the sources.
#[test]
fn faulted_engine_conserves_packets() {
    let algo = CubeDuato::new(KAryNCube::new(4, 2));
    let plan = FaultPlan {
        link_fraction: 0.15,
        routers: 1,
        ..FaultPlan::default()
    };
    let state = plan
        .compile(&Wiring::from_topology(algo.topology()))
        .unwrap();
    let pattern = TrafficGen::new(Pattern::Uniform, 16);
    let mut eng = Engine::with_probe_and_faults(
        &algo,
        4,
        16,
        pattern,
        &|_| {
            Box::new(Windowed {
                period: 8,
                count: 0,
                remaining: 30,
            })
        },
        1234,
        NullProbe,
        state,
    );
    eng.run_checked(30_000)
        .unwrap_or_else(|stall| panic!("faulted engine wedged: {stall}"));

    let c = eng.counters();
    assert_eq!(
        c.created_packets,
        c.delivered_packets + c.dropped_packets + c.unroutable_packets,
        "packet conservation violated: {c:?}"
    );
    assert_eq!(c.in_flight_flits, 0, "flits left in flight after drain");
    assert_eq!(eng.source_queue_len(), 0, "packets stuck at the sources");
    assert!(
        c.dropped_packets + c.unroutable_packets > 0,
        "fault set had no effect"
    );
    assert!(
        c.dropped_flits >= c.dropped_packets,
        "dropped packets drained no flits"
    );
    assert_eq!(c.delivered_flits, c.delivered_packets * 16);
}

/// `netperf` must reject malformed or unsatisfiable `--faults` specs
/// with exit code 2 and a single structured `error:` line — no panic,
/// no backtrace.
#[test]
fn cli_rejects_bad_fault_specs_with_structured_error() {
    let bin = env!("CARGO_BIN_EXE_netperf");
    for spec in ["bananas", "links=2.0", "routers=100000", "transient=1:0:5"] {
        let out = Command::new(bin)
            .args(["run", "cube-duato-tiny", "--quick", "--faults", spec])
            .output()
            .expect("spawn netperf");
        assert_eq!(
            out.status.code(),
            Some(2),
            "--faults {spec}: expected exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        let lines: Vec<&str> = stderr.lines().collect();
        assert_eq!(
            lines.len(),
            1,
            "--faults {spec}: stderr not one line: {stderr}"
        );
        assert!(
            lines[0].starts_with("error:"),
            "--faults {spec}: unstructured error: {stderr}"
        );
    }
}

/// The faulted CLI path end to end: a tiny registry scenario with an
/// ad-hoc fault spec runs to completion and reports the fault header
/// and drop accounting.
#[test]
fn cli_runs_faulted_scenario() {
    let bin = env!("CARGO_BIN_EXE_netperf");
    let out = Command::new(bin)
        .args([
            "run",
            "cube-duato-tiny",
            "--quick",
            "--load",
            "0.3",
            "--faults",
            "links=0.05,seed=7",
        ])
        .output()
        .expect("spawn netperf");
    assert!(
        out.status.success(),
        "faulted run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("faults: links=0.05,seed=0x7"), "{stdout}");
    assert!(stdout.contains("dropped"), "{stdout}");
}
