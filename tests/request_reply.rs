//! The request–reply extension: shared-memory style traffic where every
//! delivered request triggers a same-size reply to the sender.

use netperf::netsim::engine::Engine;
use netperf::netsim::flit::NEVER;
use netperf::netsim::sim::{run_simulation, InjectionSpec, SimConfig};
use netperf::prelude::*;
use netperf::traffic::{InjectionProcess, Pattern as P, Rng64, TrafficGen};

struct Burst(u32, f64);
impl InjectionProcess for Burst {
    fn tick(&mut self, rng: &mut Rng64) -> bool {
        if self.0 > 0 {
            self.0 -= 1;
            rng.chance(self.1)
        } else {
            false
        }
    }
    fn mean_rate(&self) -> f64 {
        0.0
    }
}

#[test]
fn every_request_gets_exactly_one_reply() {
    let algo = CubeDuato::new(KAryNCube::new(4, 2));
    let pattern = TrafficGen::new(P::Uniform, 16);
    let mut eng = Engine::new(&algo, 4, 16, pattern, &|_| Box::new(Burst(400, 0.02)), 5);
    eng.set_request_reply(true);
    eng.run(400 + 15_000);

    let c = eng.counters();
    assert_eq!(c.delivered_packets, c.created_packets, "everything drains");
    assert_eq!(c.in_flight_flits, 0);

    let requests: Vec<_> = eng.packets().iter().filter(|p| !p.is_reply()).collect();
    let replies: Vec<_> = eng.packets().iter().filter(|p| p.is_reply()).collect();
    assert!(!requests.is_empty());
    assert_eq!(requests.len(), replies.len(), "one reply per request");

    // Each reply mirrors its request and postdates its delivery.
    for (i, p) in eng.packets().iter().enumerate() {
        if p.is_reply() {
            let req = &eng.packets()[p.in_reply_to as usize];
            assert!(!req.is_reply(), "replies are terminal");
            assert_eq!(p.src, req.dest);
            assert_eq!(p.dest, req.src);
            assert_eq!(p.flits, req.flits);
            assert_eq!(p.created, req.delivered, "reply created on delivery");
            assert!(
                p.delivered != NEVER && p.delivered > req.delivered,
                "packet {i}"
            );
        }
    }
}

#[test]
fn open_loop_mode_produces_no_replies() {
    let algo = CubeDuato::new(KAryNCube::new(4, 2));
    let pattern = TrafficGen::new(P::Uniform, 16);
    let mut eng = Engine::new(&algo, 4, 16, pattern, &|_| Box::new(Burst(300, 0.02)), 5);
    eng.run(5_000);
    assert!(eng.packets().iter().all(|p| !p.is_reply()));
}

#[test]
fn request_reply_doubles_effective_load() {
    // At the same request rate, request-reply traffic carries twice the
    // flits: accepted bandwidth doubles while below saturation.
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    let open = spec.config_at(
        P::Uniform,
        0.3,
        RunLength {
            warmup: 1_500,
            total: 7_000,
        },
    );
    let mut rr = open;
    rr.request_reply = true;
    let algo = spec.build_algorithm();
    let a = run_simulation(algo.as_ref(), &open);
    let b = run_simulation(algo.as_ref(), &rr);
    assert!(
        (b.accepted_fraction / a.accepted_fraction - 2.0).abs() < 0.15,
        "open {} vs request-reply {}",
        a.accepted_fraction,
        b.accepted_fraction
    );
}

#[test]
fn request_reply_saturates_earlier_in_request_rate() {
    // The reply traffic consumes the same network: saturation in
    // *request* rate arrives at about half the open-loop point.
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    let len = RunLength {
        warmup: 1_500,
        total: 7_000,
    };
    let mut cfg = spec.config_at(P::Uniform, 0.6, len);
    cfg.request_reply = true;
    let algo = spec.build_algorithm();
    let out = run_simulation(algo.as_ref(), &cfg);
    // 0.6 requests + 0.6 replies = 1.2 of capacity: saturated.
    assert!(
        out.accepted_fraction < 1.0 && out.backlog_packets > 100,
        "accepted {}, backlog {}",
        out.accepted_fraction,
        out.backlog_packets
    );

    let mut cfg = spec.config_at(P::Uniform, 0.35, len);
    cfg.request_reply = true;
    let out = run_simulation(algo.as_ref(), &cfg);
    // 0.7 of capacity total: still fluid.
    assert!(
        (out.accepted_fraction - 0.7).abs() < 0.05,
        "accepted {}",
        out.accepted_fraction
    );
}

#[test]
fn simconfig_flag_roundtrip() {
    let mut cfg = SimConfig::paper_protocol(
        P::Uniform,
        InjectionSpec::Bernoulli {
            packets_per_cycle: 0.01,
        },
        16,
        0.5,
    );
    assert!(!cfg.request_reply);
    cfg.request_reply = true;
    let algo = CubeDeterministic::new(KAryNCube::new(4, 2));
    cfg.total_cycles = 3_000;
    cfg.warmup_cycles = 500;
    let out = run_simulation(&algo, &cfg);
    assert!(out.delivered_packets > 0);
}
