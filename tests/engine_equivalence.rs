//! Observational equivalence of the active-set engine.
//!
//! The engine's worklist/bitmask fast path must be a pure optimization:
//! for every one of the paper's five router configurations, at loads
//! below, around, and above saturation, running the optimized
//! [`Engine::step`] must produce *bit-identical* outcomes — counters
//! and the full packet table — to the naive scan-everything
//! [`Engine::step_reference`] (compiled under the `reference-engine`
//! feature). This is the contract the benchmark harness relies on when
//! it reports the two steppers' throughput as comparable.

use netsim::engine::Engine;
use netsim::sim::SimConfig;
use netsim::{ExperimentSpec, RunLength};
use routing::RoutingAlgorithm;
use traffic::{Bernoulli, InjectionProcess, TrafficGen};

/// Build one engine for a paper spec's config (the same construction
/// `run_simulation` performs; `config_at` always yields a Bernoulli
/// injection process).
fn build_engine<'a>(algo: &'a (dyn RoutingAlgorithm + 'static), cfg: &SimConfig) -> Engine<'a> {
    let pattern = TrafficGen::new(cfg.pattern, algo.topology().num_nodes());
    let rate = cfg.injection.mean_rate();
    let mut eng = Engine::new(
        algo,
        cfg.buffer_depth,
        cfg.flits_per_packet,
        pattern,
        &move |_| Box::new(Bernoulli::new(rate)) as Box<dyn InjectionProcess>,
        cfg.seed,
    );
    eng.set_injection_limit(cfg.injection_limit);
    eng.set_request_reply(cfg.request_reply);
    eng
}

/// Run the optimized and the reference stepper side by side on one
/// paper configuration and assert identical observable state, both
/// mid-flight and at the end.
fn assert_equivalent(spec: &ExperimentSpec, fraction: f64, cycles: u32) {
    let len = RunLength {
        warmup: 500,
        total: cycles,
    };
    let cfg = spec.config_at(traffic::Pattern::Uniform, fraction, len);
    let algo = spec.build_algorithm();
    let mut opt = build_engine(algo.as_ref(), &cfg);
    let mut refr = build_engine(algo.as_ref(), &cfg);
    for cycle in 0..cycles {
        opt.step();
        refr.step_reference();
        if cycle % 512 == 0 {
            assert_eq!(
                opt.counters(),
                refr.counters(),
                "{} at load {fraction}: counters diverged at cycle {cycle}",
                spec.label()
            );
        }
    }
    assert_eq!(
        opt.counters(),
        refr.counters(),
        "{} at load {fraction}: final counters diverged",
        spec.label()
    );
    assert_eq!(
        opt.packets(),
        refr.packets(),
        "{} at load {fraction}: packet tables diverged",
        spec.label()
    );
    assert_eq!(opt.check_worklist_invariant(), Ok(()), "{}", spec.label());
    assert_eq!(opt.check_credit_invariant(), Ok(()), "{}", spec.label());
    // The run must have actually exercised the network.
    assert!(
        opt.counters().delivered_packets > 0,
        "{} at load {fraction}: nothing delivered",
        spec.label()
    );
}

/// Low load: mostly idle network — the regime where the active sets
/// skip almost all routers.
#[test]
fn paper_configs_low_load() {
    for spec in ExperimentSpec::paper_five() {
        assert_equivalent(&spec, 0.15, 2_500);
    }
}

/// Medium load: busy but below saturation.
#[test]
fn paper_configs_medium_load() {
    for spec in ExperimentSpec::paper_five() {
        assert_equivalent(&spec, 0.5, 2_500);
    }
}

/// Past saturation: every lane contended, worklists near-full, limited
/// injection active on the cubes.
#[test]
fn paper_configs_saturation_load() {
    for spec in ExperimentSpec::paper_five() {
        assert_equivalent(&spec, 1.2, 2_000);
    }
}
