//! Observational equivalence of the active-set and sharded engines.
//!
//! The engine's worklist/bitmask fast path must be a pure optimization:
//! for every one of the paper's five router configurations, at loads
//! below, around, and above saturation, running the optimized
//! [`Engine::step`] must produce *bit-identical* outcomes — counters
//! and the full packet table — to the naive scan-everything
//! [`Engine::step_reference`] (compiled under the `reference-engine`
//! feature). This is the contract the benchmark harness relies on when
//! it reports the two steppers' throughput as comparable.
//!
//! The sharded stepper ([`Engine::step_sharded`]) extends the same
//! contract one level up: for every shard count and thread count it
//! must be bit-identical to [`Engine::step`] — counters, the packet
//! table, *and* the telemetry event stream — including under an active
//! fault model and a recording probe.

use netsim::engine::Engine;
use netsim::fault::{FaultPlan, FaultState};
use netsim::sim::SimConfig;
use netsim::wiring::Wiring;
use netsim::{ExperimentSpec, RunLength};
use routing::RoutingAlgorithm;
use telemetry::{trace, FlightRecorder, Geometry, NullProbe, TelemetryConfig};
use traffic::{Bernoulli, InjectionProcess, TrafficGen};

/// Build one engine for a paper spec's config (the same construction
/// `run_simulation` performs; `config_at` always yields a Bernoulli
/// injection process).
fn build_engine<'a>(algo: &'a (dyn RoutingAlgorithm + 'static), cfg: &SimConfig) -> Engine<'a> {
    let pattern = TrafficGen::new(cfg.pattern, algo.topology().num_nodes());
    let rate = cfg.injection.mean_rate();
    let mut eng = Engine::new(
        algo,
        cfg.buffer_depth,
        cfg.flits_per_packet,
        pattern,
        &move |_| Box::new(Bernoulli::new(rate)) as Box<dyn InjectionProcess>,
        cfg.seed,
    );
    eng.set_injection_limit(cfg.injection_limit);
    eng.set_request_reply(cfg.request_reply);
    eng
}

/// Run the optimized and the reference stepper side by side on one
/// paper configuration and assert identical observable state, both
/// mid-flight and at the end.
fn assert_equivalent(spec: &ExperimentSpec, fraction: f64, cycles: u32) {
    let len = RunLength {
        warmup: 500,
        total: cycles,
    };
    let cfg = spec.config_at(traffic::Pattern::Uniform, fraction, len);
    let algo = spec.build_algorithm();
    let mut opt = build_engine(algo.as_ref(), &cfg);
    let mut refr = build_engine(algo.as_ref(), &cfg);
    for cycle in 0..cycles {
        opt.step();
        refr.step_reference();
        if cycle % 512 == 0 {
            assert_eq!(
                opt.counters(),
                refr.counters(),
                "{} at load {fraction}: counters diverged at cycle {cycle}",
                spec.label()
            );
        }
    }
    assert_eq!(
        opt.counters(),
        refr.counters(),
        "{} at load {fraction}: final counters diverged",
        spec.label()
    );
    assert_eq!(
        opt.packets(),
        refr.packets(),
        "{} at load {fraction}: packet tables diverged",
        spec.label()
    );
    assert_eq!(opt.check_worklist_invariant(), Ok(()), "{}", spec.label());
    assert_eq!(opt.check_credit_invariant(), Ok(()), "{}", spec.label());
    // The run must have actually exercised the network.
    assert!(
        opt.counters().delivered_packets > 0,
        "{} at load {fraction}: nothing delivered",
        spec.label()
    );
}

/// Low load: mostly idle network — the regime where the active sets
/// skip almost all routers.
#[test]
fn paper_configs_low_load() {
    for spec in ExperimentSpec::paper_five() {
        assert_equivalent(&spec, 0.15, 2_500);
    }
}

/// Medium load: busy but below saturation.
#[test]
fn paper_configs_medium_load() {
    for spec in ExperimentSpec::paper_five() {
        assert_equivalent(&spec, 0.5, 2_500);
    }
}

/// Past saturation: every lane contended, worklists near-full, limited
/// injection active on the cubes.
#[test]
fn paper_configs_saturation_load() {
    for spec in ExperimentSpec::paper_five() {
        assert_equivalent(&spec, 1.2, 2_000);
    }
}

// ---------------------------------------------------------------------
// Sharded stepper ≡ serial stepper.
// ---------------------------------------------------------------------

/// Run the serial stepper and one sharded stepper per requested
/// `(shards, threads)` combination in lockstep on the same
/// configuration and assert bit-identical observable state throughout.
fn assert_sharded_equivalent(
    spec: &ExperimentSpec,
    fraction: f64,
    cycles: u32,
    combos: &[(usize, usize)],
) {
    let len = RunLength {
        warmup: 500,
        total: cycles,
    };
    let cfg = spec.config_at(traffic::Pattern::Uniform, fraction, len);
    let algo = spec.build_algorithm();
    let mut serial = build_engine(algo.as_ref(), &cfg);
    let mut sharded: Vec<_> = combos
        .iter()
        .map(|&(s, t)| {
            let eng = build_engine(algo.as_ref(), &cfg);
            let plan = eng.shard_plan(s, t);
            assert!(
                plan.shards() >= 2,
                "{}: want a real decomposition",
                spec.label()
            );
            (eng, plan)
        })
        .collect();
    for cycle in 0..cycles {
        serial.step();
        for (eng, plan) in sharded.iter_mut() {
            eng.step_sharded(plan);
        }
        if cycle % 512 == 0 {
            for ((eng, plan), &(s, t)) in sharded.iter().zip(combos) {
                assert_eq!(
                    serial.counters(),
                    eng.counters(),
                    "{} at load {fraction}: shards={s} threads={t} (plan {}x{}) diverged at cycle {cycle}",
                    spec.label(),
                    plan.shards(),
                    plan.threads(),
                );
            }
        }
    }
    for ((eng, _), &(s, t)) in sharded.iter().zip(combos) {
        assert_eq!(
            serial.counters(),
            eng.counters(),
            "{} at load {fraction}: shards={s} threads={t} final counters diverged",
            spec.label()
        );
        assert_eq!(
            serial.packets(),
            eng.packets(),
            "{} at load {fraction}: shards={s} threads={t} packet tables diverged",
            spec.label()
        );
        assert_eq!(eng.check_worklist_invariant(), Ok(()), "{}", spec.label());
        assert_eq!(eng.check_credit_invariant(), Ok(()), "{}", spec.label());
    }
    assert!(
        serial.counters().delivered_packets > 0,
        "{} at load {fraction}: nothing delivered",
        spec.label()
    );
}

/// All five paper configurations: sequential shard execution (2 and 4
/// shards) and one-thread-per-shard execution must both match the
/// serial stepper bit for bit at a busy load.
#[test]
fn paper_configs_sharded() {
    for spec in ExperimentSpec::paper_five() {
        assert_sharded_equivalent(&spec, 0.5, 1_500, &[(2, 1), (4, 1), (4, 4)]);
    }
}

/// Saturation, where every handoff queue and the routing RNG are
/// maximally exercised.
#[test]
fn paper_configs_sharded_saturation() {
    for spec in ExperimentSpec::paper_five() {
        assert_sharded_equivalent(&spec, 1.2, 1_000, &[(4, 4)]);
    }
}

/// The fault plane must survive sharding: dead links and a dead router
/// force drops, reroutes, and unroutable packets, and the sharded
/// stepper must reproduce every one of them bit for bit.
#[test]
fn sharded_matches_serial_under_faults() {
    let spec = &ExperimentSpec::paper_five()[0];
    let cycles = 1_500;
    let len = RunLength {
        warmup: 500,
        total: cycles,
    };
    let cfg = spec.config_at(traffic::Pattern::Uniform, 0.5, len);
    let algo = spec.build_algorithm();
    let plan = FaultPlan {
        link_fraction: 0.05,
        routers: 1,
        ..FaultPlan::default()
    };
    let build = || -> Engine<'_, dyn RoutingAlgorithm, NullProbe, FaultState> {
        let state = plan
            .compile(&Wiring::from_topology(algo.topology()))
            .expect("fault plan compiles");
        let pattern = TrafficGen::new(cfg.pattern, algo.topology().num_nodes());
        let rate = cfg.injection.mean_rate();
        let mut eng = Engine::with_probe_and_faults(
            algo.as_ref(),
            cfg.buffer_depth,
            cfg.flits_per_packet,
            pattern,
            &move |_| Box::new(Bernoulli::new(rate)) as Box<dyn InjectionProcess>,
            cfg.seed,
            NullProbe,
            state,
        );
        eng.set_injection_limit(cfg.injection_limit);
        eng.set_request_reply(cfg.request_reply);
        eng
    };
    let mut serial = build();
    let mut sharded = build();
    let mut shard_plan = sharded.shard_plan(4, 4);
    for _ in 0..cycles {
        serial.step();
        sharded.step_sharded(&mut shard_plan);
    }
    assert_eq!(
        serial.counters(),
        sharded.counters(),
        "faulted counters diverged"
    );
    assert_eq!(
        serial.packets(),
        sharded.packets(),
        "faulted packet tables diverged"
    );
    assert!(serial.counters().dropped_packets + serial.counters().unroutable_packets > 0);
}

/// A recording probe observes identical event streams (same events,
/// same order — compared through the JSONL serialization) under the
/// sharded stepper, because link-phase events are replayed in serial
/// order at the barrier and every other phase emits serially.
#[test]
fn sharded_matches_serial_event_stream() {
    let spec = &ExperimentSpec::paper_five()[0];
    let cycles = 1_200;
    let len = RunLength {
        warmup: 400,
        total: cycles,
    };
    let cfg = spec.config_at(traffic::Pattern::Uniform, 0.5, len);
    let algo = spec.build_algorithm();
    let build = || -> Engine<'_, dyn RoutingAlgorithm, FlightRecorder> {
        let topo = algo.topology();
        let w = Wiring::from_topology(topo);
        let rec = FlightRecorder::new(
            TelemetryConfig {
                stride: 100,
                record_events: true,
            },
            Geometry {
                routers: w.num_routers,
                ports: w.ports,
                vcs: algo.num_vcs(),
                nodes: w.num_nodes,
            },
        );
        let pattern = TrafficGen::new(cfg.pattern, topo.num_nodes());
        let rate = cfg.injection.mean_rate();
        let mut eng = Engine::with_probe(
            algo.as_ref(),
            cfg.buffer_depth,
            cfg.flits_per_packet,
            pattern,
            &move |_| Box::new(Bernoulli::new(rate)) as Box<dyn InjectionProcess>,
            cfg.seed,
            rec,
        );
        eng.set_injection_limit(cfg.injection_limit);
        eng.set_request_reply(cfg.request_reply);
        eng
    };
    let mut serial = build();
    let mut sharded = build();
    let mut shard_plan = sharded.shard_plan(4, 4);
    for _ in 0..cycles {
        serial.step();
        sharded.step_sharded(&mut shard_plan);
    }
    assert_eq!(
        serial.counters(),
        sharded.counters(),
        "traced counters diverged"
    );
    assert_eq!(
        serial.packets(),
        sharded.packets(),
        "traced packet tables diverged"
    );
    let serial_events = trace::events_jsonl(serial.into_probe().events());
    let sharded_events = trace::events_jsonl(sharded.into_probe().events());
    assert!(!serial_events.is_empty(), "no events recorded");
    assert_eq!(
        serial_events, sharded_events,
        "telemetry event streams diverged"
    );
}
