//! Bit-reproducibility: a simulation is a pure function of its
//! configuration. This is what makes the figures in EXPERIMENTS.md
//! reproducible on any machine, and what makes the parallel sweep
//! identical to a serial one.

use netperf::netsim::sim::run_simulation;
use netperf::prelude::*;
use netperf::traffic::Pattern as P;

fn fingerprint(out: &netperf::netsim::sim::SimOutcome) -> (u64, u64, u64, u64) {
    (
        out.delivered_packets,
        out.created_packets,
        out.accepted_fraction.to_bits(),
        out.mean_latency_cycles().to_bits(),
    )
}

#[test]
fn identical_configs_produce_identical_outcomes() {
    let spec = ExperimentSpec::cube_duato(CubeParams::tiny());
    let cfg = spec.config_at(P::Uniform, 0.6, RunLength::quick());
    let a = {
        let algo = spec.build_algorithm();
        run_simulation(algo.as_ref(), &cfg)
    };
    let b = {
        let algo = spec.build_algorithm();
        run_simulation(algo.as_ref(), &cfg)
    };
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn different_seeds_produce_different_traces() {
    let spec = ExperimentSpec::cube_duato(CubeParams::tiny());
    let mut cfg = spec.config_at(P::Uniform, 0.6, RunLength::quick());
    let algo = spec.build_algorithm();
    let a = run_simulation(algo.as_ref(), &cfg);
    cfg.seed ^= 1;
    let b = run_simulation(algo.as_ref(), &cfg);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn parallel_sweep_matches_serial_exactly() {
    let spec = ExperimentSpec::tree_adaptive(TreeParams::tiny(), 2);
    let grid = [0.2, 0.5, 0.8, 1.0];
    let par = sweep_outcomes(&spec, P::Transpose, &grid, RunLength::quick());
    let ser: Vec<_> = grid
        .iter()
        .map(|&f| simulate_load(&spec, P::Transpose, f, RunLength::quick()))
        .collect();
    for (p, s) in par.iter().zip(&ser) {
        assert_eq!(fingerprint(p), fingerprint(s));
    }
}

#[test]
fn seeds_differ_across_grid_points_and_specs() {
    // Two different loads of the same spec, and the same load of two
    // specs, must not share RNG streams: their traces differ even
    // though the measured values could legitimately coincide.
    let spec = ExperimentSpec::cube_deterministic(CubeParams::tiny());
    let c1 = spec.config_at(P::Uniform, 0.5, RunLength::quick());
    let c2 = spec.config_at(P::Uniform, 0.55, RunLength::quick());
    assert_ne!(c1.seed, c2.seed);
    let other = ExperimentSpec::cube_duato(CubeParams::tiny());
    let c3 = other.config_at(P::Uniform, 0.5, RunLength::quick());
    assert_ne!(c1.seed, c3.seed);
}

#[test]
fn engine_counters_are_stable_across_runs_of_paper_network() {
    // A short paper-size run, twice; guards the hot path against
    // nondeterministic iteration (e.g. hash maps) sneaking in.
    let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), 2);
    let cfg = spec.config_at(
        P::BitReversal,
        0.7,
        RunLength {
            warmup: 500,
            total: 2_500,
        },
    );
    let algo = spec.build_algorithm();
    let a = run_simulation(algo.as_ref(), &cfg);
    let b = run_simulation(algo.as_ref(), &cfg);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.backlog_packets, b.backlog_packets);
    assert_eq!(a.escape_fraction.to_bits(), b.escape_fraction.to_bits());
}
