//! Bit-reproducibility: a simulation is a pure function of its
//! configuration. This is what makes the figures in EXPERIMENTS.md
//! reproducible on any machine, and what makes the parallel sweep
//! identical to a serial one.

use netperf::netsim::sim::run_simulation;
use netperf::prelude::*;
use netperf::traffic::Pattern as P;

fn fingerprint(out: &netperf::netsim::sim::SimOutcome) -> (u64, u64, u64, u64) {
    (
        out.delivered_packets,
        out.created_packets,
        out.accepted_fraction.to_bits(),
        out.mean_latency_cycles().to_bits(),
    )
}

#[test]
fn identical_configs_produce_identical_outcomes() {
    let spec = ExperimentSpec::cube_duato(CubeParams::tiny());
    let cfg = spec.config_at(P::Uniform, 0.6, RunLength::quick());
    let a = {
        let algo = spec.build_algorithm();
        run_simulation(algo.as_ref(), &cfg)
    };
    let b = {
        let algo = spec.build_algorithm();
        run_simulation(algo.as_ref(), &cfg)
    };
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn different_seeds_produce_different_traces() {
    let spec = ExperimentSpec::cube_duato(CubeParams::tiny());
    let mut cfg = spec.config_at(P::Uniform, 0.6, RunLength::quick());
    let algo = spec.build_algorithm();
    let a = run_simulation(algo.as_ref(), &cfg);
    cfg.seed ^= 1;
    let b = run_simulation(algo.as_ref(), &cfg);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn parallel_sweep_matches_serial_exactly() {
    let spec = ExperimentSpec::tree_adaptive(TreeParams::tiny(), 2);
    let grid = [0.2, 0.5, 0.8, 1.0];
    let par = sweep_outcomes(&spec, P::Transpose, &grid, RunLength::quick());
    let ser: Vec<_> = grid
        .iter()
        .map(|&f| simulate_load(&spec, P::Transpose, f, RunLength::quick()))
        .collect();
    for (p, s) in par.iter().zip(&ser) {
        assert_eq!(fingerprint(p), fingerprint(s));
    }
}

#[test]
fn seeds_differ_across_grid_points_and_specs() {
    // Two different loads of the same spec, and the same load of two
    // specs, must not share RNG streams: their traces differ even
    // though the measured values could legitimately coincide.
    let spec = ExperimentSpec::cube_deterministic(CubeParams::tiny());
    let c1 = spec.config_at(P::Uniform, 0.5, RunLength::quick());
    let c2 = spec.config_at(P::Uniform, 0.55, RunLength::quick());
    assert_ne!(c1.seed, c2.seed);
    let other = ExperimentSpec::cube_duato(CubeParams::tiny());
    let c3 = other.config_at(P::Uniform, 0.5, RunLength::quick());
    assert_ne!(c1.seed, c3.seed);
}

/// FNV-1a over a string: a stable digest for comparing telemetry
/// event streams without holding two full JSONL dumps in the failure
/// message.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn sharded_runs_are_bit_identical_at_scale() {
    // The beyond-paper 4096-node registry entry, shortened to test
    // length: every (shards, worker-threads) combination must produce
    // the exact SimOutcome of the serial stepper — all fields, not a
    // summary — and the exact telemetry event stream (compared by
    // digest of the JSONL export). The worker-thread axis is what
    // NETPERF_THREADS controls for sharded scenario runs; the explicit
    // parameter keeps the test free of process-global env mutation.
    let scenario = netperf::netsim::named("tree-4ary-6")
        .expect("scale registry entry")
        .with_run_length(RunLength {
            warmup: 100,
            total: 400,
        });
    let load = 0.3;

    let serial = scenario.try_simulate_sharded(load, 1, 1).unwrap();
    let serial_fp = format!("{serial:?}");
    for (shards, threads) in [(2, 1), (2, 4), (4, 1), (4, 4)] {
        let sharded = scenario
            .try_simulate_sharded(load, shards, threads)
            .unwrap();
        assert_eq!(
            serial_fp,
            format!("{sharded:?}"),
            "outcome diverged with {shards} shards x {threads} threads"
        );
    }
    assert!(
        serial.delivered_packets > 0,
        "run too short to mean anything"
    );

    // Traced runs: same outcome and the same event stream.
    let traced = scenario.clone().with_telemetry(TelemetryConfig {
        stride: 100,
        record_events: true,
    });
    let (out1, rec1) = traced.try_simulate_traced_sharded(load, 1, 1).unwrap();
    let jsonl1 = netperf::telemetry::trace::events_jsonl(rec1.events());
    assert!(!jsonl1.is_empty(), "recorder captured no events");
    for (shards, threads) in [(2, 1), (4, 4)] {
        let (out_n, rec_n) = traced
            .try_simulate_traced_sharded(load, shards, threads)
            .unwrap();
        assert_eq!(serial_fp, format!("{out1:?}"));
        assert_eq!(
            format!("{out1:?}"),
            format!("{out_n:?}"),
            "traced outcome diverged with {shards} shards x {threads} threads"
        );
        let jsonl_n = netperf::telemetry::trace::events_jsonl(rec_n.events());
        assert_eq!(
            fnv64(&jsonl1),
            fnv64(&jsonl_n),
            "telemetry event stream diverged with {shards} shards x {threads} threads"
        );
    }
}

#[test]
fn engine_counters_are_stable_across_runs_of_paper_network() {
    // A short paper-size run, twice; guards the hot path against
    // nondeterministic iteration (e.g. hash maps) sneaking in.
    let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), 2);
    let cfg = spec.config_at(
        P::BitReversal,
        0.7,
        RunLength {
            warmup: 500,
            total: 2_500,
        },
    );
    let algo = spec.build_algorithm();
    let a = run_simulation(algo.as_ref(), &cfg);
    let b = run_simulation(algo.as_ref(), &cfg);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.backlog_packets, b.backlog_packets);
    assert_eq!(a.escape_fraction.to_bits(), b.escape_fraction.to_bits());
}
