//! Validating the paper's measurement protocol itself: is 2000 cycles
//! of warm-up enough for steady state, and how tight are the resulting
//! estimates?

use netperf::netsim::sim::run_simulation;
use netperf::prelude::*;
use netperf::traffic::Pattern as P;

#[test]
fn accepted_bandwidth_ci_is_tight_below_saturation() {
    // Below saturation the accepted bandwidth is a stable rate: the
    // batch-means 95% interval should be within a few percent and must
    // cover the generated rate.
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    let cfg = spec.config_at(P::Uniform, 0.5, RunLength::paper());
    let algo = spec.build_algorithm();
    let out = run_simulation(algo.as_ref(), &cfg);
    let ci = out.accepted_ci;
    assert!(
        ci.relative() < 0.05,
        "relative half-width {}",
        ci.relative()
    );
    assert!(
        ci.contains(out.accepted_flits_per_node_cycle),
        "point estimate outside its own interval?!"
    );
    let generated_rate = out.generated_fraction * cfg.capacity_flits_per_cycle;
    assert!(
        (ci.mean - generated_rate).abs() < 3.0 * ci.half_width + 0.01,
        "accepted {} vs generated {}",
        ci.mean,
        generated_rate
    );
}

#[test]
fn ci_stays_finite_and_wider_above_saturation() {
    let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), 1);
    let algo = spec.build_algorithm();
    let below = run_simulation(
        algo.as_ref(),
        &spec.config_at(P::Uniform, 0.2, RunLength::paper()),
    );
    let above = run_simulation(
        algo.as_ref(),
        &spec.config_at(P::Uniform, 0.9, RunLength::paper()),
    );
    assert!(below.accepted_ci.half_width.is_finite());
    assert!(above.accepted_ci.half_width.is_finite());
    // Saturated throughput is still a stable rate (Section 6's "stable
    // post-saturation behavior") — the interval must stay tight.
    assert!(
        above.accepted_ci.relative() < 0.08,
        "{}",
        above.accepted_ci.relative()
    );
}

#[test]
fn warmup_of_2000_cycles_reaches_steady_state() {
    // Measure accepted bandwidth in 2000-cycle slices with *no* warm-up
    // exclusion: the first slice is depressed (network filling), but
    // from the second slice on the rate is statistically flat — which
    // is exactly why the paper starts measuring at cycle 2000.
    use netperf::netsim::engine::Engine;
    use netperf::traffic::{Bernoulli, TrafficGen};

    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    let norm = spec.normalization();
    let algo = spec.build_algorithm();
    let rate = norm.packet_rate(0.6);
    let pattern = TrafficGen::new(P::Uniform, 256);
    let mut eng = Engine::new(
        algo.as_ref(),
        4,
        norm.flits_per_packet() as u16,
        pattern,
        &move |_| Box::new(Bernoulli::new(rate)),
        42,
    );

    // Fine slices over the first 2000 cycles, then coarse steady slices.
    let mut fine = Vec::new();
    let mut prev = 0u64;
    for _ in 0..10 {
        eng.run(200);
        let now = eng.counters().delivered_flits;
        fine.push((now - prev) as f64 / (200.0 * 256.0));
        prev = now;
    }
    let mut coarse = Vec::new();
    for _ in 0..9 {
        eng.run(2_000);
        let now = eng.counters().delivered_flits;
        coarse.push((now - prev) as f64 / (2_000.0 * 256.0));
        prev = now;
    }

    let steady: f64 = coarse.iter().sum::<f64>() / coarse.len() as f64;
    // The very first 200 cycles are dominated by pipeline fill: nothing
    // is delivered before ~45 cycles and the rate ramps after that.
    assert!(
        fine[0] < 0.9 * steady,
        "first 200-cycle slice {} vs steady {steady}",
        fine[0]
    );
    // By the end of the 2000-cycle warm-up the rate has converged...
    assert!(
        (fine[9] - steady).abs() < 0.10 * steady,
        "slice at warm-up end {} vs steady {steady}",
        fine[9]
    );
    // ...and every post-warm-up 2000-cycle slice is within 5%.
    for (i, &s) in coarse.iter().enumerate() {
        assert!(
            (s - steady).abs() < 0.05 * steady,
            "slice {} = {s} vs steady {steady}",
            i + 1
        );
    }
}

#[test]
fn batch_means_autocorrelation_is_low_in_steady_state() {
    // Sanity on the independence assumption behind the intervals.
    use netstats::BatchMeans;
    let spec = ExperimentSpec::cube_deterministic(CubeParams::paper());
    let cfg = spec.config_at(P::Uniform, 0.4, RunLength::paper());
    let algo = spec.build_algorithm();
    // Reconstruct slice rates from two runs at different batch sizes
    // via the public outcome (the CI machinery is already exercised);
    // here we just re-derive with BatchMeans on per-run accepted rates
    // across seeds.
    let mut bm = BatchMeans::new();
    for seed in 0..8u64 {
        let mut c = cfg;
        c.seed = 1000 + seed;
        let out = run_simulation(algo.as_ref(), &c);
        bm.push(out.accepted_flits_per_node_cycle);
    }
    let ci = bm.ci95();
    assert!(ci.relative() < 0.03, "cross-seed spread {}", ci.relative());
    assert!(bm.lag1_autocorrelation().abs() < 0.9);
}
