//! The [`FlightRecorder`] probe: per-packet traces, latency
//! decomposition, and fixed-stride utilization sampling.

use crate::probe::{LinkKind, Probe};
use crate::{Geometry, TelemetryConfig, NEVER};
use netstats::export::{Cell, Manifest, Table};
use netstats::series::Series;

/// One packet-lifecycle event, in engine order.
///
/// Link-level flit crossings are deliberately *not* events — at one
/// flit per channel per cycle they would dwarf the lifecycle stream.
/// They feed the utilization counters instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Packet entered its source queue (or a reply was spawned).
    Created {
        /// Cycle of creation.
        cycle: u32,
        /// Dense packet id.
        packet: u32,
        /// Source node.
        src: u32,
        /// Destination node.
        dest: u32,
        /// Packet length in flits.
        flits: u16,
    },
    /// Head flit committed to an injection lane.
    Injected {
        /// Cycle of injection.
        cycle: u32,
        /// Packet id.
        packet: u32,
        /// Injecting node.
        node: u32,
        /// Injection virtual lane.
        vc: u8,
    },
    /// Header won a routing decision.
    Routed {
        /// Cycle of the decision.
        cycle: u32,
        /// Packet id.
        packet: u32,
        /// Router that routed the header.
        router: u32,
        /// Input lane (dense `port * vcs + vc`).
        in_lane: u16,
        /// Output lane granted.
        out_lane: u16,
        /// Escape/deterministic fallback lane class used.
        escape: bool,
    },
    /// Header found no admissible output this cycle.
    Blocked {
        /// Cycle of the failed attempt.
        cycle: u32,
        /// Packet id.
        packet: u32,
        /// Router holding the header.
        router: u32,
        /// Input lane the header waits on.
        in_lane: u16,
    },
    /// Tail flit ejected; packet delivered.
    Delivered {
        /// Cycle of delivery.
        cycle: u32,
        /// Packet id.
        packet: u32,
        /// Destination node.
        node: u32,
    },
    /// Fault plane: a link transitioned between up and down.
    Fault {
        /// Cycle of the transition.
        cycle: u32,
        /// Router on the canonical side of the link.
        router: u32,
        /// Port of the link at that router.
        port: u16,
        /// `true` = outage began, `false` = repaired.
        down: bool,
    },
    /// Fault plane: a packet was dropped at a router (every admissible
    /// direction permanently dead).
    Dropped {
        /// Cycle of the drop decision.
        cycle: u32,
        /// Packet id.
        packet: u32,
        /// Router where the header dead-ended.
        router: u32,
    },
    /// Fault plane: a packet was abandoned at its source (source or
    /// destination node dead).
    Unroutable {
        /// Cycle of abandonment.
        cycle: u32,
        /// Packet id.
        packet: u32,
        /// Source node.
        node: u32,
    },
    /// Fault plane: a header was routed while at least one candidate
    /// direction was down — a degraded-mode detour.
    Rerouted {
        /// Cycle of the decision.
        cycle: u32,
        /// Packet id.
        packet: u32,
        /// Router that routed around the outage.
        router: u32,
        /// Output lane granted.
        out_lane: u16,
    },
}

impl Event {
    /// Cycle stamp of the event.
    pub fn cycle(&self) -> u32 {
        match *self {
            Event::Created { cycle, .. }
            | Event::Injected { cycle, .. }
            | Event::Routed { cycle, .. }
            | Event::Blocked { cycle, .. }
            | Event::Delivered { cycle, .. }
            | Event::Fault { cycle, .. }
            | Event::Dropped { cycle, .. }
            | Event::Unroutable { cycle, .. }
            | Event::Rerouted { cycle, .. } => cycle,
        }
    }
}

/// Everything the recorder knows about one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketTrace {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// Length in flits.
    pub flits: u16,
    /// Creation cycle.
    pub created: u32,
    /// Injection cycle ([`NEVER`] while queued at the source).
    pub injected: u32,
    /// Delivery cycle ([`NEVER`] while in flight).
    pub delivered: u32,
    /// Routers traversed (routing decisions won).
    pub hops: u16,
    /// Hops that used the escape/deterministic fallback lane class.
    pub escape_hops: u16,
    /// Failed routing attempts (cycles the header sat blocked at the
    /// front of a lane while presented to the routing phase).
    pub blocked_attempts: u32,
}

impl PacketTrace {
    /// Decompose this packet's end-to-end latency, if it was delivered.
    ///
    /// The wormhole pipeline costs exactly `3` cycles per hop at zero
    /// contention (routing decision + crossbar + link), one cycle on
    /// the injection channel, and `flits − 1` trailing cycles for the
    /// tail to stream behind the head. Everything above that floor is
    /// contention, attributed to `blocked`:
    ///
    /// * `src_queue = injected − created`
    /// * `routing   = hops`
    /// * `transfer  = 2·hops + flits`  (crossbar+link per hop,
    ///   injection link, tail streaming)
    /// * `blocked   = (delivered − injected) − routing − transfer`
    ///
    /// so `src_queue + routing + blocked + transfer` equals
    /// `delivered − created` exactly, by construction, and `blocked`
    /// is non-negative by the pipeline floor argument (checked).
    pub fn breakdown(&self, packet: u32) -> Option<LatencyBreakdown> {
        if self.injected == NEVER || self.delivered == NEVER {
            return None;
        }
        let src_queue = self.injected - self.created;
        let routing = u32::from(self.hops);
        let transfer = 2 * u32::from(self.hops) + u32::from(self.flits);
        let network = self.delivered - self.injected;
        let blocked = match network.checked_sub(routing + transfer) {
            Some(b) => b,
            None => panic!(
                "latency decomposition underflow: packet {packet} has network \
                 latency {network} below the pipeline floor {} ({} hops, {} flits)",
                routing + transfer,
                self.hops,
                self.flits
            ),
        };
        Some(LatencyBreakdown {
            packet,
            src: self.src,
            dest: self.dest,
            flits: self.flits,
            hops: self.hops,
            src_queue,
            routing,
            blocked,
            transfer,
        })
    }
}

/// Four-way latency decomposition of one delivered packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Packet id.
    pub packet: u32,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// Length in flits.
    pub flits: u16,
    /// Routers traversed.
    pub hops: u16,
    /// Cycles queued at the source before injection.
    pub src_queue: u32,
    /// Cycles spent on winning routing decisions (one per hop).
    pub routing: u32,
    /// Contention cycles: header stalls and in-network queueing.
    pub blocked: u32,
    /// Zero-contention transfer cycles: crossbar + link per hop,
    /// injection link, and tail streaming.
    pub transfer: u32,
}

impl LatencyBreakdown {
    /// In-network latency (injection to delivery).
    pub fn network(&self) -> u32 {
        self.routing + self.blocked + self.transfer
    }

    /// End-to-end latency (creation to delivery); equals the sum of
    /// the four components exactly.
    pub fn total(&self) -> u32 {
        self.src_queue + self.network()
    }
}

/// Mean decomposition over all delivered packets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakdownSummary {
    /// Delivered packets summarized.
    pub packets: u64,
    /// Mean cycles queued at the source.
    pub mean_src_queue: f64,
    /// Mean routing-decision cycles.
    pub mean_routing: f64,
    /// Mean blocked cycles.
    pub mean_blocked: f64,
    /// Mean transfer cycles.
    pub mean_transfer: f64,
    /// Mean in-network latency.
    pub mean_network: f64,
    /// Mean end-to-end latency.
    pub mean_total: f64,
    /// Worst single-packet blocked time.
    pub max_blocked: u32,
}

impl BreakdownSummary {
    /// Fraction of in-network latency spent blocked.
    pub fn blocked_share(&self) -> f64 {
        if self.mean_network > 0.0 {
            self.mean_blocked / self.mean_network
        } else {
            0.0
        }
    }
}

/// One complete utilization window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UtilizationSample {
    /// Cycle at which the window closed (exclusive end; the window
    /// covers `end_cycle − stride .. end_cycle`).
    pub end_cycle: u32,
    /// Flits per router-output virtual lane, indexed
    /// `(router * ports + port) * vcs + vc`.
    pub out: Vec<u32>,
    /// Flits per injection lane, indexed `node * vcs + vc`.
    pub inj: Vec<u32>,
}

/// A recording [`Probe`]: packet traces, lifecycle events, and
/// fixed-stride utilization windows.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cfg: TelemetryConfig,
    geo: Geometry,
    packets: Vec<PacketTrace>,
    events: Vec<Event>,
    window_out: Vec<u32>,
    window_inj: Vec<u32>,
    total_out: Vec<u64>,
    samples: Vec<UtilizationSample>,
    cycles_seen: u32,
    fault_transitions: u64,
    dropped_packets: u64,
    unroutable_packets: u64,
    rerouted_hops: u64,
}

impl FlightRecorder {
    /// New recorder for a network of the given shape.
    ///
    /// # Panics
    /// Panics if `cfg.stride == 0` or the geometry is degenerate.
    pub fn new(cfg: TelemetryConfig, geo: Geometry) -> Self {
        assert!(cfg.stride >= 1, "sampling stride must be at least 1 cycle");
        assert!(
            geo.routers > 0 && geo.ports > 0 && geo.vcs > 0 && geo.nodes > 0,
            "degenerate telemetry geometry {geo:?}"
        );
        let out_lanes = geo.channels() * geo.vcs;
        let inj_lanes = geo.nodes * geo.vcs;
        FlightRecorder {
            cfg,
            geo,
            packets: Vec::new(),
            events: Vec::new(),
            window_out: vec![0; out_lanes],
            window_inj: vec![0; inj_lanes],
            total_out: vec![0; out_lanes],
            samples: Vec::new(),
            cycles_seen: 0,
            fault_transitions: 0,
            dropped_packets: 0,
            unroutable_packets: 0,
            rerouted_hops: 0,
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// The network shape this recorder was built for.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// Cycles observed (count of `cycle_end` calls).
    pub fn cycles(&self) -> u32 {
        self.cycles_seen
    }

    /// Per-packet traces, indexed by dense packet id.
    pub fn packet_traces(&self) -> &[PacketTrace] {
        &self.packets
    }

    /// The lifecycle event stream (empty unless
    /// [`TelemetryConfig::record_events`] was set).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Complete utilization windows, oldest first. A trailing partial
    /// window is dropped so every sample covers exactly
    /// [`TelemetryConfig::stride`] cycles.
    pub fn samples(&self) -> &[UtilizationSample] {
        &self.samples
    }

    /// Link up/down transitions observed (0 on a healthy run).
    pub fn fault_transitions(&self) -> u64 {
        self.fault_transitions
    }

    /// Packets dropped at a dead-ended router (0 on a healthy run).
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Packets abandoned at a dead source/destination (0 on a healthy
    /// run).
    pub fn unroutable_packets(&self) -> u64 {
        self.unroutable_packets
    }

    /// Routing decisions taken while a candidate direction was down
    /// (degraded-mode detours; 0 on a healthy run).
    pub fn rerouted_hops(&self) -> u64 {
        self.rerouted_hops
    }

    /// Latency decompositions for every delivered packet, in packet-id
    /// order.
    pub fn breakdowns(&self) -> Vec<LatencyBreakdown> {
        self.packets
            .iter()
            .enumerate()
            .filter_map(|(id, t)| t.breakdown(id as u32))
            .collect()
    }

    /// Mean decomposition over delivered packets, or `None` if nothing
    /// was delivered.
    pub fn breakdown_summary(&self) -> Option<BreakdownSummary> {
        let mut n = 0u64;
        let (mut sq, mut ro, mut bl, mut tr) = (0u64, 0u64, 0u64, 0u64);
        let mut max_blocked = 0u32;
        for b in self.breakdowns() {
            n += 1;
            sq += u64::from(b.src_queue);
            ro += u64::from(b.routing);
            bl += u64::from(b.blocked);
            tr += u64::from(b.transfer);
            max_blocked = max_blocked.max(b.blocked);
        }
        if n == 0 {
            return None;
        }
        let f = n as f64;
        let (mean_src_queue, mean_routing, mean_blocked, mean_transfer) =
            (sq as f64 / f, ro as f64 / f, bl as f64 / f, tr as f64 / f);
        Some(BreakdownSummary {
            packets: n,
            mean_src_queue,
            mean_routing,
            mean_blocked,
            mean_transfer,
            mean_network: mean_routing + mean_blocked + mean_transfer,
            mean_total: mean_src_queue + mean_routing + mean_blocked + mean_transfer,
            max_blocked,
        })
    }

    /// Per-packet decomposition table (`packet, src, dest, flits, hops,
    /// src_queue, routing, blocked, transfer, network, total`).
    pub fn breakdown_table(&self) -> Table {
        let mut t = Table::with_columns([
            "packet",
            "src",
            "dest",
            "flits",
            "hops",
            "src_queue",
            "routing",
            "blocked",
            "transfer",
            "network",
            "total",
        ]);
        for b in self.breakdowns() {
            t.push_row(vec![
                Cell::Num(f64::from(b.packet)),
                Cell::Num(f64::from(b.src)),
                Cell::Num(f64::from(b.dest)),
                Cell::Num(f64::from(b.flits)),
                Cell::Num(f64::from(b.hops)),
                Cell::Num(f64::from(b.src_queue)),
                Cell::Num(f64::from(b.routing)),
                Cell::Num(f64::from(b.blocked)),
                Cell::Num(f64::from(b.transfer)),
                Cell::Num(f64::from(b.network())),
                Cell::Num(f64::from(b.total())),
            ]);
        }
        t
    }

    fn out_lane(&self, router: usize, port: usize, vc: usize) -> usize {
        (router * self.geo.ports + port) * self.geo.vcs + vc
    }

    /// Utilization series (flits per cycle, 0..=1) for the physical
    /// channel leaving `router` through `port`, summed over its
    /// virtual lanes. One point per complete window, `x` = window end
    /// cycle.
    pub fn channel_series(&self, router: usize, port: usize) -> Series {
        let mut s = Series::new(format!("r{router}:p{port}"));
        let stride = f64::from(self.cfg.stride);
        for w in &self.samples {
            let base = self.out_lane(router, port, 0);
            let flits: u32 = w.out[base..base + self.geo.vcs].iter().sum();
            s.push(f64::from(w.end_cycle), f64::from(flits) / stride);
        }
        s
    }

    /// Utilization series for one virtual lane of a channel.
    pub fn lane_series(&self, router: usize, port: usize, vc: usize) -> Series {
        let mut s = Series::new(format!("r{router}:p{port}:v{vc}"));
        let stride = f64::from(self.cfg.stride);
        let lane = self.out_lane(router, port, vc);
        for w in &self.samples {
            s.push(f64::from(w.end_cycle), f64::from(w.out[lane]) / stride);
        }
        s
    }

    /// Utilization series for a node's injection channel (all lanes).
    pub fn injection_series(&self, node: usize) -> Series {
        let mut s = Series::new(format!("n{node}:inj"));
        let stride = f64::from(self.cfg.stride);
        for w in &self.samples {
            let base = node * self.geo.vcs;
            let flits: u32 = w.inj[base..base + self.geo.vcs].iter().sum();
            s.push(f64::from(w.end_cycle), f64::from(flits) / stride);
        }
        s
    }

    /// The `top_n` busiest router-output channels by total flits
    /// carried over the whole run, as `(router, port, flits)`,
    /// busiest first. Ties break toward lower channel index, so the
    /// ordering is deterministic.
    pub fn busiest_channels(&self, top_n: usize) -> Vec<(usize, usize, u64)> {
        let mut totals: Vec<(usize, u64)> = (0..self.geo.channels())
            .map(|c| {
                let base = c * self.geo.vcs;
                (c, self.total_out[base..base + self.geo.vcs].iter().sum())
            })
            .filter(|&(_, flits)| flits > 0)
            .collect();
        totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        totals
            .into_iter()
            .take(top_n)
            .map(|(c, flits)| (c / self.geo.ports, c % self.geo.ports, flits))
            .collect()
    }

    /// Hot-channel summary table (`channel, total_flits, mean_util,
    /// peak_util`), busiest first.
    pub fn utilization_table(&self, top_n: usize) -> Table {
        let mut t = Table::with_columns(["channel", "total_flits", "mean_util", "peak_util"]);
        for (r, p, flits) in self.busiest_channels(top_n) {
            let s = self.channel_series(r, p);
            let mean = if s.points.is_empty() {
                0.0
            } else {
                s.points.iter().map(|&(_, y)| y).sum::<f64>() / s.points.len() as f64
            };
            t.push_row(vec![
                Cell::Text(format!("r{r}:p{p}")),
                Cell::Num(flits as f64),
                Cell::Num(mean),
                Cell::Num(s.max_y().unwrap_or(0.0)),
            ]);
        }
        t
    }

    /// Wide time-series table for the `top_n` busiest channels: one
    /// row per complete window (`cycle` column = window end), one
    /// column per channel with its utilization in that window.
    pub fn utilization_series_table(&self, top_n: usize) -> Table {
        let hot = self.busiest_channels(top_n);
        let mut cols = vec!["cycle".to_string()];
        cols.extend(hot.iter().map(|&(r, p, _)| format!("r{r}:p{p}")));
        let mut t = Table::with_columns(cols);
        let stride = f64::from(self.cfg.stride);
        for w in &self.samples {
            let mut row = vec![Cell::Num(f64::from(w.end_cycle))];
            for &(r, p, _) in &hot {
                let base = self.out_lane(r, p, 0);
                let flits: u32 = w.out[base..base + self.geo.vcs].iter().sum();
                row.push(Cell::Num(f64::from(flits) / stride));
            }
            t.push_row(row);
        }
        t
    }

    /// Manifest fragment describing this recording (config + volume).
    pub fn manifest(&self) -> Manifest {
        let mut m = Manifest::new();
        m.push("stride", f64::from(self.cfg.stride));
        m.push("record_events", self.cfg.record_events);
        m.push("cycles", f64::from(self.cycles_seen));
        m.push("packets_tracked", self.packets.len() as f64);
        m.push("events", self.events.len() as f64);
        m.push("utilization_windows", self.samples.len() as f64);
        // Fault counters appear only when something faulty actually
        // happened, so healthy-run manifests are byte-identical to
        // pre-fault-plane recordings.
        if self.fault_transitions > 0 {
            m.push("fault_transitions", self.fault_transitions as f64);
        }
        if self.dropped_packets > 0 {
            m.push("dropped_packets", self.dropped_packets as f64);
        }
        if self.unroutable_packets > 0 {
            m.push("unroutable_packets", self.unroutable_packets as f64);
        }
        if self.rerouted_hops > 0 {
            m.push("rerouted_hops", self.rerouted_hops as f64);
        }
        m
    }
}

impl Probe for FlightRecorder {
    #[inline]
    fn packet_created(&mut self, cycle: u32, packet: u32, src: u32, dest: u32, flits: u16) {
        debug_assert_eq!(packet as usize, self.packets.len(), "packet ids are dense");
        self.packets.push(PacketTrace {
            src,
            dest,
            flits,
            created: cycle,
            injected: NEVER,
            delivered: NEVER,
            hops: 0,
            escape_hops: 0,
            blocked_attempts: 0,
        });
        if self.cfg.record_events {
            self.events.push(Event::Created {
                cycle,
                packet,
                src,
                dest,
                flits,
            });
        }
    }

    #[inline]
    fn packet_injected(&mut self, cycle: u32, packet: u32, node: u32, vc: u8) {
        self.packets[packet as usize].injected = cycle;
        if self.cfg.record_events {
            self.events.push(Event::Injected {
                cycle,
                packet,
                node,
                vc,
            });
        }
    }

    #[inline]
    fn header_routed(
        &mut self,
        cycle: u32,
        packet: u32,
        router: u32,
        in_lane: u16,
        out_lane: u16,
        escape: bool,
    ) {
        let t = &mut self.packets[packet as usize];
        t.hops += 1;
        if escape {
            t.escape_hops += 1;
        }
        if self.cfg.record_events {
            self.events.push(Event::Routed {
                cycle,
                packet,
                router,
                in_lane,
                out_lane,
                escape,
            });
        }
    }

    #[inline]
    fn routing_blocked(&mut self, cycle: u32, packet: u32, router: u32, in_lane: u16) {
        self.packets[packet as usize].blocked_attempts += 1;
        if self.cfg.record_events {
            self.events.push(Event::Blocked {
                cycle,
                packet,
                router,
                in_lane,
            });
        }
    }

    #[inline]
    fn link_flit(
        &mut self,
        _cycle: u32,
        _packet: u32,
        router: u32,
        port: u16,
        vc: u8,
        _kind: LinkKind,
    ) {
        let lane = self.out_lane(router as usize, port as usize, vc as usize);
        self.window_out[lane] += 1;
        self.total_out[lane] += 1;
    }

    #[inline]
    fn injection_flit(&mut self, _cycle: u32, _packet: u32, node: u32, vc: u8) {
        self.window_inj[node as usize * self.geo.vcs + vc as usize] += 1;
    }

    #[inline]
    fn packet_delivered(&mut self, cycle: u32, packet: u32, node: u32) {
        let t = &mut self.packets[packet as usize];
        debug_assert_eq!(t.dest, node, "delivered at the routed destination");
        t.delivered = cycle;
        if self.cfg.record_events {
            self.events.push(Event::Delivered {
                cycle,
                packet,
                node,
            });
        }
    }

    #[inline]
    fn fault_transition(&mut self, cycle: u32, router: u32, port: u16, down: bool) {
        self.fault_transitions += 1;
        if self.cfg.record_events {
            self.events.push(Event::Fault {
                cycle,
                router,
                port,
                down,
            });
        }
    }

    #[inline]
    fn packet_dropped(&mut self, cycle: u32, packet: u32, router: u32) {
        self.dropped_packets += 1;
        if self.cfg.record_events {
            self.events.push(Event::Dropped {
                cycle,
                packet,
                router,
            });
        }
    }

    #[inline]
    fn packet_unroutable(&mut self, cycle: u32, packet: u32, node: u32) {
        self.unroutable_packets += 1;
        if self.cfg.record_events {
            self.events.push(Event::Unroutable {
                cycle,
                packet,
                node,
            });
        }
    }

    #[inline]
    fn header_rerouted(&mut self, cycle: u32, packet: u32, router: u32, out_lane: u16) {
        self.rerouted_hops += 1;
        if self.cfg.record_events {
            self.events.push(Event::Rerouted {
                cycle,
                packet,
                router,
                out_lane,
            });
        }
    }

    #[inline]
    fn cycle_end(&mut self, cycle: u32) {
        self.cycles_seen = cycle + 1;
        if (cycle + 1).is_multiple_of(self.cfg.stride) {
            self.samples.push(UtilizationSample {
                end_cycle: cycle + 1,
                out: self.window_out.clone(),
                inj: self.window_inj.clone(),
            });
            self.window_out.fill(0);
            self.window_inj.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry {
            routers: 2,
            ports: 3,
            vcs: 2,
            nodes: 2,
        }
    }

    fn recorder(record_events: bool) -> FlightRecorder {
        FlightRecorder::new(
            TelemetryConfig {
                stride: 10,
                record_events,
            },
            geo(),
        )
    }

    #[test]
    fn breakdown_components_sum_to_total_latency() {
        // Hand-built trace: created 5, injected 12, delivered 40,
        // 3 hops, 8 flits → floor = 3·3 + 8 = 17 network cycles.
        let t = PacketTrace {
            src: 0,
            dest: 1,
            flits: 8,
            created: 5,
            injected: 12,
            delivered: 40,
            hops: 3,
            escape_hops: 1,
            blocked_attempts: 4,
        };
        let b = t.breakdown(7).unwrap();
        assert_eq!(b.src_queue, 7);
        assert_eq!(b.routing, 3);
        assert_eq!(b.transfer, 2 * 3 + 8);
        assert_eq!(b.blocked, (40 - 12) - 3 - 14);
        assert_eq!(b.network(), 40 - 12);
        assert_eq!(b.total(), 40 - 5);
        assert_eq!(
            b.src_queue + b.routing + b.blocked + b.transfer,
            b.total(),
            "components must sum to end-to-end latency"
        );
    }

    #[test]
    fn undelivered_packets_have_no_breakdown() {
        let mut t = PacketTrace {
            src: 0,
            dest: 1,
            flits: 4,
            created: 0,
            injected: NEVER,
            delivered: NEVER,
            hops: 0,
            escape_hops: 0,
            blocked_attempts: 0,
        };
        assert!(t.breakdown(0).is_none());
        t.injected = 3;
        assert!(t.breakdown(0).is_none(), "in flight: still no breakdown");
    }

    #[test]
    #[should_panic(expected = "pipeline floor")]
    fn impossible_latency_panics() {
        let t = PacketTrace {
            src: 0,
            dest: 1,
            flits: 8,
            created: 0,
            injected: 0,
            delivered: 5, // < 3 hops · 3 + 8
            hops: 3,
            escape_hops: 0,
            blocked_attempts: 0,
        };
        let _ = t.breakdown(0);
    }

    #[test]
    fn stride_windows_sample_complete_only() {
        let mut r = recorder(false);
        // 25 cycles at stride 10 → two complete windows, tail dropped.
        for c in 0..25u32 {
            if c < 7 {
                r.link_flit(c, 0, 1, 2, 1, LinkKind::Network);
            }
            r.injection_flit(c, 0, 0, 0);
            r.cycle_end(c);
        }
        assert_eq!(r.samples().len(), 2);
        assert_eq!(r.samples()[0].end_cycle, 10);
        assert_eq!(r.samples()[1].end_cycle, 20);
        // Channel (1,2) carried 7 flits, all in the first window.
        let s = r.channel_series(1, 2);
        assert_eq!(s.points, vec![(10.0, 0.7), (20.0, 0.0)]);
        let lane = r.lane_series(1, 2, 1);
        assert_eq!(lane.points, vec![(10.0, 0.7), (20.0, 0.0)]);
        assert_eq!(
            r.lane_series(1, 2, 0).points,
            vec![(10.0, 0.0), (20.0, 0.0)]
        );
        // Injection channel of node 0 saturated in both windows.
        let inj = r.injection_series(0);
        assert_eq!(inj.points, vec![(10.0, 1.0), (20.0, 1.0)]);
        // Busiest list covers totals including the dropped tail window.
        assert_eq!(r.busiest_channels(4), vec![(1, 2, 7)]);
    }

    #[test]
    fn lifecycle_events_record_in_order() {
        let mut r = recorder(true);
        r.packet_created(1, 0, 0, 1, 4);
        r.packet_injected(3, 0, 0, 1);
        r.header_routed(5, 0, 0, 1, 4, false);
        r.routing_blocked(6, 0, 1, 4);
        r.header_routed(7, 0, 1, 4, 2, true);
        r.packet_delivered(20, 0, 1);
        assert_eq!(r.events().len(), 6);
        assert!(r.events().windows(2).all(|w| w[0].cycle() <= w[1].cycle()));
        let t = r.packet_traces()[0];
        assert_eq!((t.hops, t.escape_hops, t.blocked_attempts), (2, 1, 1));
        assert_eq!((t.created, t.injected, t.delivered), (1, 3, 20));
        // Events off → same trace, empty stream.
        let mut q = recorder(false);
        q.packet_created(1, 0, 0, 1, 4);
        q.packet_injected(3, 0, 0, 1);
        assert!(q.events().is_empty());
        assert_eq!(q.packet_traces()[0].injected, 3);
    }

    #[test]
    fn summary_means_match_hand_sums() {
        let mut r = recorder(false);
        r.packet_created(0, 0, 0, 1, 4);
        r.packet_injected(2, 0, 0, 0);
        r.header_routed(4, 0, 0, 0, 1, false);
        r.packet_delivered(9, 0, 1); // floor 3+4=7, network 7 → blocked 0
        r.packet_created(0, 1, 1, 0, 4);
        r.packet_injected(5, 1, 1, 0);
        r.header_routed(7, 1, 1, 0, 1, false);
        r.packet_delivered(17, 1, 0); // network 12 → blocked 5
        let s = r.breakdown_summary().unwrap();
        assert_eq!(s.packets, 2);
        assert_eq!(s.mean_src_queue, (2.0 + 5.0) / 2.0);
        assert_eq!(s.mean_routing, 1.0);
        assert_eq!(s.mean_blocked, 2.5);
        assert_eq!(s.mean_transfer, 6.0);
        assert_eq!(s.max_blocked, 5);
        assert_eq!(s.mean_total, s.mean_src_queue + s.mean_network);
        let table = r.breakdown_table();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.columns.len(), 11);
    }
}
