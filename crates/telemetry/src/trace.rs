//! Event-stream exporters: JSONL and Chrome `trace_event` JSON.
//!
//! The JSONL format is one object per line, validated in CI against
//! `scripts/trace.schema.json`; the Chrome format loads directly in
//! `about://tracing` / Perfetto (one duration row per source node,
//! cycle stamps mapped to microseconds).

use crate::record::{Event, FlightRecorder};
use crate::NEVER;
use std::fmt::Write as _;

/// Cap on `blocked` instant events emitted into a Chrome trace so a
/// saturated run cannot produce a file the viewer chokes on. The drop
/// count is recorded in a trailing metadata event.
pub const CHROME_MAX_INSTANTS: usize = 100_000;

/// Render one lifecycle event as a single-line JSON object (no
/// trailing newline).
pub fn event_jsonl_line(e: &Event) -> String {
    match *e {
        Event::Created {
            cycle,
            packet,
            src,
            dest,
            flits,
        } => format!(
            "{{\"cycle\":{cycle},\"ev\":\"created\",\"packet\":{packet},\
             \"src\":{src},\"dest\":{dest},\"flits\":{flits}}}"
        ),
        Event::Injected {
            cycle,
            packet,
            node,
            vc,
        } => format!(
            "{{\"cycle\":{cycle},\"ev\":\"injected\",\"packet\":{packet},\
             \"node\":{node},\"vc\":{vc}}}"
        ),
        Event::Routed {
            cycle,
            packet,
            router,
            in_lane,
            out_lane,
            escape,
        } => format!(
            "{{\"cycle\":{cycle},\"ev\":\"routed\",\"packet\":{packet},\
             \"router\":{router},\"in_lane\":{in_lane},\"out_lane\":{out_lane},\
             \"escape\":{escape}}}"
        ),
        Event::Blocked {
            cycle,
            packet,
            router,
            in_lane,
        } => format!(
            "{{\"cycle\":{cycle},\"ev\":\"blocked\",\"packet\":{packet},\
             \"router\":{router},\"in_lane\":{in_lane}}}"
        ),
        Event::Delivered {
            cycle,
            packet,
            node,
        } => format!(
            "{{\"cycle\":{cycle},\"ev\":\"delivered\",\"packet\":{packet},\
             \"node\":{node}}}"
        ),
        Event::Fault {
            cycle,
            router,
            port,
            down,
        } => format!(
            "{{\"cycle\":{cycle},\"ev\":\"fault\",\"router\":{router},\
             \"port\":{port},\"down\":{down}}}"
        ),
        Event::Dropped {
            cycle,
            packet,
            router,
        } => format!(
            "{{\"cycle\":{cycle},\"ev\":\"dropped\",\"packet\":{packet},\
             \"router\":{router}}}"
        ),
        Event::Unroutable {
            cycle,
            packet,
            node,
        } => format!(
            "{{\"cycle\":{cycle},\"ev\":\"unroutable\",\"packet\":{packet},\
             \"node\":{node}}}"
        ),
        Event::Rerouted {
            cycle,
            packet,
            router,
            out_lane,
        } => format!(
            "{{\"cycle\":{cycle},\"ev\":\"rerouted\",\"packet\":{packet},\
             \"router\":{router},\"out_lane\":{out_lane}}}"
        ),
    }
}

/// Render the whole event stream as JSONL (one event per line,
/// trailing newline; empty string for an empty stream).
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_jsonl_line(e));
        out.push('\n');
    }
    out
}

/// Render a recording as Chrome `trace_event` JSON.
///
/// Layout: pid 0 holds one row (tid) per source node with two `"X"`
/// duration events per delivered packet — `queued` (creation to
/// injection) and `p<id> → <dest>` (injection to delivery) — so the
/// viewer shows queueing and network time side by side. When the
/// lifecycle stream was recorded, pid 1 holds per-router `blocked`
/// instants (capped at [`CHROME_MAX_INSTANTS`]). Cycle stamps map to
/// microseconds, the viewer's native unit.
pub fn chrome_trace(rec: &FlightRecorder) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
         \"args\":{\"name\":\"packets (row = source node)\"}}",
    );
    if rec.config().record_events {
        out.push_str(
            ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
             \"args\":{\"name\":\"routers (blocked headers)\"}}",
        );
    }
    for (id, t) in rec.packet_traces().iter().enumerate() {
        if t.injected == NEVER || t.delivered == NEVER {
            continue;
        }
        let b = t.breakdown(id as u32).expect("delivered packet decomposes");
        let _ = write!(
            out,
            ",\n{{\"name\":\"queued\",\"cat\":\"queue\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"packet\":{id},\"dest\":{}}}}}",
            t.created, b.src_queue, t.src, t.dest
        );
        let _ = write!(
            out,
            ",\n{{\"name\":\"p{id} \\u2192 n{}\",\"cat\":\"network\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"packet\":{id},\"dest\":{},\"hops\":{},\"flits\":{},\
             \"blocked_cycles\":{},\"escape_hops\":{}}}}}",
            t.dest,
            t.injected,
            b.network(),
            t.src,
            t.dest,
            t.hops,
            t.flits,
            b.blocked,
            t.escape_hops
        );
    }
    let mut instants = 0usize;
    let mut dropped = 0usize;
    for e in rec.events() {
        // Instant rows on pid 1: routing stalls plus the fault plane's
        // lifecycle (outage transitions and packet drops), all subject
        // to the same cap.
        let (name, cat, cycle, router) = match *e {
            Event::Blocked { cycle, router, .. } => ("blocked", "routing", cycle, router),
            Event::Fault {
                cycle,
                router,
                down,
                ..
            } => (
                if down { "fault_down" } else { "fault_up" },
                "fault",
                cycle,
                router,
            ),
            Event::Dropped { cycle, router, .. } => ("packet_dropped", "fault", cycle, router),
            _ => continue,
        };
        if instants >= CHROME_MAX_INSTANTS {
            dropped += 1;
            continue;
        }
        instants += 1;
        let _ = write!(
            out,
            ",\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\
             \"s\":\"t\",\"ts\":{cycle},\"pid\":1,\"tid\":{router}}}"
        );
    }
    if dropped > 0 {
        let _ = write!(
            out,
            ",\n{{\"name\":\"blocked_instants_dropped\",\"ph\":\"M\",\"pid\":1,\
             \"args\":{{\"dropped\":{dropped}}}}}"
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Probe;
    use crate::{Geometry, TelemetryConfig};

    fn tiny_recording() -> FlightRecorder {
        let mut r = FlightRecorder::new(
            TelemetryConfig {
                stride: 10,
                record_events: true,
            },
            Geometry {
                routers: 2,
                ports: 3,
                vcs: 2,
                nodes: 2,
            },
        );
        r.packet_created(0, 0, 0, 1, 4);
        r.packet_injected(2, 0, 0, 0);
        r.header_routed(4, 0, 0, 0, 1, false);
        r.routing_blocked(5, 0, 1, 1);
        r.header_routed(6, 0, 1, 1, 2, true);
        r.packet_delivered(15, 0, 1);
        r.packet_created(3, 1, 1, 0, 4); // never delivered
        r
    }

    #[test]
    fn jsonl_lines_cover_every_event_kind() {
        let r = tiny_recording();
        let jsonl = events_jsonl(r.events());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), r.events().len());
        assert_eq!(
            lines[0],
            "{\"cycle\":0,\"ev\":\"created\",\"packet\":0,\"src\":0,\"dest\":1,\"flits\":4}"
        );
        assert_eq!(
            lines[1],
            "{\"cycle\":2,\"ev\":\"injected\",\"packet\":0,\"node\":0,\"vc\":0}"
        );
        assert_eq!(
            lines[2],
            "{\"cycle\":4,\"ev\":\"routed\",\"packet\":0,\"router\":0,\
             \"in_lane\":0,\"out_lane\":1,\"escape\":false}"
        );
        assert_eq!(
            lines[3],
            "{\"cycle\":5,\"ev\":\"blocked\",\"packet\":0,\"router\":1,\"in_lane\":1}"
        );
        assert_eq!(
            lines[5],
            "{\"cycle\":15,\"ev\":\"delivered\",\"packet\":0,\"node\":1}"
        );
        assert!(events_jsonl(&[]).is_empty());
    }

    #[test]
    fn chrome_trace_is_wellformed_and_skips_undelivered() {
        let trace = chrome_trace(&tiny_recording());
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.trim_end().ends_with('}'));
        // Two duration events for the delivered packet, none for the
        // undelivered one, one blocked instant.
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(trace.matches("\"ph\":\"i\"").count(), 1);
        assert_eq!(trace.matches("\"packet\":1").count(), 0);
        // network duration = delivered - injected.
        assert!(trace.contains("\"ts\":2,\"dur\":13"));
        // Balanced braces/brackets — cheap well-formedness proxy used
        // alongside the real JSON parse in scripts/verify.sh.
        let opens = trace.matches('{').count();
        let closes = trace.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    }
}
