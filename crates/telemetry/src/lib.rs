//! # telemetry — observability plane for the wormhole simulator
//!
//! The paper's headline claims are about *where* time goes — routing vs.
//! blocking vs. link transfer — yet counters alone only show end-to-end
//! bandwidth and mean latency. This crate adds a probe layer that watches
//! the engine without perturbing it:
//!
//! * [`Probe`] — a trait the engine calls at its seven observable points
//!   (packet created, head flit injected, header routed, header blocked,
//!   flit crosses a link, tail ejected, cycle end). Every method has an
//!   inlined empty default, so the engine monomorphized over [`NullProbe`]
//!   compiles to the exact pre-telemetry hot path: zero overhead when off.
//! * [`FlightRecorder`] — a recording probe that derives, per packet, the
//!   four-way latency decomposition ([`LatencyBreakdown`]: source
//!   queueing, routing decisions, blocked cycles, link/crossbar transfer;
//!   the components sum exactly to the end-to-end latency), per-channel
//!   and per-virtual-lane utilization time series sampled at a fixed
//!   stride, and an optional packet-lifecycle [`Event`] stream.
//! * [`trace`] — exporters for the event stream: JSONL (one object per
//!   line, schema in `scripts/trace.schema.json`) and Chrome
//!   `trace_event` JSON loadable in `about://tracing`.
//!
//! The recorder never touches simulation state or RNGs; enabling it
//! cannot change any counter, seed, or golden number.
//!
//! ## Example
//!
//! The recorder is just a [`Probe`]; anything that calls the probe
//! methods — normally the engine — feeds it:
//!
//! ```
//! use telemetry::{FlightRecorder, Geometry, Probe, TelemetryConfig};
//!
//! let geo = Geometry { routers: 4, ports: 6, vcs: 2, nodes: 8 };
//! let mut rec = FlightRecorder::new(TelemetryConfig::default(), geo);
//! rec.packet_created(0, /*packet*/ 0, /*src*/ 1, /*dest*/ 5, /*flits*/ 4);
//! assert_eq!(rec.events().len(), 1);
//! ```

#![warn(missing_docs)]

mod probe;
mod record;
pub mod trace;

pub use probe::{LinkKind, NullProbe, Probe};
pub use record::{
    BreakdownSummary, Event, FlightRecorder, LatencyBreakdown, PacketTrace, UtilizationSample,
};

/// Cycle-stamp sentinel: "has not happened yet".
///
/// Matches the engine's own `NEVER` stamp for unset `injected` /
/// `delivered` fields.
pub const NEVER: u32 = u32::MAX;

/// What to record and how often to sample utilization windows.
///
/// `Copy` + `PartialEq` so scenarios stay cheaply cloneable and
/// comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Utilization sampling stride in cycles: each complete window of
    /// this many cycles becomes one point in the per-channel series.
    /// A trailing partial window is dropped so every sample covers the
    /// same denominator. Must be ≥ 1.
    pub stride: u32,
    /// Keep the per-packet lifecycle [`Event`] stream (needed for the
    /// JSONL / Chrome exports). Latency decomposition and utilization
    /// series work either way; leave this off for cheap bulk runs.
    pub record_events: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            stride: 100,
            record_events: true,
        }
    }
}

/// Static shape of the network being observed, used to size the
/// utilization counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    /// Number of routers.
    pub routers: usize,
    /// Maximum ports per router (the wiring's port stride).
    pub ports: usize,
    /// Virtual channels per physical port.
    pub vcs: usize,
    /// Number of end nodes.
    pub nodes: usize,
}

impl Geometry {
    /// Directed router-output channels tracked (`routers × ports`); each
    /// expands into `vcs` virtual lanes.
    pub fn channels(&self) -> usize {
        self.routers * self.ports
    }
}
