//! The [`Probe`] trait and the zero-cost [`NullProbe`].

/// Which kind of channel a flit just crossed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Router-to-router network channel.
    Network,
    /// Router-to-node ejection channel.
    Ejection,
}

/// Observer interface the engine invokes at its observable points.
///
/// The engine is generic over `P: Probe` with [`NullProbe`] as the
/// default, so the untraced build monomorphizes every call below to an
/// inlined empty body — the compiled hot path is identical to an engine
/// without the probe layer (pinned by `bench_engine`).
///
/// Contract for implementors: a probe is a pure observer. It must not
/// panic on well-formed input and it receives no handle back into the
/// engine, so it *cannot* perturb simulation state, RNG draws, or
/// arbitration order. Packet ids arrive in creation order and are dense
/// (`0, 1, 2, …`), including request/reply traffic.
pub trait Probe {
    /// A packet record was created (entered the source queue), or — for
    /// request/reply traffic — a reply was spawned at the destination.
    #[inline(always)]
    fn packet_created(&mut self, cycle: u32, packet: u32, src: u32, dest: u32, flits: u16) {
        let _ = (cycle, packet, src, dest, flits);
    }

    /// The head flit left the source queue and was committed to an
    /// injection lane (`vc`) of node `node`.
    #[inline(always)]
    fn packet_injected(&mut self, cycle: u32, packet: u32, node: u32, vc: u8) {
        let _ = (cycle, packet, node, vc);
    }

    /// A header won the routing decision at `router`, moving from input
    /// lane `in_lane` to output lane `out_lane` (dense lane indices,
    /// `port * vcs + vc`). `escape` is true when the adaptive router had
    /// to fall back to its escape/deterministic lane class.
    #[inline(always)]
    fn header_routed(
        &mut self,
        cycle: u32,
        packet: u32,
        router: u32,
        in_lane: u16,
        out_lane: u16,
        escape: bool,
    ) {
        let _ = (cycle, packet, router, in_lane, out_lane, escape);
    }

    /// A header presented to the routing phase found no admissible
    /// output this cycle (all candidate lanes busy or out of credit).
    #[inline(always)]
    fn routing_blocked(&mut self, cycle: u32, packet: u32, router: u32, in_lane: u16) {
        let _ = (cycle, packet, router, in_lane);
    }

    /// A flit crossed the channel leaving `router` through `port` on
    /// virtual lane `vc` (network hop or ejection, per `kind`).
    #[inline(always)]
    fn link_flit(
        &mut self,
        cycle: u32,
        packet: u32,
        router: u32,
        port: u16,
        vc: u8,
        kind: LinkKind,
    ) {
        let _ = (cycle, packet, router, port, vc, kind);
    }

    /// A flit crossed the injection channel from node `node` into its
    /// router on virtual lane `vc`.
    #[inline(always)]
    fn injection_flit(&mut self, cycle: u32, packet: u32, node: u32, vc: u8) {
        let _ = (cycle, packet, node, vc);
    }

    /// The tail flit was ejected at destination node `node`; the packet
    /// is delivered.
    #[inline(always)]
    fn packet_delivered(&mut self, cycle: u32, packet: u32, node: u32) {
        let _ = (cycle, packet, node);
    }

    /// All four phases of `cycle` have run; the engine is about to
    /// advance the clock. Fixed-stride samplers hook here.
    #[inline(always)]
    fn cycle_end(&mut self, cycle: u32) {
        let _ = cycle;
    }

    /// Fault plane: the undirected link leaving `router` through `port`
    /// transitioned (`down` = outage began, `!down` = repaired).
    /// Reported once per link, on its canonical direction. Defaulted to
    /// a no-op so existing probes keep compiling.
    #[inline(always)]
    fn fault_transition(&mut self, cycle: u32, router: u32, port: u16, down: bool) {
        let _ = (cycle, router, port, down);
    }

    /// Fault plane: the packet's header found every admissible
    /// direction at `router` permanently dead; the packet is dropped
    /// and its flits will be drained.
    #[inline(always)]
    fn packet_dropped(&mut self, cycle: u32, packet: u32, router: u32) {
        let _ = (cycle, packet, router);
    }

    /// Fault plane: the packet was abandoned at source node `node`
    /// because its source or destination node is dead.
    #[inline(always)]
    fn packet_unroutable(&mut self, cycle: u32, packet: u32, node: u32) {
        let _ = (cycle, packet, node);
    }

    /// Fault plane: a header was routed at `router` while at least one
    /// of its candidate directions was down — the route taken is a
    /// degraded-mode detour.
    #[inline(always)]
    fn header_rerouted(&mut self, cycle: u32, packet: u32, router: u32, out_lane: u16) {
        let _ = (cycle, packet, router, out_lane);
    }
}

/// The do-nothing probe: the engine's default type parameter.
///
/// Unit struct, all methods inherited as inlined no-ops — an
/// `Engine<_, A, NullProbe>` is the pre-telemetry engine, bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}
