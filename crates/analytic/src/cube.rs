//! An Agarwal-style contention model of wormhole k-ary n-cubes.
//!
//! Assumptions (all standard in the analytic literature the paper
//! pushes back against):
//!
//! * uniform traffic, perfectly balanced over the torus channels (true
//!   for dimension-balanced routing with a fair half-ring tie-break);
//! * Poisson worm arrivals at every channel, independence between
//!   channels (Kleinrock's independence approximation);
//! * a channel serves a whole worm in `L` cycles (deterministic
//!   service → M/D/1 waiting);
//! * no virtual-channel multiplexing, no head-of-line blocking, no
//!   credit stalls.
//!
//! The router pipeline constants mirror the simulator (and Section 5 of
//! the paper, with every stage equalized to one cycle): a header pays
//! routing + crossbar + link per router, a worm streams at one flit per
//! cycle behind it.

use topology::KAryNCube;

/// Closed-form model of a wormhole k-ary n-cube under uniform traffic.
///
/// ```
/// use analytic::CubeModel;
///
/// let model = CubeModel::new(16, 2, 16);
/// assert_eq!(model.mean_distance(), 8.0);
/// // The simplistic prediction: saturation at 100% of capacity.
/// assert!((model.saturation_fraction() - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct CubeModel {
    cube: KAryNCube,
    flits_per_packet: usize,
}

/// Pipeline stages a header pays per router (routing, crossbar, link).
const HEAD_STAGES_PER_ROUTER: f64 = 3.0;

impl CubeModel {
    /// Model a `k`-ary `n`-cube carrying `flits_per_packet`-flit worms.
    pub fn new(k: usize, n: usize, flits_per_packet: usize) -> Self {
        assert!(flits_per_packet >= 1);
        CubeModel {
            cube: KAryNCube::new(k, n),
            flits_per_packet,
        }
    }

    /// The modelled topology.
    pub fn cube(&self) -> &KAryNCube {
        &self.cube
    }

    /// Mean router-to-router hop distance under uniform traffic
    /// (self-pairs included): `n k / 4` for even `k`.
    pub fn mean_distance(&self) -> f64 {
        self.cube.mean_hop_distance()
    }

    /// Zero-load network latency in cycles for a packet travelling `d`
    /// router-to-router hops: one injection-link cycle, three pipeline
    /// stages in each of the `d + 1` routers traversed, and `L - 1`
    /// serialization cycles for the tail.
    pub fn zero_load_latency_for_distance(&self, d: usize) -> f64 {
        1.0 + HEAD_STAGES_PER_ROUTER * (d as f64 + 1.0) + (self.flits_per_packet as f64 - 1.0)
    }

    /// Mean zero-load latency under uniform traffic.
    pub fn zero_load_latency(&self) -> f64 {
        self.zero_load_latency_for_distance(0) + HEAD_STAGES_PER_ROUTER * self.mean_distance()
    }

    /// Utilization of a (perfectly balanced) torus channel at the given
    /// fraction of the paper's capacity (`8/k` flits/node/cycle).
    ///
    /// Flit conservation: `N * lambda * mean_distance` flit-hops per
    /// cycle spread over `2 n N` unidirectional channels. For `n = 2`
    /// this reaches 1.0 exactly at the bisection-derived capacity —
    /// the two bounds coincide, which is why the paper's footnote works.
    pub fn channel_utilization(&self, fraction_of_capacity: f64) -> f64 {
        let lambda = fraction_of_capacity * self.cube.uniform_capacity_flits_per_cycle();
        lambda * self.mean_distance() / (2.0 * self.cube.n() as f64)
    }

    /// Predicted mean network latency in cycles at the given load:
    /// zero-load latency plus an M/D/1 waiting time (service = one worm)
    /// at each of the `mean_distance + 1` routers. Diverges at the
    /// load where channel utilization reaches 1 — i.e. this model
    /// predicts saturation at ~100% of capacity, which the flit-level
    /// simulation (and the paper) show to be wildly optimistic.
    pub fn predicted_latency(&self, fraction_of_capacity: f64) -> f64 {
        let rho = self.channel_utilization(fraction_of_capacity);
        let per_hop = crate::queueing::md1_wait(rho, self.flits_per_packet as f64);
        self.zero_load_latency() + (self.mean_distance() + 1.0) * per_hop
    }

    /// The load fraction at which this model predicts saturation
    /// (channel utilization = 1).
    pub fn saturation_fraction(&self) -> f64 {
        // rho = f * cap * D / (2n) = 1
        let cap = self.cube.uniform_capacity_flits_per_cycle();
        (2.0 * self.cube.n() as f64) / (cap * self.mean_distance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> CubeModel {
        CubeModel::new(16, 2, 16)
    }

    #[test]
    fn mean_distance_paper_cube() {
        assert!((paper().mean_distance() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn zero_load_latency_matches_engine_pipeline() {
        // The engine's hand-checked single-packet latencies: a 2-ary
        // 1-cube packet 0 -> 1 (one router hop) takes F + 6 cycles.
        let m = CubeModel::new(2, 1, 4);
        assert!((m.zero_load_latency_for_distance(1) - 10.0).abs() < 1e-12);
        // Paper cube: ~45 cycles at the mean distance with 16 flits.
        let z = paper().zero_load_latency();
        assert!((z - 43.0).abs() < 1.0, "{z}");
    }

    #[test]
    fn utilization_reaches_one_at_capacity() {
        let m = paper();
        assert!((m.channel_utilization(1.0) - 1.0).abs() < 1e-12);
        assert!((m.channel_utilization(0.5) - 0.5).abs() < 1e-12);
        assert!((m.saturation_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_grows_monotonically_and_diverges() {
        let m = paper();
        let l1 = m.predicted_latency(0.2);
        let l2 = m.predicted_latency(0.6);
        let l3 = m.predicted_latency(0.95);
        assert!(l1 < l2 && l2 < l3);
        assert!(m.predicted_latency(1.0).is_infinite());
        // At 20% load the contention penalty is mild (< 50% over zero load).
        assert!(l1 < 1.5 * m.zero_load_latency());
    }

    #[test]
    fn odd_radix_distance() {
        let m = CubeModel::new(5, 3, 16);
        // Per-dimension mean min(d, 5-d) over d in 0..5 = (0+1+2+2+1)/5.
        assert!((m.mean_distance() - 3.0 * 6.0 / 5.0).abs() < 1e-12);
    }
}
