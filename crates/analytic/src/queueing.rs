//! Elementary queueing formulas used by the network models.
//!
//! Channels are modelled as single servers fed by (approximately)
//! Poisson flit arrivals. A wormhole channel transmits a fixed-length
//! worm, so deterministic service (M/D/1) is the natural first-order
//! model; M/M/1 is provided for comparison (it overestimates waiting by
//! up to 2x at high utilization and brackets the truth from above).

/// Mean waiting time in an M/M/1 queue with utilization `rho` and mean
/// service time `service`. Returns `f64::INFINITY` at or beyond
/// saturation.
///
/// `W = rho * S / (1 - rho)`
pub fn mm1_wait(rho: f64, service: f64) -> f64 {
    assert!(rho >= 0.0 && service >= 0.0);
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    rho * service / (1.0 - rho)
}

/// Mean waiting time in an M/D/1 queue (deterministic service) with
/// utilization `rho` and service time `service` — the
/// Pollaczek–Khinchine formula with zero service variance:
///
/// `W = rho * S / (2 (1 - rho))`
pub fn md1_wait(rho: f64, service: f64) -> f64 {
    assert!(rho >= 0.0 && service >= 0.0);
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    rho * service / (2.0 * (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md1_is_half_of_mm1() {
        for rho in [0.1, 0.5, 0.9] {
            let (d, m) = (md1_wait(rho, 8.0), mm1_wait(rho, 8.0));
            assert!((d * 2.0 - m).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_load_means_zero_wait() {
        assert_eq!(md1_wait(0.0, 16.0), 0.0);
        assert_eq!(mm1_wait(0.0, 16.0), 0.0);
    }

    #[test]
    fn saturation_diverges() {
        assert!(md1_wait(1.0, 1.0).is_infinite());
        assert!(mm1_wait(1.2, 1.0).is_infinite());
        // Approaching saturation grows without bound.
        assert!(md1_wait(0.999, 1.0) > md1_wait(0.99, 1.0) * 5.0);
    }

    #[test]
    fn wait_scales_linearly_with_service() {
        assert!((md1_wait(0.5, 32.0) - 2.0 * md1_wait(0.5, 16.0)).abs() < 1e-12);
    }
}
