//! Closed-form performance models for the two network families.
//!
//! The paper's motivation (Section 1) is that "theoretical models of
//! the interconnection network often prove overly simplistic and are
//! not able to capture important performance aspects" — citing the
//! comparison literature (\[16\], \[17\]) and building its own Section 5
//! normalization on Agarwal's physical-constraint analysis (\[18\],
//! *Limits on Interconnection Network Performance*). To reproduce that
//! argument, and to provide a sanity baseline for the simulator, this
//! crate implements the standard open-network queueing models:
//!
//! * [`queueing`] — M/M/1 and M/D/1 waiting-time formulas;
//! * [`cube::CubeModel`] — an Agarwal-style contention model of
//!   wormhole k-ary n-cubes under uniform traffic;
//! * [`tree::TreeModel`] — the analogous model for k-ary n-trees.
//!
//! The models predict zero-load latency almost exactly, track the
//! simulator at low and moderate loads, and — exactly as the paper
//! claims — fail near saturation, where flow control, virtual-channel
//! multiplexing and head-of-line blocking dominate. The
//! `model_vs_simulation` example and the `analytic_baselines`
//! integration test quantify both the agreement and the breakdown.

#![warn(missing_docs)]
pub mod cube;
pub mod queueing;
pub mod tree;

pub use cube::CubeModel;
pub use queueing::{md1_wait, mm1_wait};
pub use tree::TreeModel;
