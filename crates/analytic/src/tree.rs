//! The analogous closed-form model for k-ary n-trees.
//!
//! Uniform traffic on a k-ary n-tree is characterized entirely by the
//! distribution of the nearest-common-ancestor level: a destination
//! shares an address prefix of length exactly `m` with the source with
//! probability `(k-1) k^(n-1-m) / (N-1)` (for `m < n`, excluding the
//! source itself), travels `2 (n - m)` links, and loads every
//! level-boundary it crosses. Channel utilizations follow from flit
//! conservation, waiting times from M/D/1, saturation from the most
//! loaded stage — which for uniform traffic is the injection link, so
//! the model predicts saturation at 100% of capacity. Figure 5 of the
//! paper (reproduced by this crate's simulator counterpart) shows the
//! real saturation at 36–72% depending on virtual channels: the
//! difference is exactly the flow-control behaviour these models omit.

use topology::{KAryNTree, Topology};

/// Closed-form model of a wormhole k-ary n-tree under uniform traffic.
#[derive(Clone, Debug)]
pub struct TreeModel {
    tree: KAryNTree,
    flits_per_packet: usize,
}

/// Pipeline stages a header pays per switch (routing, crossbar, link).
const HEAD_STAGES_PER_SWITCH: f64 = 3.0;

impl TreeModel {
    /// Model a `k`-ary `n`-tree carrying `flits_per_packet`-flit worms.
    pub fn new(k: usize, n: usize, flits_per_packet: usize) -> Self {
        assert!(flits_per_packet >= 1);
        TreeModel {
            tree: KAryNTree::new(k, n),
            flits_per_packet,
        }
    }

    /// The modelled topology.
    pub fn tree(&self) -> &KAryNTree {
        &self.tree
    }

    /// Probability that a uniform destination (excluding the source)
    /// has NCA level exactly `m` with the source, `0 <= m < n`.
    pub fn nca_level_probability(&self, m: usize) -> f64 {
        let k = self.tree.k() as f64;
        let n = self.tree.n();
        assert!(m < n);
        let total = self.tree.num_nodes() as f64 - 1.0;
        if m == n - 1 {
            (k - 1.0) / total
        } else {
            (k - 1.0) * k.powi((n - 1 - m) as i32 - 1) * k / total
        }
    }

    /// Mean distance in links under uniform traffic (self excluded):
    /// `sum_m P(m) * 2 (n - m)`.
    pub fn mean_distance(&self) -> f64 {
        (0..self.tree.n())
            .map(|m| self.nca_level_probability(m) * 2.0 * (self.tree.n() - m) as f64)
            .sum()
    }

    /// Zero-load latency in cycles for a packet travelling `d` links
    /// (`d = 2 (n - m)`): the injection link plus three stages in each
    /// of the `d - 1` switches plus tail serialization.
    pub fn zero_load_latency_for_distance(&self, d: usize) -> f64 {
        assert!(d >= 2, "minimum route is node-switch-node");
        1.0 + HEAD_STAGES_PER_SWITCH * (d as f64 - 1.0) + (self.flits_per_packet as f64 - 1.0)
    }

    /// Mean zero-load latency under uniform traffic.
    pub fn zero_load_latency(&self) -> f64 {
        (0..self.tree.n())
            .map(|m| {
                self.nca_level_probability(m)
                    * self.zero_load_latency_for_distance(2 * (self.tree.n() - m))
            })
            .sum()
    }

    /// Utilization of one up (or, symmetrically, down) channel at the
    /// boundary between levels `l+1` and `l` (0 = root level), at the
    /// given fraction of capacity. There are `k^n` channels per
    /// direction per boundary; a packet crosses the boundary iff its
    /// NCA level is `<= l`.
    pub fn boundary_utilization(&self, l: usize, fraction_of_capacity: f64) -> f64 {
        let lambda = fraction_of_capacity; // capacity = 1 flit/cycle/node
        let p_cross: f64 = (0..=l.min(self.tree.n() - 1))
            .map(|m| self.nca_level_probability(m))
            .sum();
        lambda * p_cross
    }

    /// Predicted mean network latency in cycles at the given load:
    /// zero-load latency plus M/D/1 waiting at the injection link and
    /// at every boundary crossed (up and down), weighted by the NCA
    /// distribution.
    pub fn predicted_latency(&self, fraction_of_capacity: f64) -> f64 {
        let worm = self.flits_per_packet as f64;
        let inj_wait = crate::queueing::md1_wait(fraction_of_capacity, worm);
        let n = self.tree.n();
        let mut latency = self.zero_load_latency() + inj_wait;
        for m in 0..n {
            let p = self.nca_level_probability(m);
            // A packet with NCA level m crosses boundaries m..n-1 going
            // up and again going down.
            let mut wait = 0.0;
            for l in m..n - 1 {
                wait += 2.0
                    * crate::queueing::md1_wait(
                        self.boundary_utilization(l, fraction_of_capacity),
                        worm,
                    );
            }
            latency += p * wait;
        }
        latency
    }

    /// The load fraction at which this model predicts saturation: the
    /// most loaded stage is the injection link (utilization = load),
    /// so the prediction is 100% — the "simplistic" answer the paper's
    /// simulation refutes for every flow-control variant but the
    /// congestion-free patterns.
    pub fn saturation_fraction(&self) -> f64 {
        let worst_boundary = (0..self.tree.n() - 1)
            .map(|l| self.boundary_utilization(l, 1.0))
            .fold(0.0f64, f64::max);
        1.0 / worst_boundary.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> TreeModel {
        TreeModel::new(4, 4, 32)
    }

    #[test]
    fn nca_probabilities_sum_to_one() {
        let m = paper();
        let total: f64 = (0..4).map(|l| m.nca_level_probability(l)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // m = 0: 192 of 255 destinations; m = 3: 3 of 255.
        assert!((m.nca_level_probability(0) - 192.0 / 255.0).abs() < 1e-12);
        assert!((m.nca_level_probability(3) - 3.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn mean_distance_matches_brute_force() {
        let m = TreeModel::new(3, 3, 8);
        let tree = m.tree().clone();
        use topology::{NodeId, Topology};
        let n = tree.num_nodes();
        let total: usize = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| tree.min_distance(NodeId(a as u32), NodeId(b as u32)))
            .sum();
        let brute = total as f64 / (n * (n - 1)) as f64;
        assert!((m.mean_distance() - brute).abs() < 1e-12);
    }

    #[test]
    fn zero_load_latency_matches_engine_pipeline() {
        // Hand-checked engine latency on the 2-ary 1-tree: F + 3 for a
        // distance-2 route.
        let m = TreeModel::new(2, 1, 4);
        assert!((m.zero_load_latency_for_distance(2) - 7.0).abs() < 1e-12);
        // Paper tree: low-50s cycles mean at zero load with 32 flits
        // (Figure 5 b's curves start around 55).
        let z = paper().zero_load_latency();
        assert!((48.0..58.0).contains(&z), "{z}");
    }

    #[test]
    fn boundaries_load_towards_the_leaves_but_never_exceed_injection() {
        // Every packet crosses the leaf-adjacent boundary; only the
        // longest routes reach the root level — so per-channel
        // utilization *decreases* towards the root (there are k^n
        // channels per boundary at every level: the fatness exactly
        // compensates the concentration).
        let m = paper();
        let mut last = 0.0;
        for l in 0..3 {
            let rho = m.boundary_utilization(l, 1.0);
            assert!(rho >= last, "boundary {l}: {rho} < {last}");
            last = rho;
        }
        assert!(last <= 1.0 + 1e-12);
        assert!((m.saturation_fraction() - 1.0).abs() < 0.01);
    }

    #[test]
    fn latency_monotone_in_load() {
        let m = paper();
        assert!(m.predicted_latency(0.2) < m.predicted_latency(0.7));
        assert!(m.predicted_latency(0.7) < m.predicted_latency(0.97));
    }
}
