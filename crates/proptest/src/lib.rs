//! Minimal offline stand-in for the `proptest` crate.
//!
//! This workspace pins no registry access at build time, so the subset
//! of the proptest API used by the test suite is reimplemented here:
//! the [`proptest!`] macro, integer-range and [`any`] strategies, and
//! the `prop_assert*` / [`prop_assume!`] macros. Failing cases report
//! the generated inputs but are **not shrunk** — keep generated spaces
//! small enough that raw counterexamples are readable.
//!
//! Case generation is deterministic: a fixed splitmix64 stream seeded
//! from the case index, so failures reproduce across runs and machines.

/// Runtime configuration of one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs out; try another case.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (filtered inputs).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// A failure (violated property).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 stream used to generate case inputs.
pub struct TestRng(u64);

impl TestRng {
    /// Stream seeded for one (property, case) pair.
    pub fn for_case(case: u64) -> Self {
        TestRng(case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5DEECE66D)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A value generator. The stand-in keeps proptest's name but samples
/// directly (no shrink trees).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generate any value of `T` (the types the test suite needs).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types [`any`] can produce.
pub trait Arbitrary {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
    }
}

/// Drive one property: run `config.cases` accepted cases, tolerating a
/// bounded number of `prop_assume!` rejections.
pub fn run_cases(config: ProptestConfig, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let max_rejects = (config.cases as u64) * 64 + 1024;
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let mut stream = 0u64;
    while accepted < config.cases {
        let mut rng = TestRng::for_case(stream);
        stream += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "too many prop_assume! rejections ({rejected}); loosen the strategy"
                );
            }
            // `proptest!` panics inside the case with full input context;
            // an Err(Fail) can only reach here from hand-rolled cases.
            Err(TestCaseError::Fail(msg)) => panic!("property failed: {msg}"),
        }
    }
}

/// Define property tests. Mirrors proptest's block form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..10, seed in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                    let __inputs = {
                        let mut __s = String::new();
                        $(
                            __s.push_str(concat!(stringify!($arg), " = "));
                            __s.push_str(&format!("{:?}, ", &$arg));
                        )*
                        __s
                    };
                    let __outcome: $crate::TestCaseResult =
                        (move || -> $crate::TestCaseResult { $body Ok(()) })();
                    if let Err($crate::TestCaseError::Fail(__msg)) = __outcome {
                        panic!(
                            "property {} failed: {}\n  inputs: {}(no shrinking)",
                            stringify!($name),
                            __msg,
                            __inputs
                        );
                    }
                    __outcome
                });
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n  right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 1u32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }

        #[test]
        fn any_tuples_differ(a in any::<(u64, u64)>(), b in any::<u64>(), c in any::<bool>()) {
            // Smoke: values are generated and usable.
            let _ = (a.0 ^ a.1 ^ b, c);
            prop_assert!(true);
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::for_case(5);
        let mut b = crate::TestRng::for_case(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        always_fails();
    }
}
