//! k-ary n-cubes (tori) — the direct-network family of the paper.
//!
//! A k-ary n-cube has `k^n` nodes arranged in an `n`-dimensional grid with
//! `k` nodes per dimension and wrap-around connections. Every node hosts a
//! routing chip, so `RouterId(i)` is co-located with `NodeId(i)`.
//!
//! ## Port convention
//!
//! Router `r` has `2n + 1` ports:
//! * port `2d` — the **plus** direction of dimension `d` (towards
//!   coordinate `(c_d + 1) mod k`),
//! * port `2d + 1` — the **minus** direction of dimension `d`,
//! * port `2n` — the local processing node.
//!
//! Dimension `0` is the least-significant coordinate: node `x` has
//! coordinate `c_d = (x / k^d) mod k`. (Note this is the opposite
//! convention to the most-significant-first *address digits* used by the
//! traffic patterns and by [`crate::Digits`]; coordinates are a property
//! of the physical grid, digits of the logical benchmark labelling, and
//! the paper uses both.)

use crate::graph::{PortPeer, PortRef, Topology};
use crate::ids::{NodeId, RouterId};

/// One of the two travel directions within a dimension of a torus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// Towards increasing coordinate (with wraparound `k-1 -> 0`).
    Plus,
    /// Towards decreasing coordinate (with wraparound `0 -> k-1`).
    Minus,
}

impl Sign {
    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// A (dimension, sign) pair identifying one of the `2n` router directions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CubeDirection {
    /// Dimension index, `0..n` (0 = least-significant coordinate).
    pub dim: usize,
    /// Travel direction within the dimension.
    pub sign: Sign,
}

impl CubeDirection {
    /// The router port carrying this direction.
    #[inline]
    pub fn port(self) -> usize {
        2 * self.dim
            + match self.sign {
                Sign::Plus => 0,
                Sign::Minus => 1,
            }
    }

    /// Inverse of [`CubeDirection::port`]; `None` for the node port.
    #[inline]
    pub fn from_port(port: usize, n: usize) -> Option<CubeDirection> {
        if port >= 2 * n {
            return None;
        }
        Some(CubeDirection {
            dim: port / 2,
            sign: if port.is_multiple_of(2) {
                Sign::Plus
            } else {
                Sign::Minus
            },
        })
    }
}

/// A k-ary n-cube (torus) topology.
///
/// ```
/// use topology::{KAryNCube, NodeId, Topology};
///
/// let cube = KAryNCube::new(16, 2); // the paper's 256-node torus
/// assert_eq!(cube.num_nodes(), 256);
/// assert_eq!(cube.hop_distance(NodeId(0), NodeId(255)), 2); // wraparound
/// assert_eq!(cube.uniform_capacity_flits_per_cycle(), 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct KAryNCube {
    k: usize,
    n: usize,
    num_nodes: usize,
}

impl KAryNCube {
    /// Build a k-ary n-cube.
    ///
    /// # Panics
    /// Panics if `k < 2`, `n == 0`, or `k^n` does not fit in `u32`.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k >= 2, "radix must be at least 2");
        assert!(n >= 1, "dimension must be at least 1");
        let mut num_nodes: u64 = 1;
        for _ in 0..n {
            num_nodes = num_nodes.checked_mul(k as u64).expect("k^n overflow");
        }
        assert!(num_nodes <= u32::MAX as u64, "k^n exceeds u32 range");
        KAryNCube {
            k,
            n,
            num_nodes: num_nodes as usize,
        }
    }

    /// The radix `k` (nodes per dimension).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coordinate of node `x` in dimension `d` (`0` = least significant).
    #[inline]
    pub fn coord(&self, x: NodeId, d: usize) -> usize {
        debug_assert!(d < self.n);
        x.index() / self.k.pow(d as u32) % self.k
    }

    /// All coordinates of node `x`, index = dimension.
    pub fn coords(&self, x: NodeId) -> Vec<usize> {
        (0..self.n).map(|d| self.coord(x, d)).collect()
    }

    /// Node with the given coordinates (index = dimension).
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        assert_eq!(coords.len(), self.n);
        let mut x = 0usize;
        for d in (0..self.n).rev() {
            assert!(coords[d] < self.k);
            x = x * self.k + coords[d];
        }
        NodeId(x as u32)
    }

    /// The neighbor of `x` one hop along `dir`.
    pub fn neighbor(&self, x: NodeId, dir: CubeDirection) -> NodeId {
        let c = self.coord(x, dir.dim);
        let stride = self.k.pow(dir.dim as u32);
        let nc = match dir.sign {
            Sign::Plus => (c + 1) % self.k,
            Sign::Minus => (c + self.k - 1) % self.k,
        };
        NodeId((x.index() + nc * stride - c * stride) as u32)
    }

    /// Signed minimal hop count from `a` to `b` in dimension `d`:
    /// `(hops, preferred_sign)`. When the two ways around the ring tie
    /// (`k` even, offset exactly `k/2`), both directions are minimal;
    /// the canonical deterministic choice is made by the parity of the
    /// source coordinate, which keeps every (source, destination) path
    /// unique while balancing the aggregate link load between the two
    /// ring directions (always preferring one direction would load it
    /// ~29% more under uniform traffic at `k = 16`).
    /// [`KAryNCube::minimal_signs`] reports the tie for adaptive routers.
    pub fn min_offset(&self, a: NodeId, b: NodeId, d: usize) -> (usize, Sign) {
        let ca = self.coord(a, d);
        let cb = self.coord(b, d);
        let fwd = (cb + self.k - ca) % self.k;
        let bwd = (ca + self.k - cb) % self.k;
        // On a binary ring both directions are the same physical link,
        // cabled on the Plus port only.
        if fwd < bwd || (fwd == bwd && (self.k == 2 || ca.is_multiple_of(2))) {
            (fwd, Sign::Plus)
        } else {
            (bwd, Sign::Minus)
        }
    }

    /// All minimal travel directions from `a` to `b` in dimension `d`
    /// (empty if aligned, two entries on an exact half-ring tie).
    pub fn minimal_signs(&self, a: NodeId, b: NodeId, d: usize) -> MinimalSigns {
        let ca = self.coord(a, d);
        let cb = self.coord(b, d);
        let fwd = (cb + self.k - ca) % self.k;
        if fwd == 0 {
            MinimalSigns::None
        } else if 2 * fwd < self.k {
            MinimalSigns::One(Sign::Plus)
        } else if 2 * fwd > self.k {
            MinimalSigns::One(Sign::Minus)
        } else {
            MinimalSigns::Both
        }
    }

    /// Minimal router-to-router hop distance between the routers of two
    /// nodes (sum of per-dimension minimal offsets).
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> usize {
        (0..self.n).map(|d| self.min_offset(a, b, d).0).sum()
    }

    /// Number of bidirectional links crossing the canonical bisection.
    ///
    /// The canonical bisection cuts the highest dimension between
    /// coordinates `k/2 - 1 | k/2` and, because of the wrap-around, also
    /// between `k - 1 | 0`, giving `2 k^(n-1)` bidirectional links.
    /// Requires even `k`.
    pub fn bisection_links(&self) -> usize {
        assert!(self.k.is_multiple_of(2), "bisection defined for even k");
        2 * self.num_nodes / self.k
    }

    /// Theoretical per-node capacity under uniform traffic, in flits per
    /// cycle, from the paper's footnote: half of uniform traffic crosses
    /// the bisection, so each node can inject at most `2B/N` where `B`
    /// counts bisection channels in both directions. Simplifies to `8/k`.
    pub fn uniform_capacity_flits_per_cycle(&self) -> f64 {
        let directed_bisection = 2.0 * self.bisection_links() as f64;
        (2.0 * directed_bisection / self.num_nodes as f64).min(1.0)
    }

    /// Mean minimal hop distance over all ordered node pairs (self pairs
    /// included): `n * k / 4` for even `k`.
    pub fn mean_hop_distance(&self) -> f64 {
        // Per dimension: sum over offsets of min(d, k-d) / k.
        let k = self.k;
        let per_dim: usize = (0..k).map(|d| d.min(k - d)).sum();
        self.n as f64 * per_dim as f64 / k as f64
    }
}

/// Result of [`KAryNCube::minimal_signs`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MinimalSigns {
    /// Source and destination are aligned in this dimension.
    None,
    /// A unique minimal direction.
    One(Sign),
    /// Exact half-ring: both directions are minimal.
    Both,
}

impl MinimalSigns {
    /// Iterate over the minimal signs (0, 1 or 2 of them).
    pub fn iter(self) -> impl Iterator<Item = Sign> {
        let (a, b) = match self {
            MinimalSigns::None => (None, None),
            MinimalSigns::One(s) => (Some(s), None),
            MinimalSigns::Both => (Some(Sign::Plus), Some(Sign::Minus)),
        };
        a.into_iter().chain(b)
    }
}

impl Topology for KAryNCube {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_routers(&self) -> usize {
        self.num_nodes
    }

    fn ports(&self, _r: RouterId) -> usize {
        2 * self.n + 1
    }

    fn peer(&self, p: PortRef) -> PortPeer {
        let node = NodeId(p.router.0);
        match CubeDirection::from_port(p.port, self.n) {
            Some(dir) => {
                if self.k == 2 && dir.sign == Sign::Minus {
                    // With k = 2 both directions reach the same neighbor;
                    // we keep a single physical link on the Plus port and
                    // leave the Minus port uncabled to avoid double links.
                    return PortPeer::Unconnected;
                }
                let other = self.neighbor(node, dir);
                let back = CubeDirection {
                    dim: dir.dim,
                    sign: dir.sign.opposite(),
                };
                let back_port = if self.k == 2 { dir.port() } else { back.port() };
                PortPeer::Router(PortRef::new(RouterId(other.0), back_port))
            }
            None => {
                if p.port == 2 * self.n {
                    PortPeer::Node(node)
                } else {
                    PortPeer::Unconnected
                }
            }
        }
    }

    fn node_port(&self, n: NodeId) -> PortRef {
        PortRef::new(RouterId(n.0), 2 * self.n)
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        if a == b {
            0
        } else {
            self.hop_distance(a, b) + 2
        }
    }

    fn label(&self) -> String {
        format!("{}-ary {}-cube", self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;

    #[test]
    fn paper_cube_shape() {
        let c = KAryNCube::new(16, 2);
        assert_eq!(c.num_nodes(), 256);
        assert_eq!(c.num_routers(), 256);
        // n * k^n links: node links (256) + router links (512) = 768.
        assert_eq!(c.num_links(), 2 * 256 + 256); // 2 dims * 256 / ... = 512 + 256
        assert_eq!(c.num_links(), c.n() * c.num_nodes() + c.num_nodes());
        assert_eq!(c.label(), "16-ary 2-cube");
    }

    #[test]
    fn paper_cube_validates() {
        validate(&KAryNCube::new(16, 2)).unwrap();
    }

    #[test]
    fn small_cubes_validate() {
        for (k, n) in [(2, 2), (2, 4), (3, 2), (4, 3), (5, 2), (8, 2), (4, 4)] {
            validate(&KAryNCube::new(k, n)).unwrap_or_else(|e| panic!("({k},{n}): {e}"));
        }
    }

    #[test]
    fn coords_roundtrip() {
        let c = KAryNCube::new(5, 3);
        for x in 0..c.num_nodes() {
            let coords = c.coords(NodeId(x as u32));
            assert_eq!(c.node_at(&coords), NodeId(x as u32));
        }
    }

    #[test]
    fn neighbor_moves_one_coordinate() {
        let c = KAryNCube::new(16, 2);
        let x = c.node_at(&[15, 7]);
        let p = c.neighbor(
            x,
            CubeDirection {
                dim: 0,
                sign: Sign::Plus,
            },
        );
        assert_eq!(c.coords(p), vec![0, 7]); // wraps
        let m = c.neighbor(
            x,
            CubeDirection {
                dim: 1,
                sign: Sign::Minus,
            },
        );
        assert_eq!(c.coords(m), vec![15, 6]);
    }

    #[test]
    fn neighbor_is_involutive() {
        let c = KAryNCube::new(6, 3);
        for x in 0..c.num_nodes() {
            for d in 0..3 {
                for sign in [Sign::Plus, Sign::Minus] {
                    let dir = CubeDirection { dim: d, sign };
                    let back = CubeDirection {
                        dim: d,
                        sign: sign.opposite(),
                    };
                    let y = c.neighbor(NodeId(x as u32), dir);
                    assert_eq!(c.neighbor(y, back), NodeId(x as u32));
                }
            }
        }
    }

    #[test]
    fn min_offset_symmetric_distance() {
        let c = KAryNCube::new(16, 2);
        for a in [0usize, 17, 100, 255] {
            for b in [0usize, 3, 128, 254] {
                let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                assert_eq!(c.hop_distance(a, b), c.hop_distance(b, a));
            }
        }
    }

    #[test]
    fn half_ring_tie_detected() {
        let c = KAryNCube::new(16, 2);
        let a = c.node_at(&[0, 0]);
        let b = c.node_at(&[8, 0]);
        assert_eq!(c.minimal_signs(a, b, 0), MinimalSigns::Both);
        assert_eq!(c.minimal_signs(a, b, 1), MinimalSigns::None);
        assert_eq!(c.min_offset(a, b, 0), (8, Sign::Plus));
    }

    #[test]
    fn bisection_and_capacity() {
        let c = KAryNCube::new(16, 2);
        assert_eq!(c.bisection_links(), 32);
        let cap = c.uniform_capacity_flits_per_cycle();
        assert!((cap - 0.5).abs() < 1e-12, "capacity {cap}");
    }

    #[test]
    fn mean_hop_distance_formula() {
        let c = KAryNCube::new(16, 2);
        assert!((c.mean_hop_distance() - 8.0).abs() < 1e-12);

        // Brute-force check on a small cube.
        let c = KAryNCube::new(4, 3);
        let n = c.num_nodes();
        let total: usize = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .map(|(a, b)| c.hop_distance(NodeId(a as u32), NodeId(b as u32)))
            .sum();
        let mean = total as f64 / (n * n) as f64;
        assert!((mean - c.mean_hop_distance()).abs() < 1e-12);
    }

    #[test]
    fn binary_hypercube_special_case() {
        // k = 2: the binary hypercube. Minus ports are uncabled.
        let c = KAryNCube::new(2, 4);
        assert_eq!(c.num_nodes(), 16);
        validate(&c).unwrap();
        assert_eq!(c.hop_distance(NodeId(0), NodeId(0b1111)), 4);
    }

    #[test]
    fn min_distance_includes_node_links() {
        let c = KAryNCube::new(16, 2);
        assert_eq!(c.min_distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(c.min_distance(NodeId(0), NodeId(1)), 3);
    }
}
