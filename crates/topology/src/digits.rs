//! Base-`k` digit manipulation for node and switch addresses.
//!
//! Both topology families and all four synthetic traffic patterns of the
//! paper are defined in terms of the base-`k` representation of node
//! indices (Section 7 of the paper labels each node `p_0 p_1 … p_{n-1}`
//! with `p_0` the most significant digit). This module centralizes the
//! digit arithmetic so the conventions are fixed in exactly one place.

/// A helper for converting between linear indices and fixed-width
/// most-significant-first base-`k` digit vectors.
///
/// `Digits::new(k, n)` describes addresses with `n` digits in base `k`,
/// covering the index range `0..k^n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Digits {
    k: u32,
    n: u32,
}

impl Digits {
    /// Create a digit codec for `n`-digit base-`k` numbers.
    ///
    /// # Panics
    /// Panics if `k < 2`, `n == 0`, or `k^n` overflows `u32`.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k >= 2, "radix must be at least 2");
        assert!(n >= 1, "need at least one digit");
        let mut total: u64 = 1;
        for _ in 0..n {
            total = total.checked_mul(k as u64).expect("k^n overflows u64");
        }
        assert!(total <= u32::MAX as u64 + 1, "k^n exceeds u32 range");
        Digits {
            k: k as u32,
            n: n as u32,
        }
    }

    /// The radix `k`.
    #[inline]
    pub fn radix(&self) -> usize {
        self.k as usize
    }

    /// The number of digits `n`.
    #[inline]
    pub fn width(&self) -> usize {
        self.n as usize
    }

    /// Total number of representable values, `k^n`.
    #[inline]
    pub fn count(&self) -> usize {
        (self.k as u64).pow(self.n) as usize
    }

    /// Digit `j` of `x`, with `j = 0` the most significant digit.
    ///
    /// This matches the paper's `p_0 p_1 … p_{n-1}` labelling.
    #[inline]
    pub fn digit(&self, x: usize, j: usize) -> usize {
        debug_assert!(j < self.n as usize);
        let shift = (self.k as u64).pow(self.n - 1 - j as u32);
        (x as u64 / shift % self.k as u64) as usize
    }

    /// Replace digit `j` (most-significant-first) of `x` with `value`.
    #[inline]
    pub fn with_digit(&self, x: usize, j: usize, value: usize) -> usize {
        debug_assert!(j < self.n as usize);
        debug_assert!(value < self.k as usize);
        let shift = (self.k as u64).pow(self.n - 1 - j as u32);
        let old = x as u64 / shift % self.k as u64;
        (x as u64 - old * shift + value as u64 * shift) as usize
    }

    /// Decompose `x` into its digit vector, most significant first.
    pub fn expand(&self, x: usize) -> Vec<usize> {
        (0..self.width()).map(|j| self.digit(x, j)).collect()
    }

    /// Recompose a most-significant-first digit vector into an index.
    ///
    /// # Panics
    /// Panics if the slice length differs from `n` or any digit is `>= k`.
    pub fn compose(&self, digits: &[usize]) -> usize {
        assert_eq!(digits.len(), self.width());
        let mut x: u64 = 0;
        for &d in digits {
            assert!(d < self.k as usize, "digit out of range");
            x = x * self.k as u64 + d as u64;
        }
        x as usize
    }

    /// Length of the longest common most-significant-first digit prefix of
    /// `a` and `b` (between `0` and `n` inclusive).
    ///
    /// In a k-ary n-tree this is exactly what determines the level of the
    /// nearest common ancestors: two nodes with common prefix length `m`
    /// meet at level `m` (0 = root), so their minimal distance is
    /// `2 (n - m)` links.
    pub fn common_prefix_len(&self, a: usize, b: usize) -> usize {
        for j in 0..self.width() {
            if self.digit(a, j) != self.digit(b, j) {
                return j;
            }
        }
        self.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_extraction_msb_first() {
        let d = Digits::new(4, 4);
        // 0x1B3 in base 4: 123 = 1*64 + 3*16 + 2*4 + 3 -> digits [1,3,2,3]
        let x = 64 + 3 * 16 + 2 * 4 + 3;
        assert_eq!(d.expand(x), vec![1, 3, 2, 3]);
        assert_eq!(d.digit(x, 0), 1);
        assert_eq!(d.digit(x, 3), 3);
    }

    #[test]
    fn compose_inverts_expand() {
        let d = Digits::new(3, 5);
        for x in 0..d.count() {
            assert_eq!(d.compose(&d.expand(x)), x);
        }
    }

    #[test]
    fn with_digit_changes_one_digit() {
        let d = Digits::new(4, 3);
        for x in 0..d.count() {
            for j in 0..3 {
                for v in 0..4 {
                    let y = d.with_digit(x, j, v);
                    assert_eq!(d.digit(y, j), v);
                    for other in 0..3 {
                        if other != j {
                            assert_eq!(d.digit(y, other), d.digit(x, other));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn common_prefix() {
        let d = Digits::new(4, 4);
        let a = d.compose(&[1, 2, 3, 0]);
        let b = d.compose(&[1, 2, 0, 0]);
        assert_eq!(d.common_prefix_len(a, b), 2);
        assert_eq!(d.common_prefix_len(a, a), 4);
        let c = d.compose(&[3, 2, 3, 0]);
        assert_eq!(d.common_prefix_len(a, c), 0);
    }

    #[test]
    fn count_matches_pow() {
        assert_eq!(Digits::new(4, 4).count(), 256);
        assert_eq!(Digits::new(16, 2).count(), 256);
        assert_eq!(Digits::new(2, 8).count(), 256);
    }

    #[test]
    #[should_panic]
    fn radix_one_rejected() {
        let _ = Digits::new(1, 3);
    }
}
