//! The port-level topology abstraction consumed by the simulator.
//!
//! A topology is a set of routers, each with a fixed number of ports.
//! Every port is either wired to a port of another router (one
//! bidirectional link), wired to a processing node (the node's
//! injection/ejection interface), or left unconnected (e.g. the upward
//! ports of the root-level switches of a fat-tree, which the paper leaves
//! available as "external connections").
//!
//! The [`validate`] function checks the structural invariants that every
//! well-formed topology must satisfy (symmetric wiring, each node attached
//! exactly once, network connectedness) and is run by the test-suites of
//! both concrete topologies as well as by property-based tests.

use crate::ids::{NodeId, RouterId};
use std::collections::VecDeque;

/// A specific port of a specific router.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PortRef {
    /// The router owning the port.
    pub router: RouterId,
    /// Port index within the router, `0..ports(router)`.
    pub port: usize,
}

impl PortRef {
    /// Convenience constructor.
    #[inline]
    pub fn new(router: RouterId, port: usize) -> Self {
        PortRef { router, port }
    }
}

/// What sits at the far end of a router port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortPeer {
    /// A port of another router; the two ports form one bidirectional link.
    Router(PortRef),
    /// A processing node (injection and ejection interface).
    Node(NodeId),
    /// Nothing; the port exists physically but is not cabled.
    Unconnected,
}

/// Errors found by [`validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// Port `a` claims peer `b`, but `b`'s peer is not `a`.
    AsymmetricLink(PortRef, PortRef),
    /// A router port points at a router or port index that does not exist.
    DanglingPort(PortRef),
    /// Node is attached zero or more than one time.
    BadNodeAttachment(NodeId, usize),
    /// `node_port` disagrees with the port scan.
    InconsistentNodePort(NodeId),
    /// Not every router is reachable from router 0.
    Disconnected {
        /// Routers reachable from router 0.
        reachable: usize,
        /// Total routers in the topology.
        total: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::AsymmetricLink(a, b) => {
                write!(
                    f,
                    "asymmetric link: {}:{} -> {}:{}",
                    a.router, a.port, b.router, b.port
                )
            }
            TopologyError::DanglingPort(p) => {
                write!(f, "dangling port {}:{}", p.router, p.port)
            }
            TopologyError::BadNodeAttachment(n, c) => {
                write!(f, "node {n} attached {c} times (expected 1)")
            }
            TopologyError::InconsistentNodePort(n) => {
                write!(f, "node_port({n}) disagrees with port scan")
            }
            TopologyError::Disconnected { reachable, total } => {
                write!(
                    f,
                    "router graph disconnected: {reachable}/{total} reachable"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The structural interface every topology exposes to the simulator.
///
/// Implementations must be pure: all methods are `&self` and answers never
/// change for a given instance.
pub trait Topology {
    /// Number of processing nodes `N`.
    fn num_nodes(&self) -> usize;

    /// Number of routing switches.
    fn num_routers(&self) -> usize;

    /// Number of ports of router `r` (including node-facing ports and
    /// unconnected ports).
    fn ports(&self, r: RouterId) -> usize;

    /// What is wired to port `p`.
    fn peer(&self, p: PortRef) -> PortPeer;

    /// The router port to which node `n` is attached.
    fn node_port(&self, n: NodeId) -> PortRef;

    /// Minimal distance between two nodes in links (node-to-router and
    /// router-to-node links included). `0` if `a == b`.
    fn min_distance(&self, a: NodeId, b: NodeId) -> usize;

    /// Total number of bidirectional links, counting node-attachment
    /// links but not unconnected ports.
    fn num_links(&self) -> usize {
        let mut count = 0usize;
        for r in 0..self.num_routers() {
            for p in 0..self.ports(RouterId(r as u32)) {
                match self.peer(PortRef::new(RouterId(r as u32), p)) {
                    PortPeer::Router(_) => count += 1, // counted twice
                    PortPeer::Node(_) => count += 2,   // counted once
                    PortPeer::Unconnected => {}
                }
            }
        }
        count / 2
    }

    /// Short human-readable name, e.g. `"16-ary 2-cube"`.
    fn label(&self) -> String;
}

/// Check the structural invariants of a topology.
///
/// Verifies that:
/// 1. every `Router` peer is in range and symmetric (`peer(peer(p)) == p`),
/// 2. every node is attached to exactly one router port and `node_port`
///    agrees with the port scan,
/// 3. the router graph is connected.
pub fn validate<T: Topology + ?Sized>(t: &T) -> Result<(), TopologyError> {
    let nr = t.num_routers();
    let mut node_seen = vec![0usize; t.num_nodes()];

    for r in 0..nr {
        let rid = RouterId(r as u32);
        for p in 0..t.ports(rid) {
            let here = PortRef::new(rid, p);
            match t.peer(here) {
                PortPeer::Router(other) => {
                    if other.router.index() >= nr || other.port >= t.ports(other.router) {
                        return Err(TopologyError::DanglingPort(here));
                    }
                    if t.peer(other) != PortPeer::Router(here) {
                        return Err(TopologyError::AsymmetricLink(here, other));
                    }
                }
                PortPeer::Node(n) => {
                    if n.index() >= t.num_nodes() {
                        return Err(TopologyError::DanglingPort(here));
                    }
                    node_seen[n.index()] += 1;
                    if t.node_port(n) != here {
                        return Err(TopologyError::InconsistentNodePort(n));
                    }
                }
                PortPeer::Unconnected => {}
            }
        }
    }

    for (i, &c) in node_seen.iter().enumerate() {
        if c != 1 {
            return Err(TopologyError::BadNodeAttachment(NodeId(i as u32), c));
        }
    }

    // BFS over the router graph.
    let mut seen = vec![false; nr];
    let mut queue = VecDeque::new();
    seen[0] = true;
    queue.push_back(RouterId(0));
    let mut reachable = 1usize;
    while let Some(r) = queue.pop_front() {
        for p in 0..t.ports(r) {
            if let PortPeer::Router(other) = t.peer(PortRef::new(r, p)) {
                if !seen[other.router.index()] {
                    seen[other.router.index()] = true;
                    reachable += 1;
                    queue.push_back(other.router);
                }
            }
        }
    }
    if reachable != nr {
        return Err(TopologyError::Disconnected {
            reachable,
            total: nr,
        });
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately broken two-router topology for exercising `validate`.
    struct Broken {
        asymmetric: bool,
        orphan_node: bool,
    }

    impl Topology for Broken {
        fn num_nodes(&self) -> usize {
            2
        }
        fn num_routers(&self) -> usize {
            2
        }
        fn ports(&self, _r: RouterId) -> usize {
            2
        }
        fn peer(&self, p: PortRef) -> PortPeer {
            match (p.router.index(), p.port) {
                (0, 0) => PortPeer::Node(NodeId(0)),
                (1, 0) => {
                    if self.orphan_node {
                        PortPeer::Node(NodeId(0)) // node 0 attached twice, node 1 never
                    } else {
                        PortPeer::Node(NodeId(1))
                    }
                }
                (0, 1) => PortPeer::Router(PortRef::new(RouterId(1), 1)),
                (1, 1) => {
                    if self.asymmetric {
                        PortPeer::Router(PortRef::new(RouterId(0), 0))
                    } else {
                        PortPeer::Router(PortRef::new(RouterId(0), 1))
                    }
                }
                _ => PortPeer::Unconnected,
            }
        }
        fn node_port(&self, n: NodeId) -> PortRef {
            PortRef::new(RouterId(n.0), 0)
        }
        fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
            if a == b {
                0
            } else {
                3
            }
        }
        fn label(&self) -> String {
            "broken".into()
        }
    }

    #[test]
    fn valid_two_router_line_passes() {
        let t = Broken {
            asymmetric: false,
            orphan_node: false,
        };
        assert_eq!(validate(&t), Ok(()));
        assert_eq!(t.num_links(), 3);
    }

    #[test]
    fn asymmetric_link_detected() {
        let t = Broken {
            asymmetric: true,
            orphan_node: false,
        };
        assert!(matches!(
            validate(&t),
            Err(TopologyError::AsymmetricLink(..))
        ));
    }

    #[test]
    fn bad_node_attachment_detected() {
        let t = Broken {
            asymmetric: false,
            orphan_node: true,
        };
        assert!(matches!(
            validate(&t),
            Err(TopologyError::BadNodeAttachment(..))
                | Err(TopologyError::InconsistentNodePort(..))
        ));
    }

    #[test]
    fn error_messages_render() {
        let e = TopologyError::Disconnected {
            reachable: 1,
            total: 4,
        };
        assert!(e.to_string().contains("1/4"));
    }
}
