//! Torus-embedded hypercubes — a 2D torus crossed with a binary
//! hypercube.
//!
//! A THC(k, d) couples the paper's two direct-network ideas: two
//! wrap-around dimensions of radix `k` (the torus plane, which carries
//! the long-haul traffic on cheap neighbor links) crossed with `d`
//! binary dimensions (the hypercube axis, which keeps the diameter
//! logarithmic in the machine size). Formally it is the mixed-radix
//! torus with dimension radices `[k, k, 2, …, 2]` — the product graph
//! of a k×k torus and a d-cube (cf. the torus-embedded-hypercube
//! interconnects of arXiv:0912.2298). `N = k² · 2^d` nodes, every node
//! hosting a router, exactly as in [`crate::KAryNCube`].
//!
//! ## Port convention
//!
//! Identical to the cube family: with `D = 2 + d` total dimensions,
//! router `r` has `2D + 1` ports — port `2j` the plus direction of
//! dimension `j`, port `2j + 1` the minus direction, port `2D` the
//! local node. Dimensions `0` and `1` have radix `k` (least-significant
//! coordinates); dimensions `2..D` are binary. On a binary ring both
//! directions are the same physical link, so it is cabled on the plus
//! port only and the minus port is left unconnected — the same
//! convention `KAryNCube` uses for `k = 2`.

use crate::cube::{CubeDirection, Sign};
use crate::graph::{PortPeer, PortRef, Topology};
use crate::ids::{NodeId, RouterId};

/// A torus-embedded hypercube: a k×k torus crossed with a d-cube.
///
/// ```
/// use topology::{TorusHypercube, NodeId, Topology};
///
/// let t = TorusHypercube::new(4, 4); // 4x4 torus x 4-cube = 256 nodes
/// assert_eq!(t.num_nodes(), 256);
/// assert_eq!(t.dims(), 6);
/// // Opposite corner: 2 torus wrap hops + 4 hypercube hops + 2 node links.
/// assert_eq!(t.min_distance(NodeId(0), NodeId(255)), 8);
/// ```
#[derive(Clone, Debug)]
pub struct TorusHypercube {
    k: usize,
    d: usize,
    num_nodes: usize,
}

impl TorusHypercube {
    /// Build a THC(k, d): a k×k torus crossed with a binary d-cube.
    ///
    /// # Panics
    /// Panics if `k < 2`, `d == 0`, or `k² · 2^d` does not fit in `u32`.
    pub fn new(k: usize, d: usize) -> Self {
        assert!(k >= 2, "torus radix must be at least 2");
        assert!(d >= 1, "need at least one hypercube dimension");
        let mut num_nodes: u64 = (k as u64) * (k as u64);
        for _ in 0..d {
            num_nodes = num_nodes.checked_mul(2).expect("k^2 * 2^d overflow");
        }
        assert!(num_nodes <= u32::MAX as u64, "k^2 * 2^d exceeds u32 range");
        TorusHypercube {
            k,
            d,
            num_nodes: num_nodes as usize,
        }
    }

    /// The torus radix `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of binary (hypercube) dimensions `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Total dimensions, `2 + d` (two torus + d binary).
    #[inline]
    pub fn dims(&self) -> usize {
        2 + self.d
    }

    /// Radix of dimension `j`: `k` for the torus plane (`j < 2`), 2 for
    /// the hypercube axis.
    #[inline]
    pub fn radix(&self, j: usize) -> usize {
        debug_assert!(j < self.dims());
        if j < 2 {
            self.k
        } else {
            2
        }
    }

    /// Stride of dimension `j` in the node index (dimension 0 is the
    /// least significant coordinate).
    #[inline]
    fn stride(&self, j: usize) -> usize {
        if j < 2 {
            self.k.pow(j as u32)
        } else {
            self.k * self.k * (1usize << (j - 2))
        }
    }

    /// Coordinate of node `x` in dimension `j`.
    #[inline]
    pub fn coord(&self, x: NodeId, j: usize) -> usize {
        x.index() / self.stride(j) % self.radix(j)
    }

    /// All coordinates of node `x`, index = dimension.
    pub fn coords(&self, x: NodeId) -> Vec<usize> {
        (0..self.dims()).map(|j| self.coord(x, j)).collect()
    }

    /// Node with the given coordinates (index = dimension).
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        assert_eq!(coords.len(), self.dims());
        let mut x = 0usize;
        for (j, &c) in coords.iter().enumerate() {
            assert!(c < self.radix(j));
            x += c * self.stride(j);
        }
        NodeId(x as u32)
    }

    /// The neighbor of `x` one hop along `dir`.
    pub fn neighbor(&self, x: NodeId, dir: CubeDirection) -> NodeId {
        let r = self.radix(dir.dim);
        let c = self.coord(x, dir.dim);
        let stride = self.stride(dir.dim);
        let nc = match dir.sign {
            Sign::Plus => (c + 1) % r,
            Sign::Minus => (c + r - 1) % r,
        };
        NodeId((x.index() + nc * stride - c * stride) as u32)
    }

    /// Signed minimal hop count from `a` to `b` in dimension `j`:
    /// `(hops, preferred_sign)`, with the cube family's tie-break (plus
    /// on binary rings, else source-coordinate parity).
    pub fn min_offset(&self, a: NodeId, b: NodeId, j: usize) -> (usize, Sign) {
        let r = self.radix(j);
        let ca = self.coord(a, j);
        let cb = self.coord(b, j);
        let fwd = (cb + r - ca) % r;
        let bwd = (ca + r - cb) % r;
        if fwd < bwd || (fwd == bwd && (r == 2 || ca.is_multiple_of(2))) {
            (fwd, Sign::Plus)
        } else {
            (bwd, Sign::Minus)
        }
    }

    /// Minimal router-to-router hop distance between the routers of two
    /// nodes.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> usize {
        (0..self.dims()).map(|j| self.min_offset(a, b, j).0).sum()
    }

    /// Number of bidirectional links crossing the narrowest canonical
    /// bisection: the cheaper of cutting a torus dimension
    /// (`2N/k` links, even `k`) or a hypercube dimension (`N/2` links).
    pub fn bisection_links(&self) -> usize {
        let hypercube_cut = self.num_nodes / 2;
        if self.k.is_multiple_of(2) {
            (2 * self.num_nodes / self.k).min(hypercube_cut)
        } else {
            hypercube_cut
        }
    }

    /// Per-node uniform capacity in flits per cycle, from the same
    /// bisection argument as the cube: `min(1, 4B/N)`.
    pub fn uniform_capacity_flits_per_cycle(&self) -> f64 {
        let directed = 2.0 * self.bisection_links() as f64;
        (2.0 * directed / self.num_nodes as f64).min(1.0)
    }

    /// Mean minimal hop distance over all ordered node pairs (self pairs
    /// included): `2 · (mean ring offset at radix k) + d/2`.
    pub fn mean_hop_distance(&self) -> f64 {
        let k = self.k;
        let per_torus_dim: usize = (0..k).map(|c| c.min(k - c)).sum();
        2.0 * per_torus_dim as f64 / k as f64 + self.d as f64 * 0.5
    }
}

impl Topology for TorusHypercube {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_routers(&self) -> usize {
        self.num_nodes
    }

    fn ports(&self, _r: RouterId) -> usize {
        2 * self.dims() + 1
    }

    fn peer(&self, p: PortRef) -> PortPeer {
        let node = NodeId(p.router.0);
        match CubeDirection::from_port(p.port, self.dims()) {
            Some(dir) => {
                let r = self.radix(dir.dim);
                if r == 2 && dir.sign == Sign::Minus {
                    // Binary ring: one physical link, cabled on the plus
                    // port; the minus port is left uncabled.
                    return PortPeer::Unconnected;
                }
                let other = self.neighbor(node, dir);
                let back = CubeDirection {
                    dim: dir.dim,
                    sign: dir.sign.opposite(),
                };
                let back_port = if r == 2 { dir.port() } else { back.port() };
                PortPeer::Router(PortRef::new(RouterId(other.0), back_port))
            }
            None => {
                if p.port == 2 * self.dims() {
                    PortPeer::Node(node)
                } else {
                    PortPeer::Unconnected
                }
            }
        }
    }

    fn node_port(&self, n: NodeId) -> PortRef {
        PortRef::new(RouterId(n.0), 2 * self.dims())
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        if a == b {
            0
        } else {
            self.hop_distance(a, b) + 2
        }
    }

    fn label(&self) -> String {
        format!("{0}x{0} torus x {1}-cube", self.k, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;

    #[test]
    fn shape_of_the_256_node_point() {
        let t = TorusHypercube::new(4, 4);
        assert_eq!(t.num_nodes(), 256);
        assert_eq!(t.num_routers(), 256);
        assert_eq!(t.dims(), 6);
        assert_eq!(t.ports(RouterId(0)), 13);
        // Links: 2 torus dims x N + d binary dims x N/2 + N node links.
        assert_eq!(t.num_links(), 2 * 256 + 4 * 128 + 256);
        assert_eq!(t.label(), "4x4 torus x 4-cube");
    }

    #[test]
    fn thc_instances_validate() {
        for (k, d) in [
            (2usize, 1usize),
            (2, 3),
            (3, 2),
            (4, 2),
            (4, 4),
            (5, 1),
            (8, 2),
        ] {
            validate(&TorusHypercube::new(k, d)).unwrap_or_else(|e| panic!("({k},{d}): {e}"));
        }
    }

    #[test]
    fn coords_roundtrip() {
        let t = TorusHypercube::new(3, 3);
        for x in 0..t.num_nodes() {
            let coords = t.coords(NodeId(x as u32));
            assert_eq!(t.node_at(&coords), NodeId(x as u32));
        }
    }

    #[test]
    fn neighbor_is_involutive_on_torus_dims() {
        let t = TorusHypercube::new(4, 2);
        for x in 0..t.num_nodes() {
            for dim in 0..2 {
                for sign in [Sign::Plus, Sign::Minus] {
                    let dir = CubeDirection { dim, sign };
                    let back = CubeDirection {
                        dim,
                        sign: sign.opposite(),
                    };
                    let y = t.neighbor(NodeId(x as u32), dir);
                    assert_eq!(t.neighbor(y, back), NodeId(x as u32));
                }
            }
        }
    }

    #[test]
    fn binary_dims_flip_one_bit() {
        let t = TorusHypercube::new(4, 3);
        let x = t.node_at(&[1, 2, 0, 1, 0]);
        let y = t.neighbor(
            x,
            CubeDirection {
                dim: 3,
                sign: Sign::Plus,
            },
        );
        assert_eq!(t.coords(y), vec![1, 2, 0, 0, 0]);
        // Plus and minus reach the same neighbor on a binary ring.
        let z = t.neighbor(
            x,
            CubeDirection {
                dim: 3,
                sign: Sign::Minus,
            },
        );
        assert_eq!(y, z);
    }

    #[test]
    fn binary_minus_ports_uncabled() {
        let t = TorusHypercube::new(4, 2);
        // Dimension 2 (first binary dim): plus port 4 cabled, minus 5 not.
        assert!(matches!(
            t.peer(PortRef::new(RouterId(0), 4)),
            PortPeer::Router(_)
        ));
        assert_eq!(t.peer(PortRef::new(RouterId(0), 5)), PortPeer::Unconnected);
    }

    #[test]
    fn distances_are_per_dimension_sums() {
        let t = TorusHypercube::new(4, 4);
        let a = t.node_at(&[0, 0, 0, 0, 0, 0]);
        let b = t.node_at(&[3, 3, 1, 1, 1, 1]);
        // Torus dims wrap (1 hop each), binary dims 1 hop each.
        assert_eq!(t.hop_distance(a, b), 2 + 4);
        assert_eq!(t.min_distance(a, b), 8);
        assert_eq!(t.min_distance(a, a), 0);
        assert_eq!(t.hop_distance(a, b), t.hop_distance(b, a));
    }

    #[test]
    fn mean_hop_distance_matches_brute_force() {
        let t = TorusHypercube::new(4, 2);
        let n = t.num_nodes();
        let total: usize = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .map(|(a, b)| t.hop_distance(NodeId(a as u32), NodeId(b as u32)))
            .sum();
        let brute = total as f64 / (n * n) as f64;
        assert!((t.mean_hop_distance() - brute).abs() < 1e-12);
    }

    #[test]
    fn bisection_picks_the_narrowest_cut() {
        // k = 4: torus cut 2N/4 = N/2 ties the hypercube cut.
        let t = TorusHypercube::new(4, 4);
        assert_eq!(t.bisection_links(), 128);
        assert_eq!(t.uniform_capacity_flits_per_cycle(), 1.0);
        // k = 8: torus cut 2N/8 = N/4 is narrower.
        let t = TorusHypercube::new(8, 2);
        assert_eq!(t.num_nodes(), 256);
        assert_eq!(t.bisection_links(), 64);
        assert!((t.uniform_capacity_flits_per_cycle() - 1.0).abs() < 1e-12);
        // Odd k: only the hypercube cut is canonical.
        let t = TorusHypercube::new(3, 2);
        assert_eq!(t.bisection_links(), 18);
    }

    #[test]
    fn min_distance_includes_node_links() {
        let t = TorusHypercube::new(4, 2);
        assert_eq!(t.min_distance(NodeId(0), NodeId(1)), 3);
    }
}
