//! The family-registration seam: one table naming every topology
//! family the workspace knows how to build.
//!
//! Layers above this crate each need a per-family dispatch — the
//! scenario axes parse family names, the wiring lowers an instance, the
//! design-space enumerator walks every family, the CLI lists the legal
//! spellings. Before this module each of those sites carried its own
//! hard-coded family list; now they all consult [`families`], so adding
//! a family means one new [`Family`] row here plus one match arm in
//! each layer that needs the *concrete* type (routing algorithms are
//! monomorphized over the topology type and cannot be table-driven —
//! see the "Topology-design plane" section of `docs/ARCHITECTURE.md`
//! for the full recipe).
//!
//! Every family builds from the same generic shape axes
//! ([`FamilyShape`]): `k` (radix/arity), `n` (dimension/levels — the
//! binary dimension count for the torus-embedded hypercube), and
//! `taper` (oversubscription ratio; only the tapered tree reads it).

use crate::cube::KAryNCube;
use crate::graph::Topology;
use crate::mesh::KAryNMesh;
use crate::tapered_tree::TaperedKAryNTree;
use crate::thc::TorusHypercube;
use crate::tree::KAryNTree;

/// The generic shape axes a [`Family`] builds from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FamilyShape {
    /// Radix (nodes per dimension; switch arity for trees).
    pub k: usize,
    /// Dimension count (tree levels; binary dimensions for the THC).
    pub n: usize,
    /// Oversubscription ratio; `1` everywhere except tapered trees.
    pub taper: usize,
}

impl FamilyShape {
    /// Shape with no taper (every family except the tapered tree).
    pub fn new(k: usize, n: usize) -> Self {
        FamilyShape { k, n, taper: 1 }
    }

    /// Shape with an explicit taper.
    pub fn tapered(k: usize, n: usize, taper: usize) -> Self {
        FamilyShape { k, n, taper }
    }
}

/// One registered topology family.
pub struct Family {
    /// Canonical name; what [`Topology`]-spec printers emit. Always the
    /// first entry of `aliases`.
    pub slug: &'static str,
    /// Every accepted spelling, canonical slug first. Parsing any alias
    /// and re-printing yields the slug, so parse → print → parse is a
    /// fixed point.
    pub aliases: &'static [&'static str],
    /// One-line description for listings.
    pub summary: &'static str,
    /// Node count of an instance with the given shape (cheap; no
    /// construction).
    pub num_nodes: fn(&FamilyShape) -> usize,
    /// Build an instance.
    pub build: fn(&FamilyShape) -> Box<dyn Topology>,
}

fn pow(base: usize, exp: usize) -> usize {
    (base as u64).pow(exp as u32) as usize
}

/// The family table. Order is presentation order (the paper's two
/// families first), not a compatibility surface.
pub static FAMILIES: &[Family] = &[
    Family {
        slug: "cube",
        aliases: &["cube", "torus"],
        summary: "k-ary n-cube: n-dimensional grid with wrap-around links",
        num_nodes: |s| pow(s.k, s.n),
        build: |s| Box::new(KAryNCube::new(s.k, s.n)),
    },
    Family {
        slug: "tree",
        aliases: &["tree", "fat-tree", "fattree"],
        summary: "k-ary n-tree: butterfly fat-tree, full bisection",
        num_nodes: |s| pow(s.k, s.n),
        build: |s| Box::new(KAryNTree::new(s.k, s.n)),
    },
    Family {
        slug: "mesh",
        aliases: &["mesh"],
        summary: "k-ary n-mesh: the cube without wrap-around links",
        num_nodes: |s| pow(s.k, s.n),
        build: |s| Box::new(KAryNMesh::new(s.k, s.n)),
    },
    Family {
        slug: "tapered-tree",
        aliases: &["tapered-tree", "tapered", "slim-tree", "slimmed-tree"],
        summary: "tapered k-ary n-tree: ceil(k/taper) up links per switch",
        num_nodes: |s| pow(s.k, s.n),
        build: |s| Box::new(TaperedKAryNTree::new(s.k, s.n, s.taper)),
    },
    Family {
        slug: "thc",
        aliases: &["thc", "torus-hypercube", "hypercube-torus"],
        summary: "torus-embedded hypercube: k x k torus crossed with an n-cube of radix 2",
        num_nodes: |s| s.k * s.k * pow(2, s.n),
        build: |s| Box::new(TorusHypercube::new(s.k, s.n)),
    },
];

/// Every registered family, in presentation order.
pub fn families() -> &'static [Family] {
    FAMILIES
}

/// Look a family up by canonical slug or any alias.
pub fn family(name: &str) -> Option<&'static Family> {
    FAMILIES.iter().find(|f| f.aliases.contains(&name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;

    #[test]
    fn slugs_are_unique_and_lead_their_alias_lists() {
        let mut seen = std::collections::HashSet::new();
        for f in families() {
            assert!(seen.insert(f.slug), "duplicate slug {}", f.slug);
            assert_eq!(f.aliases.first(), Some(&f.slug));
        }
    }

    #[test]
    fn every_alias_resolves_to_its_own_family() {
        let mut seen = std::collections::HashSet::new();
        for f in families() {
            for alias in f.aliases {
                assert!(seen.insert(*alias), "alias {alias} claimed twice");
                assert_eq!(family(alias).unwrap().slug, f.slug);
            }
        }
        assert!(family("ring").is_none());
    }

    #[test]
    fn every_family_builds_a_valid_instance() {
        let shapes = [
            FamilyShape::new(4, 2),
            FamilyShape::tapered(4, 3, 2),
            FamilyShape::new(2, 3),
        ];
        for f in families() {
            for shape in &shapes {
                let topo = (f.build)(shape);
                validate(&*topo).unwrap_or_else(|e| panic!("{} {shape:?}: {e}", f.slug));
                assert_eq!(
                    topo.num_nodes(),
                    (f.num_nodes)(shape),
                    "{} {shape:?}",
                    f.slug
                );
            }
        }
    }
}
