//! k-ary n-trees — the fat-tree family of the paper.
//!
//! A k-ary n-tree (Petrini & Vanneschi, IPPS'97) has `k^n` processing
//! nodes and `n` levels of `k^(n-1)` switches, each with `2k` ports. The
//! internal structure is borrowed from the k-ary n-butterfly: between two
//! adjacent levels the switches that agree on all word digits except one
//! form a complete `k x k` bipartite exchange.
//!
//! ## Addressing
//!
//! * Levels are numbered `0` (root) to `n-1` (leaves). Each level holds
//!   `k^(n-1)` switches identified by a word `w` of `n-1` base-`k` digits
//!   (most significant first). `RouterId = level * k^(n-1) + w`.
//! * A node `p` with digits `p_0 … p_{n-1}` attaches to the leaf switch
//!   whose word is `p_0 … p_{n-2}`, on down port `p_{n-1}`.
//! * Switch `<w, l>` (level `l`) and `<w', l+1>` are connected iff their
//!   words agree on every digit position except position `l`. The upper
//!   switch reaches that child through down port `w'_l`; the lower switch
//!   reaches that parent through up port `w_l`.
//!
//! ## Ports
//!
//! Each switch has `2k` ports: ports `0..k` go **down** (towards the
//! leaves — or to the processing nodes at the leaf level), ports
//! `k..2k` go **up** (towards the roots). The up ports of the root-level
//! switches are unconnected, matching the paper's "external connections
//! available to recursively build a bigger network".
//!
//! ## Routing structure
//!
//! Minimal routing ascends adaptively (any up port) to level `m`, the
//! length of the longest common address prefix of source and destination,
//! then descends deterministically: at level `l` the down port towards
//! node `q` is digit `q_l`. Because every up hop strictly decreases the
//! level and every down hop strictly increases it, the channel dependency
//! graph of this scheme is trivially acyclic (deadlock freedom), which
//! the `routing` crate machine-checks.

use crate::digits::Digits;
use crate::graph::{PortPeer, PortRef, Topology};
use crate::ids::{NodeId, RouterId};

/// A k-ary n-tree (quaternary fat-tree for `k = 4`).
///
/// ```
/// use topology::{KAryNTree, NodeId, Topology};
///
/// let tree = KAryNTree::new(4, 4); // the paper's 256-node fat-tree
/// assert_eq!(tree.num_nodes(), 256);
/// assert_eq!(tree.num_routers(), 256); // n * k^(n-1) switches
/// // Nodes 0 and 255 share no address prefix: they meet at a root,
/// // 8 links apart.
/// assert_eq!(tree.nca_level(NodeId(0), NodeId(255)), 0);
/// assert_eq!(tree.min_distance(NodeId(0), NodeId(255)), 8);
/// ```
#[derive(Clone, Debug)]
pub struct KAryNTree {
    k: usize,
    n: usize,
    /// Codec for node addresses (`n` digits).
    node_digits: Digits,
    /// Codec for switch words (`n - 1` digits); `None` when `n == 1`
    /// (a single switch with an empty word).
    word_digits: Option<Digits>,
    switches_per_level: usize,
}

impl KAryNTree {
    /// Build a k-ary n-tree.
    ///
    /// # Panics
    /// Panics if `k < 2`, `n == 0`, or `k^n` does not fit in `u32`.
    pub fn new(k: usize, n: usize) -> Self {
        let node_digits = Digits::new(k, n);
        let word_digits = if n >= 2 {
            Some(Digits::new(k, n - 1))
        } else {
            None
        };
        let switches_per_level = node_digits.count() / k;
        KAryNTree {
            k,
            n,
            node_digits,
            word_digits,
            switches_per_level,
        }
    }

    /// The arity `k` (up ports per switch = down ports per switch).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of levels `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of switches per level, `k^(n-1)`.
    #[inline]
    pub fn switches_per_level(&self) -> usize {
        self.switches_per_level
    }

    /// The node address codec (`n` base-`k` digits).
    #[inline]
    pub fn node_digits(&self) -> Digits {
        self.node_digits
    }

    /// Level of a switch (`0` = root level, `n-1` = leaf level).
    #[inline]
    pub fn level(&self, r: RouterId) -> usize {
        r.index() / self.switches_per_level
    }

    /// Word index of a switch within its level.
    #[inline]
    pub fn word(&self, r: RouterId) -> usize {
        r.index() % self.switches_per_level
    }

    /// The switch at `(level, word)`.
    #[inline]
    pub fn switch(&self, level: usize, word: usize) -> RouterId {
        debug_assert!(level < self.n && word < self.switches_per_level);
        RouterId((level * self.switches_per_level + word) as u32)
    }

    /// The leaf switch to which node `p` attaches.
    #[inline]
    pub fn leaf_switch(&self, p: NodeId) -> RouterId {
        self.switch(self.n - 1, p.index() / self.k)
    }

    /// Whether `port` points down (towards the leaves).
    #[inline]
    pub fn is_down_port(&self, port: usize) -> bool {
        port < self.k
    }

    /// The level of the nearest common ancestors of `a` and `b`: the
    /// longest common most-significant-first digit prefix of the two
    /// addresses. Ranges over `0..=n`; `n` means `a == b` and `n - 1`
    /// means "same leaf switch".
    #[inline]
    pub fn nca_level(&self, a: NodeId, b: NodeId) -> usize {
        self.node_digits.common_prefix_len(a.index(), b.index())
    }

    /// The down port a switch at `level` must take towards node `dest`
    /// while descending: digit `level` of the destination address.
    #[inline]
    pub fn down_port_towards(&self, level: usize, dest: NodeId) -> usize {
        self.node_digits.digit(dest.index(), level)
    }

    /// Whether `sw` lies on a descending path towards `dest`, i.e. is an
    /// ancestor of `dest`'s leaf switch (leaf switches are their own
    /// ancestors). True iff the switch word matches the destination
    /// address on digit positions `0..level`.
    pub fn is_ancestor_of(&self, sw: RouterId, dest: NodeId) -> bool {
        let level = self.level(sw);
        let word = self.word(sw);
        match self.word_digits {
            None => true, // single-switch tree
            Some(wd) => {
                (0..level).all(|j| wd.digit(word, j) == self.node_digits.digit(dest.index(), j))
            }
        }
    }

    /// Mean distance (in links) of a permutation traffic pattern,
    /// computed exactly from the pattern function. Self-sends contribute
    /// distance 0, matching the paper's convention for Equation (5).
    pub fn mean_permutation_distance(&self, perm: impl Fn(NodeId) -> NodeId) -> f64 {
        let n = self.num_nodes();
        let total: usize = (0..n)
            .map(|x| self.min_distance(NodeId(x as u32), perm(NodeId(x as u32))))
            .sum();
        total as f64 / n as f64
    }

    /// Equation (5) of the paper: the mean distance of the bit-reversal
    /// and transpose permutations on a k-ary n-tree (even `n`):
    ///
    /// ```text
    /// d_m = (k-1) / k^(n/2 + 1) * sum_{i=1}^{n/2} (n + 2i) k^i
    /// ```
    ///
    /// For the 4-ary 4-tree this gives 7.125, "very close to the network
    /// diameter" of 8.
    pub fn eq5_mean_distance(k: usize, n: usize) -> f64 {
        assert!(n.is_multiple_of(2), "Equation 5 assumes even n");
        let kf = k as f64;
        let sum: f64 = (1..=n / 2)
            .map(|i| (n as f64 + 2.0 * i as f64) * kf.powi(i as i32))
            .sum();
        (kf - 1.0) / kf.powi(n as i32 / 2 + 1) * sum
    }

    /// Per-node capacity under uniform traffic in flits per cycle.
    ///
    /// k-ary n-trees are not bisection-limited: the upper bound is simply
    /// the unidirectional bandwidth of the node-to-switch link (paper,
    /// Section 5), i.e. one flit per cycle.
    pub fn uniform_capacity_flits_per_cycle(&self) -> f64 {
        1.0
    }

    /// Number of bidirectional links crossing the canonical bisection
    /// (cut on the most significant address digit, even `k`):
    /// `(k/2) * k^(n-1) = N/2` root-level links — full bisection.
    pub fn bisection_links(&self) -> usize {
        assert!(self.k.is_multiple_of(2), "bisection defined for even k");
        self.k / 2 * self.k.pow((self.n - 1) as u32)
    }

    /// Worst-case *descent overload* of a traffic pattern: the maximum,
    /// over every level `l` and every destination subtree at that level,
    /// of `demand / capacity`, where *demand* is the number of packets
    /// that must take a level-`l` down link into the subtree (packets
    /// whose NCA level is `<= l` and whose destination lies in the
    /// subtree) and *capacity* is the number of such links,
    /// `k^(n-1-l)`.
    ///
    /// An overload above 1 means the pattern **necessarily** congests the
    /// descending phase, no matter how cleverly the adaptive ascent
    /// spreads packets. An overload of exactly 1 is the signature of the
    /// *congestion-free* permutations of Section 8 (after Heller), such
    /// as the complement: every subtree receives exactly as many packets
    /// as it has incoming links. Note the converse does not hold for the
    /// distributed algorithm: a pattern with overload `<= 1` (e.g.
    /// bit-reversal) can still suffer transient descending conflicts
    /// because the least-loaded ascent choice is made with only local
    /// information — this is precisely the effect Figures 5 e)–h) of the
    /// paper measure.
    pub fn descent_overload(&self, perm: impl Fn(NodeId) -> NodeId) -> f64 {
        let nn = self.num_nodes();
        let mut worst: f64 = 0.0;
        for l in 0..self.n {
            // demand[prefix of length l+1]
            let classes = self.k.pow((l + 1) as u32);
            let mut demand = vec![0usize; classes];
            for x in 0..nn {
                let src = NodeId(x as u32);
                let dst = perm(src);
                if dst == src {
                    continue; // palindromes etc. do not inject
                }
                if self.nca_level(src, dst) <= l {
                    let prefix: usize = (0..=l).fold(0, |acc, j| {
                        acc * self.k + self.node_digits.digit(dst.index(), j)
                    });
                    demand[prefix] += 1;
                }
            }
            let capacity = self.k.pow((self.n - 1 - l) as u32) as f64;
            for &d in &demand {
                worst = worst.max(d as f64 / capacity);
            }
        }
        worst
    }
}

impl Topology for KAryNTree {
    fn num_nodes(&self) -> usize {
        self.node_digits.count()
    }

    fn num_routers(&self) -> usize {
        self.n * self.switches_per_level
    }

    fn ports(&self, _r: RouterId) -> usize {
        2 * self.k
    }

    fn peer(&self, p: PortRef) -> PortPeer {
        let level = self.level(p.router);
        let word = self.word(p.router);
        if self.is_down_port(p.port) {
            let c = p.port;
            if level == self.n - 1 {
                // Leaf switch: down port c -> node word*k + c.
                PortPeer::Node(NodeId((word * self.k + c) as u32))
            } else {
                // Down to level + 1: set word digit `level` to c; the
                // child's up port back to us is our own digit `level`.
                let wd = self.word_digits.expect("n >= 2 when not leaf");
                let child_word = wd.with_digit(word, level, c);
                let up_port = self.k + wd.digit(word, level);
                PortPeer::Router(PortRef::new(self.switch(level + 1, child_word), up_port))
            }
        } else {
            let u = p.port - self.k;
            if level == 0 {
                // Root level: external connections, left uncabled.
                PortPeer::Unconnected
            } else {
                // Up to level - 1: parent u has word digit `level - 1`
                // set to u; its down port back to us is our own digit
                // `level - 1`.
                let wd = self.word_digits.expect("n >= 2 when not root-only");
                let parent_word = wd.with_digit(word, level - 1, u);
                let down_port = wd.digit(word, level - 1);
                PortPeer::Router(PortRef::new(self.switch(level - 1, parent_word), down_port))
            }
        }
    }

    fn node_port(&self, n: NodeId) -> PortRef {
        PortRef::new(self.leaf_switch(n), n.index() % self.k)
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        let m = self.nca_level(a, b);
        if m == self.n {
            0
        } else {
            2 * (self.n - m)
        }
    }

    fn label(&self) -> String {
        format!("{}-ary {}-tree", self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;

    #[test]
    fn paper_tree_shape() {
        let t = KAryNTree::new(4, 4);
        assert_eq!(t.num_nodes(), 256);
        assert_eq!(t.num_routers(), 256); // n * k^(n-1) = 4 * 64
        assert_eq!(t.switches_per_level(), 64);
        // n * k^n links = 4 * 256 = 1024: 3 * 256 switch links + 256 node links.
        assert_eq!(t.num_links(), t.n() * t.num_nodes());
        assert_eq!(t.label(), "4-ary 4-tree");
    }

    #[test]
    fn paper_networks_are_cost_equalized() {
        // Section 5: same node count and same router count.
        use crate::cube::KAryNCube;
        let t = KAryNTree::new(4, 4);
        let c = KAryNCube::new(16, 2);
        assert_eq!(t.num_nodes(), c.num_nodes());
        assert_eq!(t.num_routers(), c.num_routers());
        // "Both k-ary n-trees and k-ary n-cubes have n k^n links" and
        // "the quaternary fat-tree has got twice as many links as a
        // bi-dimensional cube" (Section 5). The paper's n*k^n counts
        // node links for the tree (1024 = 768 switch + 256 node) and
        // only the torus links for the cube (512).
        assert_eq!(t.num_links(), t.n() * t.num_nodes());
        assert_eq!(c.num_links() - c.num_nodes(), c.n() * c.num_nodes());
        assert_eq!(t.num_links(), 2 * (c.num_links() - c.num_nodes()));
    }

    #[test]
    fn paper_tree_validates() {
        validate(&KAryNTree::new(4, 4)).unwrap();
    }

    #[test]
    fn small_trees_validate() {
        for (k, n) in [
            (2, 1),
            (2, 2),
            (2, 3),
            (2, 4),
            (3, 2),
            (3, 3),
            (4, 2),
            (4, 3),
            (5, 2),
        ] {
            validate(&KAryNTree::new(k, n)).unwrap_or_else(|e| panic!("({k},{n}): {e}"));
        }
    }

    #[test]
    fn fig2_4ary_2tree() {
        // Figure 2 of the paper: 16 nodes, 2 levels of 4 switches, and
        // every leaf switch connects to every root switch.
        let t = KAryNTree::new(4, 2);
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.num_routers(), 8);
        for leaf_word in 0..4 {
            let leaf = t.switch(1, leaf_word);
            let mut parents: Vec<usize> = (4..8)
                .map(|p| match t.peer(PortRef::new(leaf, p)) {
                    PortPeer::Router(pr) => pr.router.index(),
                    other => panic!("unexpected peer {other:?}"),
                })
                .collect();
            parents.sort_unstable();
            assert_eq!(parents, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn node_attachment() {
        let t = KAryNTree::new(4, 4);
        for x in 0..t.num_nodes() {
            let node = NodeId(x as u32);
            let pr = t.node_port(node);
            assert_eq!(t.peer(pr), PortPeer::Node(node));
            assert_eq!(t.level(pr.router), 3);
        }
    }

    #[test]
    fn distances() {
        let t = KAryNTree::new(4, 4);
        let a = NodeId(0); // digits 0,0,0,0
        assert_eq!(t.min_distance(a, a), 0);
        assert_eq!(t.min_distance(a, NodeId(1)), 2); // same leaf switch
        assert_eq!(t.min_distance(a, NodeId(4)), 4); // prefix len 2
        assert_eq!(t.min_distance(a, NodeId(16)), 6); // prefix len 1
        assert_eq!(t.min_distance(a, NodeId(64)), 8); // prefix len 0
                                                      // Diameter = 2n.
        let max = (0..256)
            .map(|b| t.min_distance(a, NodeId(b)))
            .max()
            .unwrap();
        assert_eq!(max, 8);
    }

    #[test]
    fn eq5_value_for_paper_tree() {
        let dm = KAryNTree::eq5_mean_distance(4, 4);
        assert!((dm - 7.125).abs() < 1e-9, "d_m = {dm}");
    }

    #[test]
    fn is_ancestor_matches_descending_reachability() {
        let t = KAryNTree::new(3, 3);
        // BFS down from each switch, collect reachable nodes, compare.
        for r in 0..t.num_routers() {
            let rid = RouterId(r as u32);
            let mut reach = vec![false; t.num_nodes()];
            let mut stack = vec![rid];
            while let Some(s) = stack.pop() {
                for p in 0..t.k() {
                    match t.peer(PortRef::new(s, p)) {
                        PortPeer::Node(n) => reach[n.index()] = true,
                        PortPeer::Router(pr) => stack.push(pr.router),
                        PortPeer::Unconnected => {}
                    }
                }
            }
            for (x, &reached) in reach.iter().enumerate() {
                assert_eq!(
                    reached,
                    t.is_ancestor_of(rid, NodeId(x as u32)),
                    "switch {rid} node {x}"
                );
            }
        }
    }

    #[test]
    fn ascend_then_descend_reaches_destination() {
        // Simulate the two-phase minimal route for every pair on a small
        // tree, taking an arbitrary (here: 0th) up port each ascent step.
        let t = KAryNTree::new(3, 3);
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                if a == b {
                    continue;
                }
                let m = t.nca_level(a, b);
                let mut sw = t.leaf_switch(a);
                let mut hops = 1; // node -> leaf switch
                for up in 0..(t.n() - 1 - m) {
                    let port = t.k() + (up % t.k()); // vary choices a bit
                    match t.peer(PortRef::new(sw, port)) {
                        PortPeer::Router(pr) => sw = pr.router,
                        other => panic!("expected router, got {other:?}"),
                    }
                    hops += 1;
                }
                assert_eq!(t.level(sw), m);
                assert!(t.is_ancestor_of(sw, b), "NCA must cover destination");
                while t.level(sw) < t.n() - 1 {
                    let port = t.down_port_towards(t.level(sw), b);
                    match t.peer(PortRef::new(sw, port)) {
                        PortPeer::Router(pr) => sw = pr.router,
                        other => panic!("expected router, got {other:?}"),
                    }
                    hops += 1;
                }
                let port = t.down_port_towards(t.n() - 1, b);
                assert_eq!(t.peer(PortRef::new(sw, port)), PortPeer::Node(b));
                hops += 1;
                assert_eq!(hops, t.min_distance(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn complement_has_unit_descent_overload() {
        let t = KAryNTree::new(4, 4);
        let n = t.num_nodes();
        // Complement permutation: digit-wise complement of the address.
        let complement = |x: NodeId| NodeId((n - 1 - x.index()) as u32);
        let overload = t.descent_overload(complement);
        assert!((overload - 1.0).abs() < 1e-12, "overload {overload}");
        // Identity: nobody injects, no descent demand at all.
        assert_eq!(t.descent_overload(|x| x), 0.0);
    }

    #[test]
    fn hotspot_overloads_descent() {
        let t = KAryNTree::new(4, 4);
        // Everyone sends to node 0: the last link must carry 255 packets.
        assert!(t.descent_overload(|_| NodeId(0)) > 100.0);
    }
}
