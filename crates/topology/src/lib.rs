//! Interconnection-network topologies for the ICPP'97 reproduction.
//!
//! This crate provides the two topology families compared by Petrini &
//! Vanneschi in *Network Performance under Physical Constraints*:
//!
//! * [`KAryNCube`] — direct networks: `k^n` nodes arranged in an
//!   `n`-dimensional grid with `k` nodes per dimension and wrap-around
//!   links (a torus; the 16-ary 2-cube of the paper).
//! * [`KAryNTree`] — indirect networks: `k^n` processing nodes at the
//!   leaves of `n` levels of `k^(n-1)` fixed-arity switches, the
//!   butterfly-based fat-tree subclass introduced by the same authors
//!   (the 4-ary 4-tree of the paper).
//!
//! Both expose a common port-level view through the [`Topology`] trait so
//! that the flit-level simulator in the `netsim` crate can build routers
//! and links without knowing which family it is simulating. Addressing,
//! minimal distances, bisection widths and the structural invariants the
//! paper relies on (same node count, same router count, `n·k^n` links)
//! are all available and unit-tested here.

#![warn(missing_docs)]
pub mod cube;
pub mod digits;
pub mod graph;
pub mod ids;
pub mod mesh;
pub mod tree;

pub use cube::{CubeDirection, KAryNCube, Sign};
pub use digits::Digits;
pub use graph::{validate, PortPeer, PortRef, Topology, TopologyError};
pub use ids::{NodeId, RouterId};
pub use mesh::KAryNMesh;
pub use tree::KAryNTree;
