//! Interconnection-network topologies for the ICPP'97 reproduction.
//!
//! This crate provides the two topology families compared by Petrini &
//! Vanneschi in *Network Performance under Physical Constraints*:
//!
//! * [`KAryNCube`] — direct networks: `k^n` nodes arranged in an
//!   `n`-dimensional grid with `k` nodes per dimension and wrap-around
//!   links (a torus; the 16-ary 2-cube of the paper).
//! * [`KAryNTree`] — indirect networks: `k^n` processing nodes at the
//!   leaves of `n` levels of `k^(n-1)` fixed-arity switches, the
//!   butterfly-based fat-tree subclass introduced by the same authors
//!   (the 4-ary 4-tree of the paper).
//!
//! Beyond the paper's pair, the crate grows an open family system
//! around the same port-level contract:
//!
//! * [`KAryNMesh`] — the cube without wrap-around links (ablations).
//! * [`TaperedKAryNTree`] — fat-trees with an oversubscription ratio:
//!   `ceil(k/taper)` up links per switch instead of `k`.
//! * [`TorusHypercube`] — a k×k torus crossed with a binary hypercube.
//!
//! All expose a common port-level view through the [`Topology`] trait so
//! that the flit-level simulator in the `netsim` crate can build routers
//! and links without knowing which family it is simulating. Addressing,
//! minimal distances, bisection widths and the structural invariants the
//! paper relies on (same node count, same router count, `n·k^n` links)
//! are all available and unit-tested here. The [`mod@family`] module is the
//! registration seam: one table of [`family::Family`] rows (slug,
//! aliases, shape-generic constructor) that the scenario axes, the CLI
//! and the design-space enumerator all consult.

#![warn(missing_docs)]
pub mod cube;
pub mod digits;
pub mod family;
pub mod graph;
pub mod ids;
pub mod mesh;
pub mod tapered_tree;
pub mod thc;
pub mod tree;

pub use cube::{CubeDirection, KAryNCube, Sign};
pub use digits::Digits;
pub use family::{families, family, Family, FamilyShape};
pub use graph::{validate, PortPeer, PortRef, Topology, TopologyError};
pub use ids::{NodeId, RouterId};
pub use mesh::KAryNMesh;
pub use tapered_tree::TaperedKAryNTree;
pub use thc::TorusHypercube;
pub use tree::KAryNTree;
