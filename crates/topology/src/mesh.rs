//! k-ary n-meshes — tori without the wrap-around connections.
//!
//! The paper's cube family keeps its wrap-around links (Section 3), and
//! its deadlock machinery — two virtual networks split at a dateline —
//! exists *only because of them*. The mesh variant is the natural
//! ablation: same grid, no wrap-around, no datelines needed, but an
//! asymmetric channel load (the center is busier than the edges) and
//! half the bisection. It is provided as an extension for the ablation
//! benchmarks; the paper's own machines include mesh-like designs
//! (Intel Delta/Paragon).
//!
//! Port convention matches [`crate::KAryNCube`]: port `2d` is the plus
//! direction of dimension `d`, `2d + 1` the minus direction, `2n` the
//! local node. Boundary ports (plus at coordinate `k-1`, minus at `0`)
//! are unconnected.

use crate::cube::{CubeDirection, Sign};
use crate::graph::{PortPeer, PortRef, Topology};
use crate::ids::{NodeId, RouterId};

/// A k-ary n-mesh (grid without wrap-around).
#[derive(Clone, Debug)]
pub struct KAryNMesh {
    k: usize,
    n: usize,
    num_nodes: usize,
}

impl KAryNMesh {
    /// Build a k-ary n-mesh.
    ///
    /// # Panics
    /// Panics if `k < 2`, `n == 0`, or `k^n` does not fit in `u32`.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k >= 2 && n >= 1);
        let mut num_nodes: u64 = 1;
        for _ in 0..n {
            num_nodes = num_nodes.checked_mul(k as u64).expect("k^n overflow");
        }
        assert!(num_nodes <= u32::MAX as u64);
        KAryNMesh {
            k,
            n,
            num_nodes: num_nodes as usize,
        }
    }

    /// The radix `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coordinate of node `x` in dimension `d` (0 = least significant).
    #[inline]
    pub fn coord(&self, x: NodeId, d: usize) -> usize {
        debug_assert!(d < self.n);
        x.index() / self.k.pow(d as u32) % self.k
    }

    /// The neighbor one hop along `dir`, or `None` at the mesh boundary.
    pub fn neighbor(&self, x: NodeId, dir: CubeDirection) -> Option<NodeId> {
        let c = self.coord(x, dir.dim);
        let stride = self.k.pow(dir.dim as u32);
        match dir.sign {
            Sign::Plus if c + 1 < self.k => Some(NodeId((x.index() + stride) as u32)),
            Sign::Minus if c > 0 => Some(NodeId((x.index() - stride) as u32)),
            _ => None,
        }
    }

    /// The unique minimal direction from `a` to `b` in dimension `d`
    /// (`None` if aligned). Meshes have no routing ties.
    pub fn direction(&self, a: NodeId, b: NodeId, d: usize) -> Option<Sign> {
        use std::cmp::Ordering;
        match self.coord(a, d).cmp(&self.coord(b, d)) {
            Ordering::Less => Some(Sign::Plus),
            Ordering::Greater => Some(Sign::Minus),
            Ordering::Equal => None,
        }
    }

    /// Manhattan distance between the routers of two nodes.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> usize {
        (0..self.n)
            .map(|d| self.coord(a, d).abs_diff(self.coord(b, d)))
            .sum()
    }

    /// Bidirectional links crossing the middle bisection (even `k`):
    /// half the torus figure, `k^(n-1)`.
    pub fn bisection_links(&self) -> usize {
        assert!(self.k.is_multiple_of(2));
        self.num_nodes / self.k
    }

    /// Per-node uniform capacity in flits/cycle: `4/k` — half the
    /// equivalent torus, since the wrap-around links are gone.
    pub fn uniform_capacity_flits_per_cycle(&self) -> f64 {
        let directed = 2.0 * self.bisection_links() as f64;
        (2.0 * directed / self.num_nodes as f64).min(1.0)
    }

    /// Mean hop distance over all ordered pairs: `n (k^2 - 1) / (3 k)`.
    pub fn mean_hop_distance(&self) -> f64 {
        // Per dimension: E|a - b| for independent uniform a, b on 0..k.
        let k = self.k as f64;
        self.n as f64 * (k * k - 1.0) / (3.0 * k)
    }
}

impl Topology for KAryNMesh {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_routers(&self) -> usize {
        self.num_nodes
    }

    fn ports(&self, _r: RouterId) -> usize {
        2 * self.n + 1
    }

    fn peer(&self, p: PortRef) -> PortPeer {
        let node = NodeId(p.router.0);
        match CubeDirection::from_port(p.port, self.n) {
            Some(dir) => match self.neighbor(node, dir) {
                Some(other) => {
                    let back = CubeDirection {
                        dim: dir.dim,
                        sign: dir.sign.opposite(),
                    };
                    PortPeer::Router(PortRef::new(RouterId(other.0), back.port()))
                }
                None => PortPeer::Unconnected,
            },
            None => {
                if p.port == 2 * self.n {
                    PortPeer::Node(node)
                } else {
                    PortPeer::Unconnected
                }
            }
        }
    }

    fn node_port(&self, n: NodeId) -> PortRef {
        PortRef::new(RouterId(n.0), 2 * self.n)
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        if a == b {
            0
        } else {
            self.hop_distance(a, b) + 2
        }
    }

    fn label(&self) -> String {
        format!("{}-ary {}-mesh", self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;

    #[test]
    fn meshes_validate() {
        for (k, n) in [(2usize, 2usize), (4, 2), (16, 2), (3, 3), (4, 3)] {
            validate(&KAryNMesh::new(k, n)).unwrap_or_else(|e| panic!("({k},{n}): {e}"));
        }
    }

    #[test]
    fn boundary_ports_uncabled() {
        let m = KAryNMesh::new(4, 2);
        // Node (0,0): minus ports in both dimensions dangle.
        assert_eq!(m.peer(PortRef::new(RouterId(0), 1)), PortPeer::Unconnected);
        assert_eq!(m.peer(PortRef::new(RouterId(0), 3)), PortPeer::Unconnected);
        // Node (3,3): plus ports dangle.
        assert_eq!(m.peer(PortRef::new(RouterId(15), 0)), PortPeer::Unconnected);
        assert_eq!(m.peer(PortRef::new(RouterId(15), 2)), PortPeer::Unconnected);
    }

    #[test]
    fn link_count() {
        // k-ary n-mesh has n (k-1) k^(n-1) grid links + k^n node links.
        let m = KAryNMesh::new(4, 2);
        assert_eq!(m.num_links(), 2 * 3 * 4 + 16);
    }

    #[test]
    fn distances_are_manhattan() {
        let m = KAryNMesh::new(16, 2);
        let a = NodeId(0);
        let b = NodeId((15 + 15 * 16) as u32);
        assert_eq!(m.hop_distance(a, b), 30); // no wraparound shortcuts
        let torus = crate::cube::KAryNCube::new(16, 2);
        assert_eq!(torus.hop_distance(a, b), 2); // with them: 1 + 1
    }

    #[test]
    fn half_the_torus_capacity() {
        let m = KAryNMesh::new(16, 2);
        assert_eq!(m.bisection_links(), 16);
        assert!((m.uniform_capacity_flits_per_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_distance_formula_matches_brute_force() {
        let m = KAryNMesh::new(5, 2);
        let n = m.num_nodes();
        let total: usize = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .map(|(a, b)| m.hop_distance(NodeId(a as u32), NodeId(b as u32)))
            .sum();
        let brute = total as f64 / (n * n) as f64;
        assert!((m.mean_hop_distance() - brute).abs() < 1e-12);
    }

    #[test]
    fn no_ties_ever() {
        let m = KAryNMesh::new(4, 2);
        for a in 0..16u32 {
            for b in 0..16u32 {
                for d in 0..2 {
                    // direction is unique or None; consistency with
                    // coordinates:
                    let dir = m.direction(NodeId(a), NodeId(b), d);
                    match dir {
                        None => assert_eq!(m.coord(NodeId(a), d), m.coord(NodeId(b), d)),
                        Some(Sign::Plus) => {
                            assert!(m.coord(NodeId(a), d) < m.coord(NodeId(b), d))
                        }
                        Some(Sign::Minus) => {
                            assert!(m.coord(NodeId(a), d) > m.coord(NodeId(b), d))
                        }
                    }
                }
            }
        }
    }
}
