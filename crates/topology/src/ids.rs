//! Strongly typed identifiers for processing nodes and routing switches.
//!
//! Keeping node and router identifiers as distinct newtypes prevents the
//! most common class of indexing bug in network simulators: using a node
//! index where a switch index is expected. In a k-ary n-cube the two
//! happen to coincide numerically (every node hosts a router), which makes
//! the bug silent; in a k-ary n-tree they do not.

use std::fmt;

/// Identifier of a processing node (a traffic source/sink).
///
/// Nodes are numbered `0..N` where `N = k^n` for both topology families.
/// The numeric value doubles as the node's base-`k` address: digit `j`
/// (most-significant first) is `(id / k^(n-1-j)) % k`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

/// Identifier of a routing switch.
///
/// * In a [`crate::KAryNCube`], router `r` is co-located with node `r`.
/// * In a [`crate::KAryNTree`] with parameters `(k, n)`, router
///   `l * k^(n-1) + w` is the switch at level `l` (0 = root level,
///   `n-1` = leaf level) with word index `w`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RouterId(pub u32);

impl NodeId {
    /// The index as a `usize`, for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RouterId {
    /// The index as a `usize`, for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

impl From<usize> for RouterId {
    #[inline]
    fn from(v: usize) -> Self {
        RouterId(v as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n: NodeId = 42usize.into();
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "n42");
    }

    #[test]
    fn router_id_roundtrip() {
        let r: RouterId = 7usize.into();
        assert_eq!(r.index(), 7);
        assert_eq!(r.to_string(), "r7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(3) < NodeId(4));
        assert!(RouterId(0) < RouterId(1));
    }
}
