//! Tapered (slimmed) k-ary n-trees — fat-trees with an oversubscription
//! ratio.
//!
//! A full k-ary n-tree spends half of every switch's ports on upward
//! links, giving full bisection bandwidth. Real machines rarely pay for
//! that: a *tapered* tree keeps the `k` down ports but carries only
//! `u = ceil(k / taper)` up ports per switch, so the level above needs
//! only a `u/k` fraction of the full switch count. `taper = 1` is the
//! untapered tree (bit-identical wiring to [`crate::KAryNTree`]);
//! `taper = 2` is the common 2:1 oversubscribed fabric of Solnushkin's
//! automated fat-tree designs (arXiv:1301.6179).
//!
//! ## Addressing
//!
//! Levels are numbered `0` (roots) to `n-1` (leaves). A switch at level
//! `l` is identified by a word of `n-1` **mixed-radix** digits (most
//! significant first): digit `j` has radix `k` for `j < l` (positions
//! already resolved towards the leaves) and radix `u` for `j >= l`
//! (positions resolved towards the roots — only `u` parents exist per
//! exchange). Level `l` therefore holds `k^l * u^(n-1-l)` switches and
//! `RouterId = level_offset(l) + word`.
//!
//! ## Ports
//!
//! Every switch has `k + u` ports: `0..k` go down (to children, or to
//! the processing nodes at the leaf level), `k..k+u` go up. The up
//! ports of the root level are unconnected, as in the full tree. Between
//! levels `l` and `l+1` the wiring is the same one-digit butterfly
//! exchange as the full tree, with the parent digit restricted to
//! `0..u`: the parent reaches the child through down port `w'_l` (the
//! child's digit `l`) and the child reaches the parent through up port
//! `k + w_l` (the parent's digit `l`).
//!
//! ## Routing structure
//!
//! Identical to the full tree: ascend adaptively (any of the `u` up
//! ports) to the nearest-common-ancestor level, then descend
//! deterministically by destination digit. Minimal distances are
//! unchanged by the taper — only the *number* of disjoint ascent paths
//! shrinks, which is exactly the bandwidth the oversubscription sells.

use crate::digits::Digits;
use crate::graph::{PortPeer, PortRef, Topology};
use crate::ids::{NodeId, RouterId};

/// A tapered k-ary n-tree with `u = ceil(k / taper)` up ports per
/// switch.
///
/// ```
/// use topology::{TaperedKAryNTree, NodeId, Topology};
///
/// let t = TaperedKAryNTree::new(4, 4, 2); // 2:1 oversubscribed fat-tree
/// assert_eq!(t.num_nodes(), 256);
/// assert_eq!(t.up(), 2); // ceil(4 / 2) up ports per switch
/// // Minimal distances match the full tree; only bandwidth shrinks.
/// assert_eq!(t.min_distance(NodeId(0), NodeId(255)), 8);
/// ```
#[derive(Clone, Debug)]
pub struct TaperedKAryNTree {
    k: usize,
    n: usize,
    taper: usize,
    /// Up ports per switch, `ceil(k / taper)`.
    up: usize,
    /// Codec for node addresses (`n` digits, radix `k`).
    node_digits: Digits,
    /// `level_offset[l]` = RouterId of the first switch of level `l`;
    /// one extra entry holding the total router count.
    level_offset: Vec<usize>,
}

impl TaperedKAryNTree {
    /// Build a tapered k-ary n-tree.
    ///
    /// # Panics
    /// Panics if `k < 2`, `n == 0`, `taper == 0`, or `k^n` does not fit
    /// in `u32`.
    pub fn new(k: usize, n: usize, taper: usize) -> Self {
        assert!(taper >= 1, "taper must be at least 1");
        let node_digits = Digits::new(k, n);
        let up = k.div_ceil(taper);
        let mut level_offset = Vec::with_capacity(n + 1);
        let mut offset = 0usize;
        for l in 0..n {
            level_offset.push(offset);
            let count = (k as u64).pow(l as u32) * (up as u64).pow((n - 1 - l) as u32);
            offset = offset
                .checked_add(count as usize)
                .expect("router count overflow");
        }
        level_offset.push(offset);
        assert!(offset <= u32::MAX as usize, "router count exceeds u32");
        TaperedKAryNTree {
            k,
            n,
            taper,
            up,
            node_digits,
            level_offset,
        }
    }

    /// The arity `k` (down ports per switch).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of levels `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The oversubscription ratio the tree was built with.
    #[inline]
    pub fn taper(&self) -> usize {
        self.taper
    }

    /// Up ports per switch, `ceil(k / taper)`.
    #[inline]
    pub fn up(&self) -> usize {
        self.up
    }

    /// Number of switches at level `l`: `k^l * u^(n-1-l)`.
    #[inline]
    pub fn switches_at_level(&self, l: usize) -> usize {
        self.level_offset[l + 1] - self.level_offset[l]
    }

    /// Level of a switch (`0` = root level, `n-1` = leaf level).
    #[inline]
    pub fn level(&self, r: RouterId) -> usize {
        // n is tiny (<= 16 for any u32-addressable tree): linear scan.
        let idx = r.index();
        let mut l = 0;
        while self.level_offset[l + 1] <= idx {
            l += 1;
        }
        l
    }

    /// Word index of a switch within its level.
    #[inline]
    pub fn word(&self, r: RouterId) -> usize {
        r.index() - self.level_offset[self.level(r)]
    }

    /// The switch at `(level, word)`.
    #[inline]
    pub fn switch(&self, level: usize, word: usize) -> RouterId {
        debug_assert!(level < self.n && word < self.switches_at_level(level));
        RouterId((self.level_offset[level] + word) as u32)
    }

    /// Radix of word digit `j` at `level`: `k` below the level's
    /// resolution point, `u` at or above it.
    #[inline]
    fn word_radix(&self, level: usize, j: usize) -> usize {
        if j < level {
            self.k
        } else {
            self.up
        }
    }

    /// Digit `j` (most significant first) of a level-`level` word.
    fn word_digit(&self, level: usize, word: usize, j: usize) -> usize {
        debug_assert!(j < self.n - 1);
        let mut stride = 1usize;
        for p in (j + 1)..(self.n - 1) {
            stride *= self.word_radix(level, p);
        }
        word / stride % self.word_radix(level, j)
    }

    /// Recompose a level-`level` word from its digit vector.
    fn word_compose(&self, level: usize, digits: &[usize]) -> usize {
        debug_assert_eq!(digits.len(), self.n - 1);
        let mut w = 0usize;
        for (j, &d) in digits.iter().enumerate() {
            debug_assert!(d < self.word_radix(level, j));
            w = w * self.word_radix(level, j) + d;
        }
        w
    }

    /// Decompose a level-`level` word into its digit vector.
    fn word_expand(&self, level: usize, word: usize) -> Vec<usize> {
        (0..self.n - 1)
            .map(|j| self.word_digit(level, word, j))
            .collect()
    }

    /// The leaf switch to which node `p` attaches.
    #[inline]
    pub fn leaf_switch(&self, p: NodeId) -> RouterId {
        // Leaf words have every digit at radix k: the word is simply the
        // node address without its last digit.
        self.switch(self.n - 1, p.index() / self.k)
    }

    /// Whether `port` points down (towards the leaves).
    #[inline]
    pub fn is_down_port(&self, port: usize) -> bool {
        port < self.k
    }

    /// The level of the nearest common ancestors of `a` and `b` — the
    /// longest common digit prefix of the two addresses, exactly as in
    /// the full tree (the taper removes paths, not reachability).
    #[inline]
    pub fn nca_level(&self, a: NodeId, b: NodeId) -> usize {
        self.node_digits.common_prefix_len(a.index(), b.index())
    }

    /// The down port a switch at `level` must take towards node `dest`
    /// while descending: digit `level` of the destination address.
    #[inline]
    pub fn down_port_towards(&self, level: usize, dest: NodeId) -> usize {
        self.node_digits.digit(dest.index(), level)
    }

    /// Whether `sw` lies on a descending path towards `dest`. True iff
    /// the switch word matches the destination address on digit
    /// positions `0..level` (the radix-`k` positions; the radix-`u`
    /// positions are re-resolved by the descent itself).
    pub fn is_ancestor_of(&self, sw: RouterId, dest: NodeId) -> bool {
        let level = self.level(sw);
        let word = self.word(sw);
        (0..level)
            .all(|j| self.word_digit(level, word, j) == self.node_digits.digit(dest.index(), j))
    }

    /// Number of bidirectional links crossing the canonical bisection
    /// (cut on the most significant address digit, even `k`):
    /// `(k/2) * u^(n-1)` root-level links. The full tree (`u = k`)
    /// recovers `N/2` — full bisection.
    pub fn bisection_links(&self) -> usize {
        assert!(self.k.is_multiple_of(2), "bisection defined for even k");
        self.k / 2 * self.up.pow((self.n - 1) as u32)
    }

    /// Per-node capacity under uniform traffic in flits per cycle:
    /// `min(1, 2 (u/k)^(n-1))` — the bisection bound of the paper's
    /// footnote, which the taper shrinks by `(u/k)^(n-1)`. The full
    /// tree recovers the node-link bound of 1 flit per cycle.
    pub fn uniform_capacity_flits_per_cycle(&self) -> f64 {
        let ratio = (self.up as f64 / self.k as f64).powi(self.n as i32 - 1);
        (2.0 * ratio).min(1.0)
    }
}

impl Topology for TaperedKAryNTree {
    fn num_nodes(&self) -> usize {
        self.node_digits.count()
    }

    fn num_routers(&self) -> usize {
        self.level_offset[self.n]
    }

    fn ports(&self, _r: RouterId) -> usize {
        self.k + self.up
    }

    fn peer(&self, p: PortRef) -> PortPeer {
        let level = self.level(p.router);
        let word = self.word(p.router);
        if self.is_down_port(p.port) {
            let c = p.port;
            if level == self.n - 1 {
                // Leaf switch: down port c -> node word*k + c.
                PortPeer::Node(NodeId((word * self.k + c) as u32))
            } else {
                // Down to level + 1: set word digit `level` to c (it
                // gains radix k in the child); the child's up port back
                // to us is our own digit `level` (radix u here).
                let mut digits = self.word_expand(level, word);
                let up_port = self.k + digits[level];
                digits[level] = c;
                let child_word = self.word_compose(level + 1, &digits);
                PortPeer::Router(PortRef::new(self.switch(level + 1, child_word), up_port))
            }
        } else {
            let u = p.port - self.k;
            if u >= self.up {
                return PortPeer::Unconnected;
            }
            if level == 0 {
                // Root level: external connections, left uncabled.
                PortPeer::Unconnected
            } else {
                // Up to level - 1: the parent has word digit `level - 1`
                // set to u (radix u up there); its down port back to us
                // is our own digit `level - 1` (radix k here).
                let mut digits = self.word_expand(level, word);
                let down_port = digits[level - 1];
                digits[level - 1] = u;
                let parent_word = self.word_compose(level - 1, &digits);
                PortPeer::Router(PortRef::new(self.switch(level - 1, parent_word), down_port))
            }
        }
    }

    fn node_port(&self, n: NodeId) -> PortRef {
        PortRef::new(self.leaf_switch(n), n.index() % self.k)
    }

    fn min_distance(&self, a: NodeId, b: NodeId) -> usize {
        let m = self.nca_level(a, b);
        if m == self.n {
            0
        } else {
            2 * (self.n - m)
        }
    }

    fn label(&self) -> String {
        format!("{}-ary {}-tree taper {}", self.k, self.n, self.taper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;
    use crate::tree::KAryNTree;

    #[test]
    fn shape_of_the_2to1_paper_size() {
        let t = TaperedKAryNTree::new(4, 4, 2);
        assert_eq!(t.num_nodes(), 256);
        assert_eq!(t.up(), 2);
        // Levels hold k^l * u^(3-l) switches: 8, 16, 32, 64.
        assert_eq!(t.switches_at_level(0), 8);
        assert_eq!(t.switches_at_level(1), 16);
        assert_eq!(t.switches_at_level(2), 32);
        assert_eq!(t.switches_at_level(3), 64);
        assert_eq!(t.num_routers(), 120);
        assert_eq!(t.ports(RouterId(0)), 6);
        assert_eq!(t.label(), "4-ary 4-tree taper 2");
    }

    #[test]
    fn tapered_trees_validate() {
        for (k, n, taper) in [
            (4usize, 4usize, 2usize),
            (4, 4, 4),
            (4, 3, 2),
            (4, 2, 2),
            (2, 3, 2),
            (3, 3, 2),
            (5, 2, 2),
            (8, 2, 4),
            (4, 4, 3),
            (2, 1, 2),
        ] {
            validate(&TaperedKAryNTree::new(k, n, taper))
                .unwrap_or_else(|e| panic!("({k},{n},{taper}): {e}"));
        }
    }

    #[test]
    fn taper_one_reproduces_the_full_tree_exactly() {
        for (k, n) in [(2usize, 3usize), (3, 3), (4, 2), (4, 4)] {
            let tapered = TaperedKAryNTree::new(k, n, 1);
            let full = KAryNTree::new(k, n);
            assert_eq!(tapered.num_nodes(), full.num_nodes());
            assert_eq!(tapered.num_routers(), full.num_routers());
            assert_eq!(tapered.ports(RouterId(0)), full.ports(RouterId(0)));
            for r in 0..full.num_routers() {
                let rid = RouterId(r as u32);
                for p in 0..full.ports(rid) {
                    assert_eq!(
                        tapered.peer(PortRef::new(rid, p)),
                        full.peer(PortRef::new(rid, p)),
                        "({k},{n}) r{r} port {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn node_attachment() {
        let t = TaperedKAryNTree::new(4, 3, 2);
        for x in 0..t.num_nodes() {
            let node = NodeId(x as u32);
            let pr = t.node_port(node);
            assert_eq!(t.peer(pr), PortPeer::Node(node));
            assert_eq!(t.level(pr.router), 2);
        }
    }

    #[test]
    fn distances_match_the_full_tree() {
        let tapered = TaperedKAryNTree::new(4, 3, 2);
        let full = KAryNTree::new(4, 3);
        for a in 0..64u32 {
            for b in 0..64u32 {
                assert_eq!(
                    tapered.min_distance(NodeId(a), NodeId(b)),
                    full.min_distance(NodeId(a), NodeId(b))
                );
            }
        }
    }

    #[test]
    fn ascend_then_descend_reaches_destination() {
        // The two-phase minimal route works through any up-port choice.
        let t = TaperedKAryNTree::new(4, 3, 2);
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                if a == b {
                    continue;
                }
                let m = t.nca_level(a, b);
                let mut sw = t.leaf_switch(a);
                let mut hops = 1; // node -> leaf switch
                for up in 0..(t.n() - 1 - m) {
                    let port = t.k() + (up % t.up()); // vary choices
                    match t.peer(PortRef::new(sw, port)) {
                        PortPeer::Router(pr) => sw = pr.router,
                        other => panic!("expected router, got {other:?}"),
                    }
                    hops += 1;
                }
                assert_eq!(t.level(sw), m);
                assert!(t.is_ancestor_of(sw, b), "NCA must cover destination");
                while t.level(sw) < t.n() - 1 {
                    let port = t.down_port_towards(t.level(sw), b);
                    match t.peer(PortRef::new(sw, port)) {
                        PortPeer::Router(pr) => sw = pr.router,
                        other => panic!("expected router, got {other:?}"),
                    }
                    hops += 1;
                }
                let port = t.down_port_towards(t.n() - 1, b);
                assert_eq!(t.peer(PortRef::new(sw, port)), PortPeer::Node(b));
                hops += 1;
                assert_eq!(hops, t.min_distance(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn is_ancestor_matches_descending_reachability() {
        let t = TaperedKAryNTree::new(3, 3, 2);
        for r in 0..t.num_routers() {
            let rid = RouterId(r as u32);
            let mut reach = vec![false; t.num_nodes()];
            let mut stack = vec![rid];
            while let Some(s) = stack.pop() {
                for p in 0..t.k() {
                    match t.peer(PortRef::new(s, p)) {
                        PortPeer::Node(n) => reach[n.index()] = true,
                        PortPeer::Router(pr) => stack.push(pr.router),
                        PortPeer::Unconnected => {}
                    }
                }
            }
            for (x, &reached) in reach.iter().enumerate() {
                assert_eq!(
                    reached,
                    t.is_ancestor_of(rid, NodeId(x as u32)),
                    "switch {rid} node {x}"
                );
            }
        }
    }

    #[test]
    fn bisection_and_capacity_shrink_with_the_taper() {
        let full = TaperedKAryNTree::new(4, 4, 1);
        assert_eq!(full.bisection_links(), 128); // N/2: full bisection
        assert_eq!(full.uniform_capacity_flits_per_cycle(), 1.0);

        let half = TaperedKAryNTree::new(4, 4, 2);
        assert_eq!(half.bisection_links(), 16); // (k/2) * 2^3
        let cap = half.uniform_capacity_flits_per_cycle();
        assert!((cap - 0.25).abs() < 1e-12, "capacity {cap}");

        let quarter = TaperedKAryNTree::new(4, 4, 4);
        assert_eq!(quarter.bisection_links(), 2);
        assert!(quarter.uniform_capacity_flits_per_cycle() < cap);
    }

    #[test]
    fn extreme_taper_still_connects() {
        // u = 1: a single root, one ascent path per switch.
        let t = TaperedKAryNTree::new(4, 3, 4);
        assert_eq!(t.up(), 1);
        assert_eq!(t.switches_at_level(0), 1);
        validate(&t).unwrap();
    }

    #[test]
    fn word_codec_roundtrip() {
        let t = TaperedKAryNTree::new(4, 4, 2);
        for level in 0..t.n() {
            for w in 0..t.switches_at_level(level) {
                let digits = t.word_expand(level, w);
                assert_eq!(t.word_compose(level, &digits), w);
                for (j, &d) in digits.iter().enumerate() {
                    assert!(d < t.word_radix(level, j));
                }
            }
        }
    }
}
