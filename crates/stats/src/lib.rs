//! Statistics collection and export for network simulations.
//!
//! The metrics of Section 6 of the paper — accepted bandwidth and
//! network latency, measured after a warm-up period — are computed from
//! the primitives here:
//!
//! * [`accum::Accumulator`] — numerically stable streaming
//!   mean/variance/min/max (Welford's algorithm), used for per-packet
//!   latency;
//! * [`histogram::Histogram`] — fixed-width binned counts with quantile
//!   queries, used for latency distributions;
//! * [`batch::BatchMeans`] — batch-means confidence intervals for
//!   steady-state estimates;
//! * [`series::Series`] and [`series::SweepCurve`] — (x, y…) curves for
//!   the CNF plots, with saturation-point extraction;
//! * [`export`] — dependency-free CSV and JSON writers for the
//!   benchmark harness output, including the [`export::Manifest`]
//!   run-manifest documents written next to each artifact.
//!
//! ## Example
//!
//! ```
//! use netstats::Accumulator;
//!
//! let mut latency = Accumulator::new();
//! for x in [10.0, 20.0, 30.0] {
//!     latency.push(x);
//! }
//! assert_eq!(latency.count(), 3);
//! assert_eq!(latency.mean(), 20.0);
//! assert_eq!(latency.max(), 30.0);
//! ```

#![warn(missing_docs)]
pub mod accum;
pub mod batch;
pub mod export;
pub mod histogram;
pub mod series;

pub use accum::Accumulator;
pub use batch::{BatchMeans, ConfidenceInterval};
pub use export::{write_csv, write_json, write_manifest, Cell, Manifest, ManifestValue, Table};
pub use histogram::Histogram;
pub use series::{SaturationPoint, Series, SweepCurve};
