//! Load-sweep curves and saturation-point extraction.
//!
//! Section 6 of the paper: "Saturation is defined as the minimum offered
//! bandwidth where the accepted bandwidth is lower than the global
//! packet creation rate at the source nodes. It is worth noting that,
//! before saturation, offered and accepted bandwidth are the same."
//! [`SweepCurve::saturation`] implements exactly that definition, with a
//! small tolerance for stochastic measurement noise.

/// A single named (x, y) series, e.g. one line of a CNF plot.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"1 vc"`, `"deterministic"`).
    pub label: String,
    /// The data points, in ascending x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point; x must be non-decreasing.
    pub fn push(&mut self, x: f64, y: f64) {
        if let Some(&(last_x, _)) = self.points.last() {
            assert!(x >= last_x, "series x values must be non-decreasing");
        }
        self.points.push((x, y));
    }

    /// Linear interpolation at `x` (clamped to the series range).
    /// `None` when empty.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() {
            return None;
        }
        if x <= pts[0].0 {
            return Some(pts[0].1);
        }
        if x >= pts[pts.len() - 1].0 {
            return Some(pts[pts.len() - 1].1);
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if x <= x1 {
                let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
                return Some(y0 + t * (y1 - y0));
            }
        }
        unreachable!()
    }

    /// Maximum y value. `None` when empty.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }
}

/// A sweep of offered load: accepted bandwidth and latency at each
/// offered point (both curves of one CNF presentation).
#[derive(Clone, Debug)]
pub struct SweepCurve {
    /// Legend label.
    pub label: String,
    /// (offered, accepted) in the same unit (fraction of capacity or
    /// bits/ns).
    pub accepted: Series,
    /// (offered, mean network latency).
    pub latency: Series,
}

/// The saturation point of a sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaturationPoint {
    /// Offered load at the saturation point.
    pub offered: f64,
    /// Accepted bandwidth at (and beyond) that load.
    pub accepted: f64,
}

impl SweepCurve {
    /// Create an empty sweep curve.
    pub fn new(label: impl Into<String>) -> Self {
        let label = label.into();
        SweepCurve {
            accepted: Series::new(label.clone()),
            latency: Series::new(label.clone()),
            label,
        }
    }

    /// Record one load point.
    pub fn push(&mut self, offered: f64, accepted: f64, latency: f64) {
        self.accepted.push(offered, accepted);
        self.latency.push(offered, latency);
    }

    /// The saturation point: the first offered load where accepted falls
    /// below `(1 - tol) * offered`; the accepted value reported is the
    /// mean accepted bandwidth over all points at or beyond saturation
    /// (the sustained post-saturation rate). Returns `None` if the sweep
    /// never saturates.
    pub fn saturation(&self, tol: f64) -> Option<SaturationPoint> {
        let idx = self
            .accepted
            .points
            .iter()
            .position(|&(x, y)| y < (1.0 - tol) * x)?;
        let tail = &self.accepted.points[idx..];
        let sustained = tail.iter().map(|&(_, y)| y).sum::<f64>() / tail.len() as f64;
        Some(SaturationPoint {
            offered: self.accepted.points[idx].0,
            accepted: sustained,
        })
    }

    /// Throughput stability after saturation: ratio of the minimum to
    /// the maximum accepted bandwidth at or beyond the saturation point
    /// (1.0 = perfectly stable; the paper highlights that both networks
    /// remain stable). `None` if the sweep never saturates.
    pub fn post_saturation_stability(&self, tol: f64) -> Option<f64> {
        let idx = self
            .accepted
            .points
            .iter()
            .position(|&(x, y)| y < (1.0 - tol) * x)?;
        let tail = &self.accepted.points[idx..];
        let min = tail.iter().map(|&(_, y)| y).fold(f64::INFINITY, f64::min);
        let max = tail.iter().map(|&(_, y)| y).fold(0.0f64, f64::max);
        if max == 0.0 {
            return Some(1.0);
        }
        Some(min / max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation() {
        let mut s = Series::new("t");
        s.push(0.0, 0.0);
        s.push(1.0, 10.0);
        s.push(2.0, 10.0);
        assert_eq!(s.interpolate(0.5), Some(5.0));
        assert_eq!(s.interpolate(1.5), Some(10.0));
        assert_eq!(s.interpolate(-1.0), Some(0.0));
        assert_eq!(s.interpolate(5.0), Some(10.0));
        assert_eq!(s.max_y(), Some(10.0));
        assert_eq!(Series::new("e").interpolate(1.0), None);
    }

    #[test]
    #[should_panic]
    fn decreasing_x_rejected() {
        let mut s = Series::new("t");
        s.push(1.0, 0.0);
        s.push(0.5, 0.0);
    }

    #[test]
    fn saturation_detection() {
        let mut c = SweepCurve::new("alg");
        // Accepted tracks offered up to 0.6, then flattens at 0.62.
        for i in 1..=10 {
            let offered = i as f64 / 10.0;
            let accepted = offered.min(0.62);
            c.push(offered, accepted, 50.0 + offered * 100.0);
        }
        let sat = c.saturation(0.02).expect("saturates");
        assert_eq!(sat.offered, 0.7);
        assert!((sat.accepted - 0.62).abs() < 1e-12);
        let stab = c.post_saturation_stability(0.02).unwrap();
        assert!((stab - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_saturation_when_accepted_tracks_offered() {
        let mut c = SweepCurve::new("ideal");
        for i in 1..=10 {
            let x = i as f64 / 10.0;
            c.push(x, x * 0.999, 50.0);
        }
        assert_eq!(c.saturation(0.02), None);
    }

    #[test]
    fn unstable_post_saturation_detected() {
        let mut c = SweepCurve::new("unstable");
        c.push(0.2, 0.2, 10.0);
        c.push(0.4, 0.4, 10.0);
        c.push(0.6, 0.5, 10.0);
        c.push(0.8, 0.30, 10.0); // throughput collapse
        let stab = c.post_saturation_stability(0.02).unwrap();
        assert!((stab - 0.6).abs() < 1e-12);
    }
}
