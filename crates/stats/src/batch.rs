//! Batch-means analysis for steady-state simulation output.
//!
//! Section 6 of the paper collects data "only after 2000 cycles, to
//! allow the network to reach steady state". Whether a point estimate
//! from one run is trustworthy is a statistics question: the standard
//! answer for a single long run is the *method of batch means* — split
//! the measurement window into `B` contiguous batches, treat the batch
//! averages as (approximately independent) observations, and form a
//! Student-t confidence interval. The simulator reports such an
//! interval for accepted bandwidth so that paper-vs-measured deltas can
//! be judged against run-to-run noise.

use crate::accum::Accumulator;

/// Batch-means estimator over a stream of per-interval observations.
#[derive(Clone, Debug, Default)]
pub struct BatchMeans {
    batches: Vec<f64>,
}

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width
    }

    /// Relative half-width (`half_width / mean`), `inf` for zero mean.
    pub fn relative(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.half_width / self.mean).abs()
        }
    }
}

/// Two-sided Student-t critical values at 95% confidence for `df`
/// degrees of freedom (1..=30; larger `df` use the normal 1.96).
fn t_crit_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[df - 1]
    } else {
        1.96
    }
}

impl BatchMeans {
    /// A fresh estimator.
    pub fn new() -> Self {
        BatchMeans::default()
    }

    /// Record one batch average.
    pub fn push(&mut self, batch_mean: f64) {
        self.batches.push(batch_mean);
    }

    /// Number of batches recorded.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether no batches were recorded.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// The grand mean over all batches (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.batches.is_empty() {
            return f64::NAN;
        }
        self.batches.iter().sum::<f64>() / self.batches.len() as f64
    }

    /// 95% Student-t confidence interval for the steady-state mean.
    /// Requires at least two batches; with fewer the half-width is
    /// infinite.
    pub fn ci95(&self) -> ConfidenceInterval {
        let b = self.batches.len();
        if b < 2 {
            return ConfidenceInterval {
                mean: self.mean(),
                half_width: f64::INFINITY,
            };
        }
        let mut acc = Accumulator::new();
        for &x in &self.batches {
            acc.push(x);
        }
        // Sample std-dev of the batch means.
        let sample_var = acc.variance() * b as f64 / (b as f64 - 1.0);
        let half = t_crit_95(b - 1) * (sample_var / b as f64).sqrt();
        ConfidenceInterval {
            mean: acc.mean(),
            half_width: half,
        }
    }

    /// Lag-1 autocorrelation of the batch means — if this is large
    /// (say > 0.3) the batches are too short to be treated as
    /// independent and the interval is optimistic. `NaN` with fewer
    /// than 3 batches.
    pub fn lag1_autocorrelation(&self) -> f64 {
        let b = self.batches.len();
        if b < 3 {
            return f64::NAN;
        }
        let mean = self.mean();
        let num: f64 = self
            .batches
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        let den: f64 = self.batches.iter().map(|x| (x - mean) * (x - mean)).sum();
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_batches_have_zero_width() {
        let mut bm = BatchMeans::new();
        for _ in 0..10 {
            bm.push(0.5);
        }
        let ci = bm.ci95();
        assert_eq!(ci.mean, 0.5);
        assert!(ci.half_width < 1e-12);
        assert!(ci.contains(0.5));
        assert!(!ci.contains(0.6));
    }

    #[test]
    fn too_few_batches_give_infinite_width() {
        let mut bm = BatchMeans::new();
        assert!(bm.ci95().mean.is_nan());
        bm.push(1.0);
        assert!(bm.ci95().half_width.is_infinite());
        bm.push(2.0);
        assert!(bm.ci95().half_width.is_finite());
    }

    #[test]
    fn interval_covers_true_mean_for_iid_noise() {
        // Deterministic pseudo-noise around 10.0.
        let mut bm = BatchMeans::new();
        let mut x = 7u64;
        for _ in 0..20 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((x >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            bm.push(10.0 + noise);
        }
        let ci = bm.ci95();
        assert!(ci.contains(10.0), "{ci:?}");
        assert!(ci.relative() < 0.05);
    }

    #[test]
    fn t_table_sane() {
        assert!(t_crit_95(1) > t_crit_95(5));
        assert!(t_crit_95(5) > t_crit_95(30));
        assert!((t_crit_95(100) - 1.96).abs() < 1e-12);
        assert!(t_crit_95(0).is_infinite());
    }

    #[test]
    fn autocorrelation_detects_trend() {
        let mut trending = BatchMeans::new();
        for i in 0..20 {
            trending.push(i as f64); // strong positive lag-1 correlation
        }
        assert!(trending.lag1_autocorrelation() > 0.7);

        let mut alternating = BatchMeans::new();
        for i in 0..20 {
            alternating.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        assert!(alternating.lag1_autocorrelation() < -0.7);
    }
}
