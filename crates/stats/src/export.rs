//! Dependency-free CSV and JSON emitters for benchmark output.
//!
//! The benchmark harness writes one file per paper artifact (table or
//! figure panel). The data is flat and tabular, so a small hand-rolled
//! writer keeps the workspace free of serialization dependencies while
//! producing files that load directly into gnuplot/pandas.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An in-memory table: named columns of `f64` plus an optional string
/// key column (e.g. the algorithm label per row).
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

/// A table cell.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// Numeric cell, rendered with up to 6 significant decimals.
    Num(f64),
    /// Text cell.
    Text(String),
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_string())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Text(v)
    }
}

impl Table {
    /// Create a table with the given column headers.
    pub fn with_columns<S: Into<String>>(cols: impl IntoIterator<Item = S>) -> Self {
        Table {
            columns: cols.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            let line = row
                .iter()
                .map(|c| match c {
                    Cell::Num(v) => format_num(*v),
                    Cell::Text(s) => csv_escape(s),
                })
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Render as a JSON array of objects keyed by column name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for (j, (col, cell)) in self.columns.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: ", json_string(col));
                match cell {
                    Cell::Num(v) => {
                        if v.is_finite() {
                            let _ = write!(out, "{}", format_num(*v));
                        } else {
                            out.push_str("null");
                        }
                    }
                    Cell::Text(s) => out.push_str(&json_string(s)),
                }
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }

    /// Render as an aligned, human-readable text table.
    pub fn to_pretty(&self) -> String {
        let render = |c: &Cell| match c {
            Cell::Num(v) => format_num(*v),
            Cell::Text(s) => s.clone(),
        };
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(render(cell).len());
            }
        }
        let mut out = String::new();
        for (w, col) in widths.iter().zip(&self.columns) {
            let _ = write!(out, "{col:>w$}  ");
        }
        out.push('\n');
        for (w, _) in widths.iter().zip(&self.columns) {
            let _ = write!(out, "{:->w$}  ", "");
        }
        out.push('\n');
        for row in &self.rows {
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(out, "{:>w$}  ", render(cell));
            }
            out.push('\n');
        }
        out
    }
}

/// A value inside a [`Manifest`].
#[derive(Clone, Debug, PartialEq)]
pub enum ManifestValue {
    /// Numeric value (rendered like table cells; non-finite → `null`).
    Num(f64),
    /// String value.
    Text(String),
    /// Boolean value.
    Bool(bool),
    /// Homogeneous or mixed list.
    List(Vec<ManifestValue>),
    /// Nested object.
    Object(Manifest),
}

impl From<f64> for ManifestValue {
    fn from(v: f64) -> Self {
        ManifestValue::Num(v)
    }
}

impl From<&str> for ManifestValue {
    fn from(v: &str) -> Self {
        ManifestValue::Text(v.to_string())
    }
}

impl From<String> for ManifestValue {
    fn from(v: String) -> Self {
        ManifestValue::Text(v)
    }
}

impl From<bool> for ManifestValue {
    fn from(v: bool) -> Self {
        ManifestValue::Bool(v)
    }
}

impl From<Manifest> for ManifestValue {
    fn from(v: Manifest) -> Self {
        ManifestValue::Object(v)
    }
}

impl<T: Into<ManifestValue>> From<Vec<T>> for ManifestValue {
    fn from(v: Vec<T>) -> Self {
        ManifestValue::List(v.into_iter().map(Into::into).collect())
    }
}

/// An ordered key–value document describing one run artifact: which
/// scenario produced it, with what seed and run length, on which engine
/// build, and what came out. Rendered as pretty-printed JSON with keys
/// in insertion order, so manifests diff cleanly across runs.
///
/// Like [`Table`], this is a dependency-free writer: the benchmark
/// harness emits one `*.manifest.json` next to each CSV artifact.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    entries: Vec<(String, ManifestValue)>,
}

impl Manifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Manifest::default()
    }

    /// Append a key–value pair (keys keep insertion order; duplicate
    /// keys are a caller bug and render as duplicate JSON keys).
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<ManifestValue>) -> &mut Self {
        self.entries.push((key.into(), value.into()));
        self
    }

    /// Number of top-level entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the manifest has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render as pretty-printed JSON (2-space indent, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        render_object(self, 0, &mut out);
        out.push('\n');
        out
    }
}

fn render_value(v: &ManifestValue, indent: usize, out: &mut String) {
    match v {
        ManifestValue::Num(n) => {
            if n.is_finite() {
                out.push_str(&format_num(*n));
            } else {
                out.push_str("null");
            }
        }
        ManifestValue::Text(s) => out.push_str(&json_string(s)),
        ManifestValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ManifestValue::List(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                render_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        ManifestValue::Object(m) => render_object(m, indent, out),
    }
}

fn render_object(m: &Manifest, indent: usize, out: &mut String) {
    if m.entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    for (i, (key, value)) in m.entries.iter().enumerate() {
        out.push_str(&"  ".repeat(indent + 1));
        let _ = write!(out, "{}: ", json_string(key));
        render_value(value, indent + 1, out);
        if i + 1 < m.entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&"  ".repeat(indent));
    out.push('}');
}

/// The `schema` tag of a run manifest. Version 1 is the historical
/// format; version 2 adds a `telemetry` object and is emitted **only**
/// when a run actually recorded telemetry, so untraced manifests stay
/// byte-identical to version 1.
pub fn run_manifest_schema(with_telemetry: bool) -> &'static str {
    run_manifest_schema_tag(with_telemetry, false)
}

/// The `schema` tag of a run manifest, fault plane included. Version 3
/// adds a `faults` object plus delivered/dropped/unroutable counters
/// and is emitted **only** when a fault plan was attached, so healthy
/// manifests stay byte-identical to versions 1/2 regardless of the
/// fault machinery existing.
pub fn run_manifest_schema_tag(with_telemetry: bool, with_faults: bool) -> &'static str {
    if with_faults {
        "netperf-run-manifest/3"
    } else if with_telemetry {
        "netperf-run-manifest/2"
    } else {
        "netperf-run-manifest/1"
    }
}

/// Write a manifest as JSON to `path`, creating parent directories.
pub fn write_manifest(manifest: &Manifest, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, manifest.to_json())
}

fn format_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.6}");
        // Trim trailing zeros but keep at least one decimal digit.
        let trimmed = s.trim_end_matches('0');
        let trimmed = if trimmed.ends_with('.') {
            &s[..trimmed.len() + 1]
        } else {
            trimmed
        };
        trimmed.to_string()
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Write a table as CSV to `path`, creating parent directories.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, table.to_csv())
}

/// Write a table as JSON to `path`, creating parent directories.
pub fn write_json(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, table.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::with_columns(["alg", "offered", "accepted"]);
        t.push_row(vec!["duato".into(), 0.5.into(), 0.5.into()]);
        t.push_row(vec!["det, v2".into(), 0.75.into(), 0.62.into()]);
        t
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("alg,offered,accepted"));
        assert_eq!(lines.next(), Some("duato,0.5,0.5"));
        assert_eq!(lines.next(), Some("\"det, v2\",0.75,0.62"));
    }

    #[test]
    fn json_rendering() {
        let json = sample().to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"alg\": \"duato\""));
        assert!(json.contains("\"offered\": 0.75"));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn pretty_alignment() {
        let p = sample().to_pretty();
        let lines: Vec<&str> = p.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("accepted"));
        assert!(lines[1].contains("---"));
    }

    #[test]
    fn integers_render_without_decimals() {
        assert_eq!(format_num(42.0), "42");
        assert_eq!(format_num(0.5), "0.5");
        assert_eq!(format_num(1.0 / 3.0), "0.333333");
    }

    #[test]
    fn quotes_escaped() {
        assert_eq!(csv_escape("a\"b"), "\"a\"\"b\"");
        assert_eq!(json_string("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("netstats_test_export");
        let path = dir.join("sub/table.csv");
        write_csv(&sample(), &path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, sample().to_csv());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::with_columns(["a", "b"]);
        t.push_row(vec![1.0.into()]);
    }

    #[test]
    fn manifest_schema_versions() {
        assert_eq!(run_manifest_schema(false), "netperf-run-manifest/1");
        assert_eq!(run_manifest_schema(true), "netperf-run-manifest/2");
        assert_eq!(
            run_manifest_schema_tag(false, false),
            "netperf-run-manifest/1"
        );
        assert_eq!(
            run_manifest_schema_tag(true, false),
            "netperf-run-manifest/2"
        );
        // Faults dominate: a traced faulted run is still version 3.
        assert_eq!(
            run_manifest_schema_tag(false, true),
            "netperf-run-manifest/3"
        );
        assert_eq!(
            run_manifest_schema_tag(true, true),
            "netperf-run-manifest/3"
        );
    }

    fn sample_manifest() -> Manifest {
        let mut inner = Manifest::new();
        inner.push("warmup", 2000.0).push("total", 20000.0);
        let mut m = Manifest::new();
        m.push("schema", "netperf-run-manifest/1");
        m.push("quick", false);
        m.push("run_length", inner);
        m.push("patterns", vec!["uniform", "transpose"]);
        m.push("empty", ManifestValue::List(vec![]));
        m.push("nan", f64::NAN);
        m
    }

    #[test]
    fn manifest_renders_ordered_pretty_json() {
        let json = sample_manifest().to_json();
        let expected = r#"{
  "schema": "netperf-run-manifest/1",
  "quick": false,
  "run_length": {
    "warmup": 2000,
    "total": 20000
  },
  "patterns": [
    "uniform",
    "transpose"
  ],
  "empty": [],
  "nan": null
}
"#;
        assert_eq!(json, expected);
    }

    #[test]
    fn manifest_file_roundtrip() {
        let dir = std::env::temp_dir().join("netstats_test_manifest");
        let path = dir.join("sub/run.manifest.json");
        write_manifest(&sample_manifest(), &path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, sample_manifest().to_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_manifest_is_a_valid_object() {
        assert!(Manifest::new().is_empty());
        assert_eq!(Manifest::new().len(), 0);
        assert_eq!(Manifest::new().to_json(), "{}\n");
    }
}
