//! Fixed-width binned histograms with quantile queries.

/// A histogram over `[0, bin_width * num_bins)` with an overflow bin.
///
/// Used for packet-latency distributions: latencies are non-negative and
/// the interesting range is known a priori (a few thousand cycles), so
/// fixed-width bins are simple and fast.
#[derive(Clone, Debug)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `num_bins` bins of width `bin_width`.
    ///
    /// # Panics
    /// Panics if `bin_width <= 0` or `num_bins == 0`.
    pub fn new(bin_width: f64, num_bins: usize) -> Self {
        assert!(bin_width > 0.0 && num_bins > 0);
        Histogram {
            bin_width,
            bins: vec![0; num_bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Record an observation (negative values clamp into the first bin).
    pub fn record(&mut self, x: f64) {
        let idx = (x.max(0.0) / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Merge another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the two histograms have different bin widths or counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width);
        assert_eq!(self.bins.len(), other.bins.len());
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper edge of the bin
    /// containing the q-th observation. Returns `None` when empty or
    /// when the quantile falls in the overflow bin.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i + 1) as f64 * self.bin_width);
            }
        }
        None // in overflow
    }

    /// Iterator over (bin lower edge, count) for non-empty bins.
    pub fn nonzero_bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as f64 * self.bin_width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_quantiles() {
        let mut h = Histogram::new(10.0, 10);
        for x in 0..100 {
            h.record(x as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.05), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn overflow_handling() {
        let mut h = Histogram::new(1.0, 4);
        h.record(100.0);
        h.record(0.5);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(0.99), None);
    }

    #[test]
    fn negative_clamps_to_first_bin() {
        let mut h = Histogram::new(1.0, 4);
        h.record(-5.0);
        assert_eq!(h.quantile(1.0), Some(1.0));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(2.0, 5);
        let mut b = Histogram::new(2.0, 5);
        a.record(1.0);
        b.record(1.0);
        b.record(9.0);
        b.record(99.0);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.overflow(), 1);
        let bins: Vec<_> = a.nonzero_bins().collect();
        assert_eq!(bins, vec![(0.0, 2), (8.0, 1)]);
    }

    #[test]
    fn empty_quantile_is_none() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic]
    fn mismatched_merge_panics() {
        let mut a = Histogram::new(1.0, 4);
        let b = Histogram::new(2.0, 4);
        a.merge(&b);
    }
}
