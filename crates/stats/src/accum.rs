//! Streaming scalar statistics.

/// Numerically stable streaming statistics over a sequence of `f64`
/// observations (Welford's online algorithm). Constant memory, one pass.
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance; `NaN` when empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation; `NaN` when empty.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean; `NaN` when empty.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            (self.m2 / self.count as f64 / self.count as f64).sqrt()
        }
    }

    /// Minimum observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.variance() - 4.0).abs() < 1e-12);
        assert!((a.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    fn empty_is_nan() {
        let a = Accumulator::new();
        assert!(a.mean().is_nan());
        assert!(a.variance().is_nan());
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..300] {
            left.push(x);
        }
        for &x in &xs[300..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Accumulator::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = Accumulator::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Naive sum-of-squares would lose all precision here.
        let mut a = Accumulator::new();
        let offset = 1e9;
        for x in [offset + 1.0, offset + 2.0, offset + 3.0] {
            a.push(x);
        }
        assert!((a.variance() - 2.0 / 3.0).abs() < 1e-6);
    }
}
