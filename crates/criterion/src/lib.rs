//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API used by this workspace's
//! benches (`criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `Bencher::iter`) with
//! a simple timing loop: a short warm-up, then a fixed measurement
//! budget, reporting min and mean wall-clock time per iteration.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration work volume (recorded, not used).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Criterion compatibility: sample count hint (ignored; the stub
    /// uses a fixed time budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Criterion compatibility: measurement time hint (ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id.0), f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] (strings and ids).
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Declared per-iteration work volume.
pub enum Throughput {
    /// Abstract elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing loop handle.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
    min: Duration,
}

impl Bencher {
    /// Time `f` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(f());
        }
        // Measurement.
        let bench_start = Instant::now();
        while bench_start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            self.iters_done += 1;
            self.total += dt;
            if dt < self.min {
                self.min = dt;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
        min: Duration::MAX,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{id:<50} (no iterations)");
        return;
    }
    let mean = b.total / b.iters_done as u32;
    println!(
        "{id:<50} min {:>12?}  mean {:>12?}  ({} iters)",
        b.min, mean, b.iters_done
    );
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)*
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn bencher_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1)).sample_size(10);
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }
}
