//! Regenerators for every table and figure of the paper.
//!
//! One binary per paper artifact:
//!
//! | Binary     | Artifact | Content |
//! |------------|----------|---------|
//! | `table1`   | Table 1  | Chien-model delays of the two cube routing algorithms |
//! | `table2`   | Table 2  | Chien-model delays of the tree algorithm with 1/2/4 VCs |
//! | `fig5`     | Figure 5 | CNF curves of the 4-ary 4-tree (3 VC variants x 4 patterns) |
//! | `fig6`     | Figure 6 | CNF curves of the 16-ary 2-cube (2 algorithms x 4 patterns) |
//! | `fig7`     | Figure 7 | Absolute comparison of all five configurations (bits/ns, ns) |
//! | `summary`  | §8–11    | Saturation points and headline claims vs the paper's numbers |
//! | `ablation` | —        | Extensions: buffer depth, injection throttle, VC count sweeps |
//! | `repro_all`| all      | Runs everything above and writes `results/` |
//!
//! Every binary accepts `--quick` (shorter, noisier runs for smoke
//! testing) and `--out <dir>` (default `results`).

#![warn(missing_docs)]

use netsim::experiment::{
    default_load_grid, sweep_outcomes, ExperimentSpec, RunLength,
};
use netsim::sim::SimOutcome;
use netstats::{Cell, SweepCurve, Table};
use traffic::Pattern;

pub use netstats::export::{write_csv, write_json};

/// Command-line options shared by all regenerator binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Use a short run length (smoke testing) instead of the paper's.
    pub quick: bool,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
}

impl Options {
    /// Parse from `std::env::args`. Unknown flags abort with usage help.
    pub fn from_args() -> Options {
        let mut opts =
            Options { quick: false, out_dir: std::path::PathBuf::from("results") };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--out" => {
                    opts.out_dir = args
                        .next()
                        .unwrap_or_else(|| usage("missing directory after --out"))
                        .into();
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// The run length implied by the options.
    pub fn run_length(&self) -> RunLength {
        if self.quick {
            RunLength::quick()
        } else {
            RunLength::paper()
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--quick] [--out <dir>]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// The measured curves of one configuration under one pattern.
pub struct PanelSeries {
    /// Configuration label (figure legend entry).
    pub label: String,
    /// Offered load grid (fraction of capacity).
    pub offered: Vec<f64>,
    /// Full outcome at each grid point.
    pub outcomes: Vec<SimOutcome>,
}

impl PanelSeries {
    /// The accepted-bandwidth/latency curve in normalized units
    /// (fractions of capacity, cycles) — the CNF presentation of
    /// Figures 5 and 6.
    pub fn cnf_curve(&self) -> SweepCurve {
        let mut c = SweepCurve::new(self.label.clone());
        for (f, o) in self.offered.iter().zip(&self.outcomes) {
            let lat = o.mean_latency_cycles();
            c.push(*f, o.accepted_fraction, if lat.is_nan() { 0.0 } else { lat });
        }
        c
    }
}

/// Run the load sweep of one figure panel: every `spec` under `pattern`
/// over the default 5%–100% grid.
pub fn run_panel(
    specs: &[ExperimentSpec],
    pattern: Pattern,
    len: RunLength,
) -> Vec<PanelSeries> {
    let grid = default_load_grid();
    specs
        .iter()
        .map(|spec| {
            eprintln!("  sweeping {} under {} traffic...", spec.label(), pattern.name());
            let outcomes = sweep_outcomes(spec, pattern, &grid, len);
            PanelSeries { label: spec.label().to_string(), offered: grid.clone(), outcomes }
        })
        .collect()
}

/// Build the CNF table of one figure panel (both graphs: accepted
/// bandwidth and latency, one row per offered-load point, one column
/// pair per configuration).
pub fn cnf_table(series: &[PanelSeries]) -> Table {
    let mut cols = vec!["offered".to_string()];
    for s in series {
        cols.push(format!("accepted[{}]", s.label));
        cols.push(format!("latency_cycles[{}]", s.label));
    }
    let mut t = Table::with_columns(cols);
    let grid = &series[0].offered;
    for (i, &f) in grid.iter().enumerate() {
        let mut row: Vec<Cell> = vec![f.into()];
        for s in series {
            let o = &s.outcomes[i];
            row.push(o.accepted_fraction.into());
            let lat = o.mean_latency_cycles();
            row.push(if lat.is_nan() { 0.0.into() } else { lat.into() });
        }
        t.push_row(row);
    }
    t
}

/// Build the absolute-units table of one Figure 7 panel: traffic in
/// bits/ns and latency in ns, using each configuration's own clock.
pub fn absolute_table(series: &[PanelSeries], specs: &[ExperimentSpec]) -> Table {
    assert_eq!(series.len(), specs.len());
    let mut cols = vec!["offered_fraction".to_string()];
    for s in series {
        cols.push(format!("offered_bits_ns[{}]", s.label));
        cols.push(format!("accepted_bits_ns[{}]", s.label));
        cols.push(format!("latency_ns[{}]", s.label));
    }
    let mut t = Table::with_columns(cols);
    let grid = &series[0].offered;
    for (i, &f) in grid.iter().enumerate() {
        let mut row: Vec<Cell> = vec![f.into()];
        for (s, spec) in series.iter().zip(specs) {
            let norm = spec.normalization();
            let o = &s.outcomes[i];
            row.push(norm.fraction_to_bits_per_ns(f).into());
            row.push(norm.fraction_to_bits_per_ns(o.accepted_fraction).into());
            let lat = o.mean_latency_cycles();
            row.push(if lat.is_nan() { 0.0.into() } else { norm.cycles_to_ns(lat).into() });
        }
        t.push_row(row);
    }
    t
}

/// Saturation analysis of one sweep, measured against the *generated*
/// load (patterns with silent fixed-point nodes — bit reversal and
/// transpose silence 16 of 256 — generate ~6% less than the nominal
/// offered load even at zero congestion, so comparing against the
/// nominal would flag saturation everywhere).
pub struct SaturationSummary {
    /// First offered (nominal) load where accepted < generated, or
    /// `None` if the sweep never saturates.
    pub offered: Option<f64>,
    /// Mean accepted bandwidth at and beyond saturation (or the last
    /// point if never saturated).
    pub sustained: f64,
    /// min/max accepted at and beyond saturation (1.0 = flat).
    pub stability: f64,
}

/// Compute the saturation summary of one panel series.
pub fn saturation_of(s: &PanelSeries, tol: f64) -> SaturationSummary {
    let idx = s.outcomes.iter().position(|o| o.is_saturated(tol));
    match idx {
        None => SaturationSummary {
            offered: None,
            sustained: s.outcomes.last().map(|o| o.accepted_fraction).unwrap_or(0.0),
            stability: 1.0,
        },
        Some(i) => {
            let tail: Vec<f64> = s.outcomes[i..].iter().map(|o| o.accepted_fraction).collect();
            let sustained = tail.iter().sum::<f64>() / tail.len() as f64;
            let min = tail.iter().copied().fold(f64::INFINITY, f64::min);
            let max = tail.iter().copied().fold(0.0f64, f64::max);
            SaturationSummary {
                offered: Some(s.offered[i]),
                sustained,
                stability: if max > 0.0 { min / max } else { 1.0 },
            }
        }
    }
}

/// Extract the saturation summary of a set of panels: one row per
/// configuration with the saturation offered load, the sustained
/// accepted bandwidth, and the post-saturation stability ratio.
pub fn saturation_table(series: &[PanelSeries]) -> Table {
    let mut t = Table::with_columns([
        "configuration",
        "saturation_offered",
        "sustained_accepted",
        "stability",
    ]);
    for s in series {
        let sat = saturation_of(s, 0.05);
        t.push_row(vec![
            s.label.clone().into(),
            sat.offered.unwrap_or(f64::NAN).into(),
            sat.sustained.into(),
            sat.stability.into(),
        ]);
    }
    t
}

/// The four patterns in the paper's presentation order with the figure
/// panel letters of Figures 5–7.
pub fn paper_patterns() -> [(Pattern, &'static str); 4] {
    [
        (Pattern::Uniform, "ab"),
        (Pattern::Complement, "cd"),
        (Pattern::Transpose, "ef"),
        (Pattern::BitReversal, "gh"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::experiment::CubeParams;

    #[test]
    fn cnf_table_shape() {
        let specs = [ExperimentSpec::cube_duato(CubeParams::tiny())];
        let grid = [0.3, 0.8];
        let outcomes = sweep_outcomes(&specs[0], Pattern::Uniform, &grid, RunLength::quick());
        let series = vec![PanelSeries {
            label: specs[0].label().to_string(),
            offered: grid.to_vec(),
            outcomes,
        }];
        let t = cnf_table(&series);
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.rows.len(), 2);
        let abs = absolute_table(&series, &specs);
        assert_eq!(abs.columns.len(), 4);
        let sat = saturation_table(&series);
        assert_eq!(sat.rows.len(), 1);
    }
}
