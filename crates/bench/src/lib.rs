//! Regenerators for every table and figure of the paper.
//!
//! One binary per paper artifact:
//!
//! | Binary     | Artifact | Content |
//! |------------|----------|---------|
//! | `table1`   | Table 1  | Chien-model delays of the two cube routing algorithms |
//! | `table2`   | Table 2  | Chien-model delays of the tree algorithm with 1/2/4 VCs |
//! | `fig5`     | Figure 5 | CNF curves of the 4-ary 4-tree (3 VC variants x 4 patterns) |
//! | `fig6`     | Figure 6 | CNF curves of the 16-ary 2-cube (2 algorithms x 4 patterns) |
//! | `fig7`     | Figure 7 | Absolute comparison of all five configurations (bits/ns, ns) |
//! | `summary`  | §8–11    | Saturation points and headline claims vs the paper's numbers |
//! | `ablation` | —        | Extensions: buffer depth, injection throttle, VC count sweeps |
//! | `fault_sweep` | —     | Degradation panel: accepted load/latency vs fraction of dead links |
//! | `repro_all`| all      | Runs everything above (except `fault_sweep`) and writes `results/` |
//!
//! Every binary accepts `--quick` (shorter, noisier runs for smoke
//! testing), `--seed <salt>` (rerun everything under an independent
//! noise realization; 0, the default, reproduces the committed numbers
//! bit-for-bit) and `--out <dir>` (default `results`). Next to each CSV
//! the binaries write a `<name>.manifest.json` run manifest recording
//! the scenario descriptions, seed salt, run length, engine feature
//! flags, wall-clock time and headline counters of the run that
//! produced it.
//!
//! ## Example
//!
//! The manifest always sits next to its artifact, named by stem:
//!
//! ```
//! use std::path::Path;
//!
//! let m = bench::manifest_path(Path::new("results"), "fault_sweep.csv");
//! assert_eq!(m, Path::new("results/fault_sweep.manifest.json"));
//! ```

#![warn(missing_docs)]

use netsim::experiment::{default_load_grid, sweep_outcomes_salted, ExperimentSpec, RunLength};
use netsim::sim::SimOutcome;
use netstats::export::{Manifest, ManifestValue};
use netstats::{Cell, SweepCurve, Table};
use traffic::Pattern;

pub use netstats::export::{write_csv, write_json, write_manifest};

/// Command-line options shared by all regenerator binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Use a short run length (smoke testing) instead of the paper's.
    pub quick: bool,
    /// Output directory for CSV files.
    pub out_dir: std::path::PathBuf,
    /// Seed salt: XOR'd into every derived per-run seed. `None`/0 keeps
    /// the historical (committed) realization.
    pub seed: Option<u64>,
}

impl Options {
    /// Parse from `std::env::args`. Unknown flags abort with usage help.
    pub fn from_args() -> Options {
        let mut opts = Options {
            quick: false,
            out_dir: std::path::PathBuf::from("results"),
            seed: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--out" => {
                    opts.out_dir = args
                        .next()
                        .unwrap_or_else(|| usage("missing directory after --out"))
                        .into();
                }
                "--seed" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("missing value after --seed"));
                    opts.seed = Some(
                        parse_seed(&v).unwrap_or_else(|| usage(&format!("invalid seed {v:?}"))),
                    );
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// The run length implied by the options.
    pub fn run_length(&self) -> RunLength {
        if self.quick {
            RunLength::quick()
        } else {
            RunLength::paper()
        }
    }

    /// The seed salt implied by the options (0 when `--seed` is absent:
    /// bit-identical to the committed artifacts).
    pub fn seed_salt(&self) -> u64 {
        self.seed.unwrap_or(0)
    }
}

/// Parse a decimal or `0x`-prefixed hexadecimal seed.
pub fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--quick] [--seed <salt>] [--out <dir>]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// The measured curves of one configuration under one pattern.
pub struct PanelSeries {
    /// Configuration label (figure legend entry).
    pub label: String,
    /// Offered load grid (fraction of capacity).
    pub offered: Vec<f64>,
    /// Full outcome at each grid point.
    pub outcomes: Vec<SimOutcome>,
}

impl PanelSeries {
    /// The accepted-bandwidth/latency curve in normalized units
    /// (fractions of capacity, cycles) — the CNF presentation of
    /// Figures 5 and 6.
    pub fn cnf_curve(&self) -> SweepCurve {
        let mut c = SweepCurve::new(self.label.clone());
        for (f, o) in self.offered.iter().zip(&self.outcomes) {
            let lat = o.mean_latency_cycles();
            c.push(
                *f,
                o.accepted_fraction,
                if lat.is_nan() { 0.0 } else { lat },
            );
        }
        c
    }
}

/// Run the load sweep of one figure panel: every `spec` under `pattern`
/// over the default 5%–100% grid, with the derived per-point seeds
/// XOR'd by `salt` (0 = the committed realization, bit-for-bit).
pub fn run_panel(
    specs: &[ExperimentSpec],
    pattern: Pattern,
    len: RunLength,
    salt: u64,
) -> Vec<PanelSeries> {
    let grid = default_load_grid();
    specs
        .iter()
        .map(|spec| {
            eprintln!(
                "  sweeping {} under {} traffic...",
                spec.label(),
                pattern.name()
            );
            let outcomes = sweep_outcomes_salted(spec, pattern, &grid, len, salt);
            PanelSeries {
                label: spec.label().to_string(),
                offered: grid.clone(),
                outcomes,
            }
        })
        .collect()
}

/// Build the CNF table of one figure panel (both graphs: accepted
/// bandwidth and latency, one row per offered-load point, one column
/// pair per configuration).
pub fn cnf_table(series: &[PanelSeries]) -> Table {
    let mut cols = vec!["offered".to_string()];
    for s in series {
        cols.push(format!("accepted[{}]", s.label));
        cols.push(format!("latency_cycles[{}]", s.label));
    }
    let mut t = Table::with_columns(cols);
    let grid = &series[0].offered;
    for (i, &f) in grid.iter().enumerate() {
        let mut row: Vec<Cell> = vec![f.into()];
        for s in series {
            let o = &s.outcomes[i];
            row.push(o.accepted_fraction.into());
            let lat = o.mean_latency_cycles();
            row.push(if lat.is_nan() { 0.0.into() } else { lat.into() });
        }
        t.push_row(row);
    }
    t
}

/// Build the absolute-units table of one Figure 7 panel: traffic in
/// bits/ns and latency in ns, using each configuration's own clock.
pub fn absolute_table(series: &[PanelSeries], specs: &[ExperimentSpec]) -> Table {
    assert_eq!(series.len(), specs.len());
    let mut cols = vec!["offered_fraction".to_string()];
    for s in series {
        cols.push(format!("offered_bits_ns[{}]", s.label));
        cols.push(format!("accepted_bits_ns[{}]", s.label));
        cols.push(format!("latency_ns[{}]", s.label));
    }
    let mut t = Table::with_columns(cols);
    let grid = &series[0].offered;
    for (i, &f) in grid.iter().enumerate() {
        let mut row: Vec<Cell> = vec![f.into()];
        for (s, spec) in series.iter().zip(specs) {
            let norm = spec.normalization();
            let o = &s.outcomes[i];
            row.push(norm.fraction_to_bits_per_ns(f).into());
            row.push(norm.fraction_to_bits_per_ns(o.accepted_fraction).into());
            let lat = o.mean_latency_cycles();
            row.push(if lat.is_nan() {
                0.0.into()
            } else {
                norm.cycles_to_ns(lat).into()
            });
        }
        t.push_row(row);
    }
    t
}

/// Saturation analysis of one sweep, measured against the *generated*
/// load (patterns with silent fixed-point nodes — bit reversal and
/// transpose silence 16 of 256 — generate ~6% less than the nominal
/// offered load even at zero congestion, so comparing against the
/// nominal would flag saturation everywhere).
pub struct SaturationSummary {
    /// First offered (nominal) load where accepted < generated, or
    /// `None` if the sweep never saturates.
    pub offered: Option<f64>,
    /// Mean accepted bandwidth at and beyond saturation (or the last
    /// point if never saturated).
    pub sustained: f64,
    /// min/max accepted at and beyond saturation (1.0 = flat).
    pub stability: f64,
}

/// Compute the saturation summary of one panel series.
pub fn saturation_of(s: &PanelSeries, tol: f64) -> SaturationSummary {
    let idx = s.outcomes.iter().position(|o| o.is_saturated(tol));
    match idx {
        None => SaturationSummary {
            offered: None,
            sustained: s
                .outcomes
                .last()
                .map(|o| o.accepted_fraction)
                .unwrap_or(0.0),
            stability: 1.0,
        },
        Some(i) => {
            let tail: Vec<f64> = s.outcomes[i..]
                .iter()
                .map(|o| o.accepted_fraction)
                .collect();
            let sustained = tail.iter().sum::<f64>() / tail.len() as f64;
            let min = tail.iter().copied().fold(f64::INFINITY, f64::min);
            let max = tail.iter().copied().fold(0.0f64, f64::max);
            SaturationSummary {
                offered: Some(s.offered[i]),
                sustained,
                stability: if max > 0.0 { min / max } else { 1.0 },
            }
        }
    }
}

/// Extract the saturation summary of a set of panels: one row per
/// configuration with the saturation offered load, the sustained
/// accepted bandwidth, and the post-saturation stability ratio.
pub fn saturation_table(series: &[PanelSeries]) -> Table {
    let mut t = Table::with_columns([
        "configuration",
        "saturation_offered",
        "sustained_accepted",
        "stability",
    ]);
    for s in series {
        let sat = saturation_of(s, 0.05);
        t.push_row(vec![
            s.label.clone().into(),
            sat.offered.unwrap_or(f64::NAN).into(),
            sat.sustained.into(),
            sat.stability.into(),
        ]);
    }
    t
}

/// The four patterns in the paper's presentation order with the figure
/// panel letters of Figures 5–7.
pub fn paper_patterns() -> [(Pattern, &'static str); 4] {
    [
        (Pattern::Uniform, "ab"),
        (Pattern::Complement, "cd"),
        (Pattern::Transpose, "ef"),
        (Pattern::BitReversal, "gh"),
    ]
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Build Table 1 (Chien delays of the two cube algorithms).
///
/// `detailed` selects the presentation: `false` is the compact
/// unrounded layout `repro_all` has always written (columns
/// `algorithm,T_routing,T_crossbar,T_link,T_clock`); `true` is the
/// `table1` binary's layout with values rounded to the paper's two
/// decimals, the wire class spelled out (`T_link_s`) and the clock
/// bottleneck named.
pub fn table1_table(detailed: bool) -> Table {
    use costmodel::chien::RouterClass;
    let rows = [
        (
            "Det.",
            RouterClass::CubeDeterministic { n: 2, vcs: 4 }.timing(),
        ),
        ("Duato", RouterClass::CubeDuato { n: 2, vcs: 4 }.timing()),
    ];
    if detailed {
        let mut t = Table::with_columns([
            "algorithm",
            "T_routing",
            "T_crossbar",
            "T_link_s",
            "T_clock",
            "bottleneck",
        ]);
        for (name, tm) in rows {
            t.push_row(vec![
                name.into(),
                round2(tm.t_routing_ns).into(),
                round2(tm.t_crossbar_ns).into(),
                round2(tm.t_link_ns).into(),
                round2(tm.clock_ns()).into(),
                tm.bottleneck().into(),
            ]);
        }
        t
    } else {
        let mut t =
            Table::with_columns(["algorithm", "T_routing", "T_crossbar", "T_link", "T_clock"]);
        for (name, tm) in rows {
            t.push_row(vec![
                name.into(),
                tm.t_routing_ns.into(),
                tm.t_crossbar_ns.into(),
                tm.t_link_ns.into(),
                tm.clock_ns().into(),
            ]);
        }
        t
    }
}

/// Build Table 2 (Chien delays of the tree algorithm with 1/2/4 VCs).
///
/// `detailed` selects the presentation exactly as in [`table1_table`].
pub fn table2_table(detailed: bool) -> Table {
    use costmodel::chien::RouterClass;
    let rows = [1usize, 2, 4].map(|v| (v, RouterClass::TreeAdaptive { k: 4, vcs: v }.timing()));
    if detailed {
        let mut t = Table::with_columns([
            "virtual_channels",
            "T_routing",
            "T_crossbar",
            "T_link_m",
            "T_clock",
            "bottleneck",
        ]);
        for (v, tm) in rows {
            t.push_row(vec![
                format!("{v} vc").into(),
                round2(tm.t_routing_ns).into(),
                round2(tm.t_crossbar_ns).into(),
                round2(tm.t_link_ns).into(),
                round2(tm.clock_ns()).into(),
                tm.bottleneck().into(),
            ]);
        }
        t
    } else {
        let mut t = Table::with_columns(["vcs", "T_routing", "T_crossbar", "T_link", "T_clock"]);
        for (v, tm) in rows {
            t.push_row(vec![
                (v as f64).into(),
                tm.t_routing_ns.into(),
                tm.t_crossbar_ns.into(),
                tm.t_link_ns.into(),
                tm.clock_ns().into(),
            ]);
        }
        t
    }
}

/// Build the run manifest written next to one artifact. Records the
/// full scenario descriptions behind the data, the options that shaped
/// the run (seed salt, run length), the engine build flags, wall-clock
/// time, and aggregate packet counters.
pub fn run_manifest(
    generator: &str,
    artifact: &str,
    opts: &Options,
    specs: &[ExperimentSpec],
    pattern: Option<Pattern>,
    series: &[PanelSeries],
    wall_secs: f64,
) -> Manifest {
    run_manifest_with_telemetry(
        generator, artifact, opts, specs, pattern, series, wall_secs, None,
    )
}

/// [`run_manifest`] with an optional telemetry block. `None` produces
/// output byte-identical to the historical `netperf-run-manifest/1`
/// format; `Some` bumps the schema tag to `netperf-run-manifest/2` and
/// appends the given object under a `telemetry` key, so only runs that
/// actually recorded telemetry advertise the new schema.
#[allow(clippy::too_many_arguments)]
pub fn run_manifest_with_telemetry(
    generator: &str,
    artifact: &str,
    opts: &Options,
    specs: &[ExperimentSpec],
    pattern: Option<Pattern>,
    series: &[PanelSeries],
    wall_secs: f64,
    telemetry: Option<&Manifest>,
) -> Manifest {
    let len = opts.run_length();
    let mut m = Manifest::new();
    m.push(
        "schema",
        netstats::export::run_manifest_schema(telemetry.is_some()),
    );
    m.push("generator", generator);
    m.push("artifact", artifact);
    m.push("quick", opts.quick);
    let mut rl = Manifest::new();
    rl.push("warmup", len.warmup as f64);
    rl.push("total", len.total as f64);
    m.push("run_length", rl);
    m.push("seed_salt", format!("0x{:016x}", opts.seed_salt()));
    m.push("threads", netsim::experiment::sweep_threads() as f64);
    let mut engine = Manifest::new();
    for (feature, enabled) in netsim::engine_features() {
        engine.push(feature, enabled);
    }
    m.push("engine", engine);
    if let Some(p) = pattern {
        m.push("pattern", p.name());
    }
    m.push(
        "scenarios",
        ManifestValue::List(
            specs
                .iter()
                .map(|s| ManifestValue::Object(s.scenario().manifest()))
                .collect(),
        ),
    );
    m.push("wall_clock_secs", wall_secs);
    let mut counters = Manifest::new();
    counters.push(
        "simulations",
        series.iter().map(|s| s.outcomes.len()).sum::<usize>() as f64,
    );
    counters.push(
        "created_packets",
        series
            .iter()
            .flat_map(|s| &s.outcomes)
            .map(|o| o.created_packets)
            .sum::<u64>() as f64,
    );
    counters.push(
        "delivered_packets",
        series
            .iter()
            .flat_map(|s| &s.outcomes)
            .map(|o| o.delivered_packets)
            .sum::<u64>() as f64,
    );
    m.push("counters", counters);
    if let Some(t) = telemetry {
        m.push("telemetry", t.clone());
    }
    m
}

/// The manifest path for an artifact file: `fig5_uniform.csv` →
/// `fig5_uniform.manifest.json`.
pub fn manifest_path(dir: &std::path::Path, artifact: &str) -> std::path::PathBuf {
    let stem = artifact
        .rsplit_once('.')
        .map(|(s, _)| s)
        .unwrap_or(artifact);
    dir.join(format!("{stem}.manifest.json"))
}

/// Write one artifact (CSV + its run manifest) into `dir`, returning
/// the CSV path. The CSV bytes are unchanged from the pre-manifest
/// harness; the manifest is a new sibling file.
pub fn write_artifact(
    table: &Table,
    dir: &std::path::Path,
    artifact: &str,
    manifest: &Manifest,
) -> std::path::PathBuf {
    let path = dir.join(artifact);
    write_csv(table, &path).unwrap_or_else(|e| panic!("write {artifact}: {e}"));
    write_manifest(manifest, manifest_path(dir, artifact))
        .unwrap_or_else(|e| panic!("write {artifact} manifest: {e}"));
    path
}

/// A gnuplot script rendering all 24 panels of Figures 5-7 from the
/// CSVs into `figures.png` panels (requires gnuplot, not a crate
/// dependency — the CSVs are the primary artifact).
pub fn gnuplot_script() -> String {
    use std::fmt::Write as _;
    let mut s = String::from(
        "set datafile separator ','\nset key autotitle columnhead\nset grid\n\
         set term pngcairo size 1400,900\n",
    );
    for (fig, cols) in [("fig5", 3), ("fig6", 2), ("fig7", 5)] {
        for pat in ["uniform", "complement", "transpose", "bitrev"] {
            let (xlab, aylab, lylab, acol0, lcol0, step) = if fig == "fig7" {
                (
                    "offered (bits/ns)",
                    "accepted (bits/ns)",
                    "latency (ns)",
                    3,
                    4,
                    3,
                )
            } else {
                (
                    "offered (fraction of capacity)",
                    "accepted (fraction)",
                    "latency (cycles)",
                    2,
                    3,
                    2,
                )
            };
            let _ = writeln!(s, "set output '{fig}_{pat}.png'");
            let _ = writeln!(s, "set multiplot layout 1,2 title '{fig} {pat}'");
            let _ = writeln!(s, "set xlabel '{xlab}'; set ylabel '{aylab}'");
            let xcol = if fig == "fig7" {
                "2".to_string()
            } else {
                "1".to_string()
            };
            let mut plots: Vec<String> = Vec::new();
            for i in 0..cols {
                let xc = if fig == "fig7" {
                    format!("{}", 2 + i * step)
                } else {
                    xcol.clone()
                };
                plots.push(format!(
                    "'{fig}_{pat}.csv' using {}:{} with linespoints",
                    xc,
                    acol0 + i * step
                ));
            }
            let _ = writeln!(s, "plot {}", plots.join(", "));
            let _ = writeln!(s, "set xlabel '{xlab}'; set ylabel '{lylab}'");
            let mut plots: Vec<String> = Vec::new();
            for i in 0..cols {
                let xc = if fig == "fig7" {
                    format!("{}", 2 + i * step)
                } else {
                    xcol.clone()
                };
                plots.push(format!(
                    "'{fig}_{pat}.csv' using {}:{} with linespoints",
                    xc,
                    lcol0 + i * step
                ));
            }
            let _ = writeln!(s, "plot {}", plots.join(", "));
            let _ = writeln!(s, "unset multiplot");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::experiment::CubeParams;

    #[test]
    fn cnf_table_shape() {
        let specs = [ExperimentSpec::cube_duato(CubeParams::tiny())];
        let grid = [0.3, 0.8];
        let outcomes =
            sweep_outcomes_salted(&specs[0], Pattern::Uniform, &grid, RunLength::quick(), 0);
        let series = vec![PanelSeries {
            label: specs[0].label().to_string(),
            offered: grid.to_vec(),
            outcomes,
        }];
        let t = cnf_table(&series);
        assert_eq!(t.columns.len(), 3);
        assert_eq!(t.rows.len(), 2);
        let abs = absolute_table(&series, &specs);
        assert_eq!(abs.columns.len(), 4);
        let sat = saturation_table(&series);
        assert_eq!(sat.rows.len(), 1);

        let opts = Options {
            quick: true,
            out_dir: std::path::PathBuf::from("results"),
            seed: Some(7),
        };
        let m = run_manifest(
            "test",
            "fig6_uniform.csv",
            &opts,
            &specs,
            Some(Pattern::Uniform),
            &series,
            1.25,
        );
        let json = m.to_json();
        for needle in [
            "\"schema\": \"netperf-run-manifest/1\"",
            "\"artifact\": \"fig6_uniform.csv\"",
            "\"seed_salt\": \"0x0000000000000007\"",
            "\"pattern\": \"uniform\"",
            "\"label\": \"cube, Duato\"",
            "\"simulations\": 2",
        ] {
            assert!(json.contains(needle), "manifest missing {needle}:\n{json}");
        }
    }

    /// Satellite guard: the untraced manifest must stay byte-identical
    /// to the historical `netperf-run-manifest/1` rendering, and the
    /// telemetry variant must differ only by the schema tag and a
    /// trailing `telemetry` object. Parameterized on `sweep_threads()`
    /// and the engine feature flags so it holds on any build/host.
    #[test]
    fn manifest_telemetry_golden_bytes() {
        let opts = Options {
            quick: true,
            out_dir: std::path::PathBuf::from("results"),
            seed: None,
        };
        let len = opts.run_length();
        let mut engine_block = String::new();
        let features = netsim::engine_features();
        for (i, (feature, enabled)) in features.iter().enumerate() {
            engine_block.push_str(&format!(
                "    \"{feature}\": {enabled}{}\n",
                if i + 1 < features.len() { "," } else { "" }
            ));
        }
        let body = format!(
            "  \"generator\": \"golden\",\n  \"artifact\": \"golden.csv\",\n  \"quick\": true,\n  \"run_length\": {{\n    \"warmup\": {},\n    \"total\": {}\n  }},\n  \"seed_salt\": \"0x0000000000000000\",\n  \"threads\": {},\n  \"engine\": {{\n{engine_block}  }},\n  \"pattern\": \"uniform\",\n  \"scenarios\": [],\n  \"wall_clock_secs\": 0.5,\n  \"counters\": {{\n    \"simulations\": 0,\n    \"created_packets\": 0,\n    \"delivered_packets\": 0\n  }}",
            len.warmup, len.total, netsim::experiment::sweep_threads(),
        );

        let plain = run_manifest(
            "golden",
            "golden.csv",
            &opts,
            &[],
            Some(Pattern::Uniform),
            &[],
            0.5,
        );
        let expected_plain = format!("{{\n  \"schema\": \"netperf-run-manifest/1\",\n{body}\n}}\n");
        assert_eq!(plain.to_json(), expected_plain);

        let mut tele = Manifest::new();
        tele.push("stride", 100.0);
        tele.push("record_events", false);
        let traced = run_manifest_with_telemetry(
            "golden",
            "golden.csv",
            &opts,
            &[],
            Some(Pattern::Uniform),
            &[],
            0.5,
            Some(&tele),
        );
        let expected_traced = format!(
            "{{\n  \"schema\": \"netperf-run-manifest/2\",\n{body},\n  \"telemetry\": {{\n    \"stride\": 100,\n    \"record_events\": false\n  }}\n}}\n"
        );
        assert_eq!(traced.to_json(), expected_traced);
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xDEAD"), Some(0xDEAD));
        assert_eq!(parse_seed("0Xdead"), Some(0xDEAD));
        assert_eq!(parse_seed("nope"), None);
        assert_eq!(parse_seed(""), None);
    }

    #[test]
    fn table_builders_have_both_presentations() {
        let compact = table1_table(false);
        assert_eq!(
            compact.columns,
            vec!["algorithm", "T_routing", "T_crossbar", "T_link", "T_clock"]
        );
        let detailed = table1_table(true);
        assert_eq!(detailed.columns.last().unwrap(), "bottleneck");
        // The paper's headline clocks survive the rounding.
        assert_eq!(detailed.rows[0][4], Cell::Num(6.34));
        assert_eq!(detailed.rows[1][4], Cell::Num(7.8));

        let t2 = table2_table(true);
        assert_eq!(t2.rows.len(), 3);
        assert_eq!(t2.rows[0][0], Cell::Text("1 vc".into()));
        assert_eq!(table2_table(false).columns[0], "vcs");
    }

    #[test]
    fn manifest_paths_substitute_the_extension() {
        let dir = std::path::Path::new("results");
        assert_eq!(
            manifest_path(dir, "fig5_uniform.csv"),
            dir.join("fig5_uniform.manifest.json")
        );
        assert_eq!(manifest_path(dir, "noext"), dir.join("noext.manifest.json"));
    }

    #[test]
    fn gnuplot_script_covers_all_panels() {
        let s = gnuplot_script();
        for fig in ["fig5", "fig6", "fig7"] {
            for pat in ["uniform", "complement", "transpose", "bitrev"] {
                assert!(s.contains(&format!("{fig}_{pat}.png")));
                assert!(s.contains(&format!("{fig}_{pat}.csv")));
            }
        }
    }
}
