//! Regenerates **Table 2** of the paper: "Delays of the three variants
//! of the adaptive algorithm for the fat-tree, expressed in
//! nanoseconds", plus the Equation (5) mean-distance value quoted in
//! Section 8.
//!
//! The rows come from Chien's cost model through the derived
//! [`costmodel::chien::RouterClass`] parameters: for a quaternary tree
//! (`k = 4`) with `V` virtual channels the ascending degree of freedom
//! is `F = (2k-1)·V`, the crossbar has `P = 2k·V` ports, and the
//! 256-node embedding forces medium-length wires.

use bench::{run_manifest, table2_table, write_artifact, Options};
use std::time::Instant;
use topology::KAryNTree;

fn main() {
    let opts = Options::from_args();
    let start = Instant::now();
    let t = table2_table(true);
    println!("Table 2: delays of the adaptive algorithm variants for the fat-tree (ns)");
    println!("{}", t.to_pretty());
    println!("paper prints: 1vc 8.06/5.2/9.64/9.64 — 2vc 9.26/5.8/10.24/10.24 — 4vc 10.46/6.4/10.84/10.84");

    // Equation (5): mean distance of bit-reversal/transpose on the tree.
    let dm = KAryNTree::eq5_mean_distance(4, 4);
    println!("\nEquation (5): d_m = {dm:.3} for the 4-ary 4-tree (paper: 7.125; diameter 8)");

    let manifest = run_manifest(
        "table2",
        "table2.csv",
        &opts,
        &[],
        None,
        &[],
        start.elapsed().as_secs_f64(),
    );
    let path = write_artifact(&t, &opts.out_dir, "table2.csv", &manifest);
    eprintln!("wrote {}", path.display());
}
