//! Regenerates **Table 2** of the paper: "Delays of the three variants
//! of the adaptive algorithm for the fat-tree, expressed in
//! nanoseconds", plus the Equation (5) mean-distance value quoted in
//! Section 8.
//!
//! Parameters from Section 5: for a quaternary tree (`k = 4`) with `V`
//! virtual channels the ascending degree of freedom is `F = (2k-1)·V`,
//! the crossbar has `P = 2k·V` ports, and the 256-node embedding forces
//! medium-length wires.

use bench::{write_csv, Options};
use costmodel::chien::tree_adaptive_timing;
use netstats::Table;
use topology::KAryNTree;

fn main() {
    let opts = Options::from_args();
    let mut t = Table::with_columns([
        "virtual_channels",
        "T_routing",
        "T_crossbar",
        "T_link_m",
        "T_clock",
        "bottleneck",
    ]);
    for v in [1usize, 2, 4] {
        let timing = tree_adaptive_timing(4, v);
        t.push_row(vec![
            format!("{v} vc").into(),
            round2(timing.t_routing_ns).into(),
            round2(timing.t_crossbar_ns).into(),
            round2(timing.t_link_ns).into(),
            round2(timing.clock_ns()).into(),
            timing.bottleneck().into(),
        ]);
    }
    println!("Table 2: delays of the adaptive algorithm variants for the fat-tree (ns)");
    println!("{}", t.to_pretty());
    println!("paper prints: 1vc 8.06/5.2/9.64/9.64 — 2vc 9.26/5.8/10.24/10.24 — 4vc 10.46/6.4/10.84/10.84");

    // Equation (5): mean distance of bit-reversal/transpose on the tree.
    let dm = KAryNTree::eq5_mean_distance(4, 4);
    println!("\nEquation (5): d_m = {dm:.3} for the 4-ary 4-tree (paper: 7.125; diameter 8)");

    let path = opts.out_dir.join("table2.csv");
    write_csv(&t, &path).expect("write table2.csv");
    eprintln!("wrote {}", path.display());
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}
