//! Engine benchmark-baseline harness.
//!
//! Runs fixed paper-scale workloads (the five router configurations of
//! the paper on their 256-node networks, uniform traffic) with the
//! active-set stepper ([`Engine::step`]) and with the naive
//! scan-everything reference stepper ([`Engine::step_reference`]),
//! measuring wall-clock throughput of each: simulated cycles per second
//! and flit-moves per second. Every timed leg follows the same
//! discipline — one untimed warm-up iteration, then the median of three
//! timed iterations — so single-run scheduler noise cannot invert a
//! comparison. Both engines are asserted bit-identical before their
//! numbers are reported, so the comparison is between two
//! implementations of the *same* simulation.
//!
//! Writes `BENCH_engine.json` (override with `--out <path>`): one
//! record per (configuration, offered load) with the optimized and
//! baseline rates side by side and their ratio. Low loads are where the
//! active sets pay off (most routers idle); saturation shows the
//! bounded overhead when nearly everything is active.
//!
//! A third timed run per point drives the optimized stepper with a
//! recording [`FlightRecorder`] probe (stride-100 utilization sampling,
//! event log off) and reports `probe_overhead` — the wall-clock cost of
//! live telemetry relative to the default `NullProbe` build, whose own
//! numbers pin the zero-overhead claim of the probe plane.
//!
//! Usage: `bench_engine [--cycles N] [--out <path>]`

use netsim::engine::{Counters, Engine};
use netsim::experiment::{ExperimentSpec, RunLength, SpecVisitor};
use netsim::sim::SimConfig;
use netsim::wiring::Wiring;
use routing::RoutingAlgorithm;
use std::fmt::Write as _;
use std::time::Instant;
use telemetry::{FlightRecorder, Geometry, Probe, TelemetryConfig};
use traffic::{Bernoulli, InjectionProcess, Pattern, TrafficGen};

/// Offered loads (fraction of capacity) per configuration: the 0.1–0.3
/// regime the active sets target, one mid point, and saturation.
const LOADS: [f64; 5] = [0.1, 0.2, 0.3, 0.5, 1.0];

struct Sample {
    label: String,
    load: f64,
    cycles: u32,
    flit_moves: u64,
    opt_secs: f64,
    ref_secs: f64,
    traced_secs: f64,
}

impl Sample {
    fn opt_cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.opt_secs
    }
    fn ref_cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.ref_secs
    }
    fn opt_moves_per_sec(&self) -> f64 {
        self.flit_moves as f64 / self.opt_secs
    }
    fn ref_moves_per_sec(&self) -> f64 {
        self.flit_moves as f64 / self.ref_secs
    }
    fn traced_cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.traced_secs
    }
    fn speedup(&self) -> f64 {
        self.ref_secs / self.opt_secs
    }
    /// Relative wall-clock cost of the recording probe vs `NullProbe`.
    fn probe_overhead(&self) -> f64 {
        self.traced_secs / self.opt_secs - 1.0
    }
}

fn build_engine<'a, A: RoutingAlgorithm + ?Sized>(algo: &'a A, cfg: &SimConfig) -> Engine<'a, A> {
    build_engine_probed(algo, cfg, telemetry::NullProbe)
}

fn build_engine_probed<'a, A: RoutingAlgorithm + ?Sized, P: Probe>(
    algo: &'a A,
    cfg: &SimConfig,
    probe: P,
) -> Engine<'a, A, P> {
    let pattern = TrafficGen::new(cfg.pattern, algo.topology().num_nodes());
    let rate = cfg.injection.mean_rate();
    let mut eng = Engine::with_probe(
        algo,
        cfg.buffer_depth,
        cfg.flits_per_packet,
        pattern,
        &move |_| Box::new(Bernoulli::new(rate)) as Box<dyn InjectionProcess>,
        cfg.seed,
        probe,
    );
    eng.set_injection_limit(cfg.injection_limit);
    eng.set_request_reply(cfg.request_reply);
    eng
}

/// The recording probe the traced timing uses: utilization sampling on,
/// event log off (a paper-length run would hold millions of events).
fn recorder_for<A: RoutingAlgorithm + ?Sized>(algo: &A) -> FlightRecorder {
    let w = Wiring::from_topology(algo.topology());
    FlightRecorder::new(
        TelemetryConfig {
            stride: 100,
            record_events: false,
        },
        Geometry {
            routers: w.num_routers,
            ports: w.ports,
            vcs: algo.num_vcs(),
            nodes: w.num_nodes,
        },
    )
}

/// Measurement discipline for every timed leg: one full-length warm-up
/// iteration (page faults, allocator growth, and frequency ramp-up land
/// here, not in a timed run), then the median elapsed time of three
/// timed iterations. The runs are deterministic, so the counters of any
/// iteration are the counters of all of them; medians reject the
/// one-off scheduler hiccups that previously produced a *negative*
/// probe overhead at load 0.1.
fn warmed_median_of_3(mut run: impl FnMut() -> (f64, Counters)) -> (f64, Counters) {
    let _ = run(); // warm-up, untimed
    let (s0, counters) = run();
    let (s1, c1) = run();
    let (s2, c2) = run();
    debug_assert_eq!(counters, c1);
    debug_assert_eq!(counters, c2);
    let mut secs = [s0, s1, s2];
    secs.sort_by(f64::total_cmp);
    (secs[1], counters)
}

/// Time one engine run; returns (elapsed seconds, final counters).
fn time_run<A: RoutingAlgorithm + ?Sized>(
    algo: &A,
    cfg: &SimConfig,
    cycles: u32,
    reference: bool,
) -> (f64, Counters) {
    let mut eng = build_engine(algo, cfg);
    let start = Instant::now();
    if reference {
        eng.run_reference(cycles);
    } else {
        eng.run(cycles);
    }
    (start.elapsed().as_secs_f64(), eng.counters())
}

/// Times the optimized (active-set, monomorphized) stepper: the visitor
/// receives the concrete algorithm type, so this measures the engine as
/// `simulate_load` actually runs it.
struct TimeOptimized<'c> {
    cfg: &'c SimConfig,
    cycles: u32,
}

impl SpecVisitor for TimeOptimized<'_> {
    type Out = (f64, Counters);
    fn visit<A: RoutingAlgorithm>(self, algo: A) -> (f64, Counters) {
        warmed_median_of_3(|| time_run(&algo, self.cfg, self.cycles, false))
    }
}

/// Times the optimized stepper monomorphized over a recording
/// [`FlightRecorder`] probe: the cost of live telemetry.
struct TimeTraced<'c> {
    cfg: &'c SimConfig,
    cycles: u32,
}

impl SpecVisitor for TimeTraced<'_> {
    type Out = (f64, Counters);
    fn visit<A: RoutingAlgorithm>(self, algo: A) -> (f64, Counters) {
        warmed_median_of_3(|| {
            let mut eng = build_engine_probed(&algo, self.cfg, recorder_for(&algo));
            let start = Instant::now();
            eng.run(self.cycles);
            (start.elapsed().as_secs_f64(), eng.counters())
        })
    }
}

fn main() {
    let mut cycles: u32 = 20_000; // the paper's full run length
    let mut out = std::path::PathBuf::from("BENCH_engine.json");
    let mut seed_salt: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cycles" => {
                cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing/invalid count after --cycles"));
            }
            "--out" => {
                out = args
                    .next()
                    .unwrap_or_else(|| usage("missing path after --out"))
                    .into();
            }
            "--seed" => {
                seed_salt = args
                    .next()
                    .as_deref()
                    .and_then(bench::parse_seed)
                    .unwrap_or_else(|| usage("missing/invalid value after --seed"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let mut samples = Vec::new();
    for spec in ExperimentSpec::paper_five() {
        let algo = spec.build_algorithm();
        for load in LOADS {
            let mut cfg = spec.config_at(Pattern::Uniform, load, RunLength::paper());
            cfg.seed ^= seed_salt;
            // Optimized: active-set stepper, concrete algorithm type
            // (the configuration `simulate_load` ships). Baseline:
            // full-scan reference stepper behind dynamic dispatch (the
            // pre-optimization configuration).
            let (opt_secs, opt_counters) = spec.with_algorithm(TimeOptimized { cfg: &cfg, cycles });
            let (ref_secs, ref_counters) =
                warmed_median_of_3(|| time_run(algo.as_ref(), &cfg, cycles, true));
            let (traced_secs, traced_counters) =
                spec.with_algorithm(TimeTraced { cfg: &cfg, cycles });
            assert_eq!(
                opt_counters,
                ref_counters,
                "{} at load {load}: steppers diverged — benchmark void",
                spec.label()
            );
            assert_eq!(
                opt_counters,
                traced_counters,
                "{} at load {load}: recording probe perturbed the simulation — benchmark void",
                spec.label()
            );
            let s = Sample {
                label: spec.label().to_string(),
                load,
                cycles,
                flit_moves: opt_counters.flit_moves,
                opt_secs,
                ref_secs,
                traced_secs,
            };
            eprintln!(
                "{:22} load {:4.2}: {:>7.2} Mcycles/s vs {:>7.2} baseline ({:4.2}x), \
                 {:>7.2} Mmoves/s, probe {:+5.1}%",
                s.label,
                s.load,
                s.opt_cycles_per_sec() / 1e6,
                s.ref_cycles_per_sec() / 1e6,
                s.speedup(),
                s.opt_moves_per_sec() / 1e6,
                s.probe_overhead() * 100.0,
            );
            samples.push(s);
        }
    }

    let low: Vec<&Sample> = samples.iter().filter(|s| s.load <= 0.3).collect();
    let low_speedup = low.iter().map(|s| s.speedup()).sum::<f64>() / low.len() as f64;
    let mean_probe = samples.iter().map(|s| s.probe_overhead()).sum::<f64>() / samples.len() as f64;
    eprintln!("mean speedup over low-load (<=0.3) points: {low_speedup:.2}x");
    eprintln!("mean recording-probe overhead: {:+.1}%", mean_probe * 100.0);

    std::fs::write(&out, to_json(&samples, low_speedup, mean_probe, seed_salt))
        .expect("write benchmark json");
    eprintln!("wrote {}", out.display());
}

fn to_json(samples: &[Sample], low_speedup: f64, mean_probe: f64, seed_salt: u64) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"benchmark\": \"engine active-set stepper vs naive full-scan baseline\",\n");
    j.push_str("  \"workload\": \"paper-scale (256-node) configurations, uniform traffic\",\n");
    j.push_str("  \"units\": { \"rates\": \"per wall-clock second\" },\n");
    j.push_str(
        "  \"probe\": \"traced = FlightRecorder (stride-100 utilization, events off); \
         optimized/baseline run the default NullProbe build\",\n",
    );
    j.push_str(
        "  \"protocol\": \"per leg: one untimed full-length warm-up iteration, \
         then the median elapsed time of three timed iterations\",\n",
    );
    let _ = writeln!(j, "  \"seed_salt\": \"0x{seed_salt:016x}\",");
    let _ = writeln!(j, "  \"mean_low_load_speedup\": {low_speedup:.3},");
    let _ = writeln!(j, "  \"mean_probe_overhead\": {mean_probe:.4},");
    j.push_str("  \"runs\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            j,
            "    {{ \"config\": {:?}, \"offered_load\": {}, \"cycles\": {}, \
             \"flit_moves\": {}, \
             \"optimized\": {{ \"seconds\": {:.6}, \"cycles_per_sec\": {:.0}, \"flit_moves_per_sec\": {:.0} }}, \
             \"baseline\": {{ \"seconds\": {:.6}, \"cycles_per_sec\": {:.0}, \"flit_moves_per_sec\": {:.0} }}, \
             \"traced\": {{ \"seconds\": {:.6}, \"cycles_per_sec\": {:.0} }}, \
             \"speedup\": {:.3}, \"probe_overhead\": {:.4} }}",
            s.label,
            s.load,
            s.cycles,
            s.flit_moves,
            s.opt_secs,
            s.opt_cycles_per_sec(),
            s.opt_moves_per_sec(),
            s.ref_secs,
            s.ref_cycles_per_sec(),
            s.ref_moves_per_sec(),
            s.traced_secs,
            s.traced_cycles_per_sec(),
            s.speedup(),
            s.probe_overhead(),
        );
        j.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    j
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: bench_engine [--cycles N] [--seed <salt>] [--out <path>]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
