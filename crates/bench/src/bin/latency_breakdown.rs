//! Latency-decomposition panel: where do cycles go?
//!
//! Runs the paper's five configurations (Figures 5–7) under uniform
//! traffic at three regimes — low load (20% of capacity), medium (50%)
//! and saturation (90%) — with the telemetry probe recording every
//! packet's lifecycle, and writes `latency_breakdown.csv`: one row per
//! (configuration, regime) decomposing mean packet latency into the
//! four telemetry components (source queueing, routing decisions,
//! blocked cycles, transfer cycles). The per-packet identity
//! `src_queue + routing + blocked + transfer == delivered − created`
//! is asserted for every delivered packet before the summary is
//! written, so the panel cannot silently drift from the event stream.
//!
//! Accepts the standard harness flags (`--quick`, `--seed <salt>`,
//! `--out <dir>`); the manifest is written with the
//! `netperf-run-manifest/2` schema since the run records telemetry.

use bench::{run_manifest_with_telemetry, write_artifact, Options, PanelSeries};
use netsim::experiment::ExperimentSpec;
use netsim::scenario::SeedMode;
use netstats::export::{Manifest, ManifestValue};
use netstats::Table;
use std::time::Instant;
use telemetry::TelemetryConfig;
use traffic::Pattern;

/// The three load regimes of the panel: name, offered fraction.
const REGIMES: [(&str, f64); 3] = [("low", 0.20), ("medium", 0.50), ("saturation", 0.90)];

/// Utilization sampling stride (cycles). Events are not recorded: the
/// decomposition only needs the per-packet accumulators, and the five
/// full-length runs would otherwise hold tens of millions of events.
const STRIDE: u32 = 100;

fn main() {
    let opts = Options::from_args();
    let len = opts.run_length();
    let specs = ExperimentSpec::paper_five();
    let tcfg = TelemetryConfig {
        stride: STRIDE,
        record_events: false,
    };

    let mut t = Table::with_columns([
        "configuration",
        "regime",
        "offered",
        "accepted",
        "packets",
        "mean_src_queue",
        "mean_routing",
        "mean_blocked",
        "mean_transfer",
        "mean_network",
        "mean_total",
        "blocked_share",
        "max_blocked",
    ]);

    let start = Instant::now();
    let mut series: Vec<PanelSeries> = Vec::new();
    for spec in &specs {
        eprintln!("  tracing {} under uniform traffic...", spec.label());
        let scenario = spec
            .scenario()
            .clone()
            .with_run_length(len)
            .with_seed(SeedMode::Derived {
                salt: opts.seed_salt(),
            })
            .with_telemetry(tcfg);
        let mut outcomes = Vec::new();
        for (regime, offered) in REGIMES {
            let (out, rec) = scenario.simulate_traced(offered);
            // The decomposition identity, checked per packet: the four
            // components must sum to the packet's total latency.
            for b in rec.breakdowns() {
                assert_eq!(
                    b.src_queue + b.routing + b.blocked + b.transfer,
                    b.total(),
                    "latency components of packet {} do not sum to its total",
                    b.packet
                );
            }
            let sum = rec
                .breakdown_summary()
                .unwrap_or_else(|| panic!("{}: no packets delivered at {regime}", spec.label()));
            t.push_row(vec![
                spec.label().into(),
                regime.into(),
                offered.into(),
                out.accepted_fraction.into(),
                (sum.packets as f64).into(),
                sum.mean_src_queue.into(),
                sum.mean_routing.into(),
                sum.mean_blocked.into(),
                sum.mean_transfer.into(),
                sum.mean_network.into(),
                sum.mean_total.into(),
                sum.blocked_share().into(),
                (sum.max_blocked as f64).into(),
            ]);
            outcomes.push(out);
        }
        series.push(PanelSeries {
            label: spec.label().to_string(),
            offered: REGIMES.iter().map(|&(_, f)| f).collect(),
            outcomes,
        });
    }

    println!("{}", t.to_pretty());

    let mut tele = Manifest::new();
    tele.push("stride", STRIDE as f64);
    tele.push("record_events", false);
    tele.push(
        "regimes",
        ManifestValue::List(
            REGIMES
                .iter()
                .map(|&(name, f)| {
                    let mut r = Manifest::new();
                    r.push("regime", name);
                    r.push("offered", f);
                    ManifestValue::Object(r)
                })
                .collect(),
        ),
    );
    let manifest = run_manifest_with_telemetry(
        "latency_breakdown",
        "latency_breakdown.csv",
        &opts,
        &specs,
        Some(Pattern::Uniform),
        &series,
        start.elapsed().as_secs_f64(),
        Some(&tele),
    );
    let path = write_artifact(&t, &opts.out_dir, "latency_breakdown.csv", &manifest);
    eprintln!("wrote {}", path.display());
}
