//! Regenerates **Figure 6** of the paper: "Communication performance of
//! a 16-ary 2-cube with deterministic and minimal adaptive routing" —
//! eight panels (accepted bandwidth and network latency under uniform,
//! complement, transpose and bit-reversal traffic) in Chaos Normal Form.

use bench::{
    cnf_table, paper_patterns, run_manifest, run_panel, saturation_table, write_artifact, Options,
};
use netsim::experiment::{CubeParams, ExperimentSpec};
use std::time::Instant;

fn main() {
    let opts = Options::from_args();
    let len = opts.run_length();
    let specs = vec![
        ExperimentSpec::cube_deterministic(CubeParams::paper()),
        ExperimentSpec::cube_duato(CubeParams::paper()),
    ];

    for (pattern, panels) in paper_patterns() {
        eprintln!("Figure 6 {panels}) — {}", pattern.title());
        let start = Instant::now();
        let series = run_panel(&specs, pattern, len, opts.seed_salt());
        let secs = start.elapsed().as_secs_f64();
        let table = cnf_table(&series);
        println!("\nFigure 6 {panels}) {}", pattern.title());
        println!("{}", table.to_pretty());
        println!("{}", saturation_table(&series).to_pretty());
        let artifact = format!("fig6_{}.csv", pattern.name());
        let manifest = run_manifest(
            "fig6",
            &artifact,
            &opts,
            &specs,
            Some(pattern),
            &series,
            secs,
        );
        let path = write_artifact(&table, &opts.out_dir, &artifact, &manifest);
        eprintln!("wrote {}", path.display());
    }

    println!("paper reference points (saturation, fraction of capacity):");
    println!("  uniform:    80% (Duato), 60% (deterministic); latency ~70 cycles pre-saturation");
    println!(
        "  complement: 47% (deterministic, near the 50% bound), 35% (Duato, early saturation)"
    );
    println!("  transpose:  50% (Duato), less than half of that deterministic");
    println!("  bitrev:     60% (Duato), 20% (deterministic)");
}
