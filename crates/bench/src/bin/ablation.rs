//! Ablation studies beyond the paper: how sensitive are the headline
//! results to the modelling choices DESIGN.md calls out?
//!
//! * **Buffer depth** — the paper fixes 4-flit lanes; we sweep 2..=8.
//! * **Injection throttle** — the limited-injection threshold that keeps
//!   cube throughput stable above saturation (paper reference \[28\]).
//! * **Virtual channels on the tree** — extends Figure 5's 1/2/4 sweep
//!   with 3, 6 and 8 VCs to expose the diminishing returns predicted in
//!   Section 11 (with the matching Chien clock for each).
//! * **Torus vs mesh** — the wrap-around links, via the scenario
//!   registry's mesh entries.
//!
//! Each ablation drives the paper network at a fixed stress load and
//! reports sustained accepted bandwidth.

use bench::{run_manifest, write_artifact, Options};
use costmodel::chien::tree_adaptive_timing;
use netsim::experiment::{CubeParams, ExperimentSpec, TreeParams};
use netsim::sim::run_simulation;
use netstats::Table;
use std::time::Instant;
use traffic::Pattern;

fn main() {
    let opts = Options::from_args();
    let len = opts.run_length();
    let salt = opts.seed_salt();

    // Buffer depth ablation (both networks, uniform, moderately above
    // each network's saturation).
    let start = Instant::now();
    let mut t = Table::with_columns(["configuration", "buffer_depth", "accepted_fraction"]);
    for (spec, load) in [
        (ExperimentSpec::cube_duato(CubeParams::paper()), 0.9),
        (ExperimentSpec::tree_adaptive(TreeParams::paper(), 2), 0.9),
    ] {
        for depth in [2usize, 4, 6, 8] {
            let algo = spec.build_algorithm();
            let mut cfg = spec.config_at(Pattern::Uniform, load, len);
            cfg.buffer_depth = depth;
            cfg.seed ^= salt;
            let out = run_simulation(algo.as_ref(), &cfg);
            t.push_row(vec![
                spec.label().into(),
                (depth as f64).into(),
                out.accepted_fraction.into(),
            ]);
        }
    }
    println!("Ablation: lane depth (paper fixes 4 flits)");
    println!("{}", t.to_pretty());
    write_artifact(
        &t,
        &opts.out_dir,
        "ablation_buffer_depth.csv",
        &run_manifest(
            "ablation",
            "ablation_buffer_depth.csv",
            &opts,
            &[],
            Some(Pattern::Uniform),
            &[],
            start.elapsed().as_secs_f64(),
        ),
    );

    // Injection-limit ablation on the cube (uniform at full offered
    // load; the default is 8 of the 16 network lanes).
    let start = Instant::now();
    let mut t = Table::with_columns(["algorithm", "limit", "accepted_fraction"]);
    for spec in [
        ExperimentSpec::cube_deterministic(CubeParams::paper()),
        ExperimentSpec::cube_duato(CubeParams::paper()),
    ] {
        for limit in [None, Some(4u32), Some(6), Some(8), Some(10), Some(12)] {
            let algo = spec.build_algorithm();
            let mut cfg = spec.config_at(Pattern::Uniform, 1.0, len);
            cfg.injection_limit = limit;
            cfg.seed ^= salt;
            let out = run_simulation(algo.as_ref(), &cfg);
            t.push_row(vec![
                spec.label().into(),
                limit.map(|l| l as f64).unwrap_or(f64::NAN).into(),
                out.accepted_fraction.into(),
            ]);
        }
    }
    println!("Ablation: limited-injection threshold (offered = 100%)");
    println!("{}", t.to_pretty());
    write_artifact(
        &t,
        &opts.out_dir,
        "ablation_injection_limit.csv",
        &run_manifest(
            "ablation",
            "ablation_injection_limit.csv",
            &opts,
            &[],
            Some(Pattern::Uniform),
            &[],
            start.elapsed().as_secs_f64(),
        ),
    );

    // Virtual-channel count on the tree, with the matching clock from
    // the cost model: diminishing (and eventually negative) returns once
    // the router becomes routing-limited.
    let start = Instant::now();
    let mut t = Table::with_columns([
        "virtual_channels",
        "accepted_fraction",
        "clock_ns",
        "accepted_bits_ns",
    ]);
    for vcs in [1usize, 2, 3, 4, 6, 8] {
        let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), vcs);
        let outs =
            netsim::experiment::sweep_outcomes_salted(&spec, Pattern::Uniform, &[0.95], len, salt);
        let out = &outs[0];
        let timing = tree_adaptive_timing(4, vcs);
        // Aggregate absolute throughput with this VC count's own clock.
        let bits_ns = out.accepted_fraction * 256.0 * 1.0 * 16.0 / timing.clock_ns();
        t.push_row(vec![
            (vcs as f64).into(),
            out.accepted_fraction.into(),
            timing.clock_ns().into(),
            bits_ns.into(),
        ]);
    }
    println!("Ablation: tree virtual channels at 95% offered load");
    println!("{}", t.to_pretty());
    write_artifact(
        &t,
        &opts.out_dir,
        "ablation_tree_vcs.csv",
        &run_manifest(
            "ablation",
            "ablation_tree_vcs.csv",
            &opts,
            &[],
            Some(Pattern::Uniform),
            &[],
            start.elapsed().as_secs_f64(),
        ),
    );

    // Torus vs mesh: what do the wrap-around links (and the dateline
    // machinery they force) actually buy? Same 256-node grid, same
    // per-node injection rate in flits/cycle, uniform traffic.
    torus_vs_mesh(&opts, len);
}

fn torus_vs_mesh(opts: &Options, len: netsim::experiment::RunLength) {
    use netsim::scenario::{named, Scenario};

    let start = Instant::now();
    let mut t = Table::with_columns([
        "topology",
        "flits_per_node_cycle",
        "accepted_flits_per_node_cycle",
        "latency_cycles",
    ]);
    // The mesh configurations come straight from the scenario registry;
    // the torus is its cube-det sibling. Both run deterministic routing
    // with the cube's throttle rule so only the wrap-around links (and
    // halved bisection) differ.
    let torus: Scenario = named("cube-det").expect("registry entry");
    let mesh: Scenario = named("mesh-det").expect("registry entry");
    for scenario in [&torus, &mesh] {
        let scenario = scenario.clone().with_run_length(len);
        let capacity = scenario.normalization().capacity_flits_per_cycle();
        let label = match scenario.label() {
            "cube, deterministic" => "16-ary 2-cube (torus)",
            _ => "16-ary 2-mesh",
        };
        for rate_flits in [0.1, 0.2, 0.3] {
            // Fixed per-node flit rate, so the fraction of capacity
            // differs between the two networks by design.
            let fraction = rate_flits / capacity;
            let mut cfg = scenario.config_at(fraction);
            cfg.seed = 99 ^ opts.seed_salt();
            cfg.injection_limit = Some(8);
            let out = scenario.with_algorithm(RunWith { cfg: &cfg });
            t.push_row(vec![
                label.into(),
                rate_flits.into(),
                out.accepted_flits_per_node_cycle.into(),
                out.mean_latency_cycles().into(),
            ]);
        }
    }
    println!("Ablation: torus vs mesh (same grid, wrap-around links removed)");
    println!("{}", t.to_pretty());
    write_artifact(
        &t,
        &opts.out_dir,
        "ablation_torus_vs_mesh.csv",
        &run_manifest(
            "ablation",
            "ablation_torus_vs_mesh.csv",
            opts,
            &[],
            Some(Pattern::Uniform),
            &[],
            start.elapsed().as_secs_f64(),
        ),
    );
}

struct RunWith<'c> {
    cfg: &'c netsim::sim::SimConfig,
}

impl netsim::experiment::SpecVisitor for RunWith<'_> {
    type Out = netsim::sim::SimOutcome;
    fn visit<A: routing::RoutingAlgorithm>(self, algo: A) -> Self::Out {
        run_simulation(&algo, self.cfg)
    }
}
