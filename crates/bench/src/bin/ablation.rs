//! Ablation studies beyond the paper: how sensitive are the headline
//! results to the modelling choices DESIGN.md calls out?
//!
//! * **Buffer depth** — the paper fixes 4-flit lanes; we sweep 2..=8.
//! * **Injection throttle** — the limited-injection threshold that keeps
//!   cube throughput stable above saturation (paper reference \[28\]).
//! * **Virtual channels on the tree** — extends Figure 5's 1/2/4 sweep
//!   with 3, 6 and 8 VCs to expose the diminishing returns predicted in
//!   Section 11 (with the matching Chien clock for each).
//!
//! Each ablation drives the paper network at a fixed stress load and
//! reports sustained accepted bandwidth.

use bench::{write_csv, Options};
use costmodel::chien::tree_adaptive_timing;
use netsim::experiment::{CubeParams, ExperimentSpec, TreeParams};
use netsim::sim::run_simulation;
use netstats::Table;
use traffic::Pattern;

fn main() {
    let opts = Options::from_args();
    let len = opts.run_length();

    // Buffer depth ablation (both networks, uniform, moderately above
    // each network's saturation).
    let mut t = Table::with_columns(["configuration", "buffer_depth", "accepted_fraction"]);
    for (spec, load) in [
        (ExperimentSpec::cube_duato(CubeParams::paper()), 0.9),
        (ExperimentSpec::tree_adaptive(TreeParams::paper(), 2), 0.9),
    ] {
        for depth in [2usize, 4, 6, 8] {
            let algo = spec.build_algorithm();
            let mut cfg = spec.config_at(Pattern::Uniform, load, len);
            cfg.buffer_depth = depth;
            let out = run_simulation(algo.as_ref(), &cfg);
            t.push_row(vec![
                spec.label().into(),
                (depth as f64).into(),
                out.accepted_fraction.into(),
            ]);
        }
    }
    println!("Ablation: lane depth (paper fixes 4 flits)");
    println!("{}", t.to_pretty());
    write_csv(&t, opts.out_dir.join("ablation_buffer_depth.csv")).expect("write csv");

    // Injection-limit ablation on the cube (uniform at full offered
    // load; the default is 8 of the 16 network lanes).
    let mut t = Table::with_columns(["algorithm", "limit", "accepted_fraction"]);
    for spec in [
        ExperimentSpec::cube_deterministic(CubeParams::paper()),
        ExperimentSpec::cube_duato(CubeParams::paper()),
    ] {
        for limit in [None, Some(4u32), Some(6), Some(8), Some(10), Some(12)] {
            let algo = spec.build_algorithm();
            let mut cfg = spec.config_at(Pattern::Uniform, 1.0, len);
            cfg.injection_limit = limit;
            let out = run_simulation(algo.as_ref(), &cfg);
            t.push_row(vec![
                spec.label().into(),
                limit.map(|l| l as f64).unwrap_or(f64::NAN).into(),
                out.accepted_fraction.into(),
            ]);
        }
    }
    println!("Ablation: limited-injection threshold (offered = 100%)");
    println!("{}", t.to_pretty());
    write_csv(&t, opts.out_dir.join("ablation_injection_limit.csv")).expect("write csv");

    // Virtual-channel count on the tree, with the matching clock from
    // the cost model: diminishing (and eventually negative) returns once
    // the router becomes routing-limited.
    let mut t = Table::with_columns([
        "virtual_channels",
        "accepted_fraction",
        "clock_ns",
        "accepted_bits_ns",
    ]);
    for vcs in [1usize, 2, 3, 4, 6, 8] {
        let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), vcs);
        let out = netsim::experiment::simulate_load(&spec, Pattern::Uniform, 0.95, len);
        let timing = tree_adaptive_timing(4, vcs);
        // Aggregate absolute throughput with this VC count's own clock.
        let bits_ns = out.accepted_fraction * 256.0 * 1.0 * 16.0 / timing.clock_ns();
        t.push_row(vec![
            (vcs as f64).into(),
            out.accepted_fraction.into(),
            timing.clock_ns().into(),
            bits_ns.into(),
        ]);
    }
    println!("Ablation: tree virtual channels at 95% offered load");
    println!("{}", t.to_pretty());
    write_csv(&t, opts.out_dir.join("ablation_tree_vcs.csv")).expect("write csv");

    // Torus vs mesh: what do the wrap-around links (and the dateline
    // machinery they force) actually buy? Same 256-node grid, same
    // per-node injection rate in flits/cycle, uniform traffic.
    torus_vs_mesh(&opts, len);
}

fn torus_vs_mesh(opts: &Options, len: netsim::experiment::RunLength) {
    use netsim::sim::SimConfig;
    use routing::{CubeDeterministic, MeshDeterministic, RoutingAlgorithm};
    use topology::{KAryNCube, KAryNMesh};

    let mut t = Table::with_columns([
        "topology",
        "flits_per_node_cycle",
        "accepted_flits_per_node_cycle",
        "latency_cycles",
    ]);
    let torus: Box<dyn RoutingAlgorithm> = Box::new(CubeDeterministic::new(KAryNCube::new(16, 2)));
    let mesh: Box<dyn RoutingAlgorithm> = Box::new(MeshDeterministic::new(KAryNMesh::new(16, 2), 4));
    for (label, algo, capacity) in [
        ("16-ary 2-cube (torus)", &torus, 0.5),
        ("16-ary 2-mesh", &mesh, 0.25),
    ] {
        for rate_flits in [0.1, 0.2, 0.3] {
            let cfg = SimConfig {
                seed: 99,
                warmup_cycles: len.warmup,
                total_cycles: len.total,
                buffer_depth: 4,
                flits_per_packet: 16,
                capacity_flits_per_cycle: capacity,
                injection: netsim::sim::InjectionSpec::Bernoulli {
                    packets_per_cycle: rate_flits / 16.0,
                },
                pattern: Pattern::Uniform,
                injection_limit: Some(8),
                request_reply: false,
            };
            let out = netsim::sim::run_simulation(algo.as_ref(), &cfg);
            t.push_row(vec![
                label.into(),
                rate_flits.into(),
                out.accepted_flits_per_node_cycle.into(),
                out.mean_latency_cycles().into(),
            ]);
        }
    }
    println!("Ablation: torus vs mesh (same grid, wrap-around links removed)");
    println!("{}", t.to_pretty());
    write_csv(&t, opts.out_dir.join("ablation_torus_vs_mesh.csv")).expect("write csv");
}
