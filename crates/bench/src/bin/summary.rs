//! The headline-numbers check: reruns the full evaluation (all five
//! configurations, all four patterns) and prints measured saturation
//! points side by side with the values the paper reports in Sections
//! 8–11, in both normalized (fraction of capacity) and absolute
//! (bits/ns) units. This is the data EXPERIMENTS.md records.

use bench::{paper_patterns, run_manifest, run_panel, write_artifact, Options, PanelSeries};
use netsim::experiment::ExperimentSpec;
use netstats::Table;
use std::time::Instant;
use traffic::Pattern;

/// Paper-reported saturation fractions (Sections 8–10), where stated.
fn paper_saturation(label: &str, pattern: Pattern) -> Option<f64> {
    let v = match (label, pattern) {
        ("cube, deterministic", Pattern::Uniform) => 0.60,
        ("cube, Duato", Pattern::Uniform) => 0.80,
        ("fat tree, 1 vc", Pattern::Uniform) => 0.36,
        ("fat tree, 2 vc", Pattern::Uniform) => 0.55,
        ("fat tree, 4 vc", Pattern::Uniform) => 0.72,
        ("cube, deterministic", Pattern::Complement) => 0.47,
        ("cube, Duato", Pattern::Complement) => 0.35,
        ("fat tree, 1 vc", Pattern::Complement) => 0.95,
        ("fat tree, 2 vc", Pattern::Complement) => 0.95,
        ("fat tree, 4 vc", Pattern::Complement) => 0.95,
        ("cube, deterministic", Pattern::Transpose) => 0.22,
        ("cube, Duato", Pattern::Transpose) => 0.50,
        ("fat tree, 1 vc", Pattern::Transpose) => 0.33,
        ("fat tree, 2 vc", Pattern::Transpose) => 0.60,
        ("fat tree, 4 vc", Pattern::Transpose) => 0.78,
        ("cube, deterministic", Pattern::BitReversal) => 0.20,
        ("cube, Duato", Pattern::BitReversal) => 0.60,
        ("fat tree, 1 vc", Pattern::BitReversal) => 0.35,
        ("fat tree, 2 vc", Pattern::BitReversal) => 0.60,
        ("fat tree, 4 vc", Pattern::BitReversal) => 0.75,
        _ => return None,
    };
    Some(v)
}

fn measured_saturation(s: &PanelSeries) -> (f64, f64) {
    let sat = bench::saturation_of(s, 0.05);
    // Never saturated within the grid: report the last point.
    (
        sat.offered
            .unwrap_or_else(|| *s.offered.last().expect("non-empty sweep")),
        sat.sustained,
    )
}

fn main() {
    let opts = Options::from_args();
    let len = opts.run_length();
    let specs = ExperimentSpec::paper_five();

    let mut t = Table::with_columns([
        "pattern",
        "configuration",
        "paper_saturation",
        "measured_saturation_offered",
        "measured_sustained_accepted",
        "accepted_bits_ns",
        "latency_at_30pct_cycles",
        "latency_at_30pct_ns",
    ]);

    let start = Instant::now();
    for (pattern, _) in paper_patterns() {
        let series = run_panel(&specs, pattern, len, opts.seed_salt());
        for (s, spec) in series.iter().zip(&specs) {
            let (sat_off, sat_acc) = measured_saturation(s);
            let norm = spec.normalization();
            // Latency at 30% of capacity: below every saturation point,
            // a fair "pre-saturation latency" probe.
            let curve = s.cnf_curve();
            let lat30 = curve.latency.interpolate(0.30).unwrap_or(f64::NAN);
            t.push_row(vec![
                pattern.name().into(),
                s.label.clone().into(),
                paper_saturation(&s.label, pattern)
                    .unwrap_or(f64::NAN)
                    .into(),
                sat_off.into(),
                sat_acc.into(),
                norm.fraction_to_bits_per_ns(sat_acc).into(),
                lat30.into(),
                norm.cycles_to_ns(lat30).into(),
            ]);
        }
    }

    println!("{}", t.to_pretty());
    let manifest = run_manifest(
        "summary",
        "summary.csv",
        &opts,
        &specs,
        None,
        &[],
        start.elapsed().as_secs_f64(),
    );
    let path = write_artifact(&t, &opts.out_dir, "summary.csv", &manifest);
    eprintln!("wrote {}", path.display());
}
