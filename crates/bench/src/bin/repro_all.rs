//! Runs the complete reproduction in one pass and writes every artifact
//! to the output directory:
//!
//! * `table1.csv`, `table2.csv` — the cost-model tables;
//! * `fig5_<pattern>.csv`, `fig6_<pattern>.csv` — the CNF panels;
//! * `fig7_<pattern>.csv` — the absolute-unit panels;
//! * `saturation.csv` — saturation summary of every (config, pattern);
//! * `report.md` — a human-readable digest.
//!
//! Because the load sweeps of Figures 5 and 6 are subsets of Figure 7's
//! (identical seeds, identical simulations), everything is measured in a
//! single collection pass: 5 configurations x 4 patterns x 20 loads.

use bench::{absolute_table, cnf_table, paper_patterns, run_panel, saturation_table, write_csv, Options, PanelSeries};
use costmodel::chien::{cube_deterministic_timing, cube_duato_timing, tree_adaptive_timing};
use netsim::experiment::ExperimentSpec;
use netstats::Table;
use std::fmt::Write as _;

fn main() {
    let opts = Options::from_args();
    let len = opts.run_length();
    let specs = ExperimentSpec::paper_five();
    let mut report = String::new();
    let _ = writeln!(report, "# Reproduction run ({} cycles, warm-up {})\n", len.total, len.warmup);

    // Tables 1 and 2.
    let mut t1 = Table::with_columns(["algorithm", "T_routing", "T_crossbar", "T_link", "T_clock"]);
    for (name, tm) in [("Det.", cube_deterministic_timing()), ("Duato", cube_duato_timing())] {
        t1.push_row(vec![
            name.into(),
            tm.t_routing_ns.into(),
            tm.t_crossbar_ns.into(),
            tm.t_link_ns.into(),
            tm.clock_ns().into(),
        ]);
    }
    write_csv(&t1, opts.out_dir.join("table1.csv")).expect("table1");
    let mut t2 = Table::with_columns(["vcs", "T_routing", "T_crossbar", "T_link", "T_clock"]);
    for v in [1usize, 2, 4] {
        let tm = tree_adaptive_timing(4, v);
        t2.push_row(vec![
            (v as f64).into(),
            tm.t_routing_ns.into(),
            tm.t_crossbar_ns.into(),
            tm.t_link_ns.into(),
            tm.clock_ns().into(),
        ]);
    }
    write_csv(&t2, opts.out_dir.join("table2.csv")).expect("table2");
    let _ = writeln!(report, "## Table 1\n\n```\n{}```\n", t1.to_pretty());
    let _ = writeln!(report, "## Table 2\n\n```\n{}```\n", t2.to_pretty());

    // One collection pass for Figures 5, 6, 7.
    let tree_idx = [2usize, 3, 4]; // tree specs within paper_five()
    let cube_idx = [0usize, 1];
    let mut sat_all = Table::with_columns([
        "pattern",
        "configuration",
        "saturation_offered",
        "sustained_accepted",
        "stability",
    ]);
    for (pattern, panels) in paper_patterns() {
        eprintln!("collecting {} traffic...", pattern.name());
        let series = run_panel(&specs, pattern, len);

        let slice = |idx: &[usize]| -> Vec<PanelSeries> {
            idx.iter()
                .map(|&i| PanelSeries {
                    label: series[i].label.clone(),
                    offered: series[i].offered.clone(),
                    outcomes: series[i].outcomes.clone(),
                })
                .collect()
        };

        let tree_series = slice(&tree_idx);
        let cube_series = slice(&cube_idx);
        write_csv(&cnf_table(&tree_series), opts.out_dir.join(format!("fig5_{}.csv", pattern.name())))
            .expect("fig5 csv");
        write_csv(&cnf_table(&cube_series), opts.out_dir.join(format!("fig6_{}.csv", pattern.name())))
            .expect("fig6 csv");
        write_csv(
            &absolute_table(&series, &specs),
            opts.out_dir.join(format!("fig7_{}.csv", pattern.name())),
        )
        .expect("fig7 csv");

        let sat = saturation_table(&series);
        let _ = writeln!(
            report,
            "## Figure 5/6/7 {panels}) {}\n\n```\n{}```\n",
            pattern.title(),
            sat.to_pretty()
        );
        for row in &sat.rows {
            let mut r = vec![netstats::Cell::Text(pattern.name().into())];
            r.extend(row.iter().cloned());
            sat_all.push_row(r);
        }
    }
    write_csv(&sat_all, opts.out_dir.join("saturation.csv")).expect("saturation csv");

    std::fs::write(opts.out_dir.join("report.md"), &report).expect("report.md");
    std::fs::write(opts.out_dir.join("plot.gp"), gnuplot_script()).expect("plot.gp");
    println!("{report}");
    eprintln!("all artifacts written to {}", opts.out_dir.display());
    eprintln!("plot with: cd {} && gnuplot plot.gp", opts.out_dir.display());
}

/// A gnuplot script rendering all 24 panels of Figures 5-7 from the
/// CSVs into `figures.png` panels (requires gnuplot, not a crate
/// dependency — the CSVs are the primary artifact).
fn gnuplot_script() -> String {
    let mut s = String::from(
        "set datafile separator ','\nset key autotitle columnhead\nset grid\n\
         set term pngcairo size 1400,900\n",
    );
    for (fig, cols) in [("fig5", 3), ("fig6", 2), ("fig7", 5)] {
        for pat in ["uniform", "complement", "transpose", "bitrev"] {
            let (xlab, aylab, lylab, acol0, lcol0, step) = if fig == "fig7" {
                ("offered (bits/ns)", "accepted (bits/ns)", "latency (ns)", 3, 4, 3)
            } else {
                ("offered (fraction of capacity)", "accepted (fraction)", "latency (cycles)", 2, 3, 2)
            };
            let _ = writeln!(s, "set output '{fig}_{pat}.png'");
            let _ = writeln!(s, "set multiplot layout 1,2 title '{fig} {pat}'");
            let _ = writeln!(s, "set xlabel '{xlab}'; set ylabel '{aylab}'");
            let xcol = if fig == "fig7" { "2".to_string() } else { "1".to_string() };
            let mut plots: Vec<String> = Vec::new();
            for i in 0..cols {
                let xc = if fig == "fig7" { format!("{}", 2 + i * step) } else { xcol.clone() };
                plots.push(format!(
                    "'{fig}_{pat}.csv' using {}:{} with linespoints",
                    xc,
                    acol0 + i * step
                ));
            }
            let _ = writeln!(s, "plot {}", plots.join(", "));
            let _ = writeln!(s, "set xlabel '{xlab}'; set ylabel '{lylab}'");
            let mut plots: Vec<String> = Vec::new();
            for i in 0..cols {
                let xc = if fig == "fig7" { format!("{}", 2 + i * step) } else { xcol.clone() };
                plots.push(format!(
                    "'{fig}_{pat}.csv' using {}:{} with linespoints",
                    xc,
                    lcol0 + i * step
                ));
            }
            let _ = writeln!(s, "plot {}", plots.join(", "));
            let _ = writeln!(s, "unset multiplot");
        }
    }
    s
}
