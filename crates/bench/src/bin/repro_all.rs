//! Runs the complete reproduction in one pass and writes every artifact
//! to the output directory:
//!
//! * `table1.csv`, `table2.csv` — the cost-model tables;
//! * `fig5_<pattern>.csv`, `fig6_<pattern>.csv` — the CNF panels;
//! * `fig7_<pattern>.csv` — the absolute-unit panels;
//! * `saturation.csv` — saturation summary of every (config, pattern);
//! * `report.md` — a human-readable digest;
//! * a `*.manifest.json` run manifest next to each CSV.
//!
//! Because the load sweeps of Figures 5 and 6 are subsets of Figure 7's
//! (identical seeds, identical simulations), everything is measured in a
//! single collection pass: 5 configurations x 4 patterns x 20 loads.
//!
//! All tables, sweeps and the gnuplot script come from the shared
//! helpers in the `bench` library (the same ones the per-artifact
//! binaries use); the CSV bytes are identical to what the pre-shared
//! implementation wrote.

use bench::{
    absolute_table, cnf_table, gnuplot_script, paper_patterns, run_manifest, run_panel,
    saturation_table, table1_table, table2_table, write_artifact, Options, PanelSeries,
};
use netsim::experiment::ExperimentSpec;
use netstats::Table;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let opts = Options::from_args();
    let len = opts.run_length();
    let specs = ExperimentSpec::paper_five();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "# Reproduction run ({} cycles, warm-up {})\n",
        len.total, len.warmup
    );

    // Tables 1 and 2 (compact presentation, unrounded).
    let table_start = Instant::now();
    let t1 = table1_table(false);
    let t2 = table2_table(false);
    let table_secs = table_start.elapsed().as_secs_f64();
    write_artifact(
        &t1,
        &opts.out_dir,
        "table1.csv",
        &run_manifest("repro_all", "table1.csv", &opts, &[], None, &[], table_secs),
    );
    write_artifact(
        &t2,
        &opts.out_dir,
        "table2.csv",
        &run_manifest("repro_all", "table2.csv", &opts, &[], None, &[], table_secs),
    );
    let _ = writeln!(report, "## Table 1\n\n```\n{}```\n", t1.to_pretty());
    let _ = writeln!(report, "## Table 2\n\n```\n{}```\n", t2.to_pretty());

    // One collection pass for Figures 5, 6, 7.
    let tree_idx = [2usize, 3, 4]; // tree specs within paper_five()
    let cube_idx = [0usize, 1];
    let mut sat_all = Table::with_columns([
        "pattern",
        "configuration",
        "saturation_offered",
        "sustained_accepted",
        "stability",
    ]);
    let run_start = Instant::now();
    for (pattern, panels) in paper_patterns() {
        eprintln!("collecting {} traffic...", pattern.name());
        let pass_start = Instant::now();
        let series = run_panel(&specs, pattern, len, opts.seed_salt());
        let pass_secs = pass_start.elapsed().as_secs_f64();

        let slice = |idx: &[usize]| -> Vec<PanelSeries> {
            idx.iter()
                .map(|&i| PanelSeries {
                    label: series[i].label.clone(),
                    offered: series[i].offered.clone(),
                    outcomes: series[i].outcomes.clone(),
                })
                .collect()
        };
        let slice_specs = |idx: &[usize]| -> Vec<ExperimentSpec> {
            idx.iter().map(|&i| specs[i].clone()).collect()
        };

        let tree_series = slice(&tree_idx);
        let cube_series = slice(&cube_idx);
        let fig5 = format!("fig5_{}.csv", pattern.name());
        write_artifact(
            &cnf_table(&tree_series),
            &opts.out_dir,
            &fig5,
            &run_manifest(
                "repro_all",
                &fig5,
                &opts,
                &slice_specs(&tree_idx),
                Some(pattern),
                &tree_series,
                pass_secs,
            ),
        );
        let fig6 = format!("fig6_{}.csv", pattern.name());
        write_artifact(
            &cnf_table(&cube_series),
            &opts.out_dir,
            &fig6,
            &run_manifest(
                "repro_all",
                &fig6,
                &opts,
                &slice_specs(&cube_idx),
                Some(pattern),
                &cube_series,
                pass_secs,
            ),
        );
        let fig7 = format!("fig7_{}.csv", pattern.name());
        write_artifact(
            &absolute_table(&series, &specs),
            &opts.out_dir,
            &fig7,
            &run_manifest(
                "repro_all",
                &fig7,
                &opts,
                &specs,
                Some(pattern),
                &series,
                pass_secs,
            ),
        );

        let sat = saturation_table(&series);
        let _ = writeln!(
            report,
            "## Figure 5/6/7 {panels}) {}\n\n```\n{}```\n",
            pattern.title(),
            sat.to_pretty()
        );
        for row in &sat.rows {
            let mut r = vec![netstats::Cell::Text(pattern.name().into())];
            r.extend(row.iter().cloned());
            sat_all.push_row(r);
        }
    }
    write_artifact(
        &sat_all,
        &opts.out_dir,
        "saturation.csv",
        &run_manifest(
            "repro_all",
            "saturation.csv",
            &opts,
            &specs,
            None,
            &[],
            run_start.elapsed().as_secs_f64(),
        ),
    );

    std::fs::write(opts.out_dir.join("report.md"), &report).expect("report.md");
    std::fs::write(opts.out_dir.join("plot.gp"), gnuplot_script()).expect("plot.gp");
    println!("{report}");
    eprintln!("all artifacts written to {}", opts.out_dir.display());
    eprintln!(
        "plot with: cd {} && gnuplot plot.gp",
        opts.out_dir.display()
    );
}
