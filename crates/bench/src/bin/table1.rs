//! Regenerates **Table 1** of the paper: "Delays of the two routing
//! algorithms for the cube, expressed in nanoseconds".
//!
//! The rows are produced by Chien's cost model with the parameters of
//! Section 5: `V = 4` virtual channels, `P = 17` crossbar ports (four
//! lanes on each of the four links plus the injection channel), short
//! wires, and `F = 2` (deterministic) vs `F = 6` (Duato).

use bench::{write_csv, Options};
use costmodel::chien::{cube_deterministic_timing, cube_duato_timing};
use netstats::Table;

fn main() {
    let opts = Options::from_args();
    let mut t = Table::with_columns([
        "algorithm",
        "T_routing",
        "T_crossbar",
        "T_link_s",
        "T_clock",
        "bottleneck",
    ]);
    for (name, timing) in [
        ("Det.", cube_deterministic_timing()),
        ("Duato", cube_duato_timing()),
    ] {
        t.push_row(vec![
            name.into(),
            round2(timing.t_routing_ns).into(),
            round2(timing.t_crossbar_ns).into(),
            round2(timing.t_link_ns).into(),
            round2(timing.clock_ns()).into(),
            timing.bottleneck().into(),
        ]);
    }
    println!("Table 1: delays of the two routing algorithms for the cube (ns)");
    println!("{}", t.to_pretty());
    println!("paper prints: Det. 5.9 / 5.85 / 6.34 / 6.34  —  Duato 7.8 / 5.85 / 6.34 / 7.8");
    let path = opts.out_dir.join("table1.csv");
    write_csv(&t, &path).expect("write table1.csv");
    eprintln!("wrote {}", path.display());
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}
