//! Regenerates **Table 1** of the paper: "Delays of the two routing
//! algorithms for the cube, expressed in nanoseconds".
//!
//! The rows come from Chien's cost model through the derived
//! [`costmodel::chien::RouterClass`] parameters: `V = 4` virtual
//! channels, `P = 2nV + 1 = 17` crossbar ports (four lanes on each of
//! the four links plus the injection channel), short wires, and
//! `F = 2` (deterministic) vs `F = n(V-2) + 2 = 6` (Duato).

use bench::{run_manifest, table1_table, write_artifact, Options};
use std::time::Instant;

fn main() {
    let opts = Options::from_args();
    let start = Instant::now();
    let t = table1_table(true);
    println!("Table 1: delays of the two routing algorithms for the cube (ns)");
    println!("{}", t.to_pretty());
    println!("paper prints: Det. 5.9 / 5.85 / 6.34 / 6.34  —  Duato 7.8 / 5.85 / 6.34 / 7.8");
    let manifest = run_manifest(
        "table1",
        "table1.csv",
        &opts,
        &[],
        None,
        &[],
        start.elapsed().as_secs_f64(),
    );
    let path = write_artifact(&t, &opts.out_dir, "table1.csv", &manifest);
    eprintln!("wrote {}", path.display());
}
