//! Regenerates **Figure 5** of the paper: "Communication performance of
//! a 4-ary 4-tree with adaptive routing and one, two and four virtual
//! channels" — eight panels (accepted bandwidth and network latency
//! under uniform, complement, transpose and bit-reversal traffic), in
//! Chaos Normal Form (offered load normalized to the uniform-traffic
//! capacity, latency in cycles).

use bench::{
    cnf_table, paper_patterns, run_manifest, run_panel, saturation_table, write_artifact, Options,
};
use netsim::experiment::{ExperimentSpec, TreeParams};
use std::time::Instant;

fn main() {
    let opts = Options::from_args();
    let len = opts.run_length();
    let specs: Vec<ExperimentSpec> = [1usize, 2, 4]
        .iter()
        .map(|&v| ExperimentSpec::tree_adaptive(TreeParams::paper(), v))
        .collect();

    for (pattern, panels) in paper_patterns() {
        eprintln!("Figure 5 {panels}) — {}", pattern.title());
        let start = Instant::now();
        let series = run_panel(&specs, pattern, len, opts.seed_salt());
        let secs = start.elapsed().as_secs_f64();
        let table = cnf_table(&series);
        println!("\nFigure 5 {panels}) {}", pattern.title());
        println!("{}", table.to_pretty());
        println!("{}", saturation_table(&series).to_pretty());
        let artifact = format!("fig5_{}.csv", pattern.name());
        let manifest = run_manifest(
            "fig5",
            &artifact,
            &opts,
            &specs,
            Some(pattern),
            &series,
            secs,
        );
        let path = write_artifact(&table, &opts.out_dir, &artifact, &manifest);
        eprintln!("wrote {}", path.display());
    }

    println!("paper reference points (saturation, fraction of capacity):");
    println!("  uniform:    36% (1 vc), 55% (2 vc), 72% (4 vc)");
    println!("  complement: ~95% for all variants");
    println!("  transpose:  33% (1 vc), 60% (2 vc), 78% (4 vc)");
    println!("  bitrev:     similar to transpose");
}
