//! Regenerates **Figure 7** of the paper: "Normalized communication
//! performance of a 16-ary 2-cube and a 4-ary 4-tree" — the final
//! apples-to-apples comparison. The raw curves of Figures 5 and 6 are
//! converted to absolute units using each configuration's own clock
//! period from Chien's cost model: traffic in bits/ns (4-byte flits on
//! the cube, 2-byte flits on the tree) and latency in nanoseconds.

use bench::{absolute_table, paper_patterns, run_manifest, run_panel, write_artifact, Options};
use netsim::experiment::ExperimentSpec;
use std::time::Instant;

fn main() {
    let opts = Options::from_args();
    let len = opts.run_length();
    let specs = ExperimentSpec::paper_five();

    println!("Clock periods (Chien model):");
    for s in &specs {
        let n = s.normalization();
        println!(
            "  {:22} clock {:5.2} ns, capacity {:6.1} bits/ns aggregate",
            s.label(),
            n.timing().clock_ns(),
            n.capacity_bits_per_ns()
        );
    }

    for (pattern, panels) in paper_patterns() {
        eprintln!("Figure 7 {panels}) — {}", pattern.title());
        let start = Instant::now();
        let series = run_panel(&specs, pattern, len, opts.seed_salt());
        let secs = start.elapsed().as_secs_f64();
        let table = absolute_table(&series, &specs);
        println!("\nFigure 7 {panels}) {} (absolute units)", pattern.title());
        println!("{}", table.to_pretty());
        let artifact = format!("fig7_{}.csv", pattern.name());
        let manifest = run_manifest(
            "fig7",
            &artifact,
            &opts,
            &specs,
            Some(pattern),
            &series,
            secs,
        );
        let path = write_artifact(&table, &opts.out_dir, &artifact, &manifest);
        eprintln!("wrote {}", path.display());
    }

    println!("paper reference points (saturation, bits/ns):");
    println!("  uniform:    Duato ~440 > deterministic ~350 > tree-4vc ~280 > tree-1vc ~150");
    println!("  complement: tree (all) ~400 > deterministic ~280 > Duato");
    println!(
        "  transpose/bitrev: Duato + tree-2vc/4vc grouped at 250-300; det + tree-1vc at 100-150"
    );
    println!("  latency: cube ~0.5 us below saturation, about half the fat-tree's");
}
