//! Strong/weak-scaling panel of the sharded stepper.
//!
//! Runs a ladder of network sizes — the paper's 4-ary 4-tree (256
//! nodes) plus the beyond-paper registry entries `cube-32ary-2`
//! (1024 nodes), `tree-4ary-6` (4096 nodes) and `tree-16k` (16384
//! nodes) — under uniform traffic at offered load 0.3, once serially
//! and once per shard count in {2, 4, 8}, and reports wall-clock
//! throughput (simulated cycles per second and flit-moves per second)
//! for every (size, shards) cell. Worker threads are capped at the
//! host's available parallelism, and the host CPU count is recorded in
//! the output: on a single-core host every shard runs on the caller
//! thread, so the panel measures pure sharding *overhead* (barrier +
//! handoff cost), not speedup — the honest number that machine can
//! produce.
//!
//! Every cell follows the bench discipline of `bench_engine`: one
//! untimed warm-up iteration, then the median of three timed
//! iterations. The final counters of every sharded cell are asserted
//! bit-identical to the serial cell of the same size, so the panel
//! doubles as an at-scale determinism check.
//!
//! Writes `scale_sweep.csv` and `scale_sweep.json` under `--out <dir>`
//! (default `results`). `--quick` shortens the runs and skips the
//! 16k-node rung for smoke testing.
//!
//! Usage: `scale_sweep [--quick] [--out <dir>]`

use netsim::engine::{Counters, Engine};
use netsim::scenario::{named, SpecVisitor};
use netsim::sim::SimConfig;
use netsim::wiring::Wiring;
use routing::RoutingAlgorithm;
use std::fmt::Write as _;
use std::time::Instant;
use traffic::{Bernoulli, InjectionProcess, TrafficGen};

/// Offered load for every cell: the adaptive-routing sweet spot well
/// below saturation, where all sizes run stably.
const LOAD: f64 = 0.3;

/// Shard counts per size. 1 is the serial stepper (the baseline the
/// speedup column divides by).
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// The size ladder: registry name and simulated cycles per timed run
/// (budgeted so each rung costs roughly the same wall-clock time).
const SIZES: [(&str, u32); 4] = [
    ("tree-4vc", 6_000),
    ("cube-32ary-2", 3_000),
    ("tree-4ary-6", 1_500),
    ("tree-16k", 600),
];

struct Cell {
    config: String,
    nodes: usize,
    routers: usize,
    cycles: u32,
    shards: usize,
    threads: usize,
    secs: f64,
    flit_moves: u64,
}

impl Cell {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.secs
    }
    fn moves_per_sec(&self) -> f64 {
        self.flit_moves as f64 / self.secs
    }
}

/// One untimed warm-up run, then the median of three timed runs
/// (`--quick`: a single timed run). Deterministic workloads make the
/// counters of any iteration the counters of all of them.
fn measure(quick: bool, mut run: impl FnMut() -> (f64, Counters)) -> (f64, Counters) {
    let _ = run(); // warm-up, untimed
    if quick {
        return run();
    }
    let (s0, counters) = run();
    let (s1, c1) = run();
    let (s2, c2) = run();
    debug_assert_eq!(counters, c1);
    debug_assert_eq!(counters, c2);
    let mut secs = [s0, s1, s2];
    secs.sort_by(f64::total_cmp);
    (secs[1], counters)
}

/// Times one (size, shards) cell with the concrete algorithm type the
/// scenario layer ships, so the panel measures the engine as
/// `Scenario::simulate` actually runs it.
struct TimeSharded<'c> {
    cfg: &'c SimConfig,
    cycles: u32,
    shards: usize,
    threads: usize,
    quick: bool,
}

impl SpecVisitor for TimeSharded<'_> {
    type Out = (f64, Counters);

    fn visit<A: RoutingAlgorithm + 'static>(self, algo: A) -> (f64, Counters) {
        let cfg = self.cfg;
        measure(self.quick, || {
            let pattern = TrafficGen::new(cfg.pattern, algo.topology().num_nodes());
            let rate = cfg.injection.mean_rate();
            let mut eng = Engine::new(
                &algo,
                cfg.buffer_depth,
                cfg.flits_per_packet,
                pattern,
                &move |_| Box::new(Bernoulli::new(rate)) as Box<dyn InjectionProcess>,
                cfg.seed,
            );
            eng.set_injection_limit(cfg.injection_limit);
            eng.set_request_reply(cfg.request_reply);
            if self.shards <= 1 {
                let start = Instant::now();
                eng.run(self.cycles);
                (start.elapsed().as_secs_f64(), eng.counters())
            } else {
                let mut plan = eng.shard_plan(self.shards, self.threads);
                let start = Instant::now();
                eng.run_sharded(self.cycles, &mut plan);
                (start.elapsed().as_secs_f64(), eng.counters())
            }
        })
    }
}

fn main() {
    let mut quick = false;
    let mut out_dir = std::path::PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = args
                    .next()
                    .unwrap_or_else(|| usage("missing path after --out"))
                    .into();
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("host parallelism: {host_cpus} CPU(s)");
    if host_cpus == 1 {
        eprintln!("note: single-CPU host — the panel measures sharding overhead, not speedup");
    }

    let mut cells: Vec<Cell> = Vec::new();
    for (name, full_cycles) in SIZES {
        if quick && name == "tree-16k" {
            continue; // the 16k rung is too slow for a smoke run
        }
        let cycles = if quick {
            (full_cycles / 10).max(100)
        } else {
            full_cycles
        };
        let scenario = named(name).unwrap_or_else(|| panic!("registry entry {name} missing"));
        let cfg = scenario.config_at(LOAD);
        let (nodes, routers) = scenario.with_algorithm(Geom);
        let mut serial: Option<Counters> = None;
        for shards in SHARDS {
            if shards > routers {
                continue; // the plan would clamp; skip the duplicate cell
            }
            let threads = shards.min(host_cpus);
            let (secs, counters) = scenario.with_algorithm(TimeSharded {
                cfg: &cfg,
                cycles,
                shards,
                threads,
                quick,
            });
            match &serial {
                None => serial = Some(counters),
                Some(base) => assert_eq!(
                    *base, counters,
                    "{name} with {shards} shards diverged from the serial run — panel void"
                ),
            }
            let cell = Cell {
                config: name.to_string(),
                nodes,
                routers,
                cycles,
                shards,
                threads,
                secs,
                flit_moves: counters.flit_moves,
            };
            eprintln!(
                "{:14} {:>6} nodes, {} shard(s) x {} thread(s): {:>8.1} Kcycles/s, \
                 {:>8.2} Mmoves/s",
                cell.config,
                cell.nodes,
                cell.shards,
                cell.threads,
                cell.cycles_per_sec() / 1e3,
                cell.moves_per_sec() / 1e6,
            );
            cells.push(cell);
        }
    }

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let csv_path = out_dir.join("scale_sweep.csv");
    std::fs::write(&csv_path, to_csv(&cells)).expect("write scale_sweep.csv");
    let json_path = out_dir.join("scale_sweep.json");
    std::fs::write(&json_path, to_json(&cells, host_cpus, quick)).expect("write scale_sweep.json");
    eprintln!("wrote {} and {}", csv_path.display(), json_path.display());
}

/// Reads the geometry of the scenario's topology.
struct Geom;

impl SpecVisitor for Geom {
    type Out = (usize, usize);
    fn visit<A: RoutingAlgorithm + 'static>(self, algo: A) -> (usize, usize) {
        let w = Wiring::from_topology(algo.topology());
        (w.num_nodes, w.num_routers)
    }
}

/// Serial-baseline seconds for the cell's config, for the speedup
/// column.
fn serial_secs(cells: &[Cell], config: &str) -> f64 {
    cells
        .iter()
        .find(|c| c.config == config && c.shards == 1)
        .map(|c| c.secs)
        .unwrap_or(f64::NAN)
}

fn to_csv(cells: &[Cell]) -> String {
    let mut s = String::from(
        "config,nodes,routers,cycles,shards,threads,seconds,cycles_per_sec,\
         flit_moves,flit_moves_per_sec,speedup_vs_serial\n",
    );
    for c in cells {
        let speedup = serial_secs(cells, &c.config) / c.secs;
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{:.6},{:.0},{},{:.0},{:.3}",
            c.config,
            c.nodes,
            c.routers,
            c.cycles,
            c.shards,
            c.threads,
            c.secs,
            c.cycles_per_sec(),
            c.flit_moves,
            c.moves_per_sec(),
            speedup,
        );
    }
    s
}

fn to_json(cells: &[Cell], host_cpus: usize, quick: bool) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"benchmark\": \"sharded stepper strong/weak scaling panel\",\n");
    let _ = writeln!(
        j,
        "  \"workload\": \"uniform traffic at offered load {LOAD}, size ladder 256..16384 nodes\","
    );
    j.push_str(
        "  \"protocol\": \"per cell: one untimed warm-up iteration, then the median \
         elapsed time of three timed iterations; sharded counters asserted bit-identical \
         to the serial run\",\n",
    );
    let _ = writeln!(j, "  \"host_cpus\": {host_cpus},");
    // `host_cpus` is the historical key; record the raw probe under its
    // own name too so artifacts from different hosts compare directly.
    let _ = writeln!(
        j,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    let _ = writeln!(j, "  \"quick\": {quick},");
    if host_cpus == 1 {
        j.push_str(
            "  \"note\": \"single-CPU host: threads are capped at 1, so every cell runs \
             all shards on the caller thread and speedup_vs_serial reports sharding \
             overhead, not parallel speedup\",\n",
        );
    }
    j.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let speedup = serial_secs(cells, &c.config) / c.secs;
        let _ = write!(
            j,
            "    {{ \"config\": {:?}, \"nodes\": {}, \"routers\": {}, \"cycles\": {}, \
             \"shards\": {}, \"threads\": {}, \"seconds\": {:.6}, \
             \"cycles_per_sec\": {:.0}, \"flit_moves\": {}, \"flit_moves_per_sec\": {:.0}, \
             \"speedup_vs_serial\": {:.3} }}",
            c.config,
            c.nodes,
            c.routers,
            c.cycles,
            c.shards,
            c.threads,
            c.secs,
            c.cycles_per_sec(),
            c.flit_moves,
            c.moves_per_sec(),
            speedup,
        );
        j.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    j
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: scale_sweep [--quick] [--out <dir>]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
