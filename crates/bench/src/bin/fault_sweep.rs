//! Degradation panel: accepted load and latency versus the fraction of
//! failed links, for the paper's five configurations.
//!
//! For each registry entry of [`PAPER_FIVE`] this sweeps a grid of
//! dead-link fractions (0%, 5%, 10%, 15%; `--quick` drops the 10%
//! point) crossed with a small offered-load grid, and writes one row
//! per (configuration, fault fraction, load) with the accepted
//! bandwidth, latency, and the delivered / dropped / unroutable packet
//! accounting. The 0% rows are bit-identical to the healthy scenarios
//! (same derived traffic seeds — the fault entries deliberately keep
//! the default labels), so the degradation read off the panel is pure
//! fault effect.
//!
//! Artifacts: `results/fault_sweep.csv` plus a
//! `netperf-run-manifest/3` manifest recording every faulted scenario
//! description (fault spec, digest, compiled dead-link counts).
//!
//! A wedged run (possible in principle under adversarial fault sets)
//! is reported as a structured one-line error, not a hang: the sweep
//! goes through `try_sweep_outcomes` and the engine watchdog.

use bench::{manifest_path, write_csv, write_manifest, Options};
use netsim::scenario::{named, SeedMode, PAPER_FIVE};
use netsim::FaultPlan;
use netstats::export::{Manifest, ManifestValue};
use netstats::{Cell, Table};
use std::time::Instant;

/// Dead-link fractions of the panel (the paper-config degradation
/// grid). `--quick` keeps the endpoints plus 5%.
fn fault_fractions(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.05, 0.15]
    } else {
        vec![0.0, 0.05, 0.10, 0.15]
    }
}

/// Offered-load grid per fault fraction.
fn load_grid(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.5]
    } else {
        vec![0.3, 0.6, 0.9]
    }
}

fn main() {
    let opts = Options::from_args();
    let fractions = fault_fractions(opts.quick);
    let loads = load_grid(opts.quick);
    let start = Instant::now();

    let mut table = Table::with_columns([
        "config",
        "fault_fraction",
        "dead_links",
        "offered_fraction",
        "generated_fraction",
        "accepted_fraction",
        "latency_cycles",
        "created_packets",
        "delivered_packets",
        "dropped_packets",
        "unroutable_packets",
    ]);
    let mut scenario_manifests: Vec<ManifestValue> = Vec::new();
    let (mut sims, mut created, mut delivered) = (0usize, 0u64, 0u64);
    let (mut dropped, mut unroutable) = (0u64, 0u64);

    for name in PAPER_FIVE {
        let base = named(name)
            .expect("paper entry present")
            .with_run_length(opts.run_length())
            .with_seed(SeedMode::Derived {
                salt: opts.seed_salt(),
            });
        for &fraction in &fractions {
            // 0% rows run the healthy scenario itself (no plan, fault
            // machinery monomorphized out) — the panel's baseline.
            let plan = (fraction > 0.0).then(|| FaultPlan::dead_links(fraction));
            let s = base
                .clone()
                .with_faults(plan.clone())
                .unwrap_or_else(|e| panic!("fault plan rejected for {name}: {e}"));
            let dead = s.faults().map(|p| compiled_dead_links(&s, p)).unwrap_or(0);
            eprintln!(
                "  {name}: {:.0}% dead links ({dead} links), {} load points...",
                fraction * 100.0,
                loads.len()
            );
            let outs = s
                .try_sweep_outcomes(&loads)
                .unwrap_or_else(|e| panic!("{name} at {fraction}: {e}"));
            for (&load, out) in loads.iter().zip(&outs) {
                sims += 1;
                created += out.created_packets;
                delivered += out.delivered_packets;
                dropped += out.dropped_packets;
                unroutable += out.unroutable_packets;
                let lat = out.mean_latency_cycles();
                table.push_row(vec![
                    Cell::Text(name.to_string()),
                    Cell::Num(fraction),
                    Cell::Num(dead as f64),
                    Cell::Num(load),
                    Cell::Num(out.generated_fraction),
                    Cell::Num(out.accepted_fraction),
                    Cell::Num(if lat.is_nan() { 0.0 } else { lat }),
                    Cell::Num(out.created_packets as f64),
                    Cell::Num(out.delivered_packets as f64),
                    Cell::Num(out.dropped_packets as f64),
                    Cell::Num(out.unroutable_packets as f64),
                ]);
            }
            if fraction > 0.0 {
                scenario_manifests.push(ManifestValue::Object(s.manifest()));
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();

    let mut m = Manifest::new();
    m.push(
        "schema",
        netstats::export::run_manifest_schema_tag(false, true),
    );
    m.push("generator", "fault_sweep");
    m.push("artifact", "fault_sweep.csv");
    m.push("quick", opts.quick);
    let len = opts.run_length();
    let mut rl = Manifest::new();
    rl.push("warmup", len.warmup as f64);
    rl.push("total", len.total as f64);
    m.push("run_length", rl);
    m.push("seed_salt", format!("0x{:016x}", opts.seed_salt()));
    m.push("threads", netsim::scenario::sweep_threads() as f64);
    let mut engine = Manifest::new();
    for (feature, enabled) in netsim::engine_features() {
        engine.push(feature, enabled);
    }
    m.push("engine", engine);
    m.push(
        "fault_fractions",
        ManifestValue::List(fractions.iter().map(|&f| ManifestValue::Num(f)).collect()),
    );
    m.push(
        "loads",
        ManifestValue::List(loads.iter().map(|&l| ManifestValue::Num(l)).collect()),
    );
    m.push("scenarios", ManifestValue::List(scenario_manifests));
    m.push("wall_clock_secs", wall);
    let mut counters = Manifest::new();
    counters.push("simulations", sims as f64);
    counters.push("created_packets", created as f64);
    counters.push("delivered_packets", delivered as f64);
    counters.push("dropped_packets", dropped as f64);
    counters.push("unroutable_packets", unroutable as f64);
    m.push("counters", counters);

    let path = opts.out_dir.join("fault_sweep.csv");
    write_csv(&table, &path).unwrap_or_else(|e| panic!("write fault_sweep.csv: {e}"));
    write_manifest(&m, manifest_path(&opts.out_dir, "fault_sweep.csv"))
        .unwrap_or_else(|e| panic!("write fault_sweep manifest: {e}"));
    eprintln!("wrote {}", path.display());
    eprintln!(
        "totals: {created} created = {delivered} delivered + {dropped} dropped + \
         {unroutable} unroutable + backlog"
    );
}

/// Dead-link count of a plan compiled against the scenario's topology
/// (for the panel's `dead_links` column).
fn compiled_dead_links(s: &netsim::Scenario, plan: &FaultPlan) -> usize {
    use netsim::wiring::Wiring;
    let w = Wiring::from_topology(&*s.topology().build());
    plan.compile(&w)
        .expect("plan validated at scenario build")
        .dead_links()
}
