//! Criterion microbenchmarks of the building blocks underneath the
//! simulator: routing-function evaluation, destination generation, the
//! PRNG, topology queries and channel-dependency-graph construction.
//! These are the per-cycle hot paths; their cost bounds simulator
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use routing::{
    build_cdg, CandidateSet, CubeDeterministic, CubeDuato, RoutingAlgorithm, TreeAdaptive,
};
use std::hint::black_box;
use topology::{KAryNCube, KAryNTree, NodeId, RouterId};
use traffic::{Pattern, Rng64, TrafficGen};

fn routing_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_call");
    let cube = KAryNCube::new(16, 2);
    let algos: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(CubeDeterministic::new(cube.clone())),
        Box::new(CubeDuato::new(cube)),
        Box::new(TreeAdaptive::new(KAryNTree::new(4, 4), 4)),
    ];
    for algo in &algos {
        group.bench_function(BenchmarkId::from_parameter(algo.name()), |b| {
            let n = algo.topology().num_nodes() as u32;
            let mut cand = CandidateSet::default();
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 97) % (n * n);
                let (r, d) = (i / n, i % n);
                algo.route(
                    RouterId(r % algo.topology().num_routers() as u32),
                    None,
                    NodeId(d),
                    &mut cand,
                );
                black_box(cand.len())
            });
        });
    }
    group.finish();
}

fn destination_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_dest");
    for p in [
        Pattern::Uniform,
        Pattern::Complement,
        Pattern::BitReversal,
        Pattern::Transpose,
    ] {
        group.bench_function(BenchmarkId::from_parameter(p.name()), |b| {
            let g = TrafficGen::new(p, 256);
            let mut rng = Rng64::seed_from(1);
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 1) % 256;
                black_box(g.dest(NodeId(i), &mut rng))
            });
        });
    }
    group.finish();
}

fn rng_throughput(c: &mut Criterion) {
    c.bench_function("rng_next_u64", |b| {
        let mut rng = Rng64::seed_from(7);
        b.iter(|| black_box(rng.next_u64()));
    });
    c.bench_function("rng_below_10", |b| {
        let mut rng = Rng64::seed_from(7);
        b.iter(|| black_box(rng.below(10)));
    });
}

fn topology_queries(c: &mut Criterion) {
    let cube = KAryNCube::new(16, 2);
    let tree = KAryNTree::new(4, 4);
    c.bench_function("cube_min_offset", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(37) % 65536;
            black_box(cube.min_offset(NodeId(i / 256), NodeId(i % 256), 1))
        });
    });
    c.bench_function("tree_nca_level", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(37) % 65536;
            black_box(tree.nca_level(NodeId(i / 256), NodeId(i % 256)))
        });
    });
}

fn cdg_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdg_build");
    group.sample_size(10);
    group.bench_function("dor_6ary_2cube", |b| {
        let algo = CubeDeterministic::new(KAryNCube::new(6, 2));
        b.iter(|| black_box(build_cdg(&algo, |_| true).num_edges()));
    });
    group.bench_function("tree_3ary_2tree", |b| {
        let algo = TreeAdaptive::new(KAryNTree::new(3, 2), 2);
        b.iter(|| black_box(build_cdg(&algo, |_| true).num_edges()));
    });
    group.finish();
}

criterion_group!(
    benches,
    routing_functions,
    destination_generation,
    rng_throughput,
    topology_queries,
    cdg_construction
);
criterion_main!(benches);
