//! Criterion benchmarks of the simulation engine itself: how fast does
//! the flit-level model execute? These guard against performance
//! regressions that would make the figure regeneration impractically
//! slow, and quantify the cost of the design choices (virtual-channel
//! count, buffer depth, adaptivity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::experiment::{CubeParams, ExperimentSpec, TreeParams};
use netsim::sim::run_simulation;
use traffic::Pattern;

/// Cycles per measured run (short: criterion repeats many times).
const CYCLES: u32 = 1_500;

fn bench_config(c: &mut Criterion, group_name: &str, spec: &ExperimentSpec, load: f64) {
    let mut group = c.benchmark_group(group_name);
    group.throughput(Throughput::Elements(CYCLES as u64));
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter(spec.label()), |b| {
        let algo = spec.build_algorithm();
        let mut cfg = spec.config_at(
            Pattern::Uniform,
            load,
            netsim::experiment::RunLength::quick(),
        );
        cfg.warmup_cycles = CYCLES / 3;
        cfg.total_cycles = CYCLES;
        b.iter(|| run_simulation(algo.as_ref(), &cfg));
    });
    group.finish();
}

fn paper_networks(c: &mut Criterion) {
    for spec in ExperimentSpec::paper_five() {
        bench_config(c, "paper_network_cycles", &spec, 0.5);
    }
}

fn load_scaling(c: &mut Criterion) {
    let spec = ExperimentSpec::cube_duato(CubeParams::paper());
    let mut group = c.benchmark_group("load_scaling_duato");
    group.sample_size(10);
    for load in [0.1, 0.5, 0.9] {
        group.bench_function(BenchmarkId::from_parameter(format!("{load}")), |b| {
            let algo = spec.build_algorithm();
            let mut cfg = spec.config_at(
                Pattern::Uniform,
                load,
                netsim::experiment::RunLength::quick(),
            );
            cfg.warmup_cycles = CYCLES / 3;
            cfg.total_cycles = CYCLES;
            b.iter(|| run_simulation(algo.as_ref(), &cfg));
        });
    }
    group.finish();
}

fn small_networks(c: &mut Criterion) {
    bench_config(
        c,
        "tiny_network_cycles",
        &ExperimentSpec::cube_duato(CubeParams::tiny()),
        0.5,
    );
    bench_config(
        c,
        "tiny_network_cycles",
        &ExperimentSpec::tree_adaptive(TreeParams::tiny(), 2),
        0.5,
    );
}

criterion_group!(benches, paper_networks, load_scaling, small_networks);
criterion_main!(benches);
