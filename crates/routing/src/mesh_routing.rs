//! Routing on k-ary n-meshes (extension; used by the ablation studies).
//!
//! Without wrap-around links a dimension-order path never closes a ring,
//! so dimension-order routing on a mesh is deadlock-free with a single
//! virtual channel — no datelines, no virtual networks. That makes the
//! mesh the cleanest ablation of the cube's deadlock machinery: same
//! grid, same router, but `F = V` instead of the split networks, and
//! half the bisection.
//!
//! Two algorithms are provided, mirroring the paper's pair:
//!
//! * [`MeshDeterministic`] — dimension-order, all `V` lanes of the
//!   selected direction usable.
//! * [`MeshAdaptive`] — Duato construction: `V - 1` adaptive lanes on
//!   every minimal direction plus one escape lane routed in dimension
//!   order.

use crate::algo::{Candidate, CandidateSet, RoutingAlgorithm};
use topology::cube::CubeDirection;
use topology::mesh::KAryNMesh;
use topology::{NodeId, RouterId, Topology};

/// Dimension-order deterministic routing on a mesh.
#[derive(Clone, Debug)]
pub struct MeshDeterministic {
    mesh: KAryNMesh,
    vcs: usize,
}

impl MeshDeterministic {
    /// Create with `vcs` virtual channels (all usable at every hop).
    pub fn new(mesh: KAryNMesh, vcs: usize) -> Self {
        assert!(vcs >= 1);
        MeshDeterministic { mesh, vcs }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &KAryNMesh {
        &self.mesh
    }

    /// The dimension-order next hop, `None` on arrival.
    pub fn next_hop(&self, cur: NodeId, dest: NodeId) -> Option<CubeDirection> {
        (0..self.mesh.n()).find_map(|dim| {
            self.mesh
                .direction(cur, dest, dim)
                .map(|sign| CubeDirection { dim, sign })
        })
    }
}

impl RoutingAlgorithm for MeshDeterministic {
    fn num_vcs(&self) -> usize {
        self.vcs
    }

    #[inline]
    fn route(&self, r: RouterId, _in_port: Option<usize>, dest: NodeId, out: &mut CandidateSet) {
        out.clear();
        let cur = NodeId(r.0);
        let port = match self.next_hop(cur, dest) {
            None => self.mesh.node_port(dest).port,
            Some(dir) => dir.port(),
        };
        for vc in 0..self.vcs {
            out.preferred.push(Candidate::new(port, vc));
        }
    }

    fn topology(&self) -> &dyn Topology {
        &self.mesh
    }

    fn name(&self) -> String {
        "mesh-deterministic".into()
    }

    fn degrees_of_freedom(&self) -> usize {
        self.vcs
    }
}

/// Duato-style minimal adaptive routing on a mesh: `V - 1` adaptive
/// lanes per minimal direction plus one dimension-order escape lane
/// (lane `V - 1`).
#[derive(Clone, Debug)]
pub struct MeshAdaptive {
    mesh: KAryNMesh,
    vcs: usize,
}

impl MeshAdaptive {
    /// Create with `vcs >= 2` virtual channels (the last is the escape).
    pub fn new(mesh: KAryNMesh, vcs: usize) -> Self {
        assert!(vcs >= 2, "need at least one adaptive and one escape lane");
        MeshAdaptive { mesh, vcs }
    }

    /// Whether `vc` is the escape lane.
    pub fn is_escape_vc(&self, vc: usize) -> bool {
        vc == self.vcs - 1
    }
}

impl RoutingAlgorithm for MeshAdaptive {
    fn num_vcs(&self) -> usize {
        self.vcs
    }

    #[inline]
    fn route(&self, r: RouterId, _in_port: Option<usize>, dest: NodeId, out: &mut CandidateSet) {
        out.clear();
        let cur = NodeId(r.0);
        if cur == dest {
            let port = self.mesh.node_port(dest).port;
            for vc in 0..self.vcs {
                out.preferred.push(Candidate::new(port, vc));
            }
            return;
        }
        let mut dor_port = None;
        for dim in 0..self.mesh.n() {
            if let Some(sign) = self.mesh.direction(cur, dest, dim) {
                let port = CubeDirection { dim, sign }.port();
                if dor_port.is_none() {
                    dor_port = Some(port);
                }
                for vc in 0..self.vcs - 1 {
                    out.preferred.push(Candidate::new(port, vc));
                }
            }
        }
        out.fallback.push(Candidate::new(
            dor_port.expect("unaligned dimension exists"),
            self.vcs - 1,
        ));
    }

    fn topology(&self) -> &dyn Topology {
        &self.mesh
    }

    fn name(&self) -> String {
        "mesh-adaptive".into()
    }

    fn degrees_of_freedom(&self) -> usize {
        self.mesh.n().min(2) * (self.vcs - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::build_cdg;
    use topology::Sign as S;

    #[test]
    fn dor_terminates_minimally() {
        let a = MeshDeterministic::new(KAryNMesh::new(5, 2), 1);
        let mesh = a.mesh().clone();
        for s in 0..25u32 {
            for d in 0..25u32 {
                let mut cur = NodeId(s);
                let mut hops = 0;
                while let Some(dir) = a.next_hop(cur, NodeId(d)) {
                    cur = mesh.neighbor(cur, dir).expect("minimal hop stays inside");
                    hops += 1;
                    assert!(hops <= 8);
                }
                assert_eq!(cur, NodeId(d));
                assert_eq!(hops, mesh.hop_distance(NodeId(s), NodeId(d)));
            }
        }
    }

    #[test]
    fn mesh_dor_is_deadlock_free_with_one_vc() {
        // The whole point of the ablation: no virtual networks needed.
        for (k, n) in [(4usize, 2usize), (3, 3)] {
            let algo = MeshDeterministic::new(KAryNMesh::new(k, n), 1);
            let g = build_cdg(&algo, |_| true);
            assert!(g.num_edges() > 0);
            assert!(g.find_cycle().is_none(), "{k}-ary {n}-mesh DOR cycle");
        }
    }

    #[test]
    fn mesh_adaptive_escape_subgraph_acyclic() {
        let algo = MeshAdaptive::new(KAryNMesh::new(4, 2), 3);
        let escape = build_cdg(&algo, |l| algo.is_escape_vc(l.vc as usize));
        assert!(escape.find_cycle().is_none());
        let full = build_cdg(&algo, |_| true);
        assert!(full.find_cycle().is_some(), "adaptive lanes should cycle");
    }

    #[test]
    fn adaptive_candidates_are_minimal() {
        let mesh = KAryNMesh::new(4, 2);
        let algo = MeshAdaptive::new(mesh.clone(), 3);
        let mut cs = CandidateSet::default();
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s == d {
                    continue;
                }
                algo.route(RouterId(s), None, NodeId(d), &mut cs);
                assert!(!cs.is_empty());
                assert_eq!(cs.fallback.len(), 1);
                let base = mesh.hop_distance(NodeId(s), NodeId(d));
                for c in cs.iter_all() {
                    let dir = CubeDirection::from_port(c.port as usize, 2).unwrap();
                    let next = mesh.neighbor(NodeId(s), dir).unwrap();
                    assert_eq!(mesh.hop_distance(next, NodeId(d)), base - 1);
                }
            }
        }
    }

    #[test]
    fn no_boundary_violations() {
        // Routing from a corner never emits an uncabled port.
        let mesh = KAryNMesh::new(4, 2);
        let algo = MeshDeterministic::new(mesh.clone(), 2);
        let mut cs = CandidateSet::default();
        algo.route(RouterId(0), None, NodeId(15), &mut cs);
        for c in cs.iter_all() {
            let dir = CubeDirection::from_port(c.port as usize, 2).unwrap();
            assert!(matches!(dir.sign, S::Plus));
        }
    }
}
