//! Minimal adaptive routing on k-ary n-trees.
//!
//! "Minimal adaptive routing between a pair of nodes on a k-ary n-tree
//! can be easily accomplished sending the packet to one of the common
//! roots or nearest common ancestors (NCA) of source and destination and
//! from there to the destination. That is, each packet experiences two
//! phases, an ascending adaptive phase to get to one of the NCA,
//! followed by a descending deterministic phase." — Section 2.
//!
//! During the ascent **every** up port is admissible (each leads to a
//! distinct parent that is still on a minimal path); the simulator's
//! selection policy then "simply picks the less loaded link … that has
//! the maximum number of free virtual channels (a fair choice is made
//! when more links are in a similar state)". During the descent the
//! port is forced — digit `l` of the destination at level `l` — but the
//! lane on that port is still chosen freely among the `V` virtual
//! channels.
//!
//! Deadlock freedom is structural: ascending hops strictly decrease the
//! level, descending hops strictly increase it, and a packet never turns
//! from descending back to ascending, so the channel dependency graph is
//! acyclic for any number of virtual channels (machine-checked in the
//! `cdg` tests).

use crate::algo::{Candidate, CandidateSet, RoutingAlgorithm};
use topology::{KAryNTree, NodeId, RouterId, Topology};

/// Fat-tree minimal adaptive routing with a configurable number of
/// virtual channels (the paper evaluates 1, 2 and 4).
#[derive(Clone, Debug)]
pub struct TreeAdaptive {
    tree: KAryNTree,
    vcs: usize,
}

impl TreeAdaptive {
    /// Create the algorithm with `vcs` virtual channels per link.
    ///
    /// # Panics
    /// Panics if `vcs == 0`.
    pub fn new(tree: KAryNTree, vcs: usize) -> Self {
        assert!(vcs >= 1, "need at least one virtual channel");
        TreeAdaptive { tree, vcs }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &KAryNTree {
        &self.tree
    }
}

impl RoutingAlgorithm for TreeAdaptive {
    fn num_vcs(&self) -> usize {
        self.vcs
    }

    #[inline]
    fn route(&self, r: RouterId, _in_port: Option<usize>, dest: NodeId, out: &mut CandidateSet) {
        out.clear();
        let tree = &self.tree;
        let level = tree.level(r);
        if tree.is_ancestor_of(r, dest) {
            // Descending phase (or ejection at the leaf switch): the
            // down port is forced, the lane is free.
            let port = tree.down_port_towards(level, dest);
            for vc in 0..self.vcs {
                out.preferred.push(Candidate::new(port, vc));
            }
        } else {
            // Ascending phase: every up port leads to a valid NCA.
            for port in tree.k()..2 * tree.k() {
                for vc in 0..self.vcs {
                    out.preferred.push(Candidate::new(port, vc));
                }
            }
        }
    }

    fn topology(&self) -> &dyn Topology {
        &self.tree
    }

    fn name(&self) -> String {
        format!("adaptive-{}vc", self.vcs)
    }

    fn degrees_of_freedom(&self) -> usize {
        // "The degree of freedom F of a packet in the ascending phase is
        // (2k - 1) * V, because it can take any of the ascending or
        // descending links" (a switch has 2k links; the one the header
        // arrived on is excluded).
        (2 * self.tree.k() - 1) * self.vcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::graph::PortPeer;
    use topology::PortRef;

    fn paper(vcs: usize) -> TreeAdaptive {
        TreeAdaptive::new(KAryNTree::new(4, 4), vcs)
    }

    #[test]
    fn paper_parameters() {
        assert_eq!(paper(1).degrees_of_freedom(), 7);
        assert_eq!(paper(2).degrees_of_freedom(), 14);
        assert_eq!(paper(4).degrees_of_freedom(), 28);
        assert_eq!(paper(4).name(), "adaptive-4vc");
        assert_eq!(paper(2).num_vcs(), 2);
    }

    #[test]
    fn ascending_offers_all_up_ports() {
        let a = paper(2);
        let tree = a.tree().clone();
        // Packet at the leaf switch of node 0 destined to node 255:
        // NCA level 0, must ascend.
        let sw = tree.leaf_switch(NodeId(0));
        let mut cs = CandidateSet::default();
        a.route(sw, None, NodeId(255), &mut cs);
        assert_eq!(cs.preferred.len(), 4 * 2); // k up ports x 2 lanes
        assert!(cs.preferred.iter().all(|c| (c.port as usize) >= tree.k()));
        assert!(cs.fallback.is_empty());
    }

    #[test]
    fn descending_port_is_forced() {
        let a = paper(4);
        let tree = a.tree().clone();
        // Any root-level switch is an ancestor of everything.
        let root = tree.switch(0, 17);
        let mut cs = CandidateSet::default();
        let dest = NodeId(0b11_10_01_00); // digits 3,2,1,0
        a.route(root, None, dest, &mut cs);
        assert_eq!(cs.preferred.len(), 4); // one port x 4 lanes
        assert!(cs.preferred.iter().all(|c| c.port == 3)); // digit 0 of dest
    }

    #[test]
    fn ejection_at_leaf_switch() {
        let a = paper(1);
        let tree = a.tree().clone();
        let dest = NodeId(42);
        let leaf = tree.leaf_switch(dest);
        let mut cs = CandidateSet::default();
        a.route(leaf, None, dest, &mut cs);
        assert_eq!(cs.preferred.len(), 1);
        let c = cs.preferred[0];
        assert_eq!(
            tree.peer(PortRef::new(leaf, c.port as usize)),
            PortPeer::Node(dest)
        );
    }

    #[test]
    fn all_paths_are_minimal() {
        // Follow every candidate chain on a small tree; each route must
        // use exactly min_distance(src, dest) - 1 switch decisions.
        let a = TreeAdaptive::new(KAryNTree::new(3, 3), 1);
        let tree = a.tree().clone();
        let mut cs = CandidateSet::default();
        for s in 0..27u32 {
            for d in 0..27u32 {
                if s == d {
                    continue;
                }
                // Depth-first over all candidate choices.
                let mut stack = vec![(tree.leaf_switch(NodeId(s)), 1usize)];
                while let Some((sw, hops)) = stack.pop() {
                    a.route(sw, None, NodeId(d), &mut cs);
                    assert!(!cs.is_empty());
                    let ports: std::collections::HashSet<u16> =
                        cs.preferred.iter().map(|c| c.port).collect();
                    for port in ports {
                        match tree.peer(PortRef::new(sw, port as usize)) {
                            PortPeer::Node(n) => {
                                assert_eq!(n, NodeId(d));
                                assert_eq!(
                                    hops + 1,
                                    tree.min_distance(NodeId(s), NodeId(d)),
                                    "{s}->{d}"
                                );
                            }
                            PortPeer::Router(pr) => {
                                assert!(hops + 1 < 10, "path too long {s}->{d}");
                                stack.push((pr.router, hops + 1));
                            }
                            PortPeer::Unconnected => panic!("routed into a dead port"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn phase_transition_is_one_way() {
        // Once descending (ancestor), every candidate keeps descending.
        let a = TreeAdaptive::new(KAryNTree::new(4, 3), 2);
        let tree = a.tree().clone();
        let mut cs = CandidateSet::default();
        for s in (0..64u32).step_by(3) {
            for d in (0..64u32).step_by(5) {
                if s == d {
                    continue;
                }
                let mut stack = vec![(tree.leaf_switch(NodeId(s)), false)];
                let mut guard = 0;
                while let Some((sw, was_descending)) = stack.pop() {
                    guard += 1;
                    assert!(guard < 10_000);
                    let descending = tree.is_ancestor_of(sw, NodeId(d));
                    assert!(!was_descending || descending, "descent reverted");
                    a.route(sw, None, NodeId(d), &mut cs);
                    for c in cs.preferred.clone() {
                        if c.vc != 0 {
                            continue; // one lane is enough for path shape
                        }
                        if let PortPeer::Router(pr) = tree.peer(PortRef::new(sw, c.port as usize)) {
                            stack.push((pr.router, descending));
                        }
                    }
                }
            }
        }
    }
}
