//! Deterministic dimension-order routing on torus-embedded hypercubes.
//!
//! The algorithm is the cube family's dateline scheme
//! ([`crate::CubeDeterministic`]) generalized to the mixed-radix
//! dimension list of the [`TorusHypercube`]: packets correct the two
//! radix-`k` torus dimensions first, then the binary hypercube
//! dimensions, always along the unique minimal path. Two virtual
//! networks avoid the wrap-around deadlock of the torus rings; a hop
//! rides network 0 while its ring dateline is still strictly ahead and
//! network 1 from the crossing hop onwards. On a binary ring every hop
//! *is* the wrap-around hop, so hypercube hops always ride network 1 —
//! exactly the degenerate case of the same rule, and the reason no
//! extra channel class is needed for the hypercube dimensions
//! (machine-checked in the `cdg` tests).

use crate::algo::{Candidate, CandidateSet, RoutingAlgorithm};
use topology::cube::{CubeDirection, Sign};
use topology::{NodeId, RouterId, Topology, TorusHypercube};

/// Dimension-order deterministic routing on the torus-embedded
/// hypercube with two virtual networks.
#[derive(Clone, Debug)]
pub struct ThcDeterministic {
    thc: TorusHypercube,
    vcs_per_network: usize,
}

impl ThcDeterministic {
    /// The cube-matching configuration: 4 virtual channels, 2 per
    /// network.
    pub fn new(thc: TorusHypercube) -> Self {
        Self::with_vcs_per_network(thc, 2)
    }

    /// Custom number of virtual channels per virtual network; total
    /// VCs = `2 * vcs_per_network`.
    pub fn with_vcs_per_network(thc: TorusHypercube, vcs_per_network: usize) -> Self {
        assert!(vcs_per_network >= 1);
        ThcDeterministic {
            thc,
            vcs_per_network,
        }
    }

    /// The underlying topology.
    pub fn thc(&self) -> &TorusHypercube {
        &self.thc
    }

    /// The dimension-order next hop for a packet at `cur` going to
    /// `dest`: the lowest unaligned dimension, its (deterministic)
    /// minimal sign, and the virtual-network class of the hop.
    /// `None` when `cur == dest`.
    pub fn next_hop(&self, cur: NodeId, dest: NodeId) -> Option<(CubeDirection, usize)> {
        for dim in 0..self.thc.dims() {
            let (hops, sign) = self.thc.min_offset(cur, dest, dim);
            if hops > 0 {
                let class = dateline_class(&self.thc, cur, dest, dim, sign);
                return Some((CubeDirection { dim, sign }, class));
            }
        }
        None
    }
}

/// Virtual-network class (0 or 1) of a hop in dimension `dim` with
/// travel direction `sign` — the cube rule at the dimension's own
/// radix: 0 while the dateline is strictly ahead, 1 from the crossing
/// hop onwards (and for paths that never cross). At radix 2 the
/// crossing condition is always met, so binary hops are always class 1.
fn dateline_class(
    thc: &TorusHypercube,
    cur: NodeId,
    dest: NodeId,
    dim: usize,
    sign: Sign,
) -> usize {
    let c = thc.coord(cur, dim);
    let d = thc.coord(dest, dim);
    let r = thc.radix(dim);
    match sign {
        Sign::Plus => usize::from(!(c > d && c != r - 1)),
        Sign::Minus => usize::from(!(c < d && c != 0)),
    }
}

impl RoutingAlgorithm for ThcDeterministic {
    fn num_vcs(&self) -> usize {
        2 * self.vcs_per_network
    }

    #[inline]
    fn route(&self, r: RouterId, _in_port: Option<usize>, dest: NodeId, out: &mut CandidateSet) {
        out.clear();
        let cur = NodeId(r.0); // routers are co-located with nodes
        match self.next_hop(cur, dest) {
            None => {
                // Arrived: any ejection lane on the node port.
                let node_port = self.thc.node_port(dest).port;
                for vc in 0..self.num_vcs() {
                    out.preferred.push(Candidate::new(node_port, vc));
                }
            }
            Some((dir, class)) => {
                // Both lanes of the selected virtual network.
                let base = class * self.vcs_per_network;
                for vc in base..base + self.vcs_per_network {
                    out.preferred.push(Candidate::new(dir.port(), vc));
                }
            }
        }
    }

    fn topology(&self) -> &dyn Topology {
        &self.thc
    }

    fn name(&self) -> String {
        "deterministic".into()
    }

    fn degrees_of_freedom(&self) -> usize {
        // As in the cube: two virtual channels available in a single
        // direction.
        self.vcs_per_network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_point() -> ThcDeterministic {
        ThcDeterministic::new(TorusHypercube::new(4, 4))
    }

    #[test]
    fn parameters_match_the_cube_convention() {
        let a = paper_point();
        assert_eq!(a.num_vcs(), 4);
        assert_eq!(a.degrees_of_freedom(), 2);
        assert_eq!(a.name(), "deterministic");
    }

    #[test]
    fn every_pair_terminates_minimally_and_in_dimension_order() {
        let a = ThcDeterministic::new(TorusHypercube::new(3, 2));
        let thc = a.thc().clone();
        for s in 0..36u32 {
            for d in 0..36u32 {
                let mut cur = NodeId(s);
                let mut hops = 0usize;
                let mut max_dim_touched = 0usize;
                while let Some((dir, _)) = a.next_hop(cur, NodeId(d)) {
                    assert!(dir.dim >= max_dim_touched, "dimension order violated");
                    max_dim_touched = dir.dim;
                    cur = thc.neighbor(cur, dir);
                    hops += 1;
                    assert!(hops <= 16, "routing loop {s}->{d}");
                }
                assert_eq!(cur, NodeId(d));
                assert_eq!(hops, thc.hop_distance(NodeId(s), NodeId(d)), "{s}->{d}");
            }
        }
    }

    #[test]
    fn binary_hops_always_use_network_one() {
        let a = paper_point();
        let thc = a.thc().clone();
        // Same torus position, different hypercube corner: every hop is
        // a bit flip and must ride virtual network 1.
        let s = thc.node_at(&[1, 2, 0, 0, 0, 0]);
        let d = thc.node_at(&[1, 2, 1, 1, 1, 1]);
        let mut cur = s;
        while let Some((dir, class)) = a.next_hop(cur, d) {
            assert!(dir.dim >= 2, "torus dims are already aligned");
            assert_eq!(class, 1, "binary hop in network 0");
            cur = thc.neighbor(cur, dir);
        }
        assert_eq!(cur, d);
    }

    #[test]
    fn torus_dateline_crossing_switches_networks() {
        let a = paper_point();
        let thc = a.thc().clone();
        // From column 3 to column 0 in a 4-ring: one forward hop, and it
        // is the wrap-around crossing: class 1.
        let s = thc.node_at(&[3, 0, 0, 0, 0, 0]);
        let d = thc.node_at(&[0, 0, 0, 0, 0, 0]);
        let (dir, class) = a.next_hop(s, d).unwrap();
        assert_eq!(dir.sign, Sign::Plus);
        assert_eq!(class, 1);
        // Column 1 to column 3 ties at two hops each way; the odd source
        // coordinate breaks towards minus, so the dateline (0 -> 3) is
        // still ahead: class 0.
        let s = thc.node_at(&[1, 0, 0, 0, 0, 0]);
        let d = thc.node_at(&[3, 0, 0, 0, 0, 0]);
        let (dir, class) = a.next_hop(s, d).unwrap();
        assert_eq!(dir.sign, Sign::Minus);
        assert_eq!(class, 0);
    }

    #[test]
    fn dateline_classes_are_monotonic_along_path() {
        let a = ThcDeterministic::new(TorusHypercube::new(4, 2));
        let thc = a.thc().clone();
        for s in 0..64u32 {
            for d in (0..64u32).step_by(3) {
                let mut cur = NodeId(s);
                let mut last: Option<(usize, usize)> = None; // (dim, class)
                while let Some((dir, class)) = a.next_hop(cur, NodeId(d)) {
                    if let Some((ld, lc)) = last {
                        if ld == dir.dim {
                            assert!(class >= lc, "class regressed in dim {ld}");
                        }
                    }
                    last = Some((dir.dim, class));
                    cur = thc.neighbor(cur, dir);
                }
            }
        }
    }

    #[test]
    fn route_emits_ejection_candidates_at_destination() {
        let a = paper_point();
        let mut cs = CandidateSet::default();
        a.route(RouterId(9), None, NodeId(9), &mut cs);
        assert_eq!(cs.preferred.len(), 4);
        assert!(cs.fallback.is_empty());
        let node_port = a.thc().node_port(NodeId(9)).port;
        assert!(cs.preferred.iter().all(|c| c.port as usize == node_port));
    }

    #[test]
    fn route_emits_the_lanes_of_one_network() {
        let a = paper_point();
        let thc = a.thc().clone();
        let mut cs = CandidateSet::default();
        // One bit flip: binary hop, network 1, lanes {2, 3}.
        let s = thc.node_at(&[0, 0, 1, 0, 0, 0]);
        let d = thc.node_at(&[0, 0, 0, 0, 0, 0]);
        a.route(RouterId(s.0), None, d, &mut cs);
        assert_eq!(cs.preferred.len(), 2);
        let vcs: Vec<u8> = cs.preferred.iter().map(|c| c.vc).collect();
        assert_eq!(vcs, vec![2, 3]);
        // 0 -> +1 in a 4-ring never crosses the dateline either.
        a.route(RouterId(0), None, thc.node_at(&[1, 0, 0, 0, 0, 0]), &mut cs);
        let vcs: Vec<u8> = cs.preferred.iter().map(|c| c.vc).collect();
        assert_eq!(vcs, vec![2, 3]);
    }
}
