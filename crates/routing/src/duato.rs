//! Minimal adaptive routing on k-ary n-cubes after Duato's methodology.
//!
//! "In our adaptive algorithm, based on this methodology, we associate
//! four virtual channels to each link: on two of these channels, called
//! adaptive channels, packets can be routed along any minimal path
//! between source and destination. In the remaining two channels, called
//! deterministic or escape channels, packets are routed deterministically
//! when the adaptive choice is limited by network contention. An
//! interesting characteristic of this algorithm is that, once in the
//! escape channels, packets can re-enter the adaptive channels, that is
//! the channel allocation policy is non monotonic." — Section 3.
//!
//! ## Channel layout
//!
//! Per physical link: VCs `0,1` = adaptive, VCs `2,3` = escape. The
//! escape pair forms a dimension-order subnetwork with the same dateline
//! scheme as [`crate::CubeDeterministic`] (escape VC `2` = virtual
//! network 0, VC `3` = virtual network 1), so the escape sub-CDG is
//! acyclic and Duato's theorem gives deadlock freedom for the whole
//! algorithm. The non-monotonic re-entry into adaptive channels is
//! automatic: the routing function is stateless and offers the adaptive
//! candidates again at every hop.
//!
//! On an exact half-ring tie (even `k`, offset `k/2`) *both* directions
//! are offered adaptively; the escape hop uses the canonical plus
//! direction so the escape path stays a deterministic DOR path.

use crate::algo::{Candidate, CandidateSet, RoutingAlgorithm};
use crate::dor::dateline_class;
use topology::cube::CubeDirection;
use topology::{KAryNCube, NodeId, RouterId, Topology};

/// Duato minimal-adaptive routing: 2 adaptive + 2 escape channels.
#[derive(Clone, Debug)]
pub struct CubeDuato {
    cube: KAryNCube,
    adaptive_vcs: usize,
}

impl CubeDuato {
    /// The paper's configuration: 2 adaptive + 2 escape channels.
    pub fn new(cube: KAryNCube) -> Self {
        Self::with_adaptive_vcs(cube, 2)
    }

    /// Custom adaptive channel count (ablations); the escape pair is
    /// always 2 (one per virtual network), so total VCs =
    /// `adaptive_vcs + 2`.
    pub fn with_adaptive_vcs(cube: KAryNCube, adaptive_vcs: usize) -> Self {
        assert!(adaptive_vcs >= 1);
        CubeDuato { cube, adaptive_vcs }
    }

    /// The underlying cube.
    pub fn cube(&self) -> &KAryNCube {
        &self.cube
    }

    /// Index of the first escape VC.
    #[inline]
    pub fn escape_base(&self) -> usize {
        self.adaptive_vcs
    }

    /// Whether `vc` is an escape lane.
    #[inline]
    pub fn is_escape_vc(&self, vc: usize) -> bool {
        vc >= self.adaptive_vcs
    }
}

impl RoutingAlgorithm for CubeDuato {
    fn num_vcs(&self) -> usize {
        self.adaptive_vcs + 2
    }

    #[inline]
    fn route(&self, r: RouterId, _in_port: Option<usize>, dest: NodeId, out: &mut CandidateSet) {
        out.clear();
        let cur = NodeId(r.0);
        if cur == dest {
            let node_port = self.cube.node_port(dest).port;
            for vc in 0..self.num_vcs() {
                out.preferred.push(Candidate::new(node_port, vc));
            }
            return;
        }

        // Adaptive class: every minimal direction, both adaptive lanes.
        let mut lowest_unaligned: Option<usize> = None;
        for dim in 0..self.cube.n() {
            let signs = self.cube.minimal_signs(cur, dest, dim);
            let mut any = false;
            for sign in signs.iter() {
                any = true;
                // On a binary ring (k = 2) both directions are the same
                // physical link, cabled on the Plus port only.
                if self.cube.k() == 2 && sign == topology::cube::Sign::Minus {
                    continue;
                }
                let port = CubeDirection { dim, sign }.port();
                for vc in 0..self.adaptive_vcs {
                    out.preferred.push(Candidate::new(port, vc));
                }
            }
            if any && lowest_unaligned.is_none() {
                lowest_unaligned = Some(dim);
            }
        }

        // Escape class: the dimension-order hop on the virtual network
        // selected by the dateline scheme.
        let dim = lowest_unaligned.expect("cur != dest implies some unaligned dimension");
        let (_, sign) = self.cube.min_offset(cur, dest, dim);
        let class = dateline_class(&self.cube, cur, dest, dim, sign);
        let port = CubeDirection { dim, sign }.port();
        out.fallback
            .push(Candidate::new(port, self.escape_base() + class));
    }

    fn topology(&self) -> &dyn Topology {
        &self.cube
    }

    fn name(&self) -> String {
        "duato".into()
    }

    fn degrees_of_freedom(&self) -> usize {
        // "With the adaptive algorithm the number increases to six
        // (F = 6), four adaptive channels in two directions plus two
        // deterministic channels." Generalized: in the worst case two
        // unaligned dimensions each offer `adaptive_vcs` lanes in one
        // direction, plus the two escape lanes of the DOR hop.
        self.cube.n().min(2) * self.adaptive_vcs + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> CubeDuato {
        CubeDuato::new(KAryNCube::new(16, 2))
    }

    #[test]
    fn paper_parameters() {
        let a = paper();
        assert_eq!(a.num_vcs(), 4);
        assert_eq!(a.degrees_of_freedom(), 6);
        assert_eq!(a.name(), "duato");
    }

    #[test]
    fn candidates_cover_all_minimal_directions() {
        let a = paper();
        let cube = a.cube().clone();
        let s = cube.node_at(&[0, 0]);
        let d = cube.node_at(&[3, 14]);
        let mut cs = CandidateSet::default();
        a.route(RouterId(s.0), None, d, &mut cs);
        // Minimal: dim0 plus (3 hops), dim1 minus (2 hops): 2 dirs x 2
        // adaptive lanes.
        assert_eq!(cs.preferred.len(), 4);
        let ports: std::collections::HashSet<u16> = cs.preferred.iter().map(|c| c.port).collect();
        assert_eq!(ports.len(), 2);
        assert!(cs.preferred.iter().all(|c| c.vc < 2), "adaptive lanes only");
        // Escape: exactly one lane, dimension order = dim 0, no dateline
        // crossing -> virtual network 1 -> vc 3.
        assert_eq!(cs.fallback.len(), 1);
        assert_eq!(cs.fallback[0].port, 0); // dim 0, plus
        assert_eq!(cs.fallback[0].vc, 3);
    }

    #[test]
    fn half_ring_tie_offers_both_directions() {
        let a = paper();
        let cube = a.cube().clone();
        let s = cube.node_at(&[0, 0]);
        let d = cube.node_at(&[8, 0]);
        let mut cs = CandidateSet::default();
        a.route(RouterId(s.0), None, d, &mut cs);
        let ports: std::collections::HashSet<u16> = cs.preferred.iter().map(|c| c.port).collect();
        assert_eq!(ports.len(), 2, "both ring directions are minimal");
        assert_eq!(cs.fallback.len(), 1);
    }

    #[test]
    fn escape_path_follows_deterministic_route() {
        // Following only the escape (fallback) candidates must trace the
        // exact dimension-order path.
        use crate::dor::CubeDeterministic;
        let a = paper();
        let det = CubeDeterministic::new(a.cube().clone());
        let cube = a.cube().clone();
        for (s, d) in [(0u32, 137u32), (255, 16), (34, 221)] {
            let mut cur = NodeId(s);
            let mut cs = CandidateSet::default();
            while cur != NodeId(d) {
                a.route(RouterId(cur.0), None, NodeId(d), &mut cs);
                let esc = cs.fallback[0];
                let (dir, class) = det.next_hop(cur, NodeId(d)).unwrap();
                assert_eq!(esc.port as usize, dir.port());
                assert_eq!(esc.vc as usize, 2 + class);
                cur = cube.neighbor(cur, dir);
            }
        }
    }

    #[test]
    fn arrival_offers_every_ejection_lane() {
        let a = paper();
        let mut cs = CandidateSet::default();
        a.route(RouterId(77), None, NodeId(77), &mut cs);
        assert_eq!(cs.preferred.len(), 4);
        assert!(cs.fallback.is_empty());
    }

    #[test]
    fn adaptive_hops_shrink_distance() {
        // Any preferred candidate is a minimal hop: distance decreases.
        let a = CubeDuato::new(KAryNCube::new(6, 3));
        let cube = a.cube().clone();
        let mut cs = CandidateSet::default();
        for s in (0..216u32).step_by(5) {
            for d in (0..216u32).step_by(7) {
                if s == d {
                    continue;
                }
                a.route(RouterId(s), None, NodeId(d), &mut cs);
                let base = cube.hop_distance(NodeId(s), NodeId(d));
                for c in cs.iter_all() {
                    let dir = CubeDirection::from_port(c.port as usize, 3).unwrap();
                    let next = cube.neighbor(NodeId(s), dir);
                    assert_eq!(cube.hop_distance(next, NodeId(d)), base - 1);
                }
            }
        }
    }
}
