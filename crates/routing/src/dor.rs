//! Deterministic dimension-order routing on k-ary n-cubes.
//!
//! "The deterministic algorithm is a dimension order routing based on a
//! static channel dependency graph. Packets are sent to their
//! destination along a unique minimal path. The potential deadlocks
//! caused by the wrap-around connections are avoided doubling the number
//! of virtual channels and creating two distinct virtual networks.
//! Packets enter the first virtual network and switch to the second
//! virtual network upon crossing a wrap-around connection. Our version
//! of the deterministic algorithm uses four virtual channels for each
//! physical link (two channels for each virtual network)." — Section 3.
//!
//! ## Virtual-network (dateline) scheme
//!
//! Each dimension is a `k`-node ring in each travel direction. The
//! *dateline* of the plus-direction ring is the wrap-around edge
//! `k-1 -> 0` (for minus, `0 -> k-1`). A hop uses virtual network 0
//! while the packet still has the dateline strictly ahead of it, and
//! virtual network 1 from the crossing hop onwards (packets that never
//! cross also ride network 1; what matters for acyclicity is that no
//! packet *returns* to the dateline edge of the network it is in, which
//! the CDG tests machine-check).
//!
//! Ties on even radix (`k/2` hops both ways round) are broken towards
//! the plus direction so the path stays unique.

use crate::algo::{Candidate, CandidateSet, RoutingAlgorithm};
use topology::cube::{CubeDirection, Sign};
use topology::{KAryNCube, NodeId, RouterId, Topology};

/// Dimension-order deterministic routing with two virtual networks.
#[derive(Clone, Debug)]
pub struct CubeDeterministic {
    cube: KAryNCube,
    vcs_per_network: usize,
}

impl CubeDeterministic {
    /// The paper's configuration: 4 virtual channels, 2 per network.
    pub fn new(cube: KAryNCube) -> Self {
        Self::with_vcs_per_network(cube, 2)
    }

    /// Custom number of virtual channels per virtual network (ablation
    /// studies); total VCs = `2 * vcs_per_network`.
    pub fn with_vcs_per_network(cube: KAryNCube, vcs_per_network: usize) -> Self {
        assert!(vcs_per_network >= 1);
        CubeDeterministic {
            cube,
            vcs_per_network,
        }
    }

    /// The underlying cube.
    pub fn cube(&self) -> &KAryNCube {
        &self.cube
    }

    /// The dimension-order next hop for a packet at `cur` going to
    /// `dest`: the lowest unaligned dimension, its (deterministic)
    /// minimal sign, and the virtual-network class of the hop.
    /// `None` when `cur == dest`.
    pub fn next_hop(&self, cur: NodeId, dest: NodeId) -> Option<(CubeDirection, usize)> {
        for dim in 0..self.cube.n() {
            let (hops, sign) = self.cube.min_offset(cur, dest, dim);
            if hops > 0 {
                let class = dateline_class(&self.cube, cur, dest, dim, sign);
                return Some((CubeDirection { dim, sign }, class));
            }
        }
        None
    }
}

/// Virtual-network class (0 or 1) of a hop in dimension `dim` with
/// travel direction `sign`: 0 while the dateline is strictly ahead,
/// 1 from the crossing hop onwards (and for paths that never cross).
pub(crate) fn dateline_class(
    cube: &KAryNCube,
    cur: NodeId,
    dest: NodeId,
    dim: usize,
    sign: Sign,
) -> usize {
    let c = cube.coord(cur, dim);
    let d = cube.coord(dest, dim);
    let k = cube.k();
    match sign {
        // Plus dateline is the edge (k-1 -> 0): still ahead iff the
        // packet sits beyond its destination (c > d) and is not on the
        // crossing hop itself (c == k-1).
        Sign::Plus => usize::from(!(c > d && c != k - 1)),
        Sign::Minus => usize::from(!(c < d && c != 0)),
    }
}

impl RoutingAlgorithm for CubeDeterministic {
    fn num_vcs(&self) -> usize {
        2 * self.vcs_per_network
    }

    #[inline]
    fn route(&self, r: RouterId, _in_port: Option<usize>, dest: NodeId, out: &mut CandidateSet) {
        out.clear();
        let cur = NodeId(r.0); // routers are co-located with nodes
        match self.next_hop(cur, dest) {
            None => {
                // Arrived: any ejection lane on the node port.
                let node_port = self.cube.node_port(dest).port;
                for vc in 0..self.num_vcs() {
                    out.preferred.push(Candidate::new(node_port, vc));
                }
            }
            Some((dir, class)) => {
                // Both lanes of the selected virtual network (F = 2).
                let base = class * self.vcs_per_network;
                for vc in base..base + self.vcs_per_network {
                    out.preferred.push(Candidate::new(dir.port(), vc));
                }
            }
        }
    }

    fn topology(&self) -> &dyn Topology {
        &self.cube
    }

    fn name(&self) -> String {
        "deterministic".into()
    }

    fn degrees_of_freedom(&self) -> usize {
        // "In the deterministic routing we have only two virtual
        // channels available in a single direction (F = 2)."
        self.vcs_per_network
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_cube() -> CubeDeterministic {
        CubeDeterministic::new(KAryNCube::new(16, 2))
    }

    #[test]
    fn paper_parameters() {
        let a = paper_cube();
        assert_eq!(a.num_vcs(), 4);
        assert_eq!(a.degrees_of_freedom(), 2);
        assert_eq!(a.name(), "deterministic");
    }

    #[test]
    fn path_is_unique_minimal_and_dimension_ordered() {
        let a = paper_cube();
        let cube = a.cube().clone();
        for (s, d) in [(0u32, 255u32), (17, 200), (255, 0), (128, 127), (5, 5)] {
            let (src, dst) = (NodeId(s), NodeId(d));
            let mut cur = src;
            let mut hops = 0usize;
            let mut max_dim_touched = 0usize;
            while let Some((dir, _)) = a.next_hop(cur, dst) {
                assert!(dir.dim >= max_dim_touched, "dimension order violated");
                max_dim_touched = dir.dim;
                cur = cube.neighbor(cur, dir);
                hops += 1;
                assert!(hops <= 64, "routing loop");
            }
            assert_eq!(cur, dst);
            assert_eq!(hops, cube.hop_distance(src, dst), "{s}->{d} not minimal");
        }
    }

    #[test]
    fn every_pair_terminates_minimally() {
        let a = CubeDeterministic::new(KAryNCube::new(5, 2));
        let cube = a.cube().clone();
        for s in 0..25u32 {
            for d in 0..25u32 {
                let mut cur = NodeId(s);
                let mut hops = 0;
                while let Some((dir, _)) = a.next_hop(cur, NodeId(d)) {
                    cur = cube.neighbor(cur, dir);
                    hops += 1;
                    assert!(hops <= 10);
                }
                assert_eq!(cur, NodeId(d));
                assert_eq!(hops, cube.hop_distance(NodeId(s), NodeId(d)));
            }
        }
    }

    #[test]
    fn dateline_classes_are_monotonic_along_path() {
        // Once a packet is in virtual network 1 within a dimension it
        // must never go back to network 0 in that dimension.
        let a = CubeDeterministic::new(KAryNCube::new(8, 3));
        let cube = a.cube().clone();
        for s in (0..512u32).step_by(7) {
            for d in (0..512u32).step_by(11) {
                let mut cur = NodeId(s);
                let mut last: Option<(usize, usize)> = None; // (dim, class)
                while let Some((dir, class)) = a.next_hop(cur, NodeId(d)) {
                    if let Some((ld, lc)) = last {
                        if ld == dir.dim {
                            assert!(class >= lc, "class regressed in dim {ld}");
                        }
                    }
                    last = Some((dir.dim, class));
                    cur = cube.neighbor(cur, dir);
                }
            }
        }
    }

    #[test]
    fn crossing_hop_uses_network_one() {
        let a = paper_cube();
        let cube = a.cube().clone();
        // From (15, 0) to (2, 0): must wrap in dimension 0 (3 hops fwd
        // vs 13 back). First hop is the crossing: class 1.
        let s = cube.node_at(&[15, 0]);
        let d = cube.node_at(&[2, 0]);
        let (dir, class) = a.next_hop(s, d).unwrap();
        assert_eq!(dir.sign, Sign::Plus);
        assert_eq!(class, 1);
        // From (12, 0) the dateline is ahead: class 0.
        let s = cube.node_at(&[12, 0]);
        let (dir, class) = a.next_hop(s, d).unwrap();
        assert_eq!(dir.sign, Sign::Plus);
        assert_eq!(class, 0);
    }

    #[test]
    fn route_emits_ejection_candidates_at_destination() {
        let a = paper_cube();
        let mut cs = CandidateSet::default();
        a.route(RouterId(9), None, NodeId(9), &mut cs);
        assert_eq!(cs.preferred.len(), 4);
        assert!(cs.fallback.is_empty());
        let node_port = a.cube().node_port(NodeId(9)).port;
        assert!(cs.preferred.iter().all(|c| c.port as usize == node_port));
    }

    #[test]
    fn route_emits_two_lanes_of_one_network() {
        let a = paper_cube();
        let mut cs = CandidateSet::default();
        a.route(RouterId(0), None, NodeId(5), &mut cs);
        assert_eq!(cs.preferred.len(), 2);
        let ports: Vec<u16> = cs.preferred.iter().map(|c| c.port).collect();
        assert!(ports.windows(2).all(|w| w[0] == w[1]), "single direction");
        let vcs: Vec<u8> = cs.preferred.iter().map(|c| c.vc).collect();
        // 0->5 in a 16-ring never crosses the dateline: network 1.
        assert_eq!(vcs, vec![2, 3]);
    }
}
