//! Channel-dependency-graph construction and deadlock analysis.
//!
//! The deadlock-freedom arguments the paper relies on (Dally & Seitz for
//! the deterministic algorithm, Duato's theory for the adaptive one,
//! level monotonicity for the tree) are classical, but implementations
//! get them wrong in the details — the dateline placement, the escape
//! class of the crossing hop, the tie-break on even radix. This module
//! *machine-checks* the arguments against the actual routing functions:
//! it replays a [`RoutingAlgorithm`] over every destination and every
//! reachable state and records which channel (output lane) a packet can
//! **hold** while **requesting** another.
//!
//! * For the deterministic and tree algorithms the full CDG must be
//!   acyclic (Dally & Seitz condition).
//! * For Duato's algorithm the full CDG is cyclic by design (that is
//!   what adaptivity buys), but the **escape sub-CDG extended with
//!   indirect dependencies** — a packet holding an escape lane, riding
//!   adaptive lanes for a while, then requesting another escape lane —
//!   must be acyclic (Duato's condition). The builder supports this
//!   through a lane filter: unfiltered lanes are traversed but never
//!   become the held lane.

use crate::algo::{CandidateSet, RoutingAlgorithm};
use std::collections::{HashMap, HashSet};
use topology::graph::PortPeer;
use topology::{NodeId, PortRef, RouterId};

/// A directed channel: the output lane `vc` on `port` of `router`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LaneId {
    /// Router owning the output lane.
    pub router: u32,
    /// Port index.
    pub port: u16,
    /// Virtual-channel index.
    pub vc: u8,
}

/// A channel dependency graph: `a -> b` iff some packet in some
/// reachable state can hold lane `a` while requesting lane `b`.
#[derive(Clone, Debug, Default)]
pub struct ChannelDependencyGraph {
    edges: HashMap<LaneId, HashSet<LaneId>>,
}

impl ChannelDependencyGraph {
    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// Number of lanes that appear as a source of some dependency.
    pub fn num_holding_lanes(&self) -> usize {
        self.edges.len()
    }

    /// Insert a dependency edge.
    pub fn add_edge(&mut self, from: LaneId, to: LaneId) {
        self.edges.entry(from).or_default().insert(to);
    }

    /// All lanes that appear as the source of at least one dependency,
    /// in deterministic order.
    pub fn lanes(&self) -> Vec<LaneId> {
        let mut v: Vec<LaneId> = self.edges.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The dependency successors of `lane`, in deterministic order.
    pub fn successors(&self, lane: LaneId) -> Vec<LaneId> {
        let mut v: Vec<LaneId> = self
            .edges
            .get(&lane)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Find a dependency cycle, if any, as a lane sequence
    /// `l_0 -> l_1 -> … -> l_0`. `None` means the graph is acyclic and
    /// the routing function is deadlock-free by the corresponding
    /// theorem.
    pub fn find_cycle(&self) -> Option<Vec<LaneId>> {
        // Iterative three-color DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<LaneId, Color> = HashMap::new();
        let mut parent: HashMap<LaneId, LaneId> = HashMap::new();
        let mut roots: Vec<LaneId> = self.edges.keys().copied().collect();
        roots.sort_unstable(); // determinism

        for &root in &roots {
            if *color.get(&root).unwrap_or(&Color::White) != Color::White {
                continue;
            }
            // stack of (lane, next-neighbor-iterator-position)
            let mut stack: Vec<(LaneId, Vec<LaneId>, usize)> = Vec::new();
            color.insert(root, Color::Gray);
            let mut succ: Vec<LaneId> = self
                .edges
                .get(&root)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            succ.sort_unstable();
            stack.push((root, succ, 0));

            while let Some((lane, succ, idx)) = stack.last_mut() {
                if *idx >= succ.len() {
                    color.insert(*lane, Color::Black);
                    stack.pop();
                    continue;
                }
                let next = succ[*idx];
                *idx += 1;
                match *color.get(&next).unwrap_or(&Color::White) {
                    Color::White => {
                        parent.insert(next, *lane);
                        color.insert(next, Color::Gray);
                        let mut ns: Vec<LaneId> = self
                            .edges
                            .get(&next)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default();
                        ns.sort_unstable();
                        stack.push((next, ns, 0));
                    }
                    Color::Gray => {
                        // Found a back edge: reconstruct the cycle.
                        let mut cycle = vec![next];
                        let mut cur = *lane;
                        while cur != next {
                            cycle.push(cur);
                            cur = parent[&cur];
                        }
                        cycle.push(next);
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            }
        }
        None
    }
}

/// Build the channel dependency graph of `algo` by exhaustive replay.
///
/// `lane_filter` selects the lanes whose dependencies are tracked:
///
/// * `|_| true` builds the **full direct** CDG (a packet's held lane is
///   always its previous hop's lane);
/// * a filter selecting only escape lanes builds the **escape sub-CDG
///   with indirect dependencies**: unfiltered (adaptive) lanes are
///   traversed but do not replace the held lane, so a dependency is
///   recorded from the last escape lane held to the next escape lane
///   requested, however many adaptive hops lie between them.
///
/// The walk covers every destination and every reachable
/// `(router, held-lane)` state, starting from each source router with no
/// held lane (injection channels cannot participate in cycles since no
/// in-network packet can request them).
pub fn build_cdg(
    algo: &dyn RoutingAlgorithm,
    lane_filter: impl Fn(LaneId) -> bool,
) -> ChannelDependencyGraph {
    let topo = algo.topology();
    let mut graph = ChannelDependencyGraph::default();
    let mut buf = CandidateSet::default();

    // `held == None` is encoded as a sentinel for the visited set.
    const NO_LANE: LaneId = LaneId {
        router: u32::MAX,
        port: u16::MAX,
        vc: u8::MAX,
    };

    for dest_idx in 0..topo.num_nodes() {
        let dest = NodeId(dest_idx as u32);
        let mut visited: HashSet<(u32, LaneId)> = HashSet::new();
        let mut stack: Vec<(RouterId, Option<LaneId>)> = Vec::new();

        // Packets can start at any source router (lane-less states).
        for src_idx in 0..topo.num_nodes() {
            if src_idx == dest_idx {
                continue;
            }
            let start = topo.node_port(NodeId(src_idx as u32)).router;
            if visited.insert((start.0, NO_LANE)) {
                stack.push((start, None));
            }
        }

        while let Some((router, held)) = stack.pop() {
            algo.route(router, None, dest, &mut buf);
            debug_assert!(!buf.is_empty(), "routing dead-end at {router} for {dest}");
            for cand in buf.preferred.iter().chain(buf.fallback.iter()).copied() {
                let lane = LaneId {
                    router: router.0,
                    port: cand.port,
                    vc: cand.vc,
                };
                let tracked = lane_filter(lane);
                if tracked {
                    if let Some(h) = held {
                        graph.add_edge(h, lane);
                    }
                }
                let next_held = if tracked { Some(lane) } else { held };
                match topo.peer(PortRef::new(router, cand.port as usize)) {
                    PortPeer::Router(pr) => {
                        let key = (pr.router.0, next_held.unwrap_or(NO_LANE));
                        if visited.insert(key) {
                            stack.push((pr.router, next_held));
                        }
                    }
                    PortPeer::Node(n) => {
                        debug_assert_eq!(n, dest, "ejected at the wrong node");
                    }
                    PortPeer::Unconnected => {
                        panic!("routing function emitted an uncabled port")
                    }
                }
            }
        }
    }

    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dor::CubeDeterministic;
    use crate::duato::CubeDuato;
    use crate::tapered_adaptive::TaperedTreeAdaptive;
    use crate::thc_dor::ThcDeterministic;
    use crate::tree_adaptive::TreeAdaptive;
    use topology::{KAryNCube, KAryNTree, TaperedKAryNTree, TorusHypercube};

    #[test]
    fn cycle_detector_finds_planted_cycle() {
        let l = |r: u32| LaneId {
            router: r,
            port: 0,
            vc: 0,
        };
        let mut g = ChannelDependencyGraph::default();
        g.add_edge(l(0), l(1));
        g.add_edge(l(1), l(2));
        g.add_edge(l(2), l(0));
        g.add_edge(l(2), l(3));
        let cycle = g.find_cycle().expect("cycle exists");
        assert!(cycle.len() >= 4);
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn cycle_detector_accepts_dag() {
        let l = |r: u32| LaneId {
            router: r,
            port: 0,
            vc: 0,
        };
        let mut g = ChannelDependencyGraph::default();
        g.add_edge(l(0), l(1));
        g.add_edge(l(0), l(2));
        g.add_edge(l(1), l(3));
        g.add_edge(l(2), l(3));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn deterministic_cdg_is_acyclic() {
        for (k, n) in [(4usize, 2usize), (5, 2), (6, 2), (3, 3), (4, 3)] {
            let algo = CubeDeterministic::new(KAryNCube::new(k, n));
            let g = build_cdg(&algo, |_| true);
            assert!(g.num_edges() > 0);
            assert!(
                g.find_cycle().is_none(),
                "deterministic routing has a dependency cycle on the {k}-ary {n}-cube"
            );
        }
    }

    #[test]
    fn deterministic_single_network_would_deadlock() {
        // Sanity check that the checker has teeth: without the dateline
        // virtual-network switch (i.e. all hops forced to class 0), the
        // ring dependencies close into a cycle. We emulate this by
        // mapping every lane to class 0 when building the graph. (k = 6
        // so that two-hop segments exist from every ring position and
        // the collapsed dependency chain goes all the way round.)
        let algo = CubeDeterministic::new(KAryNCube::new(6, 2));
        let g = build_cdg(&algo, |_| true);
        // Project both virtual networks onto one: lane (r,p,v) -> (r,p,0).
        let mut merged = ChannelDependencyGraph::default();
        let proj = |l: LaneId| LaneId {
            router: l.router,
            port: l.port,
            vc: 0,
        };
        for (from, tos) in &g.edges {
            for to in tos {
                merged.add_edge(proj(*from), proj(*to));
            }
        }
        assert!(
            merged.find_cycle().is_some(),
            "collapsing the virtual networks must close the ring cycle"
        );
    }

    #[test]
    fn tree_cdg_is_acyclic() {
        for (k, n, vcs) in [
            (2usize, 2usize, 1usize),
            (2, 3, 2),
            (3, 2, 4),
            (4, 2, 2),
            (2, 4, 1),
        ] {
            let algo = TreeAdaptive::new(KAryNTree::new(k, n), vcs);
            let g = build_cdg(&algo, |_| true);
            assert!(
                g.find_cycle().is_none(),
                "tree adaptive routing has a cycle on the {k}-ary {n}-tree ({vcs} VCs)"
            );
        }
    }

    #[test]
    fn tapered_tree_cdg_is_acyclic() {
        for (k, n, taper, vcs) in [
            (2usize, 2usize, 2usize, 1usize),
            (3, 2, 2, 2),
            (4, 2, 2, 4),
            (4, 2, 4, 1),
            (3, 3, 3, 2),
        ] {
            let algo = TaperedTreeAdaptive::new(TaperedKAryNTree::new(k, n, taper), vcs);
            let g = build_cdg(&algo, |_| true);
            assert!(g.num_edges() > 0);
            assert!(
                g.find_cycle().is_none(),
                "tapered tree routing has a cycle on the {k}-ary {n}-tree taper {taper} ({vcs} VCs)"
            );
        }
    }

    #[test]
    fn thc_cdg_is_acyclic() {
        for (k, d) in [(2usize, 1usize), (3, 2), (4, 2), (5, 1), (4, 3)] {
            let algo = ThcDeterministic::new(TorusHypercube::new(k, d));
            let g = build_cdg(&algo, |_| true);
            assert!(g.num_edges() > 0);
            assert!(
                g.find_cycle().is_none(),
                "THC deterministic routing has a dependency cycle on THC({k},{d})"
            );
        }
    }

    #[test]
    fn duato_full_cdg_has_cycles_but_escape_subgraph_is_acyclic() {
        for (k, n) in [(4usize, 2usize), (5, 2), (6, 2), (3, 3)] {
            let algo = CubeDuato::new(KAryNCube::new(k, n));
            let full = build_cdg(&algo, |_| true);
            assert!(
                full.find_cycle().is_some(),
                "adaptive channels should create cycles on the {k}-ary {n}-cube"
            );
            let escape = build_cdg(&algo, |l| algo.is_escape_vc(l.vc as usize));
            assert!(escape.num_edges() > 0);
            assert!(
                escape.find_cycle().is_none(),
                "Duato escape sub-CDG has a cycle on the {k}-ary {n}-cube"
            );
        }
    }
}
