//! Minimal adaptive routing on tapered k-ary n-trees.
//!
//! The algorithm is the fat-tree two-phase scheme of
//! [`crate::TreeAdaptive`] applied to the slimmed topology: an adaptive
//! *ascending* phase towards a nearest common ancestor followed by a
//! deterministic *descending* phase. The only structural difference is
//! the size of the adaptive choice set — a tapered switch exposes
//! `up = ceil(k/taper)` up links instead of `k`, so during the ascent
//! the packet picks among `up` parents (each still on a minimal path;
//! the tapered butterfly keeps the property that every parent of a
//! switch reaches every ancestor word).
//!
//! Deadlock freedom carries over unchanged: ascending hops strictly
//! decrease the level, descending hops strictly increase it, and the
//! phase transition is one-way, so the channel dependency graph is
//! acyclic for any number of virtual channels (machine-checked in the
//! `cdg` tests).

use crate::algo::{Candidate, CandidateSet, RoutingAlgorithm};
use topology::{NodeId, RouterId, TaperedKAryNTree, Topology};

/// Tapered fat-tree minimal adaptive routing with a configurable number
/// of virtual channels.
#[derive(Clone, Debug)]
pub struct TaperedTreeAdaptive {
    tree: TaperedKAryNTree,
    vcs: usize,
}

impl TaperedTreeAdaptive {
    /// Create the algorithm with `vcs` virtual channels per link.
    ///
    /// # Panics
    /// Panics if `vcs == 0`.
    pub fn new(tree: TaperedKAryNTree, vcs: usize) -> Self {
        assert!(vcs >= 1, "need at least one virtual channel");
        TaperedTreeAdaptive { tree, vcs }
    }

    /// The underlying tapered tree.
    pub fn tree(&self) -> &TaperedKAryNTree {
        &self.tree
    }
}

impl RoutingAlgorithm for TaperedTreeAdaptive {
    fn num_vcs(&self) -> usize {
        self.vcs
    }

    #[inline]
    fn route(&self, r: RouterId, _in_port: Option<usize>, dest: NodeId, out: &mut CandidateSet) {
        out.clear();
        let tree = &self.tree;
        let level = tree.level(r);
        if tree.is_ancestor_of(r, dest) {
            // Descending phase (or ejection at the leaf switch): the
            // down port is forced, the lane is free.
            let port = tree.down_port_towards(level, dest);
            for vc in 0..self.vcs {
                out.preferred.push(Candidate::new(port, vc));
            }
        } else {
            // Ascending phase: every surviving up port leads to a
            // valid NCA.
            for port in tree.k()..tree.k() + tree.up() {
                for vc in 0..self.vcs {
                    out.preferred.push(Candidate::new(port, vc));
                }
            }
        }
    }

    fn topology(&self) -> &dyn Topology {
        &self.tree
    }

    fn name(&self) -> String {
        format!("adaptive-{}vc", self.vcs)
    }

    fn degrees_of_freedom(&self) -> usize {
        // A tapered switch has k down and `up` up links; as in the full
        // tree the link the header arrived on is excluded.
        (self.tree.k() + self.tree.up() - 1) * self.vcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_adaptive::TreeAdaptive;
    use topology::graph::PortPeer;
    use topology::{KAryNTree, PortRef};

    fn half(vcs: usize) -> TaperedTreeAdaptive {
        TaperedTreeAdaptive::new(TaperedKAryNTree::new(4, 4, 2), vcs)
    }

    #[test]
    fn parameters_shrink_with_the_taper() {
        // k=4, taper=2 -> up=2: F = (4+2-1)*V.
        assert_eq!(half(1).degrees_of_freedom(), 5);
        assert_eq!(half(2).degrees_of_freedom(), 10);
        assert_eq!(half(4).degrees_of_freedom(), 20);
        assert_eq!(half(4).name(), "adaptive-4vc");
        assert_eq!(half(2).num_vcs(), 2);
    }

    #[test]
    fn taper_one_matches_the_full_tree_algorithm() {
        let full = TreeAdaptive::new(KAryNTree::new(3, 3), 2);
        let tapered = TaperedTreeAdaptive::new(TaperedKAryNTree::new(3, 3, 1), 2);
        assert_eq!(full.degrees_of_freedom(), tapered.degrees_of_freedom());
        let (mut a, mut b) = (CandidateSet::default(), CandidateSet::default());
        for r in 0..tapered.tree().num_routers() {
            for d in 0..27u32 {
                full.route(RouterId(r as u32), None, NodeId(d), &mut a);
                tapered.route(RouterId(r as u32), None, NodeId(d), &mut b);
                assert_eq!(a.preferred, b.preferred, "router {r} dest {d}");
                assert_eq!(a.fallback, b.fallback);
            }
        }
    }

    #[test]
    fn ascending_offers_only_surviving_up_ports() {
        let a = half(2);
        let tree = a.tree().clone();
        let sw = tree.leaf_switch(NodeId(0));
        let mut cs = CandidateSet::default();
        a.route(sw, None, NodeId(255), &mut cs);
        assert_eq!(cs.preferred.len(), 2 * 2); // up=2 ports x 2 lanes
        assert!(cs
            .preferred
            .iter()
            .all(|c| (c.port as usize) >= tree.k() && (c.port as usize) < tree.k() + tree.up()));
        assert!(cs.fallback.is_empty());
    }

    #[test]
    fn descending_port_is_forced() {
        let a = half(4);
        let tree = a.tree().clone();
        // Any root-level switch is an ancestor of everything.
        let root = tree.switch(0, 5);
        let mut cs = CandidateSet::default();
        let dest = NodeId(0b11_10_01_00); // digits 3,2,1,0
        a.route(root, None, dest, &mut cs);
        assert_eq!(cs.preferred.len(), 4); // one port x 4 lanes
        assert!(cs.preferred.iter().all(|c| c.port == 3)); // digit 0 of dest
    }

    #[test]
    fn ejection_at_leaf_switch() {
        let a = half(1);
        let tree = a.tree().clone();
        let dest = NodeId(42);
        let leaf = tree.leaf_switch(dest);
        let mut cs = CandidateSet::default();
        a.route(leaf, None, dest, &mut cs);
        assert_eq!(cs.preferred.len(), 1);
        let c = cs.preferred[0];
        assert_eq!(
            tree.peer(PortRef::new(leaf, c.port as usize)),
            PortPeer::Node(dest)
        );
    }

    #[test]
    fn all_paths_are_minimal() {
        // Follow every candidate chain on a small tapered tree; each
        // route must take exactly min_distance(src, dest) hops.
        let a = TaperedTreeAdaptive::new(TaperedKAryNTree::new(3, 3, 2), 1);
        let tree = a.tree().clone();
        let mut cs = CandidateSet::default();
        for s in 0..27u32 {
            for d in 0..27u32 {
                if s == d {
                    continue;
                }
                let mut stack = vec![(tree.leaf_switch(NodeId(s)), 1usize)];
                while let Some((sw, hops)) = stack.pop() {
                    a.route(sw, None, NodeId(d), &mut cs);
                    assert!(!cs.is_empty());
                    let ports: std::collections::HashSet<u16> =
                        cs.preferred.iter().map(|c| c.port).collect();
                    for port in ports {
                        match tree.peer(PortRef::new(sw, port as usize)) {
                            PortPeer::Node(n) => {
                                assert_eq!(n, NodeId(d));
                                assert_eq!(
                                    hops + 1,
                                    tree.min_distance(NodeId(s), NodeId(d)),
                                    "{s}->{d}"
                                );
                            }
                            PortPeer::Router(pr) => {
                                assert!(hops + 1 < 10, "path too long {s}->{d}");
                                stack.push((pr.router, hops + 1));
                            }
                            PortPeer::Unconnected => panic!("routed into a dead port"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn extreme_taper_leaves_a_single_ascending_path() {
        // taper >= k collapses the ascent to one up port: the algorithm
        // degenerates to deterministic routing but must still reach
        // every destination minimally.
        let a = TaperedTreeAdaptive::new(TaperedKAryNTree::new(4, 2, 4), 1);
        let tree = a.tree().clone();
        let mut cs = CandidateSet::default();
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s == d {
                    continue;
                }
                let mut sw = tree.leaf_switch(NodeId(s));
                let mut hops = 1usize;
                loop {
                    a.route(sw, None, NodeId(d), &mut cs);
                    assert_eq!(cs.preferred.len(), 1, "single path expected");
                    match tree.peer(PortRef::new(sw, cs.preferred[0].port as usize)) {
                        PortPeer::Node(n) => {
                            assert_eq!(n, NodeId(d));
                            assert_eq!(hops + 1, tree.min_distance(NodeId(s), NodeId(d)));
                            break;
                        }
                        PortPeer::Router(pr) => {
                            sw = pr.router;
                            hops += 1;
                            assert!(hops < 10);
                        }
                        PortPeer::Unconnected => panic!("routed into a dead port"),
                    }
                }
            }
        }
    }

    #[test]
    fn phase_transition_is_one_way() {
        let a = TaperedTreeAdaptive::new(TaperedKAryNTree::new(4, 3, 2), 2);
        let tree = a.tree().clone();
        let mut cs = CandidateSet::default();
        for s in (0..64u32).step_by(3) {
            for d in (0..64u32).step_by(5) {
                if s == d {
                    continue;
                }
                let mut stack = vec![(tree.leaf_switch(NodeId(s)), false)];
                let mut guard = 0;
                while let Some((sw, was_descending)) = stack.pop() {
                    guard += 1;
                    assert!(guard < 10_000);
                    let descending = tree.is_ancestor_of(sw, NodeId(d));
                    assert!(!was_descending || descending, "descent reverted");
                    a.route(sw, None, NodeId(d), &mut cs);
                    for c in cs.preferred.clone() {
                        if c.vc != 0 {
                            continue; // one lane is enough for path shape
                        }
                        if let PortPeer::Router(pr) = tree.peer(PortRef::new(sw, c.port as usize)) {
                            stack.push((pr.router, descending));
                        }
                    }
                }
            }
        }
    }
}
