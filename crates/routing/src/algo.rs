//! The routing-function interface between algorithms and the simulator.
//!
//! The router model of Section 4 separates the *routing function* (which
//! output lanes may a header use?) from the *selection policy* (which of
//! the available ones does it take?). This module defines the former;
//! the simulator implements the latter ("pick the less loaded link, fair
//! choice on ties", and for Duato "escape only when the adaptive choice
//! is limited by contention").

use topology::{NodeId, RouterId, Topology};

/// One admissible output lane at the current router: a (port,
/// virtual-channel) pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Candidate {
    /// Output port index at the current router.
    pub port: u16,
    /// Virtual channel (lane) index on that port, `0..num_vcs`.
    pub vc: u8,
}

impl Candidate {
    /// Convenience constructor.
    #[inline]
    pub fn new(port: usize, vc: usize) -> Self {
        Candidate {
            port: port as u16,
            vc: vc as u8,
        }
    }
}

/// The set of admissible output lanes for a header, split into the
/// preferred class and a fallback class.
///
/// * For fully adaptive algorithms (tree) and for deterministic routing,
///   only `preferred` is populated.
/// * For Duato's algorithm, `preferred` holds the adaptive channels on
///   every minimal direction and `fallback` the escape channel(s) of the
///   dimension-order hop; the simulator consults `fallback` only when no
///   preferred lane can be allocated this cycle.
///
/// The buffer is reused across calls to avoid per-header allocation.
#[derive(Clone, Debug, Default)]
pub struct CandidateSet {
    /// Adaptive / primary lanes; the selection policy chooses among
    /// these first.
    pub preferred: Vec<Candidate>,
    /// Escape / secondary lanes, consulted only when every preferred
    /// lane is unavailable.
    pub fallback: Vec<Candidate>,
}

impl CandidateSet {
    /// Empty both classes (keeps capacity).
    #[inline]
    pub fn clear(&mut self) {
        self.preferred.clear();
        self.fallback.clear();
    }

    /// Total number of candidates in both classes.
    #[inline]
    pub fn len(&self) -> usize {
        self.preferred.len() + self.fallback.len()
    }

    /// Whether no candidate at all was produced (a routing-function bug:
    /// every reachable state must offer at least one lane).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all candidates, preferred first.
    pub fn iter_all(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.preferred.iter().chain(self.fallback.iter()).copied()
    }
}

/// A wormhole routing function.
///
/// Implementations must be pure functions of `(router, dest)` — the
/// incoming port is provided for diagnostics/assertions only. This
/// purity is what lets the [`crate::cdg`] checker enumerate every
/// reachable channel dependency by replaying the function.
pub trait RoutingAlgorithm: Send + Sync {
    /// Number of virtual channels per physical link this algorithm
    /// requires (uniform across the network, node interfaces included).
    fn num_vcs(&self) -> usize;

    /// Fill `out` with the admissible output lanes for a header at
    /// router `r` destined to node `dest`.
    ///
    /// When the packet has arrived (the router is the one `dest` is
    /// attached to), implementations emit candidates on the node port.
    /// `in_port` is the port the header arrived on; `None` for freshly
    /// injected packets.
    fn route(&self, r: RouterId, in_port: Option<usize>, dest: NodeId, out: &mut CandidateSet);

    /// The topology this algorithm instance routes on.
    fn topology(&self) -> &dyn Topology;

    /// Stable name for reports, e.g. `"deterministic"`, `"duato"`,
    /// `"adaptive-2vc"`.
    fn name(&self) -> String;

    /// Degree of freedom `F` in Chien's cost model: the number of
    /// alternatives the routing decision logic must consider
    /// (Section 5 of the paper).
    fn degrees_of_freedom(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_set_basics() {
        let mut cs = CandidateSet::default();
        assert!(cs.is_empty());
        cs.preferred.push(Candidate::new(1, 0));
        cs.fallback.push(Candidate::new(2, 3));
        assert_eq!(cs.len(), 2);
        let all: Vec<_> = cs.iter_all().collect();
        assert_eq!(all[0], Candidate { port: 1, vc: 0 });
        assert_eq!(all[1], Candidate { port: 2, vc: 3 });
        cs.clear();
        assert!(cs.is_empty());
    }
}
