//! Routing algorithms and deadlock analysis for the ICPP'97 reproduction.
//!
//! The paper compares three wormhole routing algorithms:
//!
//! * [`CubeDeterministic`] — dimension-order routing on the k-ary n-cube
//!   with four virtual channels forming two virtual networks; packets
//!   move to the second network upon crossing a wrap-around connection
//!   (Dally & Seitz dateline scheme). Degree of freedom `F = 2`.
//! * [`CubeDuato`] — minimal adaptive routing after Duato's methodology:
//!   two *adaptive* channels usable on any minimal direction plus two
//!   *escape* channels routed by dimension-order, used when adaptive
//!   choice is blocked by contention. Channel allocation is
//!   non-monotonic: packets may re-enter the adaptive channels after an
//!   escape hop. Degree of freedom `F = 6`.
//! * [`TreeAdaptive`] — minimal adaptive routing on the k-ary n-tree:
//!   an adaptive *ascending* phase to a nearest common ancestor of
//!   source and destination followed by a deterministic *descending*
//!   phase, with 1, 2 or 4 virtual channels. `F = (2k-1)·V`.
//!
//! Beyond the paper's trio, the crate carries one algorithm per extra
//! topology family: [`TaperedTreeAdaptive`] (the two-phase tree scheme
//! over the slimmed up-link set, `F = (k + ceil(k/taper) - 1)·V`),
//! [`ThcDeterministic`] (dimension-order with per-radix datelines on
//! the torus-embedded hypercube), and the mesh pair
//! ([`MeshDeterministic`], [`MeshAdaptive`]).
//!
//! All implement the [`RoutingAlgorithm`] trait consumed by the
//! simulator. The [`cdg`] module builds channel-dependency graphs by
//! *executing* a routing function over every source/destination pair and
//! machine-checks the deadlock-freedom arguments (acyclic CDG for the
//! deterministic and tree algorithms, acyclic escape sub-CDG with
//! indirect dependencies for Duato's).
//!
//! ## Example
//!
//! ```
//! use routing::{CubeDuato, RoutingAlgorithm};
//! use topology::KAryNCube;
//!
//! let duato = CubeDuato::new(KAryNCube::new(16, 2));
//! assert_eq!(duato.num_vcs(), 4);            // 2 adaptive + 2 escape
//! assert_eq!(duato.degrees_of_freedom(), 6); // the paper's F
//! ```

#![warn(missing_docs)]
pub mod algo;
pub mod cdg;
pub mod dor;
pub mod duato;
pub mod mesh_routing;
pub mod tapered_adaptive;
pub mod thc_dor;
pub mod tree_adaptive;

pub use algo::{Candidate, CandidateSet, RoutingAlgorithm};
pub use cdg::{build_cdg, ChannelDependencyGraph, LaneId};

pub use dor::CubeDeterministic;
pub use duato::CubeDuato;
pub use mesh_routing::{MeshAdaptive, MeshDeterministic};
pub use tapered_adaptive::TaperedTreeAdaptive;
pub use thc_dor::ThcDeterministic;
pub use tree_adaptive::TreeAdaptive;
