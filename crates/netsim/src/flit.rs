//! Flits and packet bookkeeping.

/// Sentinel for "not yet happened" cycle stamps.
pub const NEVER: u32 = u32::MAX;

/// One flow-control digit. The header flit carries the routing
/// information (here: the packet id, which indexes the packet table);
/// body and tail flits follow the path the header established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flit {
    /// Index into the simulation's packet table.
    pub packet: u32,
    /// Cycle at which this flit last advanced one pipeline stage; used
    /// to enforce that a flit traverses at most one stage (link,
    /// crossbar) per clock.
    pub moved: u32,
    /// [`HEAD`] / [`TAIL`] flag bits (a one-flit packet would carry both;
    /// the paper's 64-byte packets are 16 or 32 flits, so this does not
    /// arise in the experiments but the engine supports it).
    pub flags: u8,
}

/// Flag bit: first flit of a packet.
pub const HEAD: u8 = 1;
/// Flag bit: last flit of a packet.
pub const TAIL: u8 = 2;

impl Flit {
    /// Whether this is a header flit.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.flags & HEAD != 0
    }

    /// Whether this is a tail flit.
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.flags & TAIL != 0
    }
}

/// Per-packet record: identity, timing, and size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketRec {
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dest: u32,
    /// Cycle the packet was created (entered the source queue).
    pub created: u32,
    /// Cycle the header flit entered the injection lane ([`NEVER`] while
    /// still queued at the source).
    pub injected: u32,
    /// Cycle the tail flit was received at the destination ([`NEVER`]
    /// while in flight).
    pub delivered: u32,
    /// Number of flits.
    pub flits: u16,
    /// Number of routers whose routing logic handled this packet's
    /// header — for a minimal algorithm this must equal
    /// `min_distance(src, dest) - 1` on delivery.
    pub hops: u16,
    /// In request–reply mode: the request packet this one answers
    /// (`u32::MAX` for requests and for open-loop traffic). Round-trip
    /// time = `delivered - packets[in_reply_to].created`.
    pub in_reply_to: u32,
}

impl PacketRec {
    /// Whether this packet is a reply in request-reply mode.
    pub fn is_reply(&self) -> bool {
        self.in_reply_to != u32::MAX
    }
}

impl PacketRec {
    /// Network latency in cycles (Section 6's definition), or `None`
    /// if the packet has not been delivered.
    pub fn latency(&self) -> Option<u32> {
        if self.delivered == NEVER || self.injected == NEVER {
            None
        } else {
            Some(self.delivered - self.injected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags() {
        let h = Flit {
            packet: 0,
            moved: 0,
            flags: HEAD,
        };
        let b = Flit {
            packet: 0,
            moved: 0,
            flags: 0,
        };
        let t = Flit {
            packet: 0,
            moved: 0,
            flags: TAIL,
        };
        let ht = Flit {
            packet: 0,
            moved: 0,
            flags: HEAD | TAIL,
        };
        assert!(h.is_head() && !h.is_tail());
        assert!(!b.is_head() && !b.is_tail());
        assert!(!t.is_head() && t.is_tail());
        assert!(ht.is_head() && ht.is_tail());
    }

    #[test]
    fn latency_requires_both_stamps() {
        let mut p = PacketRec {
            src: 0,
            dest: 1,
            created: 5,
            injected: NEVER,
            delivered: NEVER,
            flits: 16,
            hops: 0,
            in_reply_to: u32::MAX,
        };
        assert_eq!(p.latency(), None);
        p.injected = 10;
        assert_eq!(p.latency(), None);
        p.delivered = 73;
        assert_eq!(p.latency(), Some(63));
    }
}
