//! The cycle-driven wormhole engine.
//!
//! Each simulated clock executes four phases, in an order chosen so that
//! a flit advances at most one pipeline stage per cycle (additionally
//! enforced by the per-flit `moved` stamp):
//!
//! 1. **Link** — for every physical channel direction a fair round-robin
//!    arbiter picks one output lane with a ready flit and a credit and
//!    moves the flit into the peer's input lane (`T_link`). Ejection
//!    channels (router → node) work the same way but sink into the node,
//!    and injection channels (node → router) drain the node-side lanes.
//! 2. **Crossbar** — every input lane whose head-of-line packet owns a
//!    crossbar path forwards one flit to its output lane if space allows
//!    (`T_crossbar`); an acknowledgment immediately restores one credit
//!    upstream. A tail flit tears the path down.
//! 3. **Routing** — at most one header per router is routed per cycle
//!    (`T_routing`): the routing function produces the admissible lanes
//!    and the selection policy picks the least-loaded link (most free
//!    virtual channels, fair random tie-break), falling back to the
//!    escape class only when no preferred lane is allocatable.
//! 4. **Injection** — each node runs its packet-creation process, starts
//!    at most one packet at a time into the single injection channel
//!    (source throttling) and streams one flit per cycle into the chosen
//!    injection lane.
//!
//! # Performance architecture: active sets and lane masks
//!
//! The engine's per-cycle cost is proportional to *active* work, not to
//! network size. Three mechanisms cooperate:
//!
//! * **Per-phase worklists** ([`crate::active::ActiveSet`]): the link,
//!   crossbar and routing phases each walk a bitset of only the routers
//!   that can possibly act this cycle. A router enters a worklist when
//!   the enabling event occurs (a flit buffered on an output lane, an
//!   input lane with an assigned crossbar path, an unrouted header) and
//!   leaves when it drains, so idle routers cost exactly zero. The
//!   injection-link loop keeps the analogous worklist over nodes.
//! * **Occupancy lane masks**: alongside the pre-existing `pending`
//!   (unrouted header at the front) and `out_bound` (crossbar path ends
//!   here) masks, every router tracks `in_occ`/`out_occ` (non-empty
//!   input/output lanes) and `routed` (lanes with an assigned output).
//!   Phase inner loops walk set bits with `trailing_zeros` instead of
//!   inspecting every `port × vc` lane.
//! * **Monomorphized routing dispatch**: [`Engine`] is generic over the
//!   routing algorithm (defaulting to `dyn RoutingAlgorithm`, so the
//!   boxed API keeps working); constructing it with a concrete algorithm
//!   type lets the per-header `route` call inline into the routing phase.
//!
//! The optimization is *observably equivalent* to the naive
//! scan-everything stepper by construction: both step functions drive
//! the identical per-router handlers, worklists iterate in ascending id
//! order (the same order as the naive scans — visit order is observable
//! through the shared selection-policy RNG), and the reference stepper
//! [`Engine::step_reference`] (kept for tests and benchmark baselines
//! behind the `reference-engine` feature) maintains the same masks so
//! the two can even be interleaved. `tests/engine_equivalence.rs` and
//! the unit tests below assert bit-identical outcomes.
//!
//! A watchdog panics if flits are in flight but nothing has moved for
//! a long time — with the deadlock-free routing functions of the
//! `routing` crate this must never fire, and the integration tests rely
//! on it as a runtime deadlock detector.

pub mod shard;

use crate::active::ActiveSet;
use crate::fault::{FaultModel, LinkFlip, NoFaults};
use crate::flit::{Flit, PacketRec, HEAD, NEVER, TAIL};
use crate::queue::FlitQueue;
use crate::wiring::{Peer, Wiring};
use routing::{CandidateSet, RoutingAlgorithm};
use std::collections::VecDeque;
use telemetry::{LinkKind, NullProbe, Probe};
use topology::{NodeId, RouterId};
use traffic::{InjectionProcess, Rng64, TrafficGen};

/// Sentinel for "no route assigned".
const NO_ROUTE: u32 = u32::MAX;

/// Sentinel route for a lane whose head-of-line packet was declared
/// undeliverable by the fault plane: the crossbar phase drains such a
/// lane (one flit per cycle, credits returned upstream) instead of
/// forwarding it. Distinct from `NO_ROUTE`, so the `routed` mask
/// invariant (`routed` bit ⟺ `in_route[l] != NO_ROUTE`) still holds.
const DROP_ROUTE: u32 = u32::MAX - 1;

/// How many consecutive all-idle cycles (with flits in flight) before
/// the watchdog declares a deadlock. Generous: a legal configuration can
/// stall for at most a few round-trips of credit propagation.
const WATCHDOG_CYCLES: u32 = 50_000;

struct RouterState {
    /// Input lanes, indexed `port * vcs + vc`.
    in_q: Vec<FlitQueue>,
    /// Assigned output lane per input lane (`NO_ROUTE` if none); applies
    /// to the packet currently at the head of the lane.
    in_route: Vec<u32>,
    /// Output lanes, same indexing.
    out_q: Vec<FlitQueue>,
    /// Credits: free buffers in the downstream input lane.
    out_credits: Vec<u8>,
    /// Bitmask: whether a crossbar path currently ends at each output
    /// lane (bit = lane index).
    out_bound: u64,
    /// Bitmask of output lanes on ports cabled to another router (used
    /// by the limited-injection throttle).
    network_lanes: u64,
    /// Bitmask of input lanes holding an unrouted header at the front.
    pending: u64,
    /// Bitmask of non-empty input lanes.
    in_occ: u64,
    /// Bitmask of non-empty output lanes.
    out_occ: u64,
    /// Bitmask of input lanes with an assigned route (mirror of
    /// `in_route[l] != NO_ROUTE`, kept as a mask so the crossbar phase
    /// can intersect it with `in_occ` and walk only live lanes).
    routed: u64,
    /// Round-robin cursor for the routing phase.
    route_rr: u32,
    /// Round-robin cursor per port for the link arbiter.
    link_rr: Vec<u8>,
}

struct NodeState {
    /// Unbounded source queue of created packets (ids).
    src_queue: VecDeque<u32>,
    /// Packet currently streaming into the network: (id, flits left).
    active: Option<(u32, u16)>,
    /// Injection lane of the active packet.
    active_lane: u8,
    /// Node-side injection lanes (one per VC).
    lanes: Vec<FlitQueue>,
    /// Credits towards the router's node-port input lanes.
    credits: Vec<u8>,
    /// Bitmask of non-empty node-side lanes.
    lane_occ: u64,
    /// Round-robin cursor for lane choice and the injection link arbiter.
    lane_rr: u8,
    /// Per-node random stream (destinations + injection process).
    rng: Rng64,
    /// Packet creation process.
    proc: Box<dyn InjectionProcess>,
}

/// Aggregate counters updated as the simulation runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total flits delivered to nodes.
    pub delivered_flits: u64,
    /// Total packets delivered (tail received).
    pub delivered_packets: u64,
    /// Total packets created at the sources.
    pub created_packets: u64,
    /// Flits currently inside the network (injection lanes included).
    pub in_flight_flits: u64,
    /// Total headers routed.
    pub routed_headers: u64,
    /// Routing attempts that found no available lane.
    pub routing_blocked: u64,
    /// Headers that had to take an escape (fallback) lane.
    pub escape_routings: u64,
    /// Total flit movements executed (link + crossbar + injection
    /// pushes) — the engine-throughput unit of the benchmark harness.
    pub flit_moves: u64,
    /// Packets abandoned in-network by the fault plane (every
    /// admissible direction permanently dead); their flits are drained.
    pub dropped_packets: u64,
    /// Flits drained from dropped packets.
    pub dropped_flits: u64,
    /// Packets abandoned at the source because their source or
    /// destination node is dead (never injected).
    pub unroutable_packets: u64,
}

/// The flit-level simulation engine for one network + routing algorithm.
///
/// Generic over the routing algorithm so concrete instantiations
/// (`Engine<'_, CubeDuato>` etc.) inline the per-header route call; the
/// default parameter keeps the historical boxed form `Engine<'_>`
/// (= `Engine<'_, dyn RoutingAlgorithm>`) source-compatible.
///
/// Also generic over the telemetry [`Probe`] observing the run. The
/// default [`NullProbe`] monomorphizes every observation call to an
/// inlined empty body, so an untraced engine compiles to the same hot
/// path as before the telemetry plane existed (pinned by
/// `bench_engine`); [`Engine::with_probe`] attaches a recording probe
/// such as `telemetry::FlightRecorder`.
///
/// Finally, generic over the [`FaultModel`] degrading the network. The
/// default [`NoFaults`] has `ACTIVE = false`, so every fault check
/// (each written `F::ACTIVE && …`) constant-folds away and the healthy
/// engine is the pre-fault-plane code, bit for bit;
/// [`Engine::with_probe_and_faults`] attaches a compiled
/// [`crate::fault::FaultState`].
pub struct Engine<
    'a,
    A: RoutingAlgorithm + ?Sized = dyn RoutingAlgorithm,
    P: Probe = NullProbe,
    F: FaultModel = NoFaults,
> {
    algo: &'a A,
    w: Wiring,
    vcs: usize,
    lanes_per_router: usize,
    flits_per_packet: u16,
    pattern: TrafficGen,
    routers: Vec<RouterState>,
    nodes: Vec<NodeState>,
    packets: Vec<PacketRec>,
    cycle: u32,
    idle_cycles: u32,
    moves_this_cycle: u64,
    counters: Counters,
    cand: CandidateSet,
    rng: Rng64,
    /// Limited injection (source throttling, after Petrini & Vanneschi's
    /// Supercomputing'96 scheme referenced by the paper): a node may
    /// start a new packet only while fewer than this many network output
    /// lanes of its local router are allocated to packets. `None`
    /// disables the throttle.
    injection_limit: Option<u32>,
    /// Request-reply mode: every delivered request causes the receiving
    /// node to enqueue a same-size reply to the sender (models the
    /// shared-memory read traffic of the machines in the paper's
    /// introduction). Replies are not answered again.
    request_reply: bool,
    /// Flits transmitted per directed channel (`router * ports + port`),
    /// for spatial congestion analysis. Ejection channels included;
    /// injection channels are tracked per node separately.
    link_flits: Vec<u64>,
    /// Routers with at least one non-empty output lane (`out_occ != 0`).
    link_work: ActiveSet,
    /// Routers with a forwardable input lane (`in_occ & routed != 0`).
    xbar_work: ActiveSet,
    /// Routers with an unrouted header (`pending != 0`).
    route_work: ActiveSet,
    /// Nodes with a non-empty injection lane (`lane_occ != 0`).
    inject_work: ActiveSet,
    /// Requests delivered this cycle awaiting reply creation
    /// (request-reply mode); drained at the end of the link phase.
    reply_buf: Vec<u32>,
    /// Telemetry observer ([`NullProbe`] = zero-cost no-op).
    probe: P,
    /// Fault model ([`NoFaults`] = zero-cost no-op).
    faults: F,
    /// Scratch buffer for per-cycle fault transitions (reused).
    fault_flips: Vec<LinkFlip>,
    /// Stall captured by the watchdog when `report_stall` is set
    /// (instead of panicking).
    stall: Option<Stall>,
    /// Report watchdog trips through [`Engine::stall`] rather than
    /// panicking (set by [`Engine::run_checked`]).
    report_stall: bool,
}

/// A watchdog trip, reported by [`Engine::run_checked`]: flits were in
/// flight but nothing moved for the watchdog horizon — the network is
/// deadlocked (or a fault configuration wedged it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stall {
    /// Cycle at which the watchdog gave up.
    pub cycle: u32,
    /// Flits stuck in the network.
    pub in_flight_flits: u64,
    /// Consecutive cycles without a single flit movement.
    pub idle_cycles: u32,
}

impl std::fmt::Display for Stall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadlock watchdog: {} flits in flight, nothing moved for {} cycles (cycle {})",
            self.in_flight_flits, self.idle_cycles, self.cycle
        )
    }
}

impl<'a, A: RoutingAlgorithm + ?Sized> Engine<'a, A> {
    /// Build an engine.
    ///
    /// * `buf` — lane depth in flits (4 in the paper).
    /// * `flits_per_packet` — 16 (cube) or 32 (tree) for 64-byte packets.
    /// * `pattern` — destination pattern bound to this network size.
    /// * `make_proc` — factory for the per-node packet creation process.
    /// * `seed` — master seed; every node derives an independent stream.
    pub fn new(
        algo: &'a A,
        buf: usize,
        flits_per_packet: u16,
        pattern: TrafficGen,
        make_proc: &dyn Fn(usize) -> Box<dyn InjectionProcess>,
        seed: u64,
    ) -> Self {
        Engine::with_probe(
            algo,
            buf,
            flits_per_packet,
            pattern,
            make_proc,
            seed,
            NullProbe,
        )
    }
}

impl<'a, A: RoutingAlgorithm + ?Sized, P: Probe> Engine<'a, A, P> {
    /// Build an engine observed by `probe` (see [`Engine::new`] for the
    /// other parameters). The engine is monomorphized over the probe
    /// type; retrieve a recording probe afterwards with
    /// [`Engine::into_probe`].
    pub fn with_probe(
        algo: &'a A,
        buf: usize,
        flits_per_packet: u16,
        pattern: TrafficGen,
        make_proc: &dyn Fn(usize) -> Box<dyn InjectionProcess>,
        seed: u64,
        probe: P,
    ) -> Self {
        Engine::with_probe_and_faults(
            algo,
            buf,
            flits_per_packet,
            pattern,
            make_proc,
            seed,
            probe,
            NoFaults,
        )
    }
}

impl<'a, A: RoutingAlgorithm + ?Sized, P: Probe, F: FaultModel> Engine<'a, A, P, F> {
    /// Build an engine observed by `probe` and degraded by `faults`
    /// (see [`Engine::new`] for the other parameters). Pass a compiled
    /// [`crate::fault::FaultState`]; the [`NoFaults`] default of the
    /// other constructors compiles every fault check out.
    #[allow(clippy::too_many_arguments)]
    pub fn with_probe_and_faults(
        algo: &'a A,
        buf: usize,
        flits_per_packet: u16,
        pattern: TrafficGen,
        make_proc: &dyn Fn(usize) -> Box<dyn InjectionProcess>,
        seed: u64,
        probe: P,
        faults: F,
    ) -> Self {
        let w = Wiring::from_topology(algo.topology());
        let vcs = algo.num_vcs();
        let lanes = w.ports * vcs;
        assert!(
            lanes <= 64,
            "pending bitmask supports at most 64 lanes per router"
        );
        assert_eq!(
            pattern.num_nodes(),
            w.num_nodes,
            "pattern bound to wrong network size"
        );
        assert!(flits_per_packet >= 1);

        let master = Rng64::seed_from(seed);
        let mut routers: Vec<RouterState> = (0..w.num_routers)
            .map(|_| RouterState {
                in_q: (0..lanes).map(|_| FlitQueue::new(buf)).collect(),
                in_route: vec![NO_ROUTE; lanes],
                out_q: (0..lanes).map(|_| FlitQueue::new(buf)).collect(),
                out_credits: vec![buf as u8; lanes],
                out_bound: 0,
                network_lanes: 0,
                pending: 0,
                in_occ: 0,
                out_occ: 0,
                routed: 0,
                route_rr: 0,
                link_rr: vec![0; w.ports],
            })
            .collect();
        for (r, rs) in routers.iter_mut().enumerate() {
            for p in 0..w.ports {
                if matches!(w.peer(r, p), Peer::Router { .. }) {
                    rs.network_lanes |= ((1u64 << vcs) - 1) << (p * vcs);
                }
            }
        }
        let nodes = (0..w.num_nodes)
            .map(|n| NodeState {
                src_queue: VecDeque::new(),
                active: None,
                active_lane: 0,
                lanes: (0..vcs).map(|_| FlitQueue::new(buf)).collect(),
                credits: vec![buf as u8; vcs],
                lane_occ: 0,
                lane_rr: 0,
                rng: master.derive(n as u64 + 1),
                proc: make_proc(n),
            })
            .collect();

        let num_channels = w.num_routers * w.ports;
        let num_routers = w.num_routers;
        let num_nodes = w.num_nodes;
        Engine {
            algo,
            w,
            vcs,
            lanes_per_router: lanes,
            flits_per_packet,
            pattern,
            routers,
            nodes,
            packets: Vec::new(),
            cycle: 0,
            idle_cycles: 0,
            moves_this_cycle: 0,
            counters: Counters::default(),
            cand: CandidateSet::default(),
            rng: master.derive(0),
            injection_limit: None,
            request_reply: false,
            link_flits: vec![0; num_channels],
            link_work: ActiveSet::new(num_routers),
            xbar_work: ActiveSet::new(num_routers),
            route_work: ActiveSet::new(num_routers),
            inject_work: ActiveSet::new(num_nodes),
            reply_buf: Vec::new(),
            probe,
            faults,
            fault_flips: Vec::new(),
            stall: None,
            report_stall: false,
        }
    }

    /// Shared access to the attached probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consume the engine, returning the attached probe (e.g. a
    /// `telemetry::FlightRecorder` holding the recording).
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Enable limited injection: a node may start streaming a new packet
    /// only while fewer than `max_busy_lanes` of its local router's
    /// network output lanes are allocated. This is the stabilization
    /// mechanism of the paper's reference \[28\] ("Minimal Adaptive
    /// Routing with Limited Injection on Toroidal k-ary n-cubes") that
    /// keeps the accepted bandwidth flat above saturation.
    pub fn set_injection_limit(&mut self, max_busy_lanes: Option<u32>) {
        self.injection_limit = max_busy_lanes;
    }

    /// Enable request-reply mode: each delivered request makes the
    /// receiving node generate one reply packet of the same size back
    /// to the requester (through its normal source queue and injection
    /// channel). Replies are terminal — they do not trigger further
    /// messages — so the message-dependency chain is bounded and,
    /// because nodes sink arriving flits unconditionally, no
    /// protocol-level deadlock can arise.
    pub fn set_request_reply(&mut self, enabled: bool) {
        self.request_reply = enabled;
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u32 {
        self.cycle
    }

    /// Aggregate counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// The packet table (records for every created packet).
    pub fn packets(&self) -> &[PacketRec] {
        &self.packets
    }

    /// Total packets waiting in all source queues right now.
    pub fn source_queue_len(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.src_queue.len() + usize::from(n.active.is_some()))
            .sum()
    }

    /// Advance the simulation by `cycles` clocks.
    pub fn run(&mut self, cycles: u32) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Advance by `cycles` clocks with the watchdog reporting instead
    /// of panicking: a run that stops making progress (flits in flight,
    /// nothing moving for the watchdog horizon) returns the [`Stall`]
    /// as a structured error rather than aborting the process.
    pub fn run_checked(&mut self, cycles: u32) -> Result<(), Stall> {
        self.report_stall = true;
        for _ in 0..cycles {
            self.step();
            if let Some(s) = self.stall {
                return Err(s);
            }
        }
        Ok(())
    }

    /// The stall captured by the watchdog under [`Engine::run_checked`],
    /// if any.
    pub fn stall(&self) -> Option<Stall> {
        self.stall
    }

    /// Apply this cycle's transient fault transitions and report them
    /// to the probe. Called only when `F::ACTIVE`.
    fn begin_fault_cycle(&mut self) {
        let mut flips = std::mem::take(&mut self.fault_flips);
        self.faults.begin_cycle(self.cycle, &mut flips);
        for fl in flips.drain(..) {
            self.probe
                .fault_transition(self.cycle, fl.router, fl.port, fl.down);
        }
        self.fault_flips = flips; // return the allocation
    }

    /// Execute one clock cycle (active-set stepper: only routers and
    /// nodes on the phase worklists are touched).
    pub fn step(&mut self) {
        self.moves_this_cycle = 0;
        if F::ACTIVE {
            self.begin_fault_cycle();
        }

        // Phase 1: link. The worklists shrink only while their own
        // phase runs (a drained router is dropped right after its
        // visit), so word-snapshot iteration is safe; see `active.rs`.
        for wi in 0..self.link_work.num_words() {
            let mut bits = self.link_work.word(wi);
            while bits != 0 {
                let r = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.link_router::<true>(r);
                if self.routers[r].out_occ == 0 {
                    self.link_work.remove(r);
                }
            }
        }
        for wi in 0..self.inject_work.num_words() {
            let mut bits = self.inject_work.word(wi);
            while bits != 0 {
                let n = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.link_node::<true>(n);
                if self.nodes[n].lane_occ == 0 {
                    self.inject_work.remove(n);
                }
            }
        }
        self.spawn_replies();

        // Phase 2: crossbar.
        for wi in 0..self.xbar_work.num_words() {
            let mut bits = self.xbar_work.word(wi);
            while bits != 0 {
                let r = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.xbar_router::<true>(r);
                let rs = &self.routers[r];
                if rs.in_occ & rs.routed == 0 {
                    self.xbar_work.remove(r);
                }
            }
        }

        // Phase 3: routing.
        for wi in 0..self.route_work.num_words() {
            let mut bits = self.route_work.word(wi);
            while bits != 0 {
                let r = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.route_router::<true>(r);
                if self.routers[r].pending == 0 {
                    self.route_work.remove(r);
                }
            }
        }

        // Phase 4: injection (inherently O(nodes): every creation
        // process ticks its RNG every cycle).
        self.phase_injection();

        self.end_cycle();
    }

    /// Execute one clock cycle with the naive scan-everything stepper:
    /// every router and node is visited in every phase and every port
    /// and lane is inspected through its queues directly, exactly like
    /// the pre-optimization engine (the handlers take `MASKED = false`,
    /// compiling out every mask-based early-out). The mutations are the
    /// same per-lane bodies as [`Engine::step`] — masks and worklists
    /// are still maintained — so the two steppers are bit-identical and
    /// may even be interleaved. Kept as the equivalence oracle and the
    /// benchmark baseline.
    #[cfg(any(test, feature = "reference-engine"))]
    pub fn step_reference(&mut self) {
        self.moves_this_cycle = 0;
        if F::ACTIVE {
            self.begin_fault_cycle();
        }

        // Phase 1: link.
        for r in 0..self.w.num_routers {
            self.link_router::<false>(r);
            if self.routers[r].out_occ == 0 {
                self.link_work.remove(r);
            }
        }
        for n in 0..self.w.num_nodes {
            self.link_node::<false>(n);
            if self.nodes[n].lane_occ == 0 {
                self.inject_work.remove(n);
            }
        }
        self.spawn_replies();

        // Phase 2: crossbar.
        for r in 0..self.w.num_routers {
            self.xbar_router::<false>(r);
            let rs = &self.routers[r];
            if rs.in_occ & rs.routed == 0 {
                self.xbar_work.remove(r);
            }
        }

        // Phase 3: routing.
        for r in 0..self.w.num_routers {
            if self.routers[r].pending == 0 {
                continue;
            }
            self.route_router::<false>(r);
            if self.routers[r].pending == 0 {
                self.route_work.remove(r);
            }
        }

        // Phase 4: injection.
        self.phase_injection();

        self.end_cycle();
    }

    /// Advance the simulation by `cycles` clocks using
    /// [`Engine::step_reference`].
    #[cfg(any(test, feature = "reference-engine"))]
    pub fn run_reference(&mut self, cycles: u32) {
        for _ in 0..cycles {
            self.step_reference();
        }
    }

    /// Watchdog bookkeeping shared by both steppers.
    fn end_cycle(&mut self) {
        self.probe.cycle_end(self.cycle);
        self.counters.flit_moves += self.moves_this_cycle;
        if self.moves_this_cycle == 0 && self.counters.in_flight_flits > 0 {
            self.idle_cycles += 1;
            if self.idle_cycles >= WATCHDOG_CYCLES {
                if self.report_stall {
                    // Structured liveness failure for run_checked
                    // callers; reset the horizon so a caller that keeps
                    // stepping anyway is not re-tripped every cycle.
                    self.stall = Some(Stall {
                        cycle: self.cycle,
                        in_flight_flits: self.counters.in_flight_flits,
                        idle_cycles: self.idle_cycles,
                    });
                    self.idle_cycles = 0;
                } else {
                    panic!(
                        "deadlock watchdog: {} flits in flight, nothing moved for {} cycles \
                         (cycle {}, algorithm {})",
                        self.counters.in_flight_flits,
                        self.idle_cycles,
                        self.cycle,
                        self.algo.name()
                    );
                }
            }
        } else {
            self.idle_cycles = 0;
        }
        self.cycle += 1;
    }

    /// Link phase, one router: move at most one flit per physical
    /// channel direction (router->router and router->node ports).
    ///
    /// `MASKED` selects the scan strategy only — `true` skips empty
    /// directions/lanes via `out_occ`, `false` inspects every lane's
    /// queue directly (the pre-optimization behaviour) — the mutations
    /// are identical either way.
    fn link_router<const MASKED: bool>(&mut self, r: usize) {
        let cycle = self.cycle;
        let vcs = self.vcs;
        let ports = self.w.ports;
        let port_lanes = (1u64 << vcs) - 1;
        for p in 0..ports {
            if F::ACTIVE && self.faults.channel_down(r, p) {
                continue; // channel down: nothing crosses this cycle
            }
            if MASKED && self.routers[r].out_occ & (port_lanes << (p * vcs)) == 0 {
                continue; // nothing buffered towards this direction
            }
            match self.w.peer(r, p) {
                Peer::None => {
                    // Reachable only in the unmasked full scan: flits
                    // are never routed towards an uncabled port.
                    debug_assert!(!MASKED, "flit buffered on an uncabled port");
                }
                Peer::Node(node) => {
                    // Ejection: the node always sinks (no credits).
                    let rs = &mut self.routers[r];
                    let start = rs.link_rr[p] as usize;
                    for i in 0..vcs {
                        let v = (start + i) % vcs;
                        let l = p * vcs + v;
                        if MASKED && rs.out_occ & (1u64 << l) == 0 {
                            continue;
                        }
                        let ready = matches!(rs.out_q[l].front(),
                            Some(f) if f.moved < cycle);
                        if ready {
                            let f = rs.out_q[l].pop().unwrap();
                            if rs.out_q[l].is_empty() {
                                rs.out_occ &= !(1u64 << l);
                            }
                            rs.link_rr[p] = ((v + 1) % vcs) as u8;
                            self.link_flits[r * ports + p] += 1;
                            self.counters.delivered_flits += 1;
                            self.counters.in_flight_flits -= 1;
                            self.moves_this_cycle += 1;
                            self.probe.link_flit(
                                cycle,
                                f.packet,
                                r as u32,
                                p as u16,
                                v as u8,
                                LinkKind::Ejection,
                            );
                            if f.is_tail() {
                                let rec = &mut self.packets[f.packet as usize];
                                debug_assert_eq!(rec.delivered, NEVER);
                                rec.delivered = cycle;
                                let reply = self.request_reply && !rec.is_reply();
                                self.counters.delivered_packets += 1;
                                if reply {
                                    self.reply_buf.push(f.packet);
                                }
                                self.probe.packet_delivered(cycle, f.packet, node);
                            }
                            break;
                        }
                    }
                }
                Peer::Router {
                    router: r2,
                    port: p2,
                } => {
                    let (r2, p2) = (r2 as usize, p2 as usize);
                    debug_assert_ne!(r, r2);
                    let [rs, dst] = self
                        .routers
                        .get_disjoint_mut([r, r2])
                        .expect("distinct routers");
                    let start = rs.link_rr[p] as usize;
                    for i in 0..vcs {
                        let v = (start + i) % vcs;
                        let l = p * vcs + v;
                        if MASKED && rs.out_occ & (1u64 << l) == 0 {
                            continue;
                        }
                        let ready = rs.out_credits[l] > 0
                            && matches!(rs.out_q[l].front(), Some(f) if f.moved < cycle);
                        if ready {
                            let mut f = rs.out_q[l].pop().unwrap();
                            if rs.out_q[l].is_empty() {
                                rs.out_occ &= !(1u64 << l);
                            }
                            rs.out_credits[l] -= 1;
                            rs.link_rr[p] = ((v + 1) % vcs) as u8;
                            self.link_flits[r * ports + p] += 1;
                            f.moved = cycle;
                            let dl = p2 * vcs + v;
                            let was_empty = dst.in_q[dl].is_empty();
                            dst.in_q[dl].push(f);
                            dst.in_occ |= 1u64 << dl;
                            if was_empty && f.is_head() {
                                debug_assert_eq!(dst.in_route[dl], NO_ROUTE);
                                dst.pending |= 1 << dl;
                                self.route_work.insert(r2);
                            }
                            if dst.routed & (1u64 << dl) != 0 {
                                // Body/tail arriving on a lane whose head
                                // already holds a crossbar path.
                                self.xbar_work.insert(r2);
                            }
                            self.moves_this_cycle += 1;
                            self.probe.link_flit(
                                cycle,
                                f.packet,
                                r as u32,
                                p as u16,
                                v as u8,
                                LinkKind::Network,
                            );
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Link phase, one node-side injection channel (node -> router).
    /// `MASKED` as on [`Engine::link_router`].
    fn link_node<const MASKED: bool>(&mut self, n: usize) {
        if F::ACTIVE && self.faults.node_dead(n) {
            return; // dead node: its injection channel carries nothing
        }
        let cycle = self.cycle;
        let vcs = self.vcs;
        let (r, p) = self.w.node_ports[n];
        let (r, p) = (r as usize, p as usize);
        let ns = &mut self.nodes[n];
        let rs = &mut self.routers[r];
        let start = ns.lane_rr as usize;
        for i in 0..vcs {
            let v = (start + i) % vcs;
            if MASKED && ns.lane_occ & (1u64 << v) == 0 {
                continue;
            }
            let ready =
                ns.credits[v] > 0 && matches!(ns.lanes[v].front(), Some(f) if f.moved < cycle);
            if ready {
                let mut f = ns.lanes[v].pop().unwrap();
                if ns.lanes[v].is_empty() {
                    ns.lane_occ &= !(1u64 << v);
                }
                ns.credits[v] -= 1;
                ns.lane_rr = ((v + 1) % vcs) as u8;
                f.moved = cycle;
                let dl = p * vcs + v;
                let was_empty = rs.in_q[dl].is_empty();
                rs.in_q[dl].push(f);
                rs.in_occ |= 1u64 << dl;
                if was_empty && f.is_head() {
                    rs.pending |= 1 << dl;
                    self.route_work.insert(r);
                }
                if rs.routed & (1u64 << dl) != 0 {
                    self.xbar_work.insert(r);
                }
                self.moves_this_cycle += 1;
                self.probe
                    .injection_flit(cycle, f.packet, n as u32, v as u8);
                break;
            }
        }
    }

    /// Request-reply mode: delivered requests spawn replies at the
    /// receiving node (entering its normal source queue, so they share
    /// the single injection channel with that node's own traffic).
    fn spawn_replies(&mut self) {
        if self.reply_buf.is_empty() {
            return;
        }
        let cycle = self.cycle;
        let mut buf = std::mem::take(&mut self.reply_buf);
        for req in buf.drain(..) {
            let rec = self.packets[req as usize];
            let id = self.packets.len() as u32;
            self.packets.push(PacketRec {
                src: rec.dest,
                dest: rec.src,
                created: cycle,
                injected: NEVER,
                delivered: NEVER,
                flits: rec.flits,
                hops: 0,
                in_reply_to: req,
            });
            self.nodes[rec.dest as usize].src_queue.push_back(id);
            self.counters.created_packets += 1;
            self.probe
                .packet_created(cycle, id, rec.dest, rec.src, rec.flits);
        }
        self.reply_buf = buf; // return the allocation
    }

    /// Crossbar phase, one router: forward one flit on every input lane
    /// owning a crossbar path, returning credits upstream.
    /// `MASKED` as on [`Engine::link_router`]: `true` walks only the
    /// set bits of `in_occ & routed`, `false` scans every lane checking
    /// `in_route` directly.
    fn xbar_router<const MASKED: bool>(&mut self, r: usize) {
        if MASKED {
            // Snapshot: lanes of this router cannot become forwardable
            // during the phase (routes are only assigned in the routing
            // phase, arrivals only in the link phase).
            let mut mask = {
                let rs = &self.routers[r];
                rs.in_occ & rs.routed
            };
            while mask != 0 {
                let l = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.xbar_lane(r, l);
            }
        } else {
            for l in 0..self.lanes_per_router {
                if self.routers[r].in_route[l] == NO_ROUTE {
                    continue;
                }
                self.xbar_lane(r, l);
            }
        }
    }

    /// One crossbar lane holding a path: forward a flit if the head is
    /// movable and the output lane has room.
    #[inline]
    fn xbar_lane(&mut self, r: usize, l: usize) {
        let cycle = self.cycle;
        let vcs = self.vcs;
        if F::ACTIVE && self.routers[r].in_route[l] == DROP_ROUTE {
            self.drain_lane(r, l);
            return;
        }
        {
            let rs = &mut self.routers[r];
            let route = rs.in_route[l];
            debug_assert_ne!(route, NO_ROUTE);
            let movable = matches!(rs.in_q[l].front(), Some(f) if f.moved < cycle)
                && !rs.out_q[route as usize].is_full();
            if !movable {
                return;
            }
            let mut f = rs.in_q[l].pop().unwrap();
            if rs.in_q[l].is_empty() {
                rs.in_occ &= !(1u64 << l);
            }
            f.moved = cycle;
            rs.out_q[route as usize].push(f);
            rs.out_occ |= 1u64 << route;
            self.link_work.insert(r);
            self.moves_this_cycle += 1;
            if f.is_tail() {
                rs.in_route[l] = NO_ROUTE;
                rs.routed &= !(1u64 << l);
                rs.out_bound &= !(1u64 << route);
                if matches!(rs.in_q[l].front(), Some(nf) if nf.is_head()) {
                    rs.pending |= 1 << l;
                    self.route_work.insert(r);
                }
            }
            // Acknowledgment: one buffer freed in this input lane.
            let (p, v) = (l / vcs, l % vcs);
            match self.w.peer(r, p) {
                Peer::Router {
                    router: r2,
                    port: p2,
                } => {
                    let up = &mut self.routers[r2 as usize];
                    let ul = p2 as usize * vcs + v;
                    up.out_credits[ul] += 1;
                    debug_assert!(up.out_credits[ul] as usize <= up.out_q[ul].capacity());
                }
                Peer::Node(nn) => {
                    let node = &mut self.nodes[nn as usize];
                    node.credits[v] += 1;
                    debug_assert!(node.credits[v] as usize <= node.lanes[v].capacity());
                }
                Peer::None => unreachable!("flit arrived through an uncabled port"),
            }
        }
    }

    /// Crossbar-phase handler for a lane whose head-of-line packet was
    /// dropped by the fault plane (`in_route[l] == DROP_ROUTE`): sink
    /// one flit per cycle instead of forwarding it, returning the
    /// freed buffer's credit upstream exactly as a real forward would.
    /// The drain counts as movement, so a draining network never trips
    /// the watchdog; when the tail is sunk the lane is released and the
    /// next header (if any) re-enters the routing phase.
    fn drain_lane(&mut self, r: usize, l: usize) {
        let cycle = self.cycle;
        let vcs = self.vcs;
        let rs = &mut self.routers[r];
        let movable = matches!(rs.in_q[l].front(), Some(f) if f.moved < cycle);
        if !movable {
            return;
        }
        let f = rs.in_q[l].pop().unwrap();
        if rs.in_q[l].is_empty() {
            rs.in_occ &= !(1u64 << l);
        }
        self.counters.in_flight_flits -= 1;
        self.counters.dropped_flits += 1;
        self.moves_this_cycle += 1;
        if f.is_tail() {
            rs.in_route[l] = NO_ROUTE;
            rs.routed &= !(1u64 << l);
            if matches!(rs.in_q[l].front(), Some(nf) if nf.is_head()) {
                rs.pending |= 1 << l;
                self.route_work.insert(r);
            }
        }
        // Acknowledgment upstream: the buffer slot is free again.
        let (p, v) = (l / vcs, l % vcs);
        match self.w.peer(r, p) {
            Peer::Router {
                router: r2,
                port: p2,
            } => {
                let up = &mut self.routers[r2 as usize];
                let ul = p2 as usize * vcs + v;
                up.out_credits[ul] += 1;
                debug_assert!(up.out_credits[ul] as usize <= up.out_q[ul].capacity());
            }
            Peer::Node(nn) => {
                let node = &mut self.nodes[nn as usize];
                node.credits[v] += 1;
                debug_assert!(node.credits[v] as usize <= node.lanes[v].capacity());
            }
            Peer::None => unreachable!("flit arrived through an uncabled port"),
        }
    }

    /// Routing phase, one router: route at most one header.
    /// `MASKED` as on [`Engine::link_router`]: `true` walks the set
    /// bits of `pending` in round-robin order (bits at and above the
    /// cursor, then the wrap-around), `false` rotates through every
    /// lane index — both visit the same lanes in the same order.
    fn route_router<const MASKED: bool>(&mut self, r: usize) {
        let lanes = self.lanes_per_router;
        let pending = self.routers[r].pending;
        debug_assert_ne!(
            pending, 0,
            "router on routing worklist without pending header"
        );
        let start = self.routers[r].route_rr as usize;
        debug_assert!(start < lanes);
        if MASKED {
            let below_start = (1u64 << start) - 1;
            'scan: for part in [pending & !below_start, pending & below_start] {
                let mut bits = part;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if self.route_lane(r, l) {
                        break 'scan;
                    }
                }
            }
        } else {
            for i in 0..lanes {
                let l = (start + i) % lanes;
                if pending & (1u64 << l) == 0 {
                    continue;
                }
                if self.route_lane(r, l) {
                    break;
                }
            }
        }
    }

    /// One pending lane: attempt the routing decision. Returns whether
    /// a decision (successful or blocked) was made — the router's one
    /// routing opportunity this cycle is then spent.
    #[inline]
    fn route_lane(&mut self, r: usize, l: usize) -> bool {
        let cycle = self.cycle;
        let lanes = self.lanes_per_router;
        let front = *self.routers[r].in_q[l]
            .front()
            .expect("pending lane must hold a flit");
        debug_assert!(front.is_head(), "pending lane front must be a header");
        if front.moved >= cycle {
            // Arrived this very cycle; visible to the routing
            // logic from the next cycle on.
            return false;
        }
        let dest = self.packets[front.packet as usize].dest;
        let in_port = l / self.vcs;
        // Take the candidate buffer out to appease the borrow
        // checker; it is returned below.
        let mut cand = std::mem::take(&mut self.cand);
        self.algo
            .route(RouterId(r as u32), Some(in_port), NodeId(dest), &mut cand);
        debug_assert!(!cand.is_empty(), "routing function returned no candidate");
        if F::ACTIVE && self.fault_unroutable(r, &cand) {
            // Degraded-mode dead end: drop the packet and hand the lane
            // to the crossbar phase for draining.
            self.cand = cand;
            self.start_drop(r, l, front.packet);
            self.routers[r].route_rr = ((l + 1) % lanes) as u32;
            return true;
        }
        // Degraded-mode reroute: at least one candidate direction is
        // down, so whatever lane wins below is a detour.
        let degraded = F::ACTIVE
            && cand
                .preferred
                .iter()
                .chain(cand.fallback.iter())
                .any(|c| self.faults.channel_down(r, c.port as usize));
        let choice = self.select_output(r, &cand);
        self.cand = cand;
        match choice {
            Some((ol, used_fallback)) => {
                let rs = &mut self.routers[r];
                rs.in_route[l] = ol as u32;
                rs.routed |= 1u64 << l;
                rs.out_bound |= 1u64 << ol;
                rs.pending &= !(1 << l);
                // The header is at the front and has not moved
                // this cycle, so the lane is forwardable.
                debug_assert_ne!(rs.in_occ & (1u64 << l), 0);
                self.xbar_work.insert(r);
                self.counters.routed_headers += 1;
                self.packets[front.packet as usize].hops += 1;
                if used_fallback {
                    self.counters.escape_routings += 1;
                }
                self.probe.header_routed(
                    cycle,
                    front.packet,
                    r as u32,
                    l as u16,
                    ol as u16,
                    used_fallback,
                );
                if degraded {
                    self.probe
                        .header_rerouted(cycle, front.packet, r as u32, ol as u16);
                }
            }
            None => {
                self.counters.routing_blocked += 1;
                self.probe
                    .routing_blocked(cycle, front.packet, r as u32, l as u16);
            }
        }
        // One routing decision per router per cycle, successful
        // or not; advance the cursor for fairness either way.
        self.routers[r].route_rr = ((l + 1) % lanes) as u32;
        true
    }

    /// Fault-plane dead-end detection at routing time: whether this
    /// header can never be routed to completion from `r`.
    ///
    /// * With a non-empty fallback (escape) class — the algorithms
    ///   whose deadlock freedom rests on the escape network — the
    ///   packet is unroutable as soon as **every escape direction is
    ///   permanently dead**: routing on only adaptive lanes would void
    ///   the deadlock-freedom argument, so escape-channel loss is
    ///   reported as a structured drop rather than risked as a hang.
    /// * Without a fallback class (fat-tree ascent/descent, where every
    ///   candidate class is safe), the packet is unroutable only when
    ///   every candidate direction is dead.
    ///
    /// Transiently-down channels never make a packet unroutable; they
    /// only block it until the repair.
    fn fault_unroutable(&self, r: usize, cand: &CandidateSet) -> bool {
        let dead = |c: &routing::Candidate| self.faults.channel_dead(r, c.port as usize);
        if !cand.fallback.is_empty() {
            cand.fallback.iter().all(dead)
        } else {
            cand.preferred.iter().all(dead)
        }
    }

    /// Declare the head-of-line packet of input lane `l` dropped: mark
    /// the lane with `DROP_ROUTE` so the crossbar phase drains it, and
    /// count the packet.
    fn start_drop(&mut self, r: usize, l: usize, packet: u32) {
        let rs = &mut self.routers[r];
        rs.in_route[l] = DROP_ROUTE;
        rs.routed |= 1u64 << l;
        rs.pending &= !(1 << l);
        self.xbar_work.insert(r);
        self.counters.dropped_packets += 1;
        self.probe.packet_dropped(self.cycle, packet, r as u32);
    }

    /// The selection policy: among admissible preferred lanes pick the
    /// port with the most free virtual channels (fair random tie-break),
    /// then the lane with the most headroom on that port; fall back to
    /// the first admissible escape lane. Returns the chosen output-lane
    /// index and whether the fallback class was used. Lanes on
    /// currently-down channels (fault plane) are never admissible.
    fn select_output(&mut self, r: usize, cand: &CandidateSet) -> Option<(usize, bool)> {
        let rs = &self.routers[r];
        let vcs = self.vcs;
        let faults = &self.faults;
        let admissible = |lane: usize| {
            rs.out_bound & (1u64 << lane) == 0
                && !rs.out_q[lane].is_full()
                && !(F::ACTIVE && faults.channel_down(r, lane / vcs))
        };

        // Pass 1: best port among preferred candidates.
        let mut best_port: Option<usize> = None;
        let mut best_score = 0usize;
        let mut ties = 0u64;
        let mut last_port = usize::MAX;
        for c in &cand.preferred {
            let port = c.port as usize;
            if port == last_port {
                continue; // candidates are grouped by port
            }
            last_port = port;
            let has_admissible = (0..vcs).any(|v| {
                cand.preferred
                    .iter()
                    .any(|cc| cc.port as usize == port && cc.vc as usize == v)
                    && admissible(port * vcs + v)
            });
            if !has_admissible {
                continue;
            }
            let port_mask = ((1u64 << vcs) - 1) << (port * vcs);
            let free_vcs = vcs - (rs.out_bound & port_mask).count_ones() as usize;
            if best_port.is_none() || free_vcs > best_score {
                best_port = Some(port);
                best_score = free_vcs;
                ties = 1;
            } else if free_vcs == best_score {
                // Reservoir sampling for a fair tie-break.
                ties += 1;
                if self.rng.below(ties) == 0 {
                    best_port = Some(port);
                }
            }
        }

        if let Some(port) = best_port {
            // Pass 2: best lane on the chosen port.
            let mut best_lane = None;
            let mut best_headroom = 0usize;
            for c in &cand.preferred {
                if c.port as usize != port {
                    continue;
                }
                let lane = port * vcs + c.vc as usize;
                if !admissible(lane) {
                    continue;
                }
                let headroom = rs.out_credits[lane] as usize + rs.out_q[lane].free();
                if best_lane.is_none() || headroom > best_headroom {
                    best_lane = Some(lane);
                    best_headroom = headroom;
                }
            }
            return best_lane.map(|l| (l, false));
        }

        // Fallback (escape) class, in the order the algorithm listed.
        for c in &cand.fallback {
            let lane = c.port as usize * vcs + c.vc as usize;
            if admissible(lane) {
                return Some((lane, true));
            }
        }
        None
    }

    /// Phase 4: packet creation and injection streaming.
    fn phase_injection(&mut self) {
        let cycle = self.cycle;
        let flits = self.flits_per_packet;
        for n in 0..self.w.num_nodes {
            let ns = &mut self.nodes[n];

            // Packet creation.
            if ns.proc.tick(&mut ns.rng) {
                if let Some(dest) = self.pattern.dest(NodeId(n as u32), &mut ns.rng) {
                    let id = self.packets.len() as u32;
                    self.packets.push(PacketRec {
                        src: n as u32,
                        dest: dest.0,
                        created: cycle,
                        injected: NEVER,
                        delivered: NEVER,
                        flits,
                        hops: 0,
                        in_reply_to: u32::MAX,
                    });
                    ns.src_queue.push_back(id);
                    self.counters.created_packets += 1;
                    self.probe
                        .packet_created(cycle, id, n as u32, dest.0, flits);
                }
            }

            // Fault plane: a packet whose source or destination node is
            // dead can never be delivered — abandon it at the source
            // (counted unroutable, never injected). Dead endpoints are
            // known at cycle 0, so the source queue never wedges behind
            // a doomed head.
            if F::ACTIVE {
                while let Some(&pkt) = self.nodes[n].src_queue.front() {
                    let dest = self.packets[pkt as usize].dest as usize;
                    if !self.faults.node_dead(n) && !self.faults.node_dead(dest) {
                        break;
                    }
                    self.nodes[n].src_queue.pop_front();
                    self.counters.unroutable_packets += 1;
                    self.probe.packet_unroutable(cycle, pkt, n as u32);
                }
            }

            // Start the next packet (single injection channel: one
            // packet streams at a time; limited injection may hold it
            // back while the local router is congested).
            let throttled = match self.injection_limit {
                None => false,
                Some(limit) => {
                    let (r, _) = self.w.node_ports[n];
                    let rs = &self.routers[r as usize];
                    (rs.out_bound & rs.network_lanes).count_ones() >= limit
                }
            };
            let ns = &mut self.nodes[n];
            if ns.active.is_none() && !throttled {
                if let Some(&pkt) = ns.src_queue.front() {
                    // Choose the lane with the most headroom; rotate on
                    // ties for fairness.
                    let vcs = self.vcs;
                    let start = ns.lane_rr as usize;
                    let mut best: Option<(usize, usize)> = None;
                    for i in 0..vcs {
                        let v = (start + i) % vcs;
                        if ns.lanes[v].is_full() {
                            continue;
                        }
                        let headroom = ns.lanes[v].free() + ns.credits[v] as usize;
                        if best.is_none_or(|(_, h)| headroom > h) {
                            best = Some((v, headroom));
                        }
                    }
                    if let Some((v, _)) = best {
                        ns.src_queue.pop_front();
                        ns.active = Some((pkt, flits));
                        ns.active_lane = v as u8;
                    }
                }
            }

            // Stream one flit of the active packet.
            if let Some((pkt, remaining)) = ns.active {
                let lane = ns.active_lane as usize;
                if !ns.lanes[lane].is_full() {
                    let mut flags = 0u8;
                    if remaining == flits {
                        flags |= HEAD;
                        self.packets[pkt as usize].injected = cycle;
                        self.probe.packet_injected(cycle, pkt, n as u32, lane as u8);
                    }
                    if remaining == 1 {
                        flags |= TAIL;
                    }
                    ns.lanes[lane].push(Flit {
                        packet: pkt,
                        moved: cycle,
                        flags,
                    });
                    ns.lane_occ |= 1u64 << lane;
                    self.inject_work.insert(n);
                    self.counters.in_flight_flits += 1;
                    self.moves_this_cycle += 1;
                    if remaining == 1 {
                        ns.active = None;
                    } else {
                        ns.active = Some((pkt, remaining - 1));
                    }
                }
            }
        }
    }

    /// Flits transmitted so far on the directed channel leaving
    /// `router` through `port` (ejection channels included).
    pub fn link_flits(&self, router: usize, port: usize) -> u64 {
        self.link_flits[router * self.w.ports + port]
    }

    /// Total flits forwarded by each router onto its *network* ports
    /// (ejection excluded): a spatial congestion map.
    pub fn router_forwarded_flits(&self) -> Vec<u64> {
        (0..self.w.num_routers)
            .map(|r| {
                (0..self.w.ports)
                    .filter(|&p| matches!(self.w.peer(r, p), Peer::Router { .. }))
                    .map(|p| self.link_flits[r * self.w.ports + p])
                    .sum()
            })
            .collect()
    }

    /// Verify the credit-counting invariant: for every cabled channel,
    /// the upstream output lane's credits plus the downstream input
    /// lane's occupancy equal the buffer depth. Returns the first
    /// violation as `(router, port, vc, credits, occupancy)`.
    pub fn check_credit_invariant(&self) -> Result<(), (usize, usize, usize, u8, usize)> {
        for r in 0..self.w.num_routers {
            for p in 0..self.w.ports {
                if let Peer::Router {
                    router: r2,
                    port: p2,
                } = self.w.peer(r, p)
                {
                    for v in 0..self.vcs {
                        let l = p * self.vcs + v;
                        let credits = self.routers[r].out_credits[l];
                        let occ = self.routers[r2 as usize].in_q[p2 as usize * self.vcs + v].len();
                        let cap = self.routers[r].out_q[l].capacity();
                        if credits as usize + occ != cap {
                            return Err((r, p, v, credits, occ));
                        }
                    }
                }
            }
        }
        // Node-side injection channels.
        for n in 0..self.w.num_nodes {
            let (r, p) = self.w.node_ports[n];
            for v in 0..self.vcs {
                let credits = self.nodes[n].credits[v];
                let occ = self.routers[r as usize].in_q[p as usize * self.vcs + v].len();
                let cap = self.nodes[n].lanes[v].capacity();
                if credits as usize + occ != cap {
                    return Err((r as usize, p as usize, v, credits, occ));
                }
            }
        }
        Ok(())
    }

    /// Verify the worklist/occupancy-mask invariants the active-set
    /// stepper relies on: every occupancy mask mirrors its queues,
    /// `routed` mirrors `in_route`, and each worklist contains exactly
    /// the routers/nodes whose enabling condition holds. Returns the
    /// first violation as a description.
    pub fn check_worklist_invariant(&self) -> Result<(), String> {
        for (r, rs) in self.routers.iter().enumerate() {
            for l in 0..self.lanes_per_router {
                let bit = 1u64 << l;
                if (rs.in_occ & bit != 0) == rs.in_q[l].is_empty() {
                    return Err(format!("router {r} lane {l}: in_occ mask desynced"));
                }
                if (rs.out_occ & bit != 0) == rs.out_q[l].is_empty() {
                    return Err(format!("router {r} lane {l}: out_occ mask desynced"));
                }
                if (rs.routed & bit != 0) != (rs.in_route[l] != NO_ROUTE) {
                    return Err(format!("router {r} lane {l}: routed mask desynced"));
                }
            }
            if (rs.out_occ != 0) != self.link_work.contains(r) {
                return Err(format!("router {r}: link worklist desynced"));
            }
            if (rs.in_occ & rs.routed != 0) != self.xbar_work.contains(r) {
                return Err(format!("router {r}: crossbar worklist desynced"));
            }
            if (rs.pending != 0) != self.route_work.contains(r) {
                return Err(format!("router {r}: routing worklist desynced"));
            }
        }
        for (n, ns) in self.nodes.iter().enumerate() {
            for (v, lane) in ns.lanes.iter().enumerate() {
                if (ns.lane_occ & (1u64 << v) != 0) == lane.is_empty() {
                    return Err(format!("node {n} lane {v}: lane_occ mask desynced"));
                }
            }
            if (ns.lane_occ != 0) != self.inject_work.contains(n) {
                return Err(format!("node {n}: injection worklist desynced"));
            }
        }
        Ok(())
    }

    /// Count every flit currently buffered in any lane (for conservation
    /// checks in tests).
    pub fn buffered_flits(&self) -> u64 {
        let router_flits: usize = self
            .routers
            .iter()
            .map(|r| {
                r.in_q.iter().map(FlitQueue::len).sum::<usize>()
                    + r.out_q.iter().map(FlitQueue::len).sum::<usize>()
            })
            .sum();
        let node_flits: usize = self
            .nodes
            .iter()
            .map(|n| n.lanes.iter().map(FlitQueue::len).sum::<usize>())
            .sum();
        (router_flits + node_flits) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing::{CubeDeterministic, CubeDuato, TreeAdaptive};
    use topology::{KAryNCube, KAryNTree};
    use traffic::{Bernoulli, Pattern, Periodic};

    fn one_shot_proc(node: usize, at_node: usize) -> Box<dyn InjectionProcess> {
        // Fires once on the first cycle for `at_node`, never for others.
        struct Once(bool);
        impl InjectionProcess for Once {
            fn tick(&mut self, _rng: &mut Rng64) -> bool {
                std::mem::take(&mut self.0)
            }
            fn mean_rate(&self) -> f64 {
                0.0
            }
        }
        Box::new(Once(node == at_node))
    }

    #[test]
    fn single_packet_on_tiny_tree_has_exact_latency() {
        // 2-ary 1-tree: two nodes, one switch. Path: node -> switch ->
        // node. Head pipeline: inject (c0), link (c0+1), route (c0+2),
        // crossbar (c0+3), ejection link (c0+4). Tail of an F-flit
        // packet lands F-1 cycles later: latency = F + 3.
        let tree = KAryNTree::new(2, 1);
        let algo = TreeAdaptive::new(tree, 1);
        let flits = 4u16;
        let pattern = TrafficGen::new(Pattern::Complement, 2);
        let mut eng = Engine::new(&algo, 4, flits, pattern, &|n| one_shot_proc(n, 0), 7);
        eng.run(40);
        assert_eq!(eng.counters().created_packets, 1);
        assert_eq!(eng.counters().delivered_packets, 1);
        let p = eng.packets()[0];
        assert_eq!(p.src, 0);
        assert_eq!(p.dest, 1);
        assert_eq!(p.injected, 0);
        assert_eq!(p.latency(), Some(flits as u32 + 3));
        assert_eq!(eng.counters().in_flight_flits, 0);
        assert_eq!(eng.buffered_flits(), 0);
    }

    #[test]
    fn single_packet_on_two_node_ring_has_exact_latency() {
        // 2-ary 1-cube: nodes 0 and 1, one link. Head: inject, node
        // link, route@r0, xbar, link, route@r1, xbar, ejection link =
        // latency 7 for the head, + F-1 for the tail.
        let cube = KAryNCube::new(2, 1);
        let algo = CubeDeterministic::new(cube);
        let flits = 4u16;
        let pattern = TrafficGen::new(Pattern::Complement, 2);
        let mut eng = Engine::new(&algo, 4, flits, pattern, &|n| one_shot_proc(n, 0), 7);
        eng.run(60);
        assert_eq!(eng.counters().delivered_packets, 1);
        assert_eq!(eng.packets()[0].latency(), Some(flits as u32 + 6));
    }

    #[test]
    fn flit_conservation_invariant() {
        let cube = KAryNCube::new(4, 2);
        let algo = CubeDuato::new(cube);
        let pattern = TrafficGen::new(Pattern::Uniform, 16);
        let mut eng = Engine::new(
            &algo,
            4,
            16,
            pattern,
            &|_| Box::new(Bernoulli::new(0.02)),
            99,
        );
        for _ in 0..500 {
            eng.step();
            assert_eq!(eng.buffered_flits(), eng.counters().in_flight_flits);
        }
        let c = eng.counters();
        assert!(c.created_packets > 0);
        // injected = delivered + in flight (in flits).
        let injected_flits: u64 = eng
            .packets()
            .iter()
            .filter(|p| p.injected != NEVER)
            .map(|p| {
                // flits already pushed into the network

                if p.delivered != NEVER {
                    p.flits as u64
                } else {
                    // partially streamed packets are harder to count
                    // exactly; bounded above by flits
                    0
                }
            })
            .sum();
        assert!(injected_flits <= c.delivered_flits + c.in_flight_flits);
    }

    #[test]
    fn all_packets_drain_after_sources_stop() {
        // Run uniform traffic on the small cube with both algorithms,
        // then stop injecting and let the network drain completely.
        for algo_box in [
            Box::new(CubeDeterministic::new(KAryNCube::new(4, 2))) as Box<dyn RoutingAlgorithm>,
            Box::new(CubeDuato::new(KAryNCube::new(4, 2))),
        ] {
            struct Window(u32);
            impl InjectionProcess for Window {
                fn tick(&mut self, rng: &mut Rng64) -> bool {
                    if self.0 > 0 {
                        self.0 -= 1;
                        rng.chance(0.05)
                    } else {
                        false
                    }
                }
                fn mean_rate(&self) -> f64 {
                    0.0
                }
            }
            let pattern = TrafficGen::new(Pattern::Uniform, 16);
            let mut eng = Engine::new(
                algo_box.as_ref(),
                4,
                16,
                pattern,
                &|_| Box::new(Window(300)),
                5,
            );
            eng.run(300 + 3000);
            let c = eng.counters();
            assert!(c.created_packets > 10, "{}", algo_box.name());
            assert_eq!(
                c.delivered_packets,
                c.created_packets,
                "{}",
                algo_box.name()
            );
            assert_eq!(c.in_flight_flits, 0, "{}", algo_box.name());
            assert_eq!(eng.source_queue_len(), 0, "{}", algo_box.name());
            // Everything drained: every worklist must be empty again.
            assert_eq!(eng.check_worklist_invariant(), Ok(()));
            assert!(eng.link_work.is_empty() && eng.route_work.is_empty());
        }
    }

    #[test]
    fn tree_drains_too() {
        struct Window(u32);
        impl InjectionProcess for Window {
            fn tick(&mut self, rng: &mut Rng64) -> bool {
                if self.0 > 0 {
                    self.0 -= 1;
                    rng.chance(0.02)
                } else {
                    false
                }
            }
            fn mean_rate(&self) -> f64 {
                0.0
            }
        }
        for vcs in [1usize, 2, 4] {
            let algo = TreeAdaptive::new(KAryNTree::new(2, 3), vcs);
            let pattern = TrafficGen::new(Pattern::Uniform, 8);
            let mut eng = Engine::new(&algo, 4, 32, pattern, &|_| Box::new(Window(400)), 11);
            eng.run(400 + 4000);
            let c = eng.counters();
            assert!(c.created_packets > 5);
            assert_eq!(c.delivered_packets, c.created_packets, "vcs={vcs}");
            assert_eq!(c.in_flight_flits, 0, "vcs={vcs}");
        }
    }

    #[test]
    fn packets_are_delivered_to_the_right_node_in_order() {
        // Periodic injection of several packets 0 -> 1 on the tiny tree;
        // deliveries must be complete and FIFO per source-destination
        // pair (wormhole + single injection channel guarantee this).
        let algo = TreeAdaptive::new(KAryNTree::new(2, 1), 2);
        let pattern = TrafficGen::new(Pattern::Complement, 2);
        let mut eng = Engine::new(
            &algo,
            4,
            8,
            pattern,
            &|n| {
                if n == 0 {
                    Box::new(Periodic::every(10))
                } else {
                    Box::new(Bernoulli::new(0.0))
                }
            },
            3,
        );
        eng.run(200);
        let c = eng.counters();
        assert!(c.delivered_packets >= 15);
        let mut last_delivery = 0;
        for p in eng.packets().iter().filter(|p| p.src == 0) {
            if p.delivered != NEVER {
                assert!(p.delivered > last_delivery);
                last_delivery = p.delivered;
                assert_eq!(p.dest, 1);
            }
        }
    }

    #[test]
    fn escape_lanes_are_used_under_contention() {
        // Duato on a small cube at very high load: some headers must
        // fall back to the escape channels.
        let algo = CubeDuato::new(KAryNCube::new(4, 2));
        let pattern = TrafficGen::new(Pattern::Uniform, 16);
        let mut eng = Engine::new(
            &algo,
            4,
            16,
            pattern,
            &|_| Box::new(Bernoulli::new(0.06)),
            13,
        );
        eng.run(5000);
        let c = eng.counters();
        assert!(c.escape_routings > 0, "escape channels never used");
        assert!(
            c.routed_headers > c.escape_routings,
            "adaptive channels never used"
        );
    }

    #[test]
    fn deterministic_runs_are_bit_reproducible() {
        let run = |seed: u64| {
            let algo = CubeDuato::new(KAryNCube::new(4, 2));
            let pattern = TrafficGen::new(Pattern::Uniform, 16);
            let mut eng = Engine::new(
                &algo,
                4,
                16,
                pattern,
                &|_| Box::new(Bernoulli::new(0.03)),
                seed,
            );
            eng.run(2000);
            let c = eng.counters();
            (
                c.created_packets,
                c.delivered_packets,
                c.delivered_flits,
                c.routed_headers,
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    /// Build the pair of engines used by the step/step_reference
    /// equivalence tests.
    fn engine_pair<'a, Algo: RoutingAlgorithm>(
        algo: &'a Algo,
        rate: f64,
        seed: u64,
    ) -> (Engine<'a, Algo>, Engine<'a, Algo>) {
        let n = algo.topology().num_nodes();
        let mk = |_| -> Box<dyn InjectionProcess> { Box::new(Bernoulli::new(rate)) };
        let a = Engine::new(algo, 4, 8, TrafficGen::new(Pattern::Uniform, n), &mk, seed);
        let b = Engine::new(algo, 4, 8, TrafficGen::new(Pattern::Uniform, n), &mk, seed);
        (a, b)
    }

    #[test]
    fn active_step_matches_reference_step_exactly() {
        // Cycle-by-cycle lockstep comparison on both network families,
        // checking the full observable state every few cycles.
        let cube = CubeDuato::new(KAryNCube::new(4, 2));
        let tree = TreeAdaptive::new(KAryNTree::new(2, 3), 2);
        fn check<Algo: RoutingAlgorithm>(algo: &Algo, rate: f64) {
            let (mut opt, mut refr) = engine_pair(algo, rate, 77);
            for cycle in 0..1500 {
                opt.step();
                refr.step_reference();
                if cycle % 64 == 0 {
                    assert_eq!(opt.counters(), refr.counters(), "cycle {cycle}");
                    assert_eq!(opt.packets(), refr.packets(), "cycle {cycle}");
                    assert_eq!(opt.check_worklist_invariant(), Ok(()), "cycle {cycle}");
                }
            }
            assert_eq!(opt.counters(), refr.counters());
            assert_eq!(opt.packets(), refr.packets());
            assert_eq!(opt.buffered_flits(), refr.buffered_flits());
        }
        check(&cube, 0.01);
        check(&cube, 0.08); // saturating
        check(&tree, 0.02);
    }

    #[test]
    fn steppers_can_interleave() {
        // Both steppers maintain the same state, so alternating them
        // must equal running either one alone.
        let algo = CubeDuato::new(KAryNCube::new(4, 2));
        let (mut pure, mut mixed) = engine_pair(&algo, 0.03, 5);
        for cycle in 0..1000 {
            pure.step();
            if cycle % 3 == 0 {
                mixed.step_reference();
            } else {
                mixed.step();
            }
        }
        assert_eq!(pure.counters(), mixed.counters());
        assert_eq!(pure.packets(), mixed.packets());
    }

    #[test]
    fn worklist_invariants_hold_under_request_reply_and_throttle() {
        let algo = CubeDuato::new(KAryNCube::new(4, 2));
        let pattern = TrafficGen::new(Pattern::Uniform, 16);
        let mut eng = Engine::new(
            &algo,
            4,
            8,
            pattern,
            &|_| Box::new(Bernoulli::new(0.04)),
            21,
        );
        eng.set_request_reply(true);
        eng.set_injection_limit(Some(4));
        for _ in 0..800 {
            eng.step();
            assert_eq!(eng.check_worklist_invariant(), Ok(()));
        }
        assert!(eng.counters().delivered_packets > 0);
    }

    #[test]
    fn recording_probe_mirrors_packet_table() {
        // A FlightRecorder attached to the engine must observe exactly
        // what the engine's own packet table records — and attaching it
        // must not change anything a NullProbe run produces.
        use telemetry::{FlightRecorder, Geometry, TelemetryConfig};
        let algo = CubeDuato::new(KAryNCube::new(4, 2));
        let mk = |_| -> Box<dyn InjectionProcess> { Box::new(Bernoulli::new(0.04)) };
        let mk_pattern = || TrafficGen::new(Pattern::Uniform, 16);
        let w = Wiring::from_topology(algo.topology());
        let geo = Geometry {
            routers: w.num_routers,
            ports: w.ports,
            vcs: algo.num_vcs(),
            nodes: w.num_nodes,
        };
        let cfg = TelemetryConfig {
            stride: 64,
            record_events: true,
        };
        let mut traced = Engine::with_probe(
            &algo,
            4,
            8,
            mk_pattern(),
            &mk,
            31,
            FlightRecorder::new(cfg, geo),
        );
        let mut plain = Engine::new(&algo, 4, 8, mk_pattern(), &mk, 31);
        traced.set_request_reply(true);
        plain.set_request_reply(true);
        traced.run(1500);
        plain.run(1500);
        assert_eq!(
            traced.counters(),
            plain.counters(),
            "probe perturbed the run"
        );
        assert_eq!(traced.packets(), plain.packets());

        let packets: Vec<PacketRec> = traced.packets().to_vec();
        let counters = traced.counters();
        let rec = traced.into_probe();
        assert!(counters.created_packets > 20, "want a busy run");
        assert_eq!(rec.packet_traces().len(), packets.len());
        let mut delivered = 0u64;
        for (t, p) in rec.packet_traces().iter().zip(&packets) {
            assert_eq!((t.src, t.dest), (p.src, p.dest));
            assert_eq!(t.flits, p.flits);
            assert_eq!(
                (t.created, t.injected, t.delivered),
                (p.created, p.injected, p.delivered)
            );
            assert_eq!(t.hops, p.hops);
            if t.delivered != NEVER {
                delivered += 1;
            }
        }
        assert_eq!(delivered, counters.delivered_packets);
        let routed: u64 = rec.packet_traces().iter().map(|t| u64::from(t.hops)).sum();
        assert_eq!(routed, counters.routed_headers);
        let blocked: u64 = rec
            .packet_traces()
            .iter()
            .map(|t| u64::from(t.blocked_attempts))
            .sum();
        assert_eq!(blocked, counters.routing_blocked);
        let escapes: u64 = rec
            .packet_traces()
            .iter()
            .map(|t| u64::from(t.escape_hops))
            .sum();
        assert_eq!(escapes, counters.escape_routings);
        // Every delivered packet decomposes, components summing to the
        // engine's own latency.
        for (id, (t, p)) in rec.packet_traces().iter().zip(&packets).enumerate() {
            if let Some(b) = t.breakdown(id as u32) {
                assert_eq!(b.network(), p.latency().unwrap());
                assert_eq!(
                    b.src_queue + b.routing + b.blocked + b.transfer,
                    p.delivered - p.created
                );
            }
        }
        assert!(!rec.events().is_empty());
    }

    #[test]
    fn idle_network_has_empty_worklists() {
        let algo = CubeDeterministic::new(KAryNCube::new(4, 2));
        let pattern = TrafficGen::new(Pattern::Uniform, 16);
        let mut eng = Engine::new(&algo, 4, 16, pattern, &|_| Box::new(Bernoulli::new(0.0)), 1);
        eng.run(100);
        assert!(eng.link_work.is_empty());
        assert!(eng.xbar_work.is_empty());
        assert!(eng.route_work.is_empty());
        assert!(eng.inject_work.is_empty());
        assert_eq!(eng.counters().flit_moves, 0);
    }
}
