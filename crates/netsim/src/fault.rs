//! The fault plane: deterministic link/router fault injection.
//!
//! A [`FaultPlan`] *describes* a fault set — dead links, dead routers,
//! transient link outages — as a seed-derived sample, independent of
//! any particular run. [`FaultPlan::compile`] validates the plan
//! against a concrete [`Wiring`] and lowers it into a [`FaultState`]:
//! precomputed per-channel bitsets the engine consults through the
//! [`FaultModel`] trait.
//!
//! The trait mirrors how `telemetry::NullProbe` keeps the untraced
//! engine free: the engine is generic over `F: FaultModel` with
//! [`NoFaults`] as the default, and every fault check is guarded by
//! `F::ACTIVE` (an associated `const`), so the fault-free stepper
//! compiles to exactly the pre-fault-plane code.
//!
//! Semantics:
//!
//! * **Dead links** (`links=<fraction>`): an undirected router↔router
//!   channel sampled dead is down in both directions from cycle 0 and
//!   never recovers. Routing treats it as *dead*: a header whose every
//!   admissible direction is dead is abandoned — counted as a dropped
//!   packet and its flits drained (see the engine's `DROP_ROUTE` path).
//! * **Dead routers** (`routers=<count>`): all the router's channels
//!   die, including the ejection channel, and its attached nodes are
//!   marked dead — packets from or to a dead node are abandoned at the
//!   source and counted *unroutable*.
//! * **Transient outages** (`transient=<links>:<period>:<down>`): the
//!   sampled links cycle down/up with a per-link phase offset. A
//!   transiently-down channel *blocks* traffic (flits wait for the
//!   repair) but is never treated as dead, so no packet is dropped on
//!   account of a transient fault.
//!
//! The sample is a pure function of the plan's `seed` and the wiring,
//! so the same spec reproduces the same physical fault set across runs,
//! load points and thread counts.
//!
//! ```
//! use netsim::fault::FaultPlan;
//!
//! let plan = FaultPlan::parse("links=0.05,seed=0xBEEF").unwrap();
//! assert_eq!(plan.spec_string(), "links=0.05,seed=0xbeef");
//! // Round-trips, and the digest is stable for manifests.
//! assert_eq!(FaultPlan::parse(&plan.spec_string()).unwrap(), plan);
//! assert_eq!(plan.digest(), FaultPlan::parse("links=0.05,seed=0xBEEF").unwrap().digest());
//! ```

#![deny(missing_docs)]

use crate::wiring::{Peer, Wiring};
use traffic::Rng64;

/// Default plan seed (faults are sampled independently of traffic).
pub const DEFAULT_FAULT_SEED: u64 = 0xFA17;

/// Longest permitted transient outage, in cycles: outages must repair
/// well before the engine's deadlock watchdog fires.
pub const MAX_TRANSIENT_DOWN: u32 = 10_000;

/// Transient-outage component of a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransientSpec {
    /// How many (live) links to afflict.
    pub links: usize,
    /// Outage cycle period.
    pub period: u32,
    /// Down time at the start of each period (`0 < down < period`).
    pub down: u32,
}

/// A deterministic, seed-derived description of a fault set.
///
/// Construct with [`FaultPlan::parse`] (the CLI's `--faults` grammar)
/// or the field helpers, then attach to a scenario via
/// `ScenarioBuilder::faults`. An all-zero plan ([`FaultPlan::is_empty`])
/// is legal and compiles to a state with no faults at all — useful to
/// exercise the faulted engine path while asserting bit-identity with
/// the fault-free engine.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault sample (independent of the traffic seed).
    pub seed: u64,
    /// Fraction of undirected router↔router links to kill (`[0, 1]`).
    pub link_fraction: f64,
    /// Number of routers to kill outright.
    pub routers: usize,
    /// Optional transient-outage component.
    pub transient: Option<TransientSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: DEFAULT_FAULT_SEED,
            link_fraction: 0.0,
            routers: 0,
            transient: None,
        }
    }
}

/// Why a [`FaultPlan`] could not be parsed or compiled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// The `--faults` spec string is malformed.
    BadSpec(String),
    /// The plan is incompatible with the target topology.
    BadPlan(String),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::BadSpec(m) | FaultError::BadPlan(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for FaultError {}

impl FaultPlan {
    /// A plan killing the given fraction of links, default seed.
    pub fn dead_links(fraction: f64) -> Self {
        FaultPlan {
            link_fraction: fraction,
            ..FaultPlan::default()
        }
    }

    /// Whether the plan describes no faults at all.
    pub fn is_empty(&self) -> bool {
        self.link_fraction == 0.0 && self.routers == 0 && self.transient.is_none()
    }

    /// Parse the CLI `--faults` grammar: comma-separated
    /// `links=<fraction>`, `routers=<count>`,
    /// `transient=<links>:<period>:<down>`, `seed=<u64|0xhex>`; the
    /// literal `none` is the empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultError> {
        let bad = |m: String| Err(FaultError::BadSpec(m));
        let mut plan = FaultPlan::default();
        if spec.trim() == "none" {
            return Ok(plan);
        }
        for part in spec.split(',') {
            let part = part.trim();
            let Some((key, val)) = part.split_once('=') else {
                return bad(format!(
                    "bad --faults component {part:?}: want key=value \
                     (links=, routers=, transient=, seed=)"
                ));
            };
            match key {
                "links" => {
                    let f: f64 = val
                        .parse()
                        .map_err(|_| FaultError::BadSpec(format!("bad link fraction {val:?}")))?;
                    if !(0.0..=1.0).contains(&f) {
                        return bad(format!("link fraction {f} outside [0, 1]"));
                    }
                    plan.link_fraction = f;
                }
                "routers" => {
                    plan.routers = val
                        .parse()
                        .map_err(|_| FaultError::BadSpec(format!("bad router count {val:?}")))?;
                }
                "transient" => {
                    let fields: Vec<&str> = val.split(':').collect();
                    let [links, period, down] = fields.as_slice() else {
                        return bad(format!(
                            "bad transient spec {val:?}: want <links>:<period>:<down>"
                        ));
                    };
                    let t = TransientSpec {
                        links: links.parse().map_err(|_| {
                            FaultError::BadSpec(format!("bad transient link count {links:?}"))
                        })?,
                        period: period.parse().map_err(|_| {
                            FaultError::BadSpec(format!("bad transient period {period:?}"))
                        })?,
                        down: down.parse().map_err(|_| {
                            FaultError::BadSpec(format!("bad transient down time {down:?}"))
                        })?,
                    };
                    if t.down == 0 || t.down >= t.period {
                        return bad(format!(
                            "transient down time {} must satisfy 0 < down < period {}",
                            t.down, t.period
                        ));
                    }
                    if t.down > MAX_TRANSIENT_DOWN {
                        return bad(format!(
                            "transient down time {} exceeds the {MAX_TRANSIENT_DOWN}-cycle \
                             limit (outages must repair before the deadlock watchdog)",
                            t.down
                        ));
                    }
                    plan.transient = Some(t);
                }
                "seed" => {
                    let parsed = if let Some(hex) = val.strip_prefix("0x") {
                        u64::from_str_radix(hex, 16).ok()
                    } else {
                        val.parse().ok()
                    };
                    let Some(s) = parsed else {
                        return bad(format!("bad fault seed {val:?}"));
                    };
                    plan.seed = s;
                }
                _ => {
                    return bad(format!(
                        "unknown --faults key {key:?} (known: links, routers, transient, seed)"
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Canonical spec string: parses back to an equal plan, and is the
    /// digest input. The empty plan renders as `none`.
    pub fn spec_string(&self) -> String {
        let mut parts = Vec::new();
        if self.link_fraction != 0.0 {
            parts.push(format!("links={}", self.link_fraction));
        }
        if self.routers != 0 {
            parts.push(format!("routers={}", self.routers));
        }
        if let Some(t) = self.transient {
            parts.push(format!("transient={}:{}:{}", t.links, t.period, t.down));
        }
        if parts.is_empty() {
            return "none".into();
        }
        if self.seed != DEFAULT_FAULT_SEED {
            parts.push(format!("seed=0x{:x}", self.seed));
        }
        parts.join(",")
    }

    /// Stable FNV-1a digest of the canonical spec, embedded in run
    /// manifests so artifacts name the exact fault set they ran under.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.spec_string().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Validate against a wiring and lower into the engine-facing
    /// [`FaultState`]. Deterministic: the sample depends only on the
    /// plan (notably its `seed`) and the wiring.
    pub fn compile(&self, w: &Wiring) -> Result<FaultState, FaultError> {
        let bad = |m: String| Err(FaultError::BadPlan(m));
        let num_channels = w.num_routers * w.ports;
        let mut state = FaultState {
            ports: w.ports,
            dead: vec![0u64; num_channels.div_ceil(64)],
            down: vec![0u64; num_channels.div_ceil(64)],
            node_is_dead: vec![false; w.num_nodes],
            period: self.transient.map_or(0, |t| t.period),
            down_time: self.transient.map_or(0, |t| t.down),
            transient: Vec::new(),
            dead_links: 0,
            dead_routers: self.routers,
        };
        let mut rng = Rng64::seed_from(self.seed);

        // The undirected router<->router channel list, in canonical
        // (lower directed index first) order.
        let mut links: Vec<(u32, u16, u32, u16)> = Vec::new();
        for r in 0..w.num_routers {
            for p in 0..w.ports {
                if let Peer::Router { router, port } = w.peer(r, p) {
                    if r * w.ports + p < router as usize * w.ports + port as usize {
                        links.push((r as u32, p as u16, router, port));
                    }
                }
            }
        }

        // Dead links: partial Fisher-Yates sample of the channel list.
        let n_dead = (self.link_fraction * links.len() as f64).round() as usize;
        for i in 0..n_dead {
            let j = i + rng.index(links.len() - i);
            links.swap(i, j);
            let (r, p, r2, p2) = links[i];
            state.kill_channel(r, p);
            state.kill_channel(r2, p2);
        }
        state.dead_links = n_dead;

        // Dead routers: kill every channel touching the router and mark
        // its attached nodes dead.
        if self.routers > w.num_routers {
            return bad(format!(
                "plan kills {} routers but the network only has {}",
                self.routers, w.num_routers
            ));
        }
        let mut routers: Vec<u32> = (0..w.num_routers as u32).collect();
        for i in 0..self.routers {
            let j = i + rng.index(routers.len() - i);
            routers.swap(i, j);
            let r = routers[i] as usize;
            for p in 0..w.ports {
                state.kill_channel(r as u32, p as u16);
                match w.peer(r, p) {
                    Peer::Router { router, port } => state.kill_channel(router, port),
                    Peer::Node(n) => state.node_is_dead[n as usize] = true,
                    Peer::None => {}
                }
            }
        }

        // Transient outages: sampled from the still-live links.
        if let Some(t) = self.transient {
            let live: Vec<(u32, u16, u32, u16)> = links
                .iter()
                .copied()
                .filter(|&(r, p, _, _)| !state.channel_dead(r as usize, p as usize))
                .collect();
            if t.links > live.len() {
                return bad(format!(
                    "plan wants {} transient links but only {} live links remain",
                    t.links,
                    live.len()
                ));
            }
            let mut live = live;
            for i in 0..t.links {
                let j = i + rng.index(live.len() - i);
                live.swap(i, j);
                let (r, p, r2, p2) = live[i];
                state.transient.push(TransientLink {
                    router: r,
                    port: p,
                    peer_router: r2,
                    peer_port: p2,
                    phase: rng.below(t.period as u64) as u32,
                    down_now: false,
                });
            }
        }
        Ok(state)
    }
}

/// One link transition the engine reports to its probe: the canonical
/// direction of an undirected channel going down or up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFlip {
    /// Router on the canonical side of the link.
    pub router: u32,
    /// Port on the canonical side of the link.
    pub port: u16,
    /// `true` = outage begins, `false` = repaired.
    pub down: bool,
}

/// What the engine asks of a fault model. All checks are guarded by
/// [`FaultModel::ACTIVE`] in the engine, so the [`NoFaults`]
/// instantiation compiles every fault branch out of the hot path.
pub trait FaultModel {
    /// Whether any fault machinery is present at all. The engine tests
    /// this `const` before every fault check.
    const ACTIVE: bool;

    /// Is the directed channel leaving `router` through `port`
    /// currently unable to carry flits (dead or transiently down)?
    fn channel_down(&self, router: usize, port: usize) -> bool;

    /// Is that channel *permanently* dead? Only dead channels make a
    /// packet droppable; transient outages merely block.
    fn channel_dead(&self, router: usize, port: usize) -> bool;

    /// Is the processing node dead (its router was killed)?
    fn node_dead(&self, node: usize) -> bool;

    /// Called at the top of every cycle: apply transient transitions
    /// for `cycle`, pushing one [`LinkFlip`] per changed link.
    fn begin_cycle(&mut self, cycle: u32, flips: &mut Vec<LinkFlip>);
}

/// The no-fault model: the engine's default type parameter. With
/// `ACTIVE = false` every fault check in the engine is
/// constant-folded away — `Engine<_, A, P, NoFaults>` is the
/// pre-fault-plane engine, bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn channel_down(&self, _router: usize, _port: usize) -> bool {
        false
    }

    #[inline(always)]
    fn channel_dead(&self, _router: usize, _port: usize) -> bool {
        false
    }

    #[inline(always)]
    fn node_dead(&self, _node: usize) -> bool {
        false
    }

    #[inline(always)]
    fn begin_cycle(&mut self, _cycle: u32, _flips: &mut Vec<LinkFlip>) {}
}

/// One transiently-faulty link and its current state.
#[derive(Clone, Copy, Debug)]
struct TransientLink {
    router: u32,
    port: u16,
    peer_router: u32,
    peer_port: u16,
    /// Per-link phase offset into the outage period.
    phase: u32,
    down_now: bool,
}

/// A compiled fault set: per-channel bitsets the engine's fault checks
/// index in O(1). Build with [`FaultPlan::compile`].
#[derive(Clone, Debug)]
pub struct FaultState {
    ports: usize,
    /// Permanently dead directed channels (bit per `router*ports+port`).
    dead: Vec<u64>,
    /// Currently-down directed channels (superset of `dead`).
    down: Vec<u64>,
    node_is_dead: Vec<bool>,
    period: u32,
    down_time: u32,
    transient: Vec<TransientLink>,
    dead_links: usize,
    dead_routers: usize,
}

impl FaultState {
    fn kill_channel(&mut self, router: u32, port: u16) {
        let c = router as usize * self.ports + port as usize;
        self.dead[c >> 6] |= 1u64 << (c & 63);
        self.down[c >> 6] |= 1u64 << (c & 63);
    }

    fn set_down(&mut self, router: u32, port: u16, down: bool) {
        let c = router as usize * self.ports + port as usize;
        if down {
            self.down[c >> 6] |= 1u64 << (c & 63);
        } else {
            self.down[c >> 6] &= !(1u64 << (c & 63));
        }
    }

    /// Number of undirected links killed by the plan.
    pub fn dead_links(&self) -> usize {
        self.dead_links
    }

    /// Number of routers killed by the plan.
    pub fn dead_routers(&self) -> usize {
        self.dead_routers
    }

    /// Number of processing nodes attached to dead routers.
    pub fn dead_nodes(&self) -> usize {
        self.node_is_dead.iter().filter(|&&d| d).count()
    }

    /// Number of links with transient outages.
    pub fn transient_links(&self) -> usize {
        self.transient.len()
    }
}

impl FaultModel for FaultState {
    const ACTIVE: bool = true;

    #[inline]
    fn channel_down(&self, router: usize, port: usize) -> bool {
        let c = router * self.ports + port;
        self.down[c >> 6] >> (c & 63) & 1 != 0
    }

    #[inline]
    fn channel_dead(&self, router: usize, port: usize) -> bool {
        let c = router * self.ports + port;
        self.dead[c >> 6] >> (c & 63) & 1 != 0
    }

    #[inline]
    fn node_dead(&self, node: usize) -> bool {
        self.node_is_dead[node]
    }

    fn begin_cycle(&mut self, cycle: u32, flips: &mut Vec<LinkFlip>) {
        if self.transient.is_empty() {
            return;
        }
        let (period, down_time) = (self.period, self.down_time);
        let mut changes: Vec<(u32, u16, u32, u16, bool)> = Vec::new();
        for tl in &mut self.transient {
            let down = (cycle.wrapping_add(tl.phase)) % period < down_time;
            if down != tl.down_now {
                tl.down_now = down;
                changes.push((tl.router, tl.port, tl.peer_router, tl.peer_port, down));
            }
        }
        for (r, p, r2, p2, down) in changes {
            self.set_down(r, p, down);
            self.set_down(r2, p2, down);
            flips.push(LinkFlip {
                router: r,
                port: p,
                down,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{KAryNCube, KAryNTree};

    fn cube_wiring() -> Wiring {
        Wiring::from_topology(&KAryNCube::new(4, 2))
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        for spec in [
            "none",
            "links=0.05",
            "links=0.15,routers=2",
            "transient=4:200:50",
            "links=0.1,seed=0xdeadbeef",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(
                FaultPlan::parse(&plan.spec_string()).unwrap(),
                plan,
                "{spec}"
            );
        }
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::default());
        assert!(FaultPlan::parse("none").unwrap().is_empty());
        for bad in [
            "links=1.5",
            "links=abc",
            "routers=-1",
            "transient=4:200",
            "transient=4:100:100",
            "transient=1:90000:20000",
            "seed=zz",
            "widgets=3",
            "links",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn digest_distinguishes_plans() {
        let a = FaultPlan::parse("links=0.05").unwrap();
        let b = FaultPlan::parse("links=0.15").unwrap();
        let c = FaultPlan::parse("links=0.05,seed=1").unwrap();
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn compile_kills_the_requested_fraction_symmetrically() {
        let w = cube_wiring();
        // 4-ary 2-cube: 16 routers x 4 network ports / 2 = 32 links.
        let st = FaultPlan::dead_links(0.25).compile(&w).unwrap();
        assert_eq!(st.dead_links(), 8);
        let mut dead_directed = 0;
        for r in 0..w.num_routers {
            for p in 0..w.ports {
                if let Peer::Router { router, port } = w.peer(r, p) {
                    assert_eq!(
                        st.channel_dead(r, p),
                        st.channel_dead(router as usize, port as usize),
                        "fault must be symmetric"
                    );
                    if st.channel_dead(r, p) {
                        dead_directed += 1;
                        assert!(st.channel_down(r, p), "dead implies down");
                    }
                }
            }
        }
        assert_eq!(dead_directed, 16);
        assert_eq!(st.dead_nodes(), 0);
    }

    #[test]
    fn compile_is_deterministic_and_seed_sensitive() {
        let w = cube_wiring();
        let dead_set = |seed: u64| {
            let st = FaultPlan {
                seed,
                ..FaultPlan::dead_links(0.25)
            }
            .compile(&w)
            .unwrap();
            (0..w.num_routers * w.ports)
                .filter(|&c| st.channel_dead(c / w.ports, c % w.ports))
                .collect::<Vec<_>>()
        };
        assert_eq!(dead_set(7), dead_set(7));
        assert_ne!(dead_set(7), dead_set(8));
    }

    #[test]
    fn dead_router_takes_its_nodes_down() {
        let w = cube_wiring();
        let st = FaultPlan {
            routers: 3,
            ..FaultPlan::default()
        }
        .compile(&w)
        .unwrap();
        assert_eq!(st.dead_routers(), 3);
        // On the cube every router hosts exactly one node.
        assert_eq!(st.dead_nodes(), 3);
        let too_many = FaultPlan {
            routers: w.num_routers + 1,
            ..FaultPlan::default()
        };
        assert!(too_many.compile(&w).is_err());
    }

    #[test]
    fn transient_links_flip_down_and_up() {
        let w = Wiring::from_topology(&KAryNTree::new(2, 3));
        let plan = FaultPlan::parse("transient=3:100:25").unwrap();
        let mut st = plan.compile(&w).unwrap();
        assert_eq!(st.transient_links(), 3);
        assert_eq!(st.dead_links(), 0);
        let mut flips = Vec::new();
        let mut downs = 0;
        let mut ups = 0;
        for cycle in 0..300 {
            st.begin_cycle(cycle, &mut flips);
            for f in flips.drain(..) {
                if f.down {
                    downs += 1;
                } else {
                    ups += 1;
                }
                // Transient outages never look dead.
                assert!(!st.channel_dead(f.router as usize, f.port as usize));
            }
        }
        // Each link sees ~3 periods: at least two full cycles each.
        assert!(downs >= 6 && ups >= 6, "downs={downs} ups={ups}");
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let w = cube_wiring();
        let mut st = FaultPlan::default().compile(&w).unwrap();
        assert_eq!(
            (st.dead_links(), st.dead_routers(), st.transient_links()),
            (0, 0, 0)
        );
        for r in 0..w.num_routers {
            for p in 0..w.ports {
                assert!(!st.channel_down(r, p));
            }
        }
        let mut flips = Vec::new();
        st.begin_cycle(0, &mut flips);
        assert!(flips.is_empty());
    }
}
