//! The scenario plane: one compositional description of an experiment.
//!
//! The paper's method is a sweep of a *design space* — topology ×
//! routing algorithm × virtual-channel count × traffic pattern × offered
//! load — under a common physical normalization. A [`Scenario`] captures
//! one point of that space (everything except the offered load, which
//! stays a sweep variable) and is the single source of truth behind
//! every frontend: the `netperf` CLI, the [`crate::experiment`] harness
//! and the `bench` regenerator binaries all build their [`SimConfig`]s
//! through it.
//!
//! The pieces:
//!
//! * [`TopologySpec`] / [`RoutingKind`] — the discrete axes, with
//!   parse/name round-trips for CLI use;
//! * [`ScenarioBuilder`] — validating construction: only meaningful
//!   (topology, routing, VC) combinations are accepted, Chien timings
//!   are *derived* from the shape via [`costmodel::chien::RouterClass`]
//!   rather than hand-picked, and bit-pattern traffic is rejected on
//!   non-power-of-two node counts before the simulator can panic;
//! * the **named-scenario registry** ([`registry`], [`named`]) — the
//!   five paper configurations are plain entries here (plus a few
//!   extension entries), not enum arms;
//! * run helpers — [`Scenario::simulate`] and
//!   [`Scenario::sweep_outcomes`] monomorphize the engine per routing
//!   algorithm and fan load points out over worker threads;
//! * [`Scenario::manifest`] — the machine-readable description embedded
//!   in every run manifest artifact.
//!
//! Reproducibility contract: with [`SeedMode::Derived`] and salt 0 a
//! scenario labelled like one of the paper's configurations produces
//! **bit-identical** counters to the historical `ExperimentSpec` path
//! (the seed is an FNV-1a hash of label, pattern and load, the timing
//! derivations reproduce Tables 1 and 2 exactly, and the injection
//! throttle follows the same rule). `tests/scenario_equivalence.rs`
//! pins this against goldens captured before the refactor.
//!
//! Degradation: [`ScenarioBuilder::faults`] attaches a
//! [`FaultPlan`] (validated against the topology at build time); the
//! run helpers then compile it per run and use the faulted engine
//! path, and the `try_*` variants report a wedged run as a structured
//! [`SimError`] instead of panicking.

#![deny(missing_docs)]

use crate::fault::{FaultPlan, NoFaults};
use crate::sim::{
    run_simulation_faulted, run_simulation_faulted_sharded, InjectionSpec, SimConfig, SimError,
    SimOutcome,
};
use crate::wiring::Wiring;
use costmodel::chien::RouterClass;
use costmodel::normalize::NetworkNormalization;
use netstats::export::{Manifest, ManifestValue};
use netstats::SweepCurve;
use routing::{
    CubeDeterministic, CubeDuato, MeshAdaptive, MeshDeterministic, RoutingAlgorithm,
    TaperedTreeAdaptive, ThcDeterministic, TreeAdaptive,
};
use telemetry::{FlightRecorder, Geometry, NullProbe, TelemetryConfig};
use topology::{FamilyShape, KAryNCube, KAryNMesh, KAryNTree, TaperedKAryNTree, TorusHypercube};
use traffic::Pattern;

/// One axis of the design space: the network family and its shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// k-ary n-cube (torus): `k^n` nodes, 4-byte flits.
    Cube {
        /// Radix (nodes per dimension).
        k: usize,
        /// Dimension.
        n: usize,
    },
    /// k-ary n-tree (fat-tree): `k^n` processing nodes, 2-byte flits.
    Tree {
        /// Arity.
        k: usize,
        /// Levels.
        n: usize,
    },
    /// k-ary n-mesh (torus without wrap-around links), 4-byte flits.
    Mesh {
        /// Radix.
        k: usize,
        /// Dimension.
        n: usize,
    },
    /// Tapered k-ary n-tree: `ceil(k/taper)` up links per switch,
    /// 2-byte flits like the full tree.
    TaperedTree {
        /// Arity.
        k: usize,
        /// Levels.
        n: usize,
        /// Oversubscription ratio (>= 1; 1 wires the full tree).
        taper: usize,
    },
    /// Torus-embedded hypercube: a `k x k` torus crossed with a
    /// `d`-dimensional binary cube, 4-byte flits like the cube.
    Thc {
        /// Torus radix.
        k: usize,
        /// Binary (hypercube) dimension count.
        d: usize,
    },
}

impl TopologySpec {
    /// A k-ary n-cube.
    pub fn cube(k: usize, n: usize) -> Self {
        TopologySpec::Cube { k, n }
    }

    /// A k-ary n-tree.
    pub fn tree(k: usize, n: usize) -> Self {
        TopologySpec::Tree { k, n }
    }

    /// A k-ary n-mesh.
    pub fn mesh(k: usize, n: usize) -> Self {
        TopologySpec::Mesh { k, n }
    }

    /// A tapered k-ary n-tree with the given oversubscription ratio.
    pub fn tapered_tree(k: usize, n: usize, taper: usize) -> Self {
        TopologySpec::TaperedTree { k, n, taper }
    }

    /// A torus-embedded hypercube: `k x k` torus crossed with a
    /// `d`-dimensional binary cube.
    pub fn thc(k: usize, d: usize) -> Self {
        TopologySpec::Thc { k, d }
    }

    /// Family slug as used by the CLI — the canonical name of the entry
    /// in [`topology::families`], so parse → `family()` → parse is a
    /// fixed point.
    pub fn family(&self) -> &'static str {
        match self {
            TopologySpec::Cube { .. } => "cube",
            TopologySpec::Tree { .. } => "tree",
            TopologySpec::Mesh { .. } => "mesh",
            TopologySpec::TaperedTree { .. } => "tapered-tree",
            TopologySpec::Thc { .. } => "thc",
        }
    }

    /// Build a spec from a CLI family name plus shape. Accepts every
    /// alias registered in [`topology::families`] (e.g. `torus` for
    /// `cube`, `fat-tree` for `tree`). For the tapered tree, `n` counts
    /// levels and the canonical 2:1 taper is assumed (override with
    /// [`TopologySpec::with_taper`]); for the THC, `n` is the binary
    /// dimension count `d`.
    pub fn parse(family: &str, k: usize, n: usize) -> Option<Self> {
        Some(match topology::family(family)?.slug {
            "cube" => TopologySpec::cube(k, n),
            "tree" => TopologySpec::tree(k, n),
            "mesh" => TopologySpec::mesh(k, n),
            "tapered-tree" => TopologySpec::tapered_tree(k, n, 2),
            "thc" => TopologySpec::thc(k, n),
            other => unreachable!("family {other} registered but not mapped to a spec"),
        })
    }

    /// The radix/arity.
    pub fn k(&self) -> usize {
        match *self {
            TopologySpec::Cube { k, .. }
            | TopologySpec::Tree { k, .. }
            | TopologySpec::Mesh { k, .. }
            | TopologySpec::TaperedTree { k, .. }
            | TopologySpec::Thc { k, .. } => k,
        }
    }

    /// The dimension/level count (the binary dimension count for the
    /// THC).
    pub fn n(&self) -> usize {
        match *self {
            TopologySpec::Cube { n, .. }
            | TopologySpec::Tree { n, .. }
            | TopologySpec::Mesh { n, .. }
            | TopologySpec::TaperedTree { n, .. } => n,
            TopologySpec::Thc { d, .. } => d,
        }
    }

    /// The oversubscription ratio: 1 for every family except the
    /// tapered tree.
    pub fn taper(&self) -> usize {
        match *self {
            TopologySpec::TaperedTree { taper, .. } => taper,
            _ => 1,
        }
    }

    /// Same spec with the taper replaced; `None` for families without a
    /// taper axis.
    pub fn with_taper(self, taper: usize) -> Option<Self> {
        match self {
            TopologySpec::TaperedTree { k, n, .. } => Some(TopologySpec::tapered_tree(k, n, taper)),
            _ => None,
        }
    }

    /// The generic shape axes this spec instantiates its family with.
    fn family_shape(&self) -> FamilyShape {
        FamilyShape {
            k: self.k(),
            n: self.n(),
            taper: self.taper(),
        }
    }

    /// The registered family row backing this spec.
    fn family_entry(&self) -> &'static topology::Family {
        topology::family(self.family()).expect("every spec family is registered")
    }

    /// Number of processing nodes (`k^n`; `k^2 · 2^d` for the THC) —
    /// delegated to the family table so the spec and the topology can
    /// never disagree.
    pub fn num_nodes(&self) -> usize {
        (self.family_entry().num_nodes)(&self.family_shape())
    }

    /// Builds the topology instance this spec describes, through the
    /// family registry.
    pub fn build(&self) -> Box<dyn topology::Topology> {
        (self.family_entry().build)(&self.family_shape())
    }

    /// Number of routers/switches (requires building the instance;
    /// construction is O(shape), not O(nodes)).
    pub fn num_routers(&self) -> usize {
        self.build().num_routers()
    }

    /// Bidirectional links across the canonical bisection; `None` where
    /// the canonical cut is undefined (odd radix on grid/tree families).
    pub fn bisection_links(&self) -> Option<usize> {
        match *self {
            TopologySpec::Thc { k, d } => Some(TorusHypercube::new(k, d).bisection_links()),
            spec if !spec.k().is_multiple_of(2) => None,
            TopologySpec::Cube { k, n } => Some(KAryNCube::new(k, n).bisection_links()),
            TopologySpec::Tree { k, n } => Some(KAryNTree::new(k, n).bisection_links()),
            TopologySpec::Mesh { k, n } => Some(KAryNMesh::new(k, n).bisection_links()),
            TopologySpec::TaperedTree { k, n, taper } => {
                Some(TaperedKAryNTree::new(k, n, taper).bisection_links())
            }
        }
    }

    /// Short human-readable description, e.g. `16-ary 2-cube`.
    pub fn describe(&self) -> String {
        match self {
            TopologySpec::Cube { k, n } => format!("{k}-ary {n}-cube"),
            TopologySpec::Tree { k, n } => format!("{k}-ary {n}-tree"),
            TopologySpec::Mesh { k, n } => format!("{k}-ary {n}-mesh"),
            TopologySpec::TaperedTree { k, n, taper } => {
                format!("{k}-ary {n}-tree (taper {taper})")
            }
            TopologySpec::Thc { k, d } => format!("{k}x{k} torus x {d}-cube"),
        }
    }
}

/// The routing-algorithm axis of the design space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingKind {
    /// Dimension-order deterministic routing (cube or mesh).
    Deterministic,
    /// Duato's minimal adaptive routing (cube only).
    Duato,
    /// Minimal adaptive routing (tree ascending-phase or mesh escape
    /// scheme).
    Adaptive,
}

impl RoutingKind {
    /// Stable lowercase name as used by the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingKind::Deterministic => "det",
            RoutingKind::Duato => "duato",
            RoutingKind::Adaptive => "adaptive",
        }
    }

    /// Parse a CLI algorithm name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "det" | "deterministic" | "dor" => RoutingKind::Deterministic,
            "duato" => RoutingKind::Duato,
            "adaptive" => RoutingKind::Adaptive,
            _ => return None,
        })
    }
}

/// Run-length of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunLength {
    /// Warm-up cycles excluded from measurement.
    pub warmup: u32,
    /// Total cycles.
    pub total: u32,
}

impl RunLength {
    /// The paper's protocol: 2000 warm-up, halt at 20000.
    pub fn paper() -> Self {
        RunLength {
            warmup: 2_000,
            total: 20_000,
        }
    }

    /// A shorter protocol for tests and quick looks (noisier).
    pub fn quick() -> Self {
        RunLength {
            warmup: 1_000,
            total: 6_000,
        }
    }
}

/// How the per-run RNG seed is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedMode {
    /// Derived from (label, pattern, load) by FNV-1a, XOR'd with a
    /// caller-chosen salt. Salt 0 reproduces the historical
    /// `ExperimentSpec` seeds bit-for-bit; any other salt yields an
    /// independent but equally reproducible noise realization.
    Derived {
        /// XOR'd into the derived seed.
        salt: u64,
    },
    /// One fixed seed for every load point (the CLI's historical
    /// behavior).
    Fixed(u64),
}

impl Default for SeedMode {
    fn default() -> Self {
        SeedMode::Derived { salt: 0 }
    }
}

/// Source-throttling policy (the limited-injection mechanism of the
/// paper's reference \[28\]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throttle {
    /// The paper's rule: on cubes, hold new packets while `n · V` (half)
    /// of the router's `2n·V` network output lanes are allocated; trees
    /// and meshes run unthrottled.
    Auto,
    /// Never throttle.
    Off,
    /// Throttle at an explicit lane-allocation threshold.
    Limit(u32),
}

/// The packet-creation process, parameterized by the offered load at
/// sweep time (the long-run rate always matches the load; the shape of
/// the arrival process is what varies).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InjectionModel {
    /// Bernoulli arrivals (the paper's choice).
    Bernoulli,
    /// Deterministic arrivals: one packet every `round(1/rate)` cycles.
    Periodic,
    /// Two-state bursty arrivals with the given mean on/off durations in
    /// cycles; the on-state peak rate is scaled so the long-run mean
    /// equals the offered load.
    OnOff {
        /// Mean on-state duration in cycles.
        mean_on: f64,
        /// Mean off-state duration in cycles.
        mean_off: f64,
    },
}

impl InjectionModel {
    fn spec_at(&self, packets_per_cycle: f64) -> InjectionSpec {
        match *self {
            InjectionModel::Bernoulli => InjectionSpec::Bernoulli { packets_per_cycle },
            InjectionModel::Periodic => InjectionSpec::Periodic {
                period: (1.0 / packets_per_cycle).round().max(1.0) as u64,
            },
            InjectionModel::OnOff { mean_on, mean_off } => InjectionSpec::OnOff {
                peak_rate: packets_per_cycle * (mean_on + mean_off) / mean_on,
                mean_on,
                mean_off,
            },
        }
    }

    fn name(&self) -> &'static str {
        match self {
            InjectionModel::Bernoulli => "bernoulli",
            InjectionModel::Periodic => "periodic",
            InjectionModel::OnOff { .. } => "onoff",
        }
    }
}

/// Why a [`ScenarioBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// No topology was given.
    MissingTopology,
    /// The topology shape is degenerate.
    BadShape(String),
    /// The (topology, routing) pair has no implementation.
    UnsupportedCombination(String),
    /// The VC count is illegal for the chosen algorithm.
    BadVcs(String),
    /// The traffic pattern cannot run on this node count.
    BadPattern(String),
    /// Packet size, buffer depth or run length is out of range.
    BadParameter(String),
    /// The attached fault plan does not fit this topology.
    BadFaults(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::MissingTopology => write!(f, "no topology given"),
            ScenarioError::BadShape(m)
            | ScenarioError::UnsupportedCombination(m)
            | ScenarioError::BadVcs(m)
            | ScenarioError::BadPattern(m)
            | ScenarioError::BadParameter(m)
            | ScenarioError::BadFaults(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One point of the design space, minus the offered load (which stays a
/// sweep variable). Build with [`Scenario::builder`] or look one up in
/// the [`registry`].
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    label: String,
    topology: TopologySpec,
    routing: RoutingKind,
    vcs: usize,
    pattern: Pattern,
    injection: InjectionModel,
    run_length: RunLength,
    seed: SeedMode,
    buffer_depth: usize,
    packet_bytes: usize,
    throttle: Throttle,
    telemetry: Option<TelemetryConfig>,
    faults: Option<FaultPlan>,
    shards: usize,
}

/// Validating builder for [`Scenario`].
#[derive(Clone, Debug, Default)]
pub struct ScenarioBuilder {
    label: Option<String>,
    topology: Option<TopologySpec>,
    routing: Option<RoutingKind>,
    vcs: Option<usize>,
    pattern: Option<Pattern>,
    injection: Option<InjectionModel>,
    run_length: Option<RunLength>,
    seed: Option<SeedMode>,
    buffer_depth: Option<usize>,
    packet_bytes: Option<usize>,
    throttle: Option<Throttle>,
    telemetry: Option<TelemetryConfig>,
    faults: Option<FaultPlan>,
    shards: Option<usize>,
}

impl ScenarioBuilder {
    /// Start from all defaults (everything optional except the topology).
    pub fn new() -> Self {
        ScenarioBuilder::default()
    }

    /// Set the network topology (required).
    pub fn topology(mut self, t: TopologySpec) -> Self {
        self.topology = Some(t);
        self
    }

    /// Set the routing algorithm. Default: the family's paper algorithm
    /// (Duato on cubes, adaptive on trees, deterministic on meshes).
    pub fn routing(mut self, r: RoutingKind) -> Self {
        self.routing = Some(r);
        self
    }

    /// Set the virtual-channel count. Default: 4.
    pub fn vcs(mut self, vcs: usize) -> Self {
        self.vcs = Some(vcs);
        self
    }

    /// Set the traffic pattern. Default: uniform.
    pub fn pattern(mut self, p: Pattern) -> Self {
        self.pattern = Some(p);
        self
    }

    /// Set the injection process shape. Default: Bernoulli.
    pub fn injection(mut self, i: InjectionModel) -> Self {
        self.injection = Some(i);
        self
    }

    /// Set the run length. Default: the paper protocol.
    pub fn run_length(mut self, len: RunLength) -> Self {
        self.run_length = Some(len);
        self
    }

    /// Set the seeding policy. Default: derived, salt 0.
    pub fn seed(mut self, s: SeedMode) -> Self {
        self.seed = Some(s);
        self
    }

    /// Set the lane depth in flits. Default: 4 (the paper's).
    pub fn buffer_depth(mut self, d: usize) -> Self {
        self.buffer_depth = Some(d);
        self
    }

    /// Set the packet size in bytes. Default: 64 (the paper's).
    pub fn packet_bytes(mut self, b: usize) -> Self {
        self.packet_bytes = Some(b);
        self
    }

    /// Set the source-throttling policy. Default: the paper's rule.
    pub fn throttle(mut self, t: Throttle) -> Self {
        self.throttle = Some(t);
        self
    }

    /// Attach a telemetry configuration: [`Scenario::simulate_traced`]
    /// will record with these settings, and the config is embedded in
    /// run manifests. Default: none (untraced; `simulate_traced` then
    /// falls back to [`TelemetryConfig::default`]). Telemetry is a pure
    /// observation overlay — it never changes simulation results.
    pub fn telemetry(mut self, t: TelemetryConfig) -> Self {
        self.telemetry = Some(t);
        self
    }

    /// Attach a fault plan: deterministic dead links / dead routers /
    /// transient outages, sampled from the plan's own seed and
    /// validated against the topology when the scenario is built. An
    /// empty plan (`FaultPlan::default()`) is accepted and behaves
    /// bit-identically to no plan at all. Default: none (healthy
    /// network, fault machinery compiled out of the hot path).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Domain-decompose each run into this many shards, stepped with
    /// deterministic phase barriers (see
    /// [`Engine::shard_plan`](crate::engine::Engine::shard_plan)).
    /// Sharding is an execution detail, not an experiment axis: every
    /// shard count produces bit-identical outcomes, manifests, and
    /// traces, so it is deliberately absent from [`Scenario::manifest`].
    /// Default: 1 (the serial stepper). A request beyond the router
    /// count is clamped at run time with a warning; 0 is rejected at
    /// build time.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Override the display label (defaults to the paper's legend text
    /// for the chosen configuration). The label feeds the derived seed,
    /// so two scenarios differing only in label get independent noise.
    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.label = Some(l.into());
        self
    }

    /// Validate and build the scenario.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let topology = self.topology.ok_or(ScenarioError::MissingTopology)?;
        let (k, n) = (topology.k(), topology.n());
        if k < 2 || n < 1 {
            return Err(ScenarioError::BadShape(format!(
                "degenerate {} shape: k = {k}, n = {n} (need k >= 2, n >= 1)",
                topology.family()
            )));
        }
        if topology.taper() < 1 {
            return Err(ScenarioError::BadShape(format!(
                "taper must be >= 1, got {}",
                topology.taper()
            )));
        }
        let routing = self.routing.unwrap_or(match topology {
            TopologySpec::Cube { .. } => RoutingKind::Duato,
            TopologySpec::Tree { .. } | TopologySpec::TaperedTree { .. } => RoutingKind::Adaptive,
            TopologySpec::Mesh { .. } | TopologySpec::Thc { .. } => RoutingKind::Deterministic,
        });
        let vcs = self.vcs.unwrap_or(4);
        match (topology, routing) {
            (TopologySpec::Cube { .. }, RoutingKind::Deterministic | RoutingKind::Duato) => {
                // The cube routers implement the paper's fixed 4-lane
                // design (two virtual networks / 2+2 adaptive-escape).
                if vcs != 4 {
                    return Err(ScenarioError::BadVcs(format!(
                        "cube routing is defined for exactly 4 virtual channels, got {vcs}"
                    )));
                }
            }
            (TopologySpec::Tree { .. }, RoutingKind::Adaptive) => {
                if vcs < 1 {
                    return Err(ScenarioError::BadVcs(
                        "tree-adaptive needs at least one virtual channel".into(),
                    ));
                }
            }
            (TopologySpec::TaperedTree { .. }, RoutingKind::Adaptive) => {
                if vcs < 1 {
                    return Err(ScenarioError::BadVcs(
                        "tapered-tree-adaptive needs at least one virtual channel".into(),
                    ));
                }
            }
            (TopologySpec::Mesh { .. }, RoutingKind::Deterministic) => {
                if vcs < 1 {
                    return Err(ScenarioError::BadVcs(
                        "mesh-deterministic needs at least one virtual channel".into(),
                    ));
                }
            }
            (TopologySpec::Mesh { .. }, RoutingKind::Adaptive) => {
                if vcs < 2 {
                    return Err(ScenarioError::BadVcs(
                        "mesh-adaptive needs an escape lane: at least 2 virtual channels".into(),
                    ));
                }
            }
            (TopologySpec::Thc { .. }, RoutingKind::Deterministic) => {
                // Same two-virtual-network dateline design as the cube.
                if vcs != 4 {
                    return Err(ScenarioError::BadVcs(format!(
                        "thc routing is defined for exactly 4 virtual channels, got {vcs}"
                    )));
                }
            }
            (t, r) => {
                return Err(ScenarioError::UnsupportedCombination(format!(
                    "no {} routing on the {}; supported: cube+det, cube+duato, \
                     tree+adaptive, tapered-tree+adaptive, mesh+det, mesh+adaptive, thc+det",
                    r.name(),
                    t.family()
                )));
            }
        }
        let pattern = self.pattern.unwrap_or(Pattern::Uniform);
        let nodes = topology.num_nodes();
        let bit_defined = matches!(
            pattern,
            Pattern::Complement
                | Pattern::BitReversal
                | Pattern::Transpose
                | Pattern::Shuffle
                | Pattern::Butterfly
        );
        if bit_defined && !nodes.is_power_of_two() {
            return Err(ScenarioError::BadPattern(format!(
                "{} traffic needs a power-of-two node count, got {nodes}",
                pattern.name()
            )));
        }
        if let Pattern::HotSpot { hot, .. } = pattern {
            if hot as usize >= nodes {
                return Err(ScenarioError::BadPattern(format!(
                    "hot-spot node {hot} out of range for {nodes} nodes"
                )));
            }
        }
        let run_length = self.run_length.unwrap_or_else(RunLength::paper);
        if run_length.warmup >= run_length.total {
            return Err(ScenarioError::BadParameter(format!(
                "warm-up ({}) must be shorter than the run ({})",
                run_length.warmup, run_length.total
            )));
        }
        let buffer_depth = self.buffer_depth.unwrap_or(4);
        if buffer_depth == 0 {
            return Err(ScenarioError::BadParameter(
                "buffer depth must be >= 1".into(),
            ));
        }
        let packet_bytes = self
            .packet_bytes
            .unwrap_or(costmodel::normalize::PACKET_BYTES);
        if packet_bytes == 0 {
            return Err(ScenarioError::BadParameter(
                "packet size must be >= 1 byte".into(),
            ));
        }
        let shards = self.shards.unwrap_or(1);
        if shards == 0 {
            return Err(ScenarioError::BadParameter(
                "shard count must be >= 1".into(),
            ));
        }
        if let Some(plan) = &self.faults {
            // Compile once against the real wiring so an impossible
            // plan (too many routers, zero-link shape, …) is rejected
            // here, not mid-run. The run helpers recompile from the
            // same plan + wiring, so success here guarantees success
            // there.
            plan.compile(&wiring_of(topology))
                .map_err(|e| ScenarioError::BadFaults(e.to_string()))?;
        }
        let label = self.label.unwrap_or_else(|| match (topology, routing) {
            (TopologySpec::Cube { .. }, RoutingKind::Deterministic) => "cube, deterministic".into(),
            // Cube + adaptive was rejected by the combination check
            // above, so Duato is the only remaining cube arm.
            (TopologySpec::Cube { .. }, _) => "cube, Duato".into(),
            (TopologySpec::Tree { .. }, _) => format!("fat tree, {vcs} vc"),
            (TopologySpec::TaperedTree { taper, .. }, _) => {
                format!("tapered tree, {vcs} vc (taper {taper})")
            }
            (TopologySpec::Mesh { .. }, RoutingKind::Deterministic) => "mesh, deterministic".into(),
            (TopologySpec::Mesh { .. }, _) => "mesh, adaptive".into(),
            (TopologySpec::Thc { .. }, _) => "torus hypercube, deterministic".into(),
        });
        Ok(Scenario {
            label,
            topology,
            routing,
            vcs,
            pattern,
            injection: self.injection.unwrap_or(InjectionModel::Bernoulli),
            run_length,
            seed: self.seed.unwrap_or_default(),
            buffer_depth,
            packet_bytes,
            throttle: self.throttle.unwrap_or(Throttle::Auto),
            telemetry: self.telemetry,
            faults: self.faults,
            shards,
        })
    }
}

/// The physical wiring of a topology spec (used to validate and
/// compile fault plans).
fn wiring_of(t: TopologySpec) -> Wiring {
    // Table-driven through the family registry: one builder per family,
    // so a new family needs no arm here at all.
    Wiring::from_topology(&*t.build())
}

impl Scenario {
    /// Start building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// Display label (figure legend entry; also feeds the derived seed).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The topology axis.
    pub fn topology(&self) -> TopologySpec {
        self.topology
    }

    /// The routing axis.
    pub fn routing(&self) -> RoutingKind {
        self.routing
    }

    /// The virtual-channel count.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// The traffic pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The run length.
    pub fn run_length(&self) -> RunLength {
        self.run_length
    }

    /// The seeding policy.
    pub fn seed_mode(&self) -> SeedMode {
        self.seed
    }

    /// The packet size in bytes.
    pub fn packet_bytes(&self) -> usize {
        self.packet_bytes
    }

    /// The lane depth in flits.
    pub fn buffer_depth(&self) -> usize {
        self.buffer_depth
    }

    /// The attached telemetry configuration, if any.
    pub fn telemetry(&self) -> Option<TelemetryConfig> {
        self.telemetry
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The shard count each run is decomposed into (1 = serial).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Same scenario stepped with a different shard count — a pure
    /// execution choice, bit-identical for every value (see
    /// [`ScenarioBuilder::shards`]).
    ///
    /// # Panics
    /// Panics on `shards == 0` (the builder rejects it too; the CLI
    /// validates before calling).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be >= 1");
        self.shards = shards;
        self
    }

    /// Same scenario under a different traffic pattern.
    ///
    /// # Panics
    /// Panics if the pattern is illegal for this topology (the builder
    /// would have rejected it).
    pub fn with_pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = pattern;
        let rebuilt = scenario_to_builder(&self)
            .build()
            .expect("pattern legal here");
        debug_assert_eq!(rebuilt, self);
        self
    }

    /// Same scenario with a different run length.
    pub fn with_run_length(mut self, len: RunLength) -> Self {
        assert!(len.warmup < len.total);
        self.run_length = len;
        self
    }

    /// Same scenario with a different seeding policy.
    pub fn with_seed(mut self, seed: SeedMode) -> Self {
        self.seed = seed;
        self
    }

    /// Same scenario with a telemetry configuration attached (pure
    /// observation — results are unchanged).
    pub fn with_telemetry(mut self, t: TelemetryConfig) -> Self {
        self.telemetry = Some(t);
        self
    }

    /// Same scenario with a different fault plan (or none), re-validated
    /// against the topology. Fails with [`ScenarioError::BadFaults`] if
    /// the plan does not fit.
    pub fn with_faults(self, plan: Option<FaultPlan>) -> Result<Self, ScenarioError> {
        let mut b = scenario_to_builder(&self);
        b.faults = plan;
        b.build()
    }

    /// The derived Chien router class for this configuration.
    pub fn router_class(&self) -> RouterClass {
        let (k, n, vcs) = (self.topology.k(), self.topology.n(), self.vcs);
        match (self.topology, self.routing) {
            (TopologySpec::Cube { .. }, RoutingKind::Deterministic) => {
                RouterClass::CubeDeterministic { n, vcs }
            }
            (TopologySpec::Cube { .. }, _) => RouterClass::CubeDuato { n, vcs },
            (TopologySpec::Tree { .. }, _) => RouterClass::TreeAdaptive { k, vcs },
            (TopologySpec::TaperedTree { taper, .. }, _) => RouterClass::TaperedTreeAdaptive {
                k,
                up: k.div_ceil(taper),
                vcs,
            },
            (TopologySpec::Mesh { .. }, RoutingKind::Deterministic) => {
                RouterClass::MeshDeterministic { n, vcs }
            }
            (TopologySpec::Mesh { .. }, _) => RouterClass::MeshAdaptive { n, vcs },
            // The THC router is structurally a (2+d)-dimensional cube
            // router: same crossbar radix, same two-network lane split.
            (TopologySpec::Thc { d, .. }, _) => RouterClass::CubeDeterministic { n: 2 + d, vcs },
        }
    }

    /// The physical normalization (flit width, capacity, derived Chien
    /// timing).
    pub fn normalization(&self) -> NetworkNormalization {
        let timing = self.router_class().timing();
        match self.topology {
            TopologySpec::Cube { k, n } => {
                NetworkNormalization::cube(&KAryNCube::new(k, n), timing)
            }
            TopologySpec::Tree { k, n } => {
                NetworkNormalization::tree(&KAryNTree::new(k, n), timing)
            }
            TopologySpec::Mesh { k, n } => {
                NetworkNormalization::mesh(&KAryNMesh::new(k, n), timing)
            }
            TopologySpec::TaperedTree { k, n, taper } => {
                NetworkNormalization::tapered_tree(&TaperedKAryNTree::new(k, n, taper), timing)
            }
            TopologySpec::Thc { k, d } => {
                NetworkNormalization::thc(&TorusHypercube::new(k, d), timing)
            }
        }
    }

    /// Instantiate the routing algorithm (and with it the network) as a
    /// trait object.
    pub fn build_algorithm(&self) -> Box<dyn RoutingAlgorithm> {
        struct Boxed;
        impl SpecVisitor for Boxed {
            type Out = Box<dyn RoutingAlgorithm>;
            fn visit<A: RoutingAlgorithm + 'static>(self, algo: A) -> Self::Out {
                Box::new(algo)
            }
        }
        self.with_algorithm(Boxed)
    }

    /// Call `v` with this scenario's routing algorithm as a *concrete*
    /// type — the monomorphization point: everything downstream of
    /// [`SpecVisitor::visit`] (engine, routing phase, per-header route
    /// calls) is compiled per algorithm with static dispatch.
    pub fn with_algorithm<V: SpecVisitor>(&self, v: V) -> V::Out {
        let (k, n, vcs) = (self.topology.k(), self.topology.n(), self.vcs);
        match (self.topology, self.routing) {
            (TopologySpec::Cube { .. }, RoutingKind::Deterministic) => {
                v.visit(CubeDeterministic::new(KAryNCube::new(k, n)))
            }
            (TopologySpec::Cube { .. }, _) => v.visit(CubeDuato::new(KAryNCube::new(k, n))),
            (TopologySpec::Tree { .. }, _) => v.visit(TreeAdaptive::new(KAryNTree::new(k, n), vcs)),
            (TopologySpec::Mesh { .. }, RoutingKind::Deterministic) => {
                v.visit(MeshDeterministic::new(KAryNMesh::new(k, n), vcs))
            }
            (TopologySpec::Mesh { .. }, _) => v.visit(MeshAdaptive::new(KAryNMesh::new(k, n), vcs)),
            (TopologySpec::TaperedTree { taper, .. }, _) => v.visit(TaperedTreeAdaptive::new(
                TaperedKAryNTree::new(k, n, taper),
                vcs,
            )),
            (TopologySpec::Thc { k, d }, _) => {
                v.visit(ThcDeterministic::new(TorusHypercube::new(k, d)))
            }
        }
    }

    /// The seed used at one offered load under the current policy.
    pub fn seed_at(&self, fraction: f64) -> u64 {
        match self.seed {
            SeedMode::Derived { salt } => derived_seed(&self.label, self.pattern, fraction) ^ salt,
            SeedMode::Fixed(s) => s,
        }
    }

    /// A simulation config for this scenario at the given offered load
    /// (fraction of capacity).
    pub fn config_at(&self, fraction: f64) -> SimConfig {
        let norm = self.normalization();
        let flits = (self.packet_bytes / norm.flit_bytes()).max(1);
        let rate = fraction * norm.capacity_flits_per_cycle() / flits as f64;
        let mut cfg = SimConfig::paper_protocol(
            self.pattern,
            self.injection.spec_at(rate),
            flits as u16,
            norm.capacity_flits_per_cycle(),
        );
        cfg.warmup_cycles = self.run_length.warmup;
        cfg.total_cycles = self.run_length.total;
        cfg.buffer_depth = self.buffer_depth;
        cfg.injection_limit = match self.throttle {
            // Source throttling for the cube algorithms, after the
            // paper's reference [28]: a node holds new packets back
            // while half or more of its router's 2n·V network output
            // lanes are allocated (8 of 16 for the paper's cube). This
            // is what keeps throughput stable above saturation
            // (Section 3); the tree needs no such mechanism — its
            // saturation is intrinsically stable. See
            // `ablation_injection_limit.csv` and EXPERIMENTS.md for the
            // threshold sensitivity.
            Throttle::Auto => match self.topology {
                TopologySpec::Cube { n, .. } => Some((n * self.vcs) as u32),
                // The THC shares the cube's dateline lane design, so it
                // gets the same half-of-2·dims·V threshold.
                TopologySpec::Thc { d, .. } => Some(((2 + d) * self.vcs) as u32),
                TopologySpec::Tree { .. }
                | TopologySpec::TaperedTree { .. }
                | TopologySpec::Mesh { .. } => None,
            },
            Throttle::Off => None,
            Throttle::Limit(l) => Some(l),
        };
        cfg.seed = self.seed_at(fraction);
        cfg
    }

    /// Simulate one offered load, monomorphized per routing algorithm.
    ///
    /// # Panics
    /// Panics if the run deadlocks (the watchdog fires). A healthy
    /// scenario never deadlocks by construction; with a fault plan
    /// attached, prefer [`Scenario::try_simulate`] to get the stall as
    /// a structured error.
    pub fn simulate(&self, fraction: f64) -> SimOutcome {
        self.try_simulate(fraction)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Simulate one offered load, reporting a wedged run as a
    /// structured [`SimError`] instead of panicking. Without a fault
    /// plan (or with an empty one) the outcome is bit-identical to
    /// [`Scenario::simulate`].
    pub fn try_simulate(&self, fraction: f64) -> Result<SimOutcome, SimError> {
        self.try_simulate_sharded(fraction, self.shards, self.worker_threads())
    }

    /// [`Scenario::try_simulate`] with the shard and worker-thread
    /// counts given explicitly (overriding the scenario's own setting
    /// and `NETPERF_THREADS`). Bit-identical for every combination;
    /// `shards <= 1` is the serial stepper.
    pub fn try_simulate_sharded(
        &self,
        fraction: f64,
        shards: usize,
        threads: usize,
    ) -> Result<SimOutcome, SimError> {
        struct Run<'c> {
            cfg: &'c SimConfig,
            faults: Option<&'c FaultPlan>,
            shards: usize,
            threads: usize,
        }
        impl SpecVisitor for Run<'_> {
            type Out = Result<SimOutcome, SimError>;
            fn visit<A: RoutingAlgorithm>(self, algo: A) -> Self::Out {
                if self.shards > 1 {
                    match self.faults {
                        None => run_simulation_faulted_sharded(
                            &algo,
                            self.cfg,
                            NullProbe,
                            NoFaults,
                            self.shards,
                            self.threads,
                        ),
                        Some(plan) => {
                            let w = Wiring::from_topology(algo.topology());
                            let state = plan.compile(&w).expect("fault plan validated at build");
                            run_simulation_faulted_sharded(
                                &algo,
                                self.cfg,
                                NullProbe,
                                state,
                                self.shards,
                                self.threads,
                            )
                        }
                    }
                } else {
                    match self.faults {
                        None => run_simulation_faulted(&algo, self.cfg, NullProbe, NoFaults),
                        Some(plan) => {
                            let w = Wiring::from_topology(algo.topology());
                            let state = plan.compile(&w).expect("fault plan validated at build");
                            run_simulation_faulted(&algo, self.cfg, NullProbe, state)
                        }
                    }
                }
                .map(|(out, _)| out)
            }
        }
        let cfg = self.config_at(fraction);
        self.with_algorithm(Run {
            cfg: &cfg,
            faults: self.faults.as_ref(),
            shards,
            threads,
        })
    }

    /// Worker threads for the scenario's own sharded runs: capped by
    /// the shard count (extra threads would idle) and governed by
    /// `NETPERF_THREADS` / available parallelism like the sweep pool.
    fn worker_threads(&self) -> usize {
        if self.shards <= 1 {
            1
        } else {
            sweep_threads().min(self.shards)
        }
    }

    /// Simulate one offered load with a [`FlightRecorder`] attached,
    /// returning the outcome (bit-identical to [`Scenario::simulate`])
    /// and the recording. Uses the scenario's attached
    /// [`TelemetryConfig`], or the default when none was set.
    ///
    /// # Panics
    /// Panics if the run deadlocks; see [`Scenario::try_simulate_traced`].
    pub fn simulate_traced(&self, fraction: f64) -> (SimOutcome, FlightRecorder) {
        self.try_simulate_traced(fraction)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Scenario::simulate_traced`] with deadlocks reported as a
    /// structured [`SimError`] instead of a panic.
    pub fn try_simulate_traced(
        &self,
        fraction: f64,
    ) -> Result<(SimOutcome, FlightRecorder), SimError> {
        self.try_simulate_traced_sharded(fraction, self.shards, self.worker_threads())
    }

    /// [`Scenario::try_simulate_traced`] with explicit shard and
    /// worker-thread counts. The recording — like the outcome — is
    /// bit-identical for every combination.
    pub fn try_simulate_traced_sharded(
        &self,
        fraction: f64,
        shards: usize,
        threads: usize,
    ) -> Result<(SimOutcome, FlightRecorder), SimError> {
        struct Traced<'c> {
            cfg: &'c SimConfig,
            tcfg: TelemetryConfig,
            faults: Option<&'c FaultPlan>,
            shards: usize,
            threads: usize,
        }
        impl SpecVisitor for Traced<'_> {
            type Out = Result<(SimOutcome, FlightRecorder), SimError>;
            fn visit<A: RoutingAlgorithm>(self, algo: A) -> Self::Out {
                let w = Wiring::from_topology(algo.topology());
                let geo = Geometry {
                    routers: w.num_routers,
                    ports: w.ports,
                    vcs: algo.num_vcs(),
                    nodes: w.num_nodes,
                };
                let rec = FlightRecorder::new(self.tcfg, geo);
                if self.shards > 1 {
                    match self.faults {
                        None => run_simulation_faulted_sharded(
                            &algo,
                            self.cfg,
                            rec,
                            NoFaults,
                            self.shards,
                            self.threads,
                        ),
                        Some(plan) => {
                            let state = plan.compile(&w).expect("fault plan validated at build");
                            run_simulation_faulted_sharded(
                                &algo,
                                self.cfg,
                                rec,
                                state,
                                self.shards,
                                self.threads,
                            )
                        }
                    }
                } else {
                    match self.faults {
                        None => run_simulation_faulted(&algo, self.cfg, rec, NoFaults),
                        Some(plan) => {
                            let state = plan.compile(&w).expect("fault plan validated at build");
                            run_simulation_faulted(&algo, self.cfg, rec, state)
                        }
                    }
                }
            }
        }
        let cfg = self.config_at(fraction);
        let tcfg = self.telemetry.unwrap_or_default();
        self.with_algorithm(Traced {
            cfg: &cfg,
            tcfg,
            faults: self.faults.as_ref(),
            shards,
            threads,
        })
    }

    /// Sweep a load grid in parallel, returning the full outcome at
    /// every point.
    ///
    /// Load points are distributed over worker threads by work stealing
    /// (each run is a pure function of the scenario, so order does not
    /// matter); finished outcomes flow back over a channel tagged with
    /// their grid index and are placed without any shared mutable
    /// state. Thread count can be pinned with `NETPERF_THREADS`.
    ///
    /// # Panics
    /// Panics if any load point deadlocks; see
    /// [`Scenario::try_sweep_outcomes`].
    pub fn sweep_outcomes(&self, fractions: &[f64]) -> Vec<SimOutcome> {
        self.try_sweep_outcomes(fractions)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Scenario::sweep_outcomes`] with deadlocks reported as a
    /// structured [`SimError`]. If several load points stall, the error
    /// of the lowest-index point is returned (deterministic regardless
    /// of thread scheduling).
    pub fn try_sweep_outcomes(&self, fractions: &[f64]) -> Result<Vec<SimOutcome>, SimError> {
        let threads = sweep_threads().min(fractions.len());
        let next = std::sync::atomic::AtomicUsize::new(0);
        type Point = (usize, Result<SimOutcome, SimError>);
        let (tx, rx) = std::sync::mpsc::channel::<Point>();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let tx = tx.clone();
                s.spawn(|| {
                    let tx = tx; // move the clone, not the original
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= fractions.len() {
                            break;
                        }
                        let out = self.try_simulate(fractions[i]);
                        if tx.send((i, out)).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(tx); // all worker clones are done; close the channel
        let mut results: Vec<Option<Result<SimOutcome, SimError>>> = vec![None; fractions.len()];
        for (i, out) in rx {
            debug_assert!(results[i].is_none(), "load point {i} simulated twice");
            results[i] = Some(out);
        }
        results
            .into_iter()
            .map(|o| o.expect("all points simulated"))
            .collect()
    }

    /// Sweep a load grid and return the accepted-bandwidth and latency
    /// curves (x = offered fraction of capacity).
    pub fn sweep_curve(&self, fractions: &[f64]) -> SweepCurve {
        let outcomes = self.sweep_outcomes(fractions);
        let mut curve = SweepCurve::new(self.label());
        for (f, out) in fractions.iter().zip(&outcomes) {
            let lat = out.mean_latency_cycles();
            curve.push(
                *f,
                out.accepted_fraction,
                if lat.is_nan() { 0.0 } else { lat },
            );
        }
        curve
    }

    /// The machine-readable description embedded in run manifests.
    pub fn manifest(&self) -> Manifest {
        let norm = self.normalization();
        let timing = norm.timing();
        let mut m = Manifest::new();
        m.push("label", self.label.as_str());
        m.push("topology", self.topology.describe());
        m.push("routing", self.routing.name());
        m.push("vcs", self.vcs as f64);
        m.push("nodes", self.topology.num_nodes() as f64);
        m.push("pattern", self.pattern.name());
        m.push("injection", self.injection.name());
        m.push("packet_bytes", self.packet_bytes as f64);
        m.push("flit_bytes", norm.flit_bytes() as f64);
        m.push("buffer_depth", self.buffer_depth as f64);
        m.push("capacity_flits_per_cycle", norm.capacity_flits_per_cycle());
        m.push("clock_ns", timing.clock_ns());
        m.push("clock_bottleneck", timing.bottleneck());
        let mut len = Manifest::new();
        len.push("warmup", self.run_length.warmup as f64);
        len.push("total", self.run_length.total as f64);
        m.push("run_length", ManifestValue::Object(len));
        m.push(
            "seed",
            match self.seed {
                SeedMode::Derived { salt } => format!("derived^0x{salt:016x}"),
                SeedMode::Fixed(s) => format!("fixed:0x{s:016x}"),
            },
        );
        m.push(
            "throttle",
            match self.throttle {
                Throttle::Auto => "auto".to_string(),
                Throttle::Off => "off".to_string(),
                Throttle::Limit(l) => format!("limit:{l}"),
            },
        );
        if let Some(t) = self.telemetry {
            let mut tm = Manifest::new();
            tm.push("stride", t.stride as f64);
            tm.push("record_events", t.record_events);
            m.push("telemetry", ManifestValue::Object(tm));
        }
        if let Some(plan) = &self.faults {
            let state = plan
                .compile(&wiring_of(self.topology))
                .expect("fault plan validated at build");
            let mut fm = Manifest::new();
            fm.push("spec", plan.spec_string());
            fm.push("digest", format!("0x{:016x}", plan.digest()));
            fm.push("dead_links", state.dead_links() as f64);
            fm.push("dead_routers", state.dead_routers() as f64);
            fm.push("dead_nodes", state.dead_nodes() as f64);
            fm.push("transient_links", state.transient_links() as f64);
            m.push("faults", ManifestValue::Object(fm));
        }
        m
    }
}

/// Rebuild a builder matching `s` (used for re-validation on edits).
fn scenario_to_builder(s: &Scenario) -> ScenarioBuilder {
    ScenarioBuilder {
        label: Some(s.label.clone()),
        topology: Some(s.topology),
        routing: Some(s.routing),
        vcs: Some(s.vcs),
        pattern: Some(s.pattern),
        injection: Some(s.injection),
        run_length: Some(s.run_length),
        seed: Some(s.seed),
        buffer_depth: Some(s.buffer_depth),
        packet_bytes: Some(s.packet_bytes),
        throttle: Some(s.throttle),
        telemetry: s.telemetry,
        faults: s.faults.clone(),
        shards: Some(s.shards),
    }
}

/// The per-run seed of [`SeedMode::Derived`]: FNV-1a over the
/// identifying data, stable across runs and platforms.
pub fn derived_seed(label: &str, pattern: Pattern, fraction: f64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    label.bytes().for_each(&mut eat);
    pattern.name().bytes().for_each(&mut eat);
    fraction
        .to_bits()
        .to_le_bytes()
        .iter()
        .copied()
        .for_each(&mut eat);
    h
}

/// A generic callback for [`Scenario::with_algorithm`]: the trait
/// method is generic over the algorithm type, so implementors receive
/// the concrete `CubeDeterministic`/`CubeDuato`/`TreeAdaptive`/
/// `MeshDeterministic`/`MeshAdaptive` value rather than a trait object.
pub trait SpecVisitor {
    /// Result produced from the algorithm.
    type Out;

    /// Called exactly once with the scenario's algorithm.
    fn visit<A: RoutingAlgorithm + 'static>(self, algo: A) -> Self::Out;
}

/// Worker-thread count for [`Scenario::sweep_outcomes`] and for the
/// sharded stepper's workers: the `NETPERF_THREADS` environment
/// variable if set to a positive integer, otherwise the machine's
/// available parallelism.
///
/// Lenient by design — library callers may inherit arbitrary
/// environments, so garbage silently falls back to the default. The
/// CLI validates the variable up front with [`parse_threads`] and
/// refuses to start on a value this function would ignore.
pub fn sweep_threads() -> usize {
    std::env::var("NETPERF_THREADS")
        .ok()
        .and_then(|v| parse_threads(&v).ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
}

/// Strict parse of a `NETPERF_THREADS`-style thread count: a positive
/// decimal integer (surrounding whitespace tolerated). Returns a
/// one-line description of the problem otherwise — the CLI surfaces it
/// as `error: ...` and exits 2.
pub fn parse_threads(value: &str) -> Result<usize, String> {
    let trimmed = value.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!(
            "thread count must be >= 1, got {trimmed:?} (unset NETPERF_THREADS for the default)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "thread count must be a positive integer, got {value:?}"
        )),
    }
}

/// The default load grid used for the figures: 5% to 100% of capacity
/// in 5% steps.
pub fn default_load_grid() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.05).collect()
}

/// One entry of the named-scenario registry.
#[derive(Clone, Copy)]
pub struct NamedScenario {
    /// Registry key (CLI `netperf run <name>`).
    pub name: &'static str,
    /// One-line description for `netperf list`.
    pub summary: &'static str,
    build: fn() -> Scenario,
}

impl NamedScenario {
    /// Build the scenario this entry describes.
    pub fn scenario(&self) -> Scenario {
        (self.build)()
    }
}

impl std::fmt::Debug for NamedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamedScenario")
            .field("name", &self.name)
            .finish()
    }
}

fn must(b: ScenarioBuilder) -> Scenario {
    b.build()
        .expect("registry entries are valid by construction")
}

/// Registry keys of the paper's five configurations, in the paper's
/// presentation order.
pub const PAPER_FIVE: [&str; 5] = ["cube-det", "cube-duato", "tree-1vc", "tree-2vc", "tree-4vc"];

static REGISTRY: [NamedScenario; 16] = [
    NamedScenario {
        name: "cube-det",
        summary: "paper: 16-ary 2-cube, dimension-order deterministic, 4 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::cube(16, 2))
                    .routing(RoutingKind::Deterministic),
            )
        },
    },
    NamedScenario {
        name: "cube-duato",
        summary: "paper: 16-ary 2-cube, Duato minimal adaptive, 2+2 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::cube(16, 2))
                    .routing(RoutingKind::Duato),
            )
        },
    },
    NamedScenario {
        name: "tree-1vc",
        summary: "paper: 4-ary 4-tree, minimal adaptive, 1 VC",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::tree(4, 4))
                    .routing(RoutingKind::Adaptive)
                    .vcs(1),
            )
        },
    },
    NamedScenario {
        name: "tree-2vc",
        summary: "paper: 4-ary 4-tree, minimal adaptive, 2 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::tree(4, 4))
                    .routing(RoutingKind::Adaptive)
                    .vcs(2),
            )
        },
    },
    NamedScenario {
        name: "tree-4vc",
        summary: "paper: 4-ary 4-tree, minimal adaptive, 4 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::tree(4, 4))
                    .routing(RoutingKind::Adaptive)
                    .vcs(4),
            )
        },
    },
    NamedScenario {
        name: "mesh-det",
        summary: "extension: 16-ary 2-mesh, dimension-order, 4 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::mesh(16, 2))
                    .routing(RoutingKind::Deterministic),
            )
        },
    },
    NamedScenario {
        name: "mesh-adaptive",
        summary: "extension: 16-ary 2-mesh, minimal adaptive + escape, 4 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::mesh(16, 2))
                    .routing(RoutingKind::Adaptive),
            )
        },
    },
    NamedScenario {
        name: "cube-duato-tiny",
        summary: "smoke: 4-ary 2-cube (16 nodes), Duato, quick run",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::cube(4, 2))
                    .routing(RoutingKind::Duato)
                    .run_length(RunLength::quick()),
            )
        },
    },
    NamedScenario {
        name: "tree-2vc-tiny",
        summary: "smoke: 4-ary 2-tree (16 nodes), adaptive, 2 VCs, quick run",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::tree(4, 2))
                    .routing(RoutingKind::Adaptive)
                    .vcs(2)
                    .run_length(RunLength::quick()),
            )
        },
    },
    // The fault entries keep the default labels so they share traffic
    // seeds with their healthy counterparts: the degradation shown is
    // pure fault effect, not a different noise realization.
    NamedScenario {
        name: "cube-duato-5pct",
        summary: "fault: cube-duato with 5% of links dead (seed-derived)",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::cube(16, 2))
                    .routing(RoutingKind::Duato)
                    .faults(FaultPlan::dead_links(0.05)),
            )
        },
    },
    NamedScenario {
        name: "tree-4vc-5pct",
        summary: "fault: tree-4vc with 5% of links dead (seed-derived)",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::tree(4, 4))
                    .routing(RoutingKind::Adaptive)
                    .vcs(4)
                    .faults(FaultPlan::dead_links(0.05)),
            )
        },
    },
    // Beyond-paper scale axis: the regimes the related work targets
    // (thousands of end nodes) that the sharded stepper exists to
    // serve. Same paper protocol, bigger shapes — pair with
    // `--shards`/`NETPERF_THREADS` on multicore hosts.
    NamedScenario {
        name: "tree-4ary-6",
        summary: "scale: 4-ary 6-tree (4096 nodes), minimal adaptive, 4 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::tree(4, 6))
                    .routing(RoutingKind::Adaptive)
                    .vcs(4),
            )
        },
    },
    NamedScenario {
        name: "cube-32ary-2",
        summary: "scale: 32-ary 2-cube (1024 nodes), Duato, 2+2 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::cube(32, 2))
                    .routing(RoutingKind::Duato),
            )
        },
    },
    NamedScenario {
        name: "tree-16k",
        summary: "scale: 4-ary 7-tree (16384 nodes), minimal adaptive, 4 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::tree(4, 7))
                    .routing(RoutingKind::Adaptive)
                    .vcs(4),
            )
        },
    },
    // Design-plane families: the oversubscribed tree and the
    // torus-embedded hypercube, at the paper's 256-node scale.
    NamedScenario {
        name: "tapered-tree-4vc",
        summary: "design: 4-ary 4-tree tapered 2:1, minimal adaptive, 4 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::tapered_tree(4, 4, 2))
                    .routing(RoutingKind::Adaptive)
                    .vcs(4),
            )
        },
    },
    NamedScenario {
        name: "thc-det",
        summary: "design: 4x4 torus x 4-cube (256 nodes), dimension-order, 4 VCs",
        build: || {
            must(
                Scenario::builder()
                    .topology(TopologySpec::thc(4, 4))
                    .routing(RoutingKind::Deterministic),
            )
        },
    },
];

/// All registry entries, paper configurations first.
pub fn registry() -> &'static [NamedScenario] {
    &REGISTRY
}

/// Look up a registry entry by name.
pub fn named(name: &str) -> Option<Scenario> {
    REGISTRY
        .iter()
        .find(|e| e.name == name)
        .map(|e| e.scenario())
}

/// The five configurations of the paper's evaluation as registry
/// scenarios, in the paper's presentation order.
pub fn paper_scenarios() -> Vec<Scenario> {
    PAPER_FIVE
        .iter()
        .map(|n| named(n).expect("paper entry present"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_five_paper_entries_first() {
        let labels: Vec<String> = paper_scenarios()
            .iter()
            .map(|s| s.label().to_string())
            .collect();
        assert_eq!(
            labels,
            vec![
                "cube, deterministic",
                "cube, Duato",
                "fat tree, 1 vc",
                "fat tree, 2 vc",
                "fat tree, 4 vc"
            ]
        );
        for (entry, key) in registry().iter().zip(PAPER_FIVE) {
            assert_eq!(entry.name, key);
        }
    }

    #[test]
    fn registry_names_are_unique_and_buildable() {
        let mut seen = std::collections::HashSet::new();
        for e in registry() {
            assert!(seen.insert(e.name), "duplicate registry name {}", e.name);
            let s = e.scenario();
            assert!(s.topology().num_nodes() >= 16);
            let _ = s.config_at(0.5); // must not panic
        }
        assert!(named("no-such-scenario").is_none());
    }

    #[test]
    fn builder_rejects_illegal_combinations() {
        let err = |b: ScenarioBuilder| b.build().unwrap_err();
        assert_eq!(err(Scenario::builder()), ScenarioError::MissingTopology);
        assert!(matches!(
            err(Scenario::builder()
                .topology(TopologySpec::tree(4, 2))
                .routing(RoutingKind::Duato)),
            ScenarioError::UnsupportedCombination(_)
        ));
        assert!(matches!(
            err(Scenario::builder()
                .topology(TopologySpec::cube(16, 2))
                .vcs(2)),
            ScenarioError::BadVcs(_)
        ));
        assert!(matches!(
            err(Scenario::builder()
                .topology(TopologySpec::mesh(8, 2))
                .routing(RoutingKind::Adaptive)
                .vcs(1)),
            ScenarioError::BadVcs(_)
        ));
        assert!(matches!(
            err(Scenario::builder().topology(TopologySpec::cube(1, 2))),
            ScenarioError::BadShape(_)
        ));
        assert!(matches!(
            err(Scenario::builder()
                .topology(TopologySpec::mesh(10, 2))
                .pattern(Pattern::Transpose)),
            ScenarioError::BadPattern(_)
        ));
        assert!(matches!(
            err(Scenario::builder()
                .topology(TopologySpec::cube(4, 2))
                .run_length(RunLength {
                    warmup: 100,
                    total: 100
                })),
            ScenarioError::BadParameter(_)
        ));
        assert!(matches!(
            err(Scenario::builder()
                .topology(TopologySpec::cube(4, 2))
                .shards(0)),
            ScenarioError::BadParameter(_)
        ));
    }

    #[test]
    fn shards_are_an_execution_detail() {
        // Default 1, carried by the builder and with_shards, and
        // deliberately absent from the manifest (bit-identical runs
        // must produce byte-identical manifests).
        let base = named("cube-duato-tiny").unwrap();
        assert_eq!(base.shards(), 1);
        let sharded = base.clone().with_shards(4);
        assert_eq!(sharded.shards(), 4);
        assert_eq!(
            format!("{:?}", base.manifest()),
            format!("{:?}", sharded.manifest())
        );
        let built = must(
            Scenario::builder()
                .topology(TopologySpec::cube(4, 2))
                .shards(2),
        );
        assert_eq!(built.shards(), 2);
        // Sharded and serial execution agree on the outcome.
        let serial = base.simulate(0.3);
        let split = sharded.try_simulate_sharded(0.3, 2, 1).unwrap();
        assert_eq!(serial.delivered_packets, split.delivered_packets);
        assert_eq!(serial.created_packets, split.created_packets);
        assert_eq!(
            serial.accepted_fraction.to_bits(),
            split.accepted_fraction.to_bits()
        );
    }

    #[test]
    fn thread_parse_is_strict() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("").is_err());
        assert!(parse_threads("four").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("1.5").is_err());
    }

    #[test]
    fn scale_registry_entries_build() {
        for (name, nodes) in [
            ("tree-4ary-6", 4096),
            ("cube-32ary-2", 1024),
            ("tree-16k", 16384),
        ] {
            let s = named(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(s.topology().num_nodes(), nodes, "{name}");
        }
    }

    #[test]
    fn axis_names_round_trip() {
        for t in [
            TopologySpec::cube(16, 2),
            TopologySpec::tree(4, 4),
            TopologySpec::mesh(8, 3),
            TopologySpec::tapered_tree(4, 4, 2),
            TopologySpec::thc(4, 2),
        ] {
            assert_eq!(TopologySpec::parse(t.family(), t.k(), t.n()), Some(t));
        }
        assert_eq!(TopologySpec::parse("ring", 4, 1), None);
        for r in [
            RoutingKind::Deterministic,
            RoutingKind::Duato,
            RoutingKind::Adaptive,
        ] {
            assert_eq!(RoutingKind::parse(r.name()), Some(r));
        }
        assert_eq!(RoutingKind::parse("chaos"), None);
    }

    #[test]
    fn every_registered_alias_parses_to_the_slugs_spec() {
        // parse → family() → parse is a fixed point, through every alias
        // of every registered family (the aliases come from the same
        // table parse consults, so this catches a family added to the
        // registry but not mapped to a spec).
        for f in topology::families() {
            let canonical =
                TopologySpec::parse(f.slug, 4, 2).expect("every registered slug must parse");
            assert_eq!(canonical.family(), f.slug, "slug must round-trip");
            assert_eq!(
                TopologySpec::parse(canonical.family(), canonical.k(), canonical.n()),
                Some(canonical),
                "{} is not a parse fixed point",
                f.slug
            );
            for alias in f.aliases {
                assert_eq!(
                    TopologySpec::parse(alias, 4, 2),
                    Some(canonical),
                    "alias {alias} diverges from slug {}",
                    f.slug
                );
            }
        }
    }

    #[test]
    fn taper_rides_along_the_spec() {
        let t = TopologySpec::tapered_tree(4, 4, 2);
        assert_eq!(t.taper(), 2);
        assert_eq!(t.with_taper(4), Some(TopologySpec::tapered_tree(4, 4, 4)));
        // Only the tapered family carries a taper axis.
        assert_eq!(TopologySpec::cube(16, 2).taper(), 1);
        assert_eq!(TopologySpec::cube(16, 2).with_taper(2), None);
        // Parsing defaults the taper to the 2:1 oversubscription.
        assert_eq!(
            TopologySpec::parse("tapered-tree", 4, 4),
            Some(TopologySpec::tapered_tree(4, 4, 2))
        );
        // Structural accessors flow through the family table. The
        // taper shrinks the upper levels, so the tapered tree has
        // fewer switches than the full tree's 256: 8+16+32+64.
        assert_eq!(t.num_nodes(), 256);
        assert_eq!(t.num_routers(), 120);
        assert!(t.num_routers() < TopologySpec::tree(4, 4).num_routers());
        assert_eq!(t.bisection_links(), Some(16)); // (k/2) · up^(n-1) = 2 · 8
        assert_eq!(TopologySpec::thc(4, 2).num_nodes(), 64);
        assert_eq!(TopologySpec::mesh(5, 2).bisection_links(), None);
    }

    #[test]
    fn new_family_combinations_are_validated() {
        let err = |b: ScenarioBuilder| b.build().unwrap_err();
        assert!(matches!(
            err(Scenario::builder()
                .topology(TopologySpec::tapered_tree(4, 2, 2))
                .routing(RoutingKind::Duato)),
            ScenarioError::UnsupportedCombination(_)
        ));
        assert!(matches!(
            err(Scenario::builder().topology(TopologySpec::thc(4, 2)).vcs(2)),
            ScenarioError::BadVcs(_)
        ));
        assert!(matches!(
            err(Scenario::builder()
                .topology(TopologySpec::thc(4, 2))
                .routing(RoutingKind::Adaptive)),
            ScenarioError::UnsupportedCombination(_)
        ));
        // Defaults: adaptive on the tapered tree, deterministic on the THC.
        let tapered = must(Scenario::builder().topology(TopologySpec::tapered_tree(4, 2, 2)));
        assert_eq!(tapered.routing(), RoutingKind::Adaptive);
        assert_eq!(tapered.label(), "tapered tree, 4 vc (taper 2)");
        let thc = must(Scenario::builder().topology(TopologySpec::thc(4, 2)));
        assert_eq!(thc.routing(), RoutingKind::Deterministic);
        assert_eq!(thc.label(), "torus hypercube, deterministic");
        assert_eq!(thc.topology().describe(), "4x4 torus x 2-cube");
    }

    #[test]
    fn new_family_scenarios_simulate() {
        let quick = RunLength {
            warmup: 200,
            total: 1500,
        };
        let tapered = must(
            Scenario::builder()
                .topology(TopologySpec::tapered_tree(4, 2, 2))
                .vcs(2)
                .run_length(quick),
        );
        let out = tapered.simulate(0.3);
        assert!(out.delivered_packets > 0);
        assert!(out.accepted_fraction > 0.0);
        let thc = must(
            Scenario::builder()
                .topology(TopologySpec::thc(4, 2))
                .run_length(quick),
        );
        let out = thc.simulate(0.3);
        assert!(out.delivered_packets > 0);
        assert!(out.accepted_fraction > 0.0);
        // The THC inherits the cube's source-throttle threshold.
        assert_eq!(thc.config_at(0.5).injection_limit, Some(16));
        assert_eq!(tapered.config_at(0.5).injection_limit, None);
    }

    #[test]
    fn derived_timing_matches_the_papers_tables() {
        let det = named("cube-det").unwrap();
        assert!((det.normalization().timing().clock_ns() - 6.34).abs() < 0.01);
        let duato = named("cube-duato").unwrap();
        assert!((duato.normalization().timing().clock_ns() - 7.8).abs() < 0.01);
        let t2 = named("tree-2vc").unwrap();
        assert!((t2.normalization().timing().clock_ns() - 10.24).abs() < 0.01);
    }

    #[test]
    fn fixed_and_salted_seeds_behave() {
        let base = named("cube-duato").unwrap();
        let a = base.clone().config_at(0.5).seed;
        let salted = base
            .clone()
            .with_seed(SeedMode::Derived { salt: 0xDEAD })
            .config_at(0.5);
        assert_eq!(salted.seed, a ^ 0xDEAD);
        let fixed = base.with_seed(SeedMode::Fixed(42));
        assert_eq!(fixed.config_at(0.1).seed, 42);
        assert_eq!(fixed.config_at(0.9).seed, 42);
    }

    #[test]
    fn mesh_scenarios_simulate() {
        let s = must(
            Scenario::builder()
                .topology(TopologySpec::mesh(4, 2))
                .routing(RoutingKind::Adaptive)
                .vcs(2)
                .run_length(RunLength {
                    warmup: 200,
                    total: 1500,
                }),
        );
        let out = s.simulate(0.3);
        assert!(out.delivered_packets > 0);
        assert!(out.accepted_fraction > 0.0);
    }

    #[test]
    fn injection_models_hit_the_offered_rate() {
        let base = Scenario::builder().topology(TopologySpec::cube(16, 2));
        for inj in [
            InjectionModel::Bernoulli,
            InjectionModel::Periodic,
            InjectionModel::OnOff {
                mean_on: 64.0,
                mean_off: 64.0,
            },
        ] {
            let s = must(base.clone().injection(inj));
            let cfg = s.config_at(0.5);
            let rate = cfg.injection.mean_rate();
            // Periodic rounds to whole cycles; the others are exact.
            assert!(
                (rate - 0.5 * 0.5 / 16.0).abs() < 2e-4,
                "{inj:?} long-run rate {rate}"
            );
        }
    }

    #[test]
    fn faulted_scenarios_build_run_and_manifest() {
        // A plan that cannot fit the topology is rejected at build time.
        assert!(matches!(
            Scenario::builder()
                .topology(TopologySpec::cube(4, 2))
                .routing(RoutingKind::Duato)
                .faults(FaultPlan {
                    routers: 1000,
                    ..FaultPlan::default()
                })
                .build(),
            Err(ScenarioError::BadFaults(_))
        ));
        // A registry fault entry runs and accounts for every packet.
        let s = named("cube-duato-5pct")
            .unwrap()
            .with_run_length(RunLength::quick());
        let out = s.try_simulate(0.3).unwrap();
        assert!(out.delivered_packets > 0);
        assert!(out.dropped_packets + out.unroutable_packets > 0);
        // Its manifest names the plan.
        let m = s.manifest().to_json();
        for needle in ["\"faults\"", "\"spec\": \"links=0.05\"", "\"dead_links\":"] {
            assert!(m.contains(needle), "manifest missing {needle}:\n{m}");
        }
        // Stripping the plan restores the healthy scenario.
        let healthy = s.with_faults(None).unwrap();
        assert!(healthy.faults().is_none());
        assert!(!healthy.manifest().to_json().contains("\"faults\""));
    }

    #[test]
    fn manifest_names_the_load_bearing_fields() {
        let m = named("tree-4vc").unwrap().manifest().to_json();
        for needle in [
            "\"label\": \"fat tree, 4 vc\"",
            "\"topology\": \"4-ary 4-tree\"",
            "\"routing\": \"adaptive\"",
            "\"vcs\": 4",
            "\"clock_ns\":",
            "\"seed\": \"derived^0x0000000000000000\"",
            "\"throttle\": \"auto\"",
        ] {
            assert!(m.contains(needle), "manifest missing {needle}:\n{m}");
        }
    }
}
