//! Flit-level wormhole network simulator — the SMART reproduction.
//!
//! This crate is the core of the reproduction: a cycle-driven simulation
//! of the router model of Section 4 of the paper, faithful to its
//! stated behaviour:
//!
//! * bidirectional physical channels, each direction carrying `V`
//!   virtual channels with a 4-flit **input lane** and a 4-flit
//!   **output lane** per virtual channel;
//! * **credit-based flow control**: every output lane holds a counter
//!   initialized with the buffer count of the downstream input lane,
//!   decremented when a flit crosses the link and incremented when an
//!   acknowledgment reports a freed buffer;
//! * a **crossbar** whose input→output path is established by the
//!   routing decision and held until the tail flit of the packet passes;
//! * at most **one header routed per switch per cycle** (`T_routing`),
//!   one flit per lane per cycle through the crossbar (`T_crossbar`),
//!   and one flit per physical-channel direction per cycle on the link
//!   (`T_link`), with every stage equalized to a single clock as in
//!   Section 5;
//! * a **single injection channel** per node (source throttling): one
//!   packet streams from the processor into the router at a time;
//! * an **arbiter with a fair (round-robin) policy** wherever multiple
//!   lanes compete for one resource;
//! * the adaptive selection policy of Section 2: among admissible links
//!   "pick the less loaded link, that is the link that has the maximum
//!   number of free virtual channels (a fair choice is made when more
//!   links are in a similar state)"; for Duato's algorithm the escape
//!   lane is used only when every adaptive candidate is unavailable.
//!
//! Statistics follow Section 6: a 2000-cycle warm-up, measurement until
//! cycle 20000, accepted bandwidth as delivered flits per node per cycle
//! and network latency from the insertion of the header flit in the
//! injection lane to the reception of the tail flit (source queueing
//! time excluded).
//!
//! The [`scenario`] module is the compositional experiment layer: a
//! validated [`Scenario`] per design point
//! (topology × routing × VCs × pattern × injection × seeding), a
//! named-scenario registry holding the paper's five configurations, and
//! multi-threaded load sweeps producing the CNF curves of Figures 5–7.
//! The [`experiment`] module is the historical harness interface, now a
//! thin wrapper over scenarios.
//!
//! Observability: the engine is generic over a [`telemetry::Probe`]
//! (default `NullProbe`, compiled to a no-op), so
//! [`Scenario::simulate_traced`](scenario::Scenario::simulate_traced)
//! and [`sim::run_simulation_probed`] can record per-packet latency
//! decompositions, channel-utilization time series and lifecycle event
//! traces without perturbing — or slowing — untraced runs.
//!
//! Degradation: the [`fault`] module adds deterministic link/router
//! fault injection behind the same zero-cost pattern (the engine is
//! generic over a [`fault::FaultModel`], default
//! [`fault::NoFaults`]); undeliverable packets are drained and counted
//! rather than hanging the run.
//!
//! ```
//! use netsim::scenario::named;
//!
//! // Build one of the paper's five configurations from the registry
//! // and simulate a light load.
//! let scenario = named("cube-duato-tiny").unwrap();
//! let outcome = scenario.simulate(0.2);
//! assert!(outcome.delivered_packets > 0);
//! assert_eq!(outcome.dropped_packets, 0); // no faults attached
//! ```

#![warn(missing_docs)]
pub mod active;
pub mod engine;
pub mod experiment;
pub mod fault;
pub mod flit;
pub mod queue;
pub mod scenario;
pub mod sim;
pub mod wiring;

pub use engine::shard::ShardPlan;
pub use experiment::{
    simulate_load, sweep, sweep_outcomes, sweep_outcomes_salted, CubeParams, ExperimentSpec,
    RunLength, SpecVisitor, TreeParams,
};
pub use fault::{FaultError, FaultModel, FaultPlan, FaultState, NoFaults};
pub use scenario::{
    derived_seed, named, paper_scenarios, parse_threads, registry, InjectionModel, NamedScenario,
    RoutingKind, Scenario, ScenarioBuilder, ScenarioError, SeedMode, Throttle, TopologySpec,
};
pub use sim::{run_simulation_probed, SimConfig, SimError, SimOutcome};
pub use telemetry;

/// Engine build-configuration flags, for run manifests: feature name →
/// enabled. Currently the only engine-affecting feature is
/// `reference-engine` (the pre-active-set cycle loop).
pub fn engine_features() -> Vec<(&'static str, bool)> {
    vec![("reference-engine", cfg!(feature = "reference-engine"))]
}
