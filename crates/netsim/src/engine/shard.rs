//! Sharded intra-run stepping: domain decomposition of one engine
//! cycle across worker threads with deterministic phase barriers.
//!
//! [`Engine::step_sharded`] partitions routers (and, independently,
//! nodes) into `S` contiguous, 64-aligned id ranges and runs each
//! engine phase shard-parallel. Every cross-shard effect is carried
//! through per-`(src-shard, dst-shard)` handoff queues that a serial
//! barrier drains in a fixed total order — destination-shard major,
//! source-shard minor, record order within a queue — so the result is
//! **bit-identical** to [`Engine::step`]: counters, the packet table,
//! RNG consumption order, and the telemetry event stream.
//! `tests/engine_equivalence.rs` enforces this the same way it pins the
//! active-set stepper to the reference stepper.
//!
//! # Why each phase decomposes
//!
//! * **Link** — a worker owns its routers' *send* side outright; the
//!   receive side of an intra-shard hop is applied immediately (the
//!   worker is the destination's single writer too), while a
//!   cross-shard hop defers the receive to the barrier. Each
//!   destination input lane has exactly one upstream source, so at most
//!   one flit arrives per lane per cycle and receive application is
//!   order-free; the only order-sensitive observables — probe events —
//!   are buffered per shard and replayed in shard order, which *is* the
//!   serial ascending-id emission order. Node injection links use the
//!   same handoff mechanism (nodes are ranged independently of their
//!   attached routers).
//! * **Crossbar** — all mutations are router-local except the one-flit
//!   credit acknowledgment, which is deferred when cross-shard (and for
//!   every node-side credit, since crossbar workers own no nodes);
//!   nothing in the phase reads a credit count, so deferral is
//!   unobservable. The phase makes no probe calls.
//! * **Routing** — the *preparation* (round-robin pending-lane scan and
//!   the routing-function call) is a pure function of pre-phase state
//!   and runs shard-parallel; the *selection* consumes the engine's
//!   single shared RNG stream (the fair tie-break of the selection
//!   policy) and therefore runs serially at the barrier, in ascending
//!   router order — exactly the serial stepper's consumption order.
//! * **Injection** — the per-node creation processes tick their
//!   node-local RNGs shard-parallel; packet-id assignment, source
//!   queueing and flit streaming run serially (ids are global sequence
//!   numbers and the probe observes them in node order).
//!
//! `shards <= 1` falls straight through to [`Engine::step`], so the
//! default path remains the serial hot loop, untouched.

use super::{Counters, Engine, NodeState, RouterState, Stall, DROP_ROUTE, NO_ROUTE};
use crate::fault::FaultModel;
use crate::flit::{Flit, PacketRec, HEAD, NEVER, TAIL};
use crate::wiring::{Peer, Wiring};
use routing::{CandidateSet, RoutingAlgorithm};
use telemetry::{LinkKind, Probe};
use topology::{NodeId, RouterId};
use traffic::TrafficGen;

/// The shard decomposition of one engine plus its reusable per-shard
/// scratch state (handoff queues, probe-event buffers, candidate
/// pools). Build one with [`Engine::shard_plan`] and feed it to
/// [`Engine::step_sharded`] / [`Engine::run_sharded`]; it is only valid
/// for engines of the same topology it was built from.
pub struct ShardPlan {
    /// Effective shard count (after clamping to the router count).
    shards: usize,
    /// Worker threads: `<= 1` runs every shard on the calling thread
    /// (in ascending shard order — bit-identical by construction),
    /// `> 1` spawns one scoped thread per shard per phase.
    threads: usize,
    /// Router id boundaries, `shards + 1` entries; interior boundaries
    /// are multiples of 64 so the worklist bitset words split exactly.
    router_starts: Vec<usize>,
    /// Node id boundaries, aligned the same way (independent of router
    /// attachment: a shard's nodes need not hang off its routers).
    node_starts: Vec<usize>,
    /// `router_starts[i] / 64` (worklist word boundaries).
    router_word_starts: Vec<usize>,
    /// `node_starts[i] / 64`.
    node_word_starts: Vec<usize>,
    /// `router_starts[i] * ports` (per-channel counter boundaries).
    link_flit_starts: Vec<usize>,
    /// Per-shard scratch, reused across cycles.
    scratch: Vec<ShardScratch>,
}

impl ShardPlan {
    /// Effective shard count (requests beyond the router count are
    /// clamped at construction).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Worker-thread setting (`<= 1` = run shards on the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Per-shard scratch: everything a worker produces for the barrier to
/// consume. All queues are drained every cycle, so the allocations are
/// reused for the lifetime of the plan.
struct ShardScratch {
    /// Cross-shard flit arrivals, one queue per destination shard:
    /// `(dst router, dst input lane, flit)`. The flit's `moved` stamp
    /// is set by the sender, exactly as on an intra-shard hop.
    flits_out: Vec<Vec<(u32, u16, Flit)>>,
    /// Cross-shard credit acknowledgments, per destination shard:
    /// `(router, output lane)`.
    credits_out: Vec<Vec<(u32, u16)>>,
    /// Node-side credit acknowledgments `(node, vc)` — always deferred
    /// (crossbar workers own routers, not nodes).
    node_credits: Vec<(u32, u8)>,
    /// Packets whose tail was ejected this cycle; the `delivered` stamp
    /// is applied at the barrier so the packet table stays read-only
    /// during the parallel phase.
    delivered: Vec<u32>,
    /// Delivered requests awaiting reply creation (request-reply mode).
    replies: Vec<u32>,
    /// Probe events from the router leg of the link phase, in emission
    /// order (replayed shard-ascending = serial router order).
    router_events: Vec<LinkEvent>,
    /// Probe events from the node (injection) leg of the link phase.
    node_events: Vec<LinkEvent>,
    /// Routing decisions prepared by this shard, ascending router order.
    decisions: Vec<RouteDecision>,
    /// Reusable candidate-set allocations for `decisions`.
    cand_pool: Vec<CandidateSet>,
    /// Packet creations from the injection tick pass: `(node, dest)`.
    creations: Vec<(u32, u32)>,
    /// Counter deltas. Decrements (e.g. `in_flight_flits` on ejection)
    /// wrap below the zero-initialized delta and are reconciled by the
    /// wrapping merge in [`Engine::merge_shard_counters`].
    counters: Counters,
    /// Flit movements executed by this shard this cycle.
    moves: u64,
}

impl ShardScratch {
    fn new(shards: usize) -> Self {
        ShardScratch {
            flits_out: (0..shards).map(|_| Vec::new()).collect(),
            credits_out: (0..shards).map(|_| Vec::new()).collect(),
            node_credits: Vec::new(),
            delivered: Vec::new(),
            replies: Vec::new(),
            router_events: Vec::new(),
            node_events: Vec::new(),
            decisions: Vec::new(),
            cand_pool: Vec::new(),
            creations: Vec::new(),
            counters: Counters::default(),
            moves: 0,
        }
    }
}

/// A buffered probe observation from the link phase (the only parallel
/// phase that makes probe calls). Replayed on the stepping thread, so
/// probes need not be `Send`.
enum LinkEvent {
    /// `Probe::link_flit`.
    Link {
        packet: u32,
        router: u32,
        port: u16,
        vc: u8,
        kind: LinkKind,
    },
    /// `Probe::packet_delivered` (emitted right after the tail's
    /// ejection `Link` event, as in the serial handler).
    Delivered { packet: u32, node: u32 },
    /// `Probe::injection_flit`.
    Injection { packet: u32, node: u32, vc: u8 },
}

/// One prepared routing decision: everything `route_lane` computes
/// before the RNG-consuming output selection.
struct RouteDecision {
    router: u32,
    lane: u8,
    packet: u32,
    /// Fault-plane dead end: drop instead of selecting.
    unroutable: bool,
    /// At least one candidate direction is transiently down (reroute
    /// telemetry).
    degraded: bool,
    cand: CandidateSet,
}

/// 64-aligned boundary table: `shards + 1` monotone offsets into
/// `0..len` whose interior entries are multiples of 64. Later shards
/// may receive empty ranges when there are fewer id words than shards.
fn aligned_starts(len: usize, shards: usize) -> Vec<usize> {
    let words = len.div_ceil(64);
    (0..=shards)
        .map(|i| ((words * i).div_ceil(shards) * 64).min(len))
        .collect()
}

/// Split `s` into the consecutive sub-slices delimited by `starts`
/// (`starts[0] == 0`, `starts.last() == s.len()`).
fn split_mut<'s, T>(mut s: &'s mut [T], starts: &[usize]) -> Vec<&'s mut [T]> {
    let mut out = Vec::with_capacity(starts.len().saturating_sub(1));
    let mut prev = 0;
    for &b in &starts[1..] {
        let (head, tail) = s.split_at_mut(b - prev);
        out.push(head);
        s = tail;
        prev = b;
    }
    out
}

/// The shard owning `id` under boundary table `starts`.
#[inline]
fn shard_of(starts: &[usize], id: usize) -> usize {
    debug_assert!(id < *starts.last().expect("non-empty boundary table"));
    starts.partition_point(|&s| s <= id) - 1
}

/// Set bit `id` in a worklist word slice whose first word covers ids
/// `word_base * 64 ..`.
#[inline]
fn set_bit(words: &mut [u64], word_base: usize, id: usize) {
    words[(id >> 6) - word_base] |= 1u64 << (id & 63);
}

/// Clear bit `id`, same addressing as [`set_bit`].
#[inline]
fn clear_bit(words: &mut [u64], word_base: usize, id: usize) {
    words[(id >> 6) - word_base] &= !(1u64 << (id & 63));
}

/// Run one closure per shard context: on the calling thread in
/// ascending shard order when `threads <= 1`, else on one scoped worker
/// thread per shard. Both modes execute the identical worker code; the
/// barriers around this call are what make the schedule unobservable.
fn run_shards<C: Send, W: Fn(&mut C) + Sync>(threads: usize, ctxs: &mut [C], work: W) {
    if threads <= 1 {
        for c in ctxs.iter_mut() {
            work(c);
        }
    } else {
        let work = &work;
        std::thread::scope(|s| {
            for c in ctxs.iter_mut() {
                s.spawn(move || work(c));
            }
        });
    }
}

// ---------------------------------------------------------------------
// Phase 1: link.
// ---------------------------------------------------------------------

/// Shared (read-only) link-phase environment.
struct LinkEnv<'e, F> {
    w: &'e Wiring,
    faults: &'e F,
    packets: &'e [PacketRec],
    router_starts: &'e [usize],
    cycle: u32,
    vcs: usize,
    request_reply: bool,
}

/// One link-phase worker's exclusive state.
struct LinkShard<'e> {
    router_base: usize,
    node_base: usize,
    routers: &'e mut [RouterState],
    nodes: &'e mut [NodeState],
    link_flits: &'e mut [u64],
    link_words: &'e mut [u64],
    route_words: &'e mut [u64],
    xbar_words: &'e mut [u64],
    inject_words: &'e mut [u64],
    scratch: &'e mut ShardScratch,
}

/// Mirror of the serial stepper's link-phase worklist walk, restricted
/// to one shard's router and node word ranges.
fn link_worker<F: FaultModel>(env: &LinkEnv<'_, F>, sh: &mut LinkShard<'_>) {
    let rword_base = sh.router_base >> 6;
    for wi in 0..sh.link_words.len() {
        let mut bits = sh.link_words[wi];
        while bits != 0 {
            let r = ((rword_base + wi) << 6) + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            link_router_sharded(env, sh, r);
            if sh.routers[r - sh.router_base].out_occ == 0 {
                clear_bit(sh.link_words, rword_base, r);
            }
        }
    }
    let nword_base = sh.node_base >> 6;
    for wi in 0..sh.inject_words.len() {
        let mut bits = sh.inject_words[wi];
        while bits != 0 {
            let n = ((nword_base + wi) << 6) + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            link_node_sharded(env, sh, n);
            if sh.nodes[n - sh.node_base].lane_occ == 0 {
                clear_bit(sh.inject_words, nword_base, n);
            }
        }
    }
}

/// Shard mirror of `Engine::link_router::<true>`: identical mutations
/// on the send side; intra-shard receives applied inline, cross-shard
/// receives handed off; probe calls and packet/counter writes buffered.
fn link_router_sharded<F: FaultModel>(env: &LinkEnv<'_, F>, sh: &mut LinkShard<'_>, r: usize) {
    let cycle = env.cycle;
    let vcs = env.vcs;
    let ports = env.w.ports;
    let port_lanes = (1u64 << vcs) - 1;
    let rbase = sh.router_base;
    let rend = rbase + sh.routers.len();
    let rword_base = rbase >> 6;
    for p in 0..ports {
        if F::ACTIVE && env.faults.channel_down(r, p) {
            continue; // channel down: nothing crosses this cycle
        }
        if sh.routers[r - rbase].out_occ & (port_lanes << (p * vcs)) == 0 {
            continue; // nothing buffered towards this direction
        }
        match env.w.peer(r, p) {
            Peer::None => {
                debug_assert!(false, "flit buffered on an uncabled port");
            }
            Peer::Node(node) => {
                // Ejection: the node always sinks (no credits).
                let rs = &mut sh.routers[r - rbase];
                let start = rs.link_rr[p] as usize;
                for i in 0..vcs {
                    let v = (start + i) % vcs;
                    let l = p * vcs + v;
                    if rs.out_occ & (1u64 << l) == 0 {
                        continue;
                    }
                    let ready = matches!(rs.out_q[l].front(),
                            Some(f) if f.moved < cycle);
                    if ready {
                        let f = rs.out_q[l].pop().unwrap();
                        if rs.out_q[l].is_empty() {
                            rs.out_occ &= !(1u64 << l);
                        }
                        rs.link_rr[p] = ((v + 1) % vcs) as u8;
                        sh.link_flits[(r - rbase) * ports + p] += 1;
                        sh.scratch.counters.delivered_flits += 1;
                        sh.scratch.counters.in_flight_flits =
                            sh.scratch.counters.in_flight_flits.wrapping_sub(1);
                        sh.scratch.moves += 1;
                        sh.scratch.router_events.push(LinkEvent::Link {
                            packet: f.packet,
                            router: r as u32,
                            port: p as u16,
                            vc: v as u8,
                            kind: LinkKind::Ejection,
                        });
                        if f.is_tail() {
                            let rec = &env.packets[f.packet as usize];
                            debug_assert_eq!(rec.delivered, NEVER);
                            sh.scratch.delivered.push(f.packet);
                            let reply = env.request_reply && !rec.is_reply();
                            sh.scratch.counters.delivered_packets += 1;
                            if reply {
                                sh.scratch.replies.push(f.packet);
                            }
                            sh.scratch.router_events.push(LinkEvent::Delivered {
                                packet: f.packet,
                                node,
                            });
                        }
                        break;
                    }
                }
            }
            Peer::Router {
                router: r2,
                port: p2,
            } => {
                let (r2, p2) = (r2 as usize, p2 as usize);
                debug_assert_ne!(r, r2);
                if r2 >= rbase && r2 < rend {
                    // Intra-shard hop: the serial handler, verbatim.
                    let [rs, dst] = sh
                        .routers
                        .get_disjoint_mut([r - rbase, r2 - rbase])
                        .expect("distinct routers");
                    let start = rs.link_rr[p] as usize;
                    for i in 0..vcs {
                        let v = (start + i) % vcs;
                        let l = p * vcs + v;
                        if rs.out_occ & (1u64 << l) == 0 {
                            continue;
                        }
                        let ready = rs.out_credits[l] > 0
                            && matches!(rs.out_q[l].front(), Some(f) if f.moved < cycle);
                        if ready {
                            let mut f = rs.out_q[l].pop().unwrap();
                            if rs.out_q[l].is_empty() {
                                rs.out_occ &= !(1u64 << l);
                            }
                            rs.out_credits[l] -= 1;
                            rs.link_rr[p] = ((v + 1) % vcs) as u8;
                            sh.link_flits[(r - rbase) * ports + p] += 1;
                            f.moved = cycle;
                            let dl = p2 * vcs + v;
                            let was_empty = dst.in_q[dl].is_empty();
                            dst.in_q[dl].push(f);
                            dst.in_occ |= 1u64 << dl;
                            if was_empty && f.is_head() {
                                debug_assert_eq!(dst.in_route[dl], NO_ROUTE);
                                dst.pending |= 1 << dl;
                                set_bit(sh.route_words, rword_base, r2);
                            }
                            if dst.routed & (1u64 << dl) != 0 {
                                set_bit(sh.xbar_words, rword_base, r2);
                            }
                            sh.scratch.moves += 1;
                            sh.scratch.router_events.push(LinkEvent::Link {
                                packet: f.packet,
                                router: r as u32,
                                port: p as u16,
                                vc: v as u8,
                                kind: LinkKind::Network,
                            });
                            break;
                        }
                    }
                } else {
                    // Cross-shard hop: readiness depends only on the
                    // send side (credits stand in for receiver state),
                    // so the receive is deferred whole to the barrier.
                    let rs = &mut sh.routers[r - rbase];
                    let start = rs.link_rr[p] as usize;
                    for i in 0..vcs {
                        let v = (start + i) % vcs;
                        let l = p * vcs + v;
                        if rs.out_occ & (1u64 << l) == 0 {
                            continue;
                        }
                        let ready = rs.out_credits[l] > 0
                            && matches!(rs.out_q[l].front(), Some(f) if f.moved < cycle);
                        if ready {
                            let mut f = rs.out_q[l].pop().unwrap();
                            if rs.out_q[l].is_empty() {
                                rs.out_occ &= !(1u64 << l);
                            }
                            rs.out_credits[l] -= 1;
                            rs.link_rr[p] = ((v + 1) % vcs) as u8;
                            sh.link_flits[(r - rbase) * ports + p] += 1;
                            f.moved = cycle;
                            let dl = p2 * vcs + v;
                            let dst_shard = shard_of(env.router_starts, r2);
                            sh.scratch.flits_out[dst_shard].push((r2 as u32, dl as u16, f));
                            sh.scratch.moves += 1;
                            sh.scratch.router_events.push(LinkEvent::Link {
                                packet: f.packet,
                                router: r as u32,
                                port: p as u16,
                                vc: v as u8,
                                kind: LinkKind::Network,
                            });
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Shard mirror of `Engine::link_node::<true>`. The attached router is
/// looked up against this shard's *router* range (node and router
/// ranges are independent); a cross-shard push rides the same handoff
/// queue as a router-to-router hop.
fn link_node_sharded<F: FaultModel>(env: &LinkEnv<'_, F>, sh: &mut LinkShard<'_>, n: usize) {
    if F::ACTIVE && env.faults.node_dead(n) {
        return; // dead node: its injection channel carries nothing
    }
    let cycle = env.cycle;
    let vcs = env.vcs;
    let (r, p) = env.w.node_ports[n];
    let (r, p) = (r as usize, p as usize);
    let rbase = sh.router_base;
    let rend = rbase + sh.routers.len();
    let ns = &mut sh.nodes[n - sh.node_base];
    let start = ns.lane_rr as usize;
    for i in 0..vcs {
        let v = (start + i) % vcs;
        if ns.lane_occ & (1u64 << v) == 0 {
            continue;
        }
        let ready = ns.credits[v] > 0 && matches!(ns.lanes[v].front(), Some(f) if f.moved < cycle);
        if ready {
            let mut f = ns.lanes[v].pop().unwrap();
            if ns.lanes[v].is_empty() {
                ns.lane_occ &= !(1u64 << v);
            }
            ns.credits[v] -= 1;
            ns.lane_rr = ((v + 1) % vcs) as u8;
            f.moved = cycle;
            let dl = p * vcs + v;
            if r >= rbase && r < rend {
                let rs = &mut sh.routers[r - rbase];
                let was_empty = rs.in_q[dl].is_empty();
                rs.in_q[dl].push(f);
                rs.in_occ |= 1u64 << dl;
                if was_empty && f.is_head() {
                    rs.pending |= 1 << dl;
                    set_bit(sh.route_words, rbase >> 6, r);
                }
                if rs.routed & (1u64 << dl) != 0 {
                    set_bit(sh.xbar_words, rbase >> 6, r);
                }
            } else {
                let dst_shard = shard_of(env.router_starts, r);
                sh.scratch.flits_out[dst_shard].push((r as u32, dl as u16, f));
            }
            sh.scratch.moves += 1;
            sh.scratch.node_events.push(LinkEvent::Injection {
                packet: f.packet,
                node: n as u32,
                vc: v as u8,
            });
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Phase 2: crossbar.
// ---------------------------------------------------------------------

/// Shared crossbar-phase environment.
struct XbarEnv<'e> {
    w: &'e Wiring,
    router_starts: &'e [usize],
    cycle: u32,
    vcs: usize,
    lanes_per_router: usize,
}

/// One crossbar worker's exclusive state.
struct XbarShard<'e> {
    router_base: usize,
    routers: &'e mut [RouterState],
    link_words: &'e mut [u64],
    route_words: &'e mut [u64],
    xbar_words: &'e mut [u64],
    scratch: &'e mut ShardScratch,
}

/// Mirror of the serial crossbar worklist walk for one shard.
fn xbar_worker<F: FaultModel>(env: &XbarEnv<'_>, sh: &mut XbarShard<'_>) {
    let word_base = sh.router_base >> 6;
    for wi in 0..sh.xbar_words.len() {
        let mut bits = sh.xbar_words[wi];
        while bits != 0 {
            let r = ((word_base + wi) << 6) + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            // Snapshot, as in the serial handler: lanes cannot become
            // forwardable during the phase.
            let mut mask = {
                let rs = &sh.routers[r - sh.router_base];
                rs.in_occ & rs.routed
            };
            while mask != 0 {
                let l = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                xbar_lane_sharded::<F>(env, sh, r, l);
            }
            let rs = &sh.routers[r - sh.router_base];
            if rs.in_occ & rs.routed == 0 {
                clear_bit(sh.xbar_words, word_base, r);
            }
        }
    }
}

/// Shard mirror of `Engine::xbar_lane` + `Engine::drain_lane`: all
/// mutations are router-local except the upstream credit, which is
/// returned inline intra-shard and deferred otherwise (node credits
/// always deferred). No probe calls in this phase.
fn xbar_lane_sharded<F: FaultModel>(env: &XbarEnv<'_>, sh: &mut XbarShard<'_>, r: usize, l: usize) {
    let cycle = env.cycle;
    let vcs = env.vcs;
    let rbase = sh.router_base;
    let rend = rbase + sh.routers.len();
    let draining = F::ACTIVE && sh.routers[r - rbase].in_route[l] == DROP_ROUTE;
    {
        let rs = &mut sh.routers[r - rbase];
        if draining {
            // Fault-plane drain: sink one flit, credits still returned.
            let movable = matches!(rs.in_q[l].front(), Some(f) if f.moved < cycle);
            if !movable {
                return;
            }
            let f = rs.in_q[l].pop().unwrap();
            if rs.in_q[l].is_empty() {
                rs.in_occ &= !(1u64 << l);
            }
            sh.scratch.counters.in_flight_flits =
                sh.scratch.counters.in_flight_flits.wrapping_sub(1);
            sh.scratch.counters.dropped_flits += 1;
            sh.scratch.moves += 1;
            if f.is_tail() {
                rs.in_route[l] = NO_ROUTE;
                rs.routed &= !(1u64 << l);
                if matches!(rs.in_q[l].front(), Some(nf) if nf.is_head()) {
                    rs.pending |= 1 << l;
                    set_bit(sh.route_words, rbase >> 6, r);
                }
            }
        } else {
            let route = rs.in_route[l];
            debug_assert_ne!(route, NO_ROUTE);
            let movable = matches!(rs.in_q[l].front(), Some(f) if f.moved < cycle)
                && !rs.out_q[route as usize].is_full();
            if !movable {
                return;
            }
            let mut f = rs.in_q[l].pop().unwrap();
            if rs.in_q[l].is_empty() {
                rs.in_occ &= !(1u64 << l);
            }
            f.moved = cycle;
            rs.out_q[route as usize].push(f);
            rs.out_occ |= 1u64 << route;
            set_bit(sh.link_words, rbase >> 6, r);
            sh.scratch.moves += 1;
            if f.is_tail() {
                rs.in_route[l] = NO_ROUTE;
                rs.routed &= !(1u64 << l);
                rs.out_bound &= !(1u64 << route);
                if matches!(rs.in_q[l].front(), Some(nf) if nf.is_head()) {
                    rs.pending |= 1 << l;
                    set_bit(sh.route_words, rbase >> 6, r);
                }
            }
        }
    }
    // Acknowledgment: one buffer freed in this input lane.
    let (p, v) = (l / vcs, l % vcs);
    match env.w.peer(r, p) {
        Peer::Router {
            router: r2,
            port: p2,
        } => {
            let ul = p2 as usize * vcs + v;
            let r2 = r2 as usize;
            if r2 >= rbase && r2 < rend {
                let up = &mut sh.routers[r2 - rbase];
                up.out_credits[ul] += 1;
                debug_assert!(up.out_credits[ul] as usize <= up.out_q[ul].capacity());
            } else {
                let dst_shard = shard_of(env.router_starts, r2);
                sh.scratch.credits_out[dst_shard].push((r2 as u32, ul as u16));
            }
        }
        Peer::Node(nn) => {
            sh.scratch.node_credits.push((nn, v as u8));
        }
        Peer::None => unreachable!("flit arrived through an uncabled port"),
    }
    debug_assert!(l < env.lanes_per_router);
}

// ---------------------------------------------------------------------
// Phase 3: routing (parallel preparation, serial selection).
// ---------------------------------------------------------------------

/// Shared routing-preparation environment (entirely read-only: the
/// phase writes nothing but its own decision list).
struct RouteEnv<'e, A: ?Sized, F> {
    routers: &'e [RouterState],
    route_words: &'e [u64],
    packets: &'e [PacketRec],
    algo: &'e A,
    faults: &'e F,
    cycle: u32,
    vcs: usize,
}

/// One routing-preparation worker's exclusive state.
struct RouteShard<'e> {
    /// Word range `[word_lo, word_hi)` of `route_words` owned here.
    word_lo: usize,
    word_hi: usize,
    scratch: &'e mut ShardScratch,
}

/// Mirror of the serial routing phase up to (not including) the
/// RNG-consuming output selection: scan the round-robin pending order
/// for the first visible header, call the routing function, and record
/// the decision for the barrier to select and apply in serial order.
fn route_prepare_worker<A: RoutingAlgorithm + ?Sized, F: FaultModel>(
    env: &RouteEnv<'_, A, F>,
    sh: &mut RouteShard<'_>,
) {
    for wi in sh.word_lo..sh.word_hi {
        let mut bits = env.route_words[wi];
        while bits != 0 {
            let r = (wi << 6) + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            prepare_router(env, sh, r);
        }
    }
}

/// The per-router preparation: same lane visit order as
/// `Engine::route_router::<true>` / `Engine::route_lane`.
fn prepare_router<A: RoutingAlgorithm + ?Sized, F: FaultModel>(
    env: &RouteEnv<'_, A, F>,
    sh: &mut RouteShard<'_>,
    r: usize,
) {
    let rs = &env.routers[r];
    let pending = rs.pending;
    debug_assert_ne!(
        pending, 0,
        "router on routing worklist without pending header"
    );
    let start = rs.route_rr as usize;
    let below_start = (1u64 << start) - 1;
    'scan: for part in [pending & !below_start, pending & below_start] {
        let mut bits = part;
        while bits != 0 {
            let l = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let front = *rs.in_q[l].front().expect("pending lane must hold a flit");
            debug_assert!(front.is_head(), "pending lane front must be a header");
            if front.moved >= env.cycle {
                // Arrived this very cycle; visible next cycle — the
                // serial scan tries the next pending lane.
                continue;
            }
            let dest = env.packets[front.packet as usize].dest;
            let in_port = l / env.vcs;
            let mut cand = sh.scratch.cand_pool.pop().unwrap_or_default();
            env.algo
                .route(RouterId(r as u32), Some(in_port), NodeId(dest), &mut cand);
            debug_assert!(!cand.is_empty(), "routing function returned no candidate");
            let unroutable = F::ACTIVE && fault_unroutable(env.faults, r, &cand);
            let degraded = !unroutable
                && F::ACTIVE
                && cand
                    .preferred
                    .iter()
                    .chain(cand.fallback.iter())
                    .any(|c| env.faults.channel_down(r, c.port as usize));
            sh.scratch.decisions.push(RouteDecision {
                router: r as u32,
                lane: l as u8,
                packet: front.packet,
                unroutable,
                degraded,
                cand,
            });
            break 'scan;
        }
    }
}

/// Free-function twin of `Engine::fault_unroutable` (the worker has no
/// engine reference).
fn fault_unroutable<F: FaultModel>(faults: &F, r: usize, cand: &CandidateSet) -> bool {
    let dead = |c: &routing::Candidate| faults.channel_dead(r, c.port as usize);
    if !cand.fallback.is_empty() {
        cand.fallback.iter().all(dead)
    } else {
        cand.preferred.iter().all(dead)
    }
}

// ---------------------------------------------------------------------
// Phase 4: injection (parallel creation ticks, serial remainder).
// ---------------------------------------------------------------------

/// One injection-tick worker's exclusive state.
struct TickShard<'e> {
    node_base: usize,
    nodes: &'e mut [NodeState],
    scratch: &'e mut ShardScratch,
}

/// Advance every node's creation process one cycle and record the
/// `(node, destination)` of each created packet. Only node-local RNG
/// streams are consumed, in the same per-node order as the serial
/// stepper; hoisting the ticks ahead of the serial remainder is
/// unobservable because nothing later in the phase touches them.
fn tick_worker(pattern: &TrafficGen, sh: &mut TickShard<'_>) {
    for (i, ns) in sh.nodes.iter_mut().enumerate() {
        if ns.proc.tick(&mut ns.rng) {
            let n = (sh.node_base + i) as u32;
            if let Some(dest) = pattern.dest(NodeId(n), &mut ns.rng) {
                sh.scratch.creations.push((n, dest.0));
            }
        }
    }
}

// ---------------------------------------------------------------------
// The sharded stepper.
// ---------------------------------------------------------------------

impl<'a, A: RoutingAlgorithm + ?Sized, P: Probe, F: FaultModel> Engine<'a, A, P, F> {
    /// Build a shard decomposition of this engine: `shards` contiguous,
    /// 64-aligned router ranges (nodes are ranged independently) plus
    /// the per-shard scratch the sharded stepper reuses across cycles.
    ///
    /// A request beyond the router count is clamped (with a warning on
    /// stderr) rather than rejected, so tiny topologies keep working
    /// under a blanket `--shards` setting. `threads <= 1` runs every
    /// shard on the calling thread; `> 1` spawns one scoped thread per
    /// shard per phase. Either way the outcome is bit-identical.
    pub fn shard_plan(&self, shards: usize, threads: usize) -> ShardPlan {
        let want = shards.max(1);
        let cap = self.w.num_routers.max(1);
        let shards = if want > cap {
            eprintln!(
                "warning: {want} shards exceed the {cap} router(s) of this topology; \
                 clamping to {cap}"
            );
            cap
        } else {
            want
        };
        let router_starts = aligned_starts(self.w.num_routers, shards);
        let node_starts = aligned_starts(self.w.num_nodes, shards);
        let router_word_starts: Vec<usize> = router_starts.iter().map(|s| s.div_ceil(64)).collect();
        let node_word_starts: Vec<usize> = node_starts.iter().map(|s| s.div_ceil(64)).collect();
        let link_flit_starts: Vec<usize> = router_starts.iter().map(|s| s * self.w.ports).collect();
        ShardPlan {
            shards,
            threads: threads.max(1),
            router_starts,
            node_starts,
            router_word_starts,
            node_word_starts,
            link_flit_starts,
            scratch: (0..shards).map(|_| ShardScratch::new(shards)).collect(),
        }
    }

    /// Execute one clock cycle with the sharded stepper. Bit-identical
    /// to [`Engine::step`] for every shard/thread count; `shards <= 1`
    /// *is* [`Engine::step`]. The plan must have been built by
    /// [`Engine::shard_plan`] on an engine of the same topology.
    pub fn step_sharded(&mut self, plan: &mut ShardPlan)
    where
        F: Sync,
    {
        if plan.shards <= 1 {
            self.step();
            return;
        }
        debug_assert_eq!(
            *plan.router_starts.last().unwrap(),
            self.w.num_routers,
            "shard plan built for a different topology"
        );

        self.moves_this_cycle = 0;
        if F::ACTIVE {
            self.begin_fault_cycle();
        }

        self.shard_phase_link(plan);
        self.link_barrier(plan);
        self.shard_phase_xbar(plan);
        self.xbar_barrier(plan);
        self.shard_phase_route_prepare(plan);
        self.apply_route_decisions(plan);
        self.shard_phase_injection_ticks(plan);
        self.apply_injection(plan);

        self.end_cycle();
    }

    /// Advance the simulation by `cycles` clocks with the sharded
    /// stepper.
    pub fn run_sharded(&mut self, cycles: u32, plan: &mut ShardPlan)
    where
        F: Sync,
    {
        for _ in 0..cycles {
            self.step_sharded(plan);
        }
    }

    /// [`Engine::run_checked`] on the sharded stepper: the watchdog
    /// reports a [`Stall`] instead of panicking.
    pub fn run_checked_sharded(&mut self, cycles: u32, plan: &mut ShardPlan) -> Result<(), Stall>
    where
        F: Sync,
    {
        self.report_stall = true;
        for _ in 0..cycles {
            self.step_sharded(plan);
            if let Some(s) = self.stall {
                return Err(s);
            }
        }
        Ok(())
    }

    /// Phase 1, shard-parallel.
    fn shard_phase_link(&mut self, plan: &mut ShardPlan)
    where
        F: Sync,
    {
        let env = LinkEnv {
            w: &self.w,
            faults: &self.faults,
            packets: &self.packets,
            router_starts: &plan.router_starts,
            cycle: self.cycle,
            vcs: self.vcs,
            request_reply: self.request_reply,
        };
        let router_starts = &plan.router_starts;
        let node_starts = &plan.node_starts;
        let mut ctxs: Vec<LinkShard<'_>> = split_mut(&mut self.routers, router_starts)
            .into_iter()
            .zip(split_mut(&mut self.nodes, node_starts))
            .zip(split_mut(&mut self.link_flits, &plan.link_flit_starts))
            .zip(split_mut(
                self.link_work.words_mut(),
                &plan.router_word_starts,
            ))
            .zip(split_mut(
                self.route_work.words_mut(),
                &plan.router_word_starts,
            ))
            .zip(split_mut(
                self.xbar_work.words_mut(),
                &plan.router_word_starts,
            ))
            .zip(split_mut(
                self.inject_work.words_mut(),
                &plan.node_word_starts,
            ))
            .zip(plan.scratch.iter_mut())
            .enumerate()
            .map(
                |(
                    i,
                    (
                        (
                            (
                                ((((routers, nodes), link_flits), link_words), route_words),
                                xbar_words,
                            ),
                            inject_words,
                        ),
                        scratch,
                    ),
                )| {
                    LinkShard {
                        router_base: router_starts[i],
                        node_base: node_starts[i],
                        routers,
                        nodes,
                        link_flits,
                        link_words,
                        route_words,
                        xbar_words,
                        inject_words,
                        scratch,
                    }
                },
            )
            .collect();
        run_shards(plan.threads, &mut ctxs, |sh| link_worker(&env, sh));
    }

    /// Replay one buffered link-phase probe observation.
    fn replay_link_event(&mut self, e: &LinkEvent) {
        match *e {
            LinkEvent::Link {
                packet,
                router,
                port,
                vc,
                kind,
            } => self
                .probe
                .link_flit(self.cycle, packet, router, port, vc, kind),
            LinkEvent::Delivered { packet, node } => {
                self.probe.packet_delivered(self.cycle, packet, node)
            }
            LinkEvent::Injection { packet, node, vc } => {
                self.probe.injection_flit(self.cycle, packet, node, vc)
            }
        }
    }

    /// Serial barrier after the link phase: drain the cross-shard flit
    /// handoffs in fixed total order, apply the deferred delivered
    /// stamps, replay the buffered probe events in serial order, spawn
    /// replies, and merge the counter deltas.
    fn link_barrier(&mut self, plan: &mut ShardPlan) {
        let cycle = self.cycle;
        let shards = plan.shards;
        // Handoff drain order: destination-shard major, source-shard
        // minor, record order within a queue. The state updates are
        // order-free (one arrival per input lane per cycle), but the
        // fixed order keeps the drain auditable and deterministic.
        for dst in 0..shards {
            for src in 0..shards {
                let mut q = std::mem::take(&mut plan.scratch[src].flits_out[dst]);
                for (r2, dl, f) in q.drain(..) {
                    let (r2, dl) = (r2 as usize, dl as usize);
                    let rs = &mut self.routers[r2];
                    let was_empty = rs.in_q[dl].is_empty();
                    rs.in_q[dl].push(f);
                    rs.in_occ |= 1u64 << dl;
                    if was_empty && f.is_head() {
                        debug_assert_eq!(rs.in_route[dl], NO_ROUTE);
                        rs.pending |= 1 << dl;
                        self.route_work.insert(r2);
                    }
                    if self.routers[r2].routed & (1u64 << dl) != 0 {
                        // Body/tail arriving on a lane whose head
                        // already holds a crossbar path.
                        self.xbar_work.insert(r2);
                    }
                }
                plan.scratch[src].flits_out[dst] = q; // return the allocation
            }
        }
        // Deferred delivered stamps (the packet table was read-only
        // during the parallel phase).
        for sh in plan.scratch.iter_mut() {
            for pkt in sh.delivered.drain(..) {
                let rec = &mut self.packets[pkt as usize];
                debug_assert_eq!(rec.delivered, NEVER);
                rec.delivered = cycle;
            }
        }
        // Probe replay: router legs shard-ascending (= ascending router
        // order), then node legs (= ascending node order) — the serial
        // stepper's exact emission order.
        for i in 0..shards {
            let evs = std::mem::take(&mut plan.scratch[i].router_events);
            for e in &evs {
                self.replay_link_event(e);
            }
            let mut evs = evs;
            evs.clear();
            plan.scratch[i].router_events = evs;
        }
        for i in 0..shards {
            let evs = std::mem::take(&mut plan.scratch[i].node_events);
            for e in &evs {
                self.replay_link_event(e);
            }
            let mut evs = evs;
            evs.clear();
            plan.scratch[i].node_events = evs;
        }
        // Replies were recorded during the (router-ascending) ejection
        // walk, so shard-ascending concatenation is the serial push
        // order.
        for i in 0..shards {
            let mut r = std::mem::take(&mut plan.scratch[i].replies);
            self.reply_buf.append(&mut r);
            plan.scratch[i].replies = r;
        }
        self.spawn_replies();
        self.merge_shard_counters(plan);
    }

    /// Phase 2, shard-parallel.
    fn shard_phase_xbar(&mut self, plan: &mut ShardPlan)
    where
        F: Sync,
    {
        let env = XbarEnv {
            w: &self.w,
            router_starts: &plan.router_starts,
            cycle: self.cycle,
            vcs: self.vcs,
            lanes_per_router: self.lanes_per_router,
        };
        let router_starts = &plan.router_starts;
        let mut ctxs: Vec<XbarShard<'_>> = split_mut(&mut self.routers, router_starts)
            .into_iter()
            .zip(split_mut(
                self.link_work.words_mut(),
                &plan.router_word_starts,
            ))
            .zip(split_mut(
                self.route_work.words_mut(),
                &plan.router_word_starts,
            ))
            .zip(split_mut(
                self.xbar_work.words_mut(),
                &plan.router_word_starts,
            ))
            .zip(plan.scratch.iter_mut())
            .enumerate()
            .map(
                |(i, ((((routers, link_words), route_words), xbar_words), scratch))| XbarShard {
                    router_base: router_starts[i],
                    routers,
                    link_words,
                    route_words,
                    xbar_words,
                    scratch,
                },
            )
            .collect();
        run_shards(plan.threads, &mut ctxs, |sh| xbar_worker::<F>(&env, sh));
    }

    /// Serial barrier after the crossbar phase: apply the deferred
    /// credit acknowledgments (cross-shard router credits in fixed
    /// total order, then all node-side credits) and merge deltas.
    fn xbar_barrier(&mut self, plan: &mut ShardPlan) {
        let shards = plan.shards;
        for dst in 0..shards {
            for src in 0..shards {
                let mut q = std::mem::take(&mut plan.scratch[src].credits_out[dst]);
                for (r2, ul) in q.drain(..) {
                    let up = &mut self.routers[r2 as usize];
                    up.out_credits[ul as usize] += 1;
                    debug_assert!(
                        up.out_credits[ul as usize] as usize <= up.out_q[ul as usize].capacity()
                    );
                }
                plan.scratch[src].credits_out[dst] = q;
            }
        }
        for i in 0..shards {
            let mut q = std::mem::take(&mut plan.scratch[i].node_credits);
            for (nn, v) in q.drain(..) {
                let node = &mut self.nodes[nn as usize];
                node.credits[v as usize] += 1;
                debug_assert!(
                    node.credits[v as usize] as usize <= node.lanes[v as usize].capacity()
                );
            }
            plan.scratch[i].node_credits = q;
        }
        self.merge_shard_counters(plan);
    }

    /// Phase 3 preparation, shard-parallel (read-only).
    fn shard_phase_route_prepare(&mut self, plan: &mut ShardPlan)
    where
        F: Sync,
    {
        let env = RouteEnv {
            routers: &self.routers,
            route_words: self.route_work.words(),
            packets: &self.packets,
            algo: self.algo,
            faults: &self.faults,
            cycle: self.cycle,
            vcs: self.vcs,
        };
        let word_starts = &plan.router_word_starts;
        let mut ctxs: Vec<RouteShard<'_>> = plan
            .scratch
            .iter_mut()
            .enumerate()
            .map(|(i, scratch)| RouteShard {
                word_lo: word_starts[i],
                word_hi: word_starts[i + 1],
                scratch,
            })
            .collect();
        run_shards(plan.threads, &mut ctxs, |sh| route_prepare_worker(&env, sh));
    }

    /// Serial half of the routing phase: run the RNG-consuming output
    /// selection over the prepared decisions in ascending router order
    /// (shard-ascending, ascending within a shard) and apply the
    /// results — exactly the serial stepper's order of RNG draws,
    /// counter updates and probe calls.
    fn apply_route_decisions(&mut self, plan: &mut ShardPlan) {
        let lanes = self.lanes_per_router;
        for i in 0..plan.shards {
            let mut decisions = std::mem::take(&mut plan.scratch[i].decisions);
            for d in decisions.drain(..) {
                let r = d.router as usize;
                let l = d.lane as usize;
                if d.unroutable {
                    // Degraded-mode dead end: drop the packet and hand
                    // the lane to the crossbar phase for draining.
                    self.start_drop(r, l, d.packet);
                    self.routers[r].route_rr = ((l + 1) % lanes) as u32;
                } else {
                    let choice = self.select_output(r, &d.cand);
                    match choice {
                        Some((ol, used_fallback)) => {
                            let rs = &mut self.routers[r];
                            rs.in_route[l] = ol as u32;
                            rs.routed |= 1u64 << l;
                            rs.out_bound |= 1u64 << ol;
                            rs.pending &= !(1 << l);
                            debug_assert_ne!(rs.in_occ & (1u64 << l), 0);
                            self.xbar_work.insert(r);
                            self.counters.routed_headers += 1;
                            self.packets[d.packet as usize].hops += 1;
                            if used_fallback {
                                self.counters.escape_routings += 1;
                            }
                            self.probe.header_routed(
                                self.cycle,
                                d.packet,
                                r as u32,
                                l as u16,
                                ol as u16,
                                used_fallback,
                            );
                            if d.degraded {
                                self.probe
                                    .header_rerouted(self.cycle, d.packet, r as u32, ol as u16);
                            }
                        }
                        None => {
                            self.counters.routing_blocked += 1;
                            self.probe
                                .routing_blocked(self.cycle, d.packet, r as u32, l as u16);
                        }
                    }
                    self.routers[r].route_rr = ((l + 1) % lanes) as u32;
                }
                if self.routers[r].pending == 0 {
                    self.route_work.remove(r);
                }
                let mut cand = d.cand;
                cand.clear();
                plan.scratch[i].cand_pool.push(cand);
            }
            plan.scratch[i].decisions = decisions;
        }
    }

    /// Phase 4 creation ticks, shard-parallel.
    fn shard_phase_injection_ticks(&mut self, plan: &mut ShardPlan) {
        let pattern = &self.pattern;
        let node_starts = &plan.node_starts;
        let mut ctxs: Vec<TickShard<'_>> = split_mut(&mut self.nodes, node_starts)
            .into_iter()
            .zip(plan.scratch.iter_mut())
            .enumerate()
            .map(|(i, (nodes, scratch))| TickShard {
                node_base: node_starts[i],
                nodes,
                scratch,
            })
            .collect();
        run_shards(plan.threads, &mut ctxs, |sh| tick_worker(pattern, sh));
    }

    /// Serial remainder of the injection phase: mirror of
    /// `Engine::phase_injection` with the creation ticks replaced by
    /// the recorded `(node, dest)` pairs (shard-ascending concatenation
    /// = ascending node order), so packet ids, probe events, queueing
    /// and streaming all happen in the serial per-node order.
    fn apply_injection(&mut self, plan: &mut ShardPlan) {
        let cycle = self.cycle;
        let flits = self.flits_per_packet;
        let mut si = 0usize; // shard cursor into the creation records
        let mut pi = 0usize;
        for n in 0..self.w.num_nodes {
            while n >= plan.node_starts[si + 1] {
                si += 1;
                pi = 0;
            }

            // Packet creation (tick already ran in the parallel pass).
            if pi < plan.scratch[si].creations.len() && plan.scratch[si].creations[pi].0 == n as u32
            {
                let dest = plan.scratch[si].creations[pi].1;
                pi += 1;
                let id = self.packets.len() as u32;
                self.packets.push(PacketRec {
                    src: n as u32,
                    dest,
                    created: cycle,
                    injected: NEVER,
                    delivered: NEVER,
                    flits,
                    hops: 0,
                    in_reply_to: u32::MAX,
                });
                self.nodes[n].src_queue.push_back(id);
                self.counters.created_packets += 1;
                self.probe.packet_created(cycle, id, n as u32, dest, flits);
            }

            // Fault plane: abandon packets with a dead endpoint at the
            // source (mirror of the serial handler).
            if F::ACTIVE {
                while let Some(&pkt) = self.nodes[n].src_queue.front() {
                    let dest = self.packets[pkt as usize].dest as usize;
                    if !self.faults.node_dead(n) && !self.faults.node_dead(dest) {
                        break;
                    }
                    self.nodes[n].src_queue.pop_front();
                    self.counters.unroutable_packets += 1;
                    self.probe.packet_unroutable(cycle, pkt, n as u32);
                }
            }

            // Start the next packet (limited injection may hold it back
            // while the local router is congested).
            let throttled = match self.injection_limit {
                None => false,
                Some(limit) => {
                    let (r, _) = self.w.node_ports[n];
                    let rs = &self.routers[r as usize];
                    (rs.out_bound & rs.network_lanes).count_ones() >= limit
                }
            };
            let ns = &mut self.nodes[n];
            if ns.active.is_none() && !throttled {
                if let Some(&pkt) = ns.src_queue.front() {
                    let vcs = self.vcs;
                    let start = ns.lane_rr as usize;
                    let mut best: Option<(usize, usize)> = None;
                    for i in 0..vcs {
                        let v = (start + i) % vcs;
                        if ns.lanes[v].is_full() {
                            continue;
                        }
                        let headroom = ns.lanes[v].free() + ns.credits[v] as usize;
                        if best.is_none_or(|(_, h)| headroom > h) {
                            best = Some((v, headroom));
                        }
                    }
                    if let Some((v, _)) = best {
                        ns.src_queue.pop_front();
                        ns.active = Some((pkt, flits));
                        ns.active_lane = v as u8;
                    }
                }
            }

            // Stream one flit of the active packet.
            if let Some((pkt, remaining)) = ns.active {
                let lane = ns.active_lane as usize;
                if !ns.lanes[lane].is_full() {
                    let mut flags = 0u8;
                    if remaining == flits {
                        flags |= HEAD;
                        self.packets[pkt as usize].injected = cycle;
                        self.probe.packet_injected(cycle, pkt, n as u32, lane as u8);
                    }
                    if remaining == 1 {
                        flags |= TAIL;
                    }
                    ns.lanes[lane].push(Flit {
                        packet: pkt,
                        moved: cycle,
                        flags,
                    });
                    ns.lane_occ |= 1u64 << lane;
                    self.inject_work.insert(n);
                    self.counters.in_flight_flits += 1;
                    self.moves_this_cycle += 1;
                    if remaining == 1 {
                        ns.active = None;
                    } else {
                        ns.active = Some((pkt, remaining - 1));
                    }
                }
            }
        }
        for sh in plan.scratch.iter_mut() {
            debug_assert!(sh.creations.is_empty() || si < plan.node_starts.len());
            sh.creations.clear();
        }
    }

    /// Fold every shard's counter/movement delta into the engine
    /// (wrapping: deltas may hold borrowed decrements).
    fn merge_shard_counters(&mut self, plan: &mut ShardPlan) {
        for sh in plan.scratch.iter_mut() {
            let d = std::mem::take(&mut sh.counters);
            let c = &mut self.counters;
            c.delivered_flits = c.delivered_flits.wrapping_add(d.delivered_flits);
            c.delivered_packets = c.delivered_packets.wrapping_add(d.delivered_packets);
            c.created_packets = c.created_packets.wrapping_add(d.created_packets);
            c.in_flight_flits = c.in_flight_flits.wrapping_add(d.in_flight_flits);
            c.routed_headers = c.routed_headers.wrapping_add(d.routed_headers);
            c.routing_blocked = c.routing_blocked.wrapping_add(d.routing_blocked);
            c.escape_routings = c.escape_routings.wrapping_add(d.escape_routings);
            c.flit_moves = c.flit_moves.wrapping_add(d.flit_moves);
            c.dropped_packets = c.dropped_packets.wrapping_add(d.dropped_packets);
            c.dropped_flits = c.dropped_flits.wrapping_add(d.dropped_flits);
            c.unroutable_packets = c.unroutable_packets.wrapping_add(d.unroutable_packets);
            self.moves_this_cycle += std::mem::take(&mut sh.moves);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_starts_cover_and_align() {
        for (len, shards) in [(256, 4), (100, 3), (64, 4), (1, 4), (4096, 8), (130, 2)] {
            let starts = aligned_starts(len, shards);
            assert_eq!(starts.len(), shards + 1);
            assert_eq!(starts[0], 0);
            assert_eq!(*starts.last().unwrap(), len);
            for w in starts.windows(2) {
                assert!(w[0] <= w[1]);
            }
            for &s in &starts[1..shards] {
                assert!(s % 64 == 0 || s == len, "interior boundary {s} unaligned");
            }
        }
    }

    #[test]
    fn shard_of_handles_empty_ranges() {
        let starts = vec![0usize, 0, 64, 64, 100];
        assert_eq!(shard_of(&starts, 0), 1);
        assert_eq!(shard_of(&starts, 63), 1);
        assert_eq!(shard_of(&starts, 64), 3);
        assert_eq!(shard_of(&starts, 99), 3);
    }

    #[test]
    fn split_mut_partitions() {
        let mut v: Vec<u32> = (0..10).collect();
        let parts = split_mut(&mut v, &[0, 4, 4, 10]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &[0, 1, 2, 3]);
        assert!(parts[1].is_empty());
        assert_eq!(parts[2], &[4, 5, 6, 7, 8, 9]);
    }
}
