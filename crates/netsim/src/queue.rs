//! Fixed-capacity flit FIFO.
//!
//! Every lane in the network holds at most [`MAX_DEPTH`] flits (the
//! paper uses 4-flit lanes; the ablation benchmarks sweep 1..=8), so a
//! small inline ring buffer avoids any per-lane heap allocation — with
//! hundreds of switches times dozens of lanes each, lane operations are
//! the hottest code in the simulator.

use crate::flit::Flit;

/// Maximum supported lane depth. Must stay a power of two: the ring
/// indices wrap with a mask instead of a division.
pub const MAX_DEPTH: usize = 8;
const _: () = assert!(MAX_DEPTH.is_power_of_two());

/// An inline ring buffer of flits with a runtime capacity
/// `1..=MAX_DEPTH`.
#[derive(Clone, Debug)]
pub struct FlitQueue {
    slots: [Flit; MAX_DEPTH],
    head: u8,
    len: u8,
    cap: u8,
}

impl FlitQueue {
    /// An empty queue with the given capacity.
    ///
    /// # Panics
    /// Panics unless `1 <= cap <= MAX_DEPTH`.
    pub fn new(cap: usize) -> Self {
        assert!(
            (1..=MAX_DEPTH).contains(&cap),
            "lane depth {cap} unsupported"
        );
        FlitQueue {
            slots: [Flit {
                packet: 0,
                moved: 0,
                flags: 0,
            }; MAX_DEPTH],
            head: 0,
            len: 0,
            cap: cap as u8,
        }
    }

    /// Capacity in flits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap as usize
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the queue is full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.cap
    }

    /// Free slots remaining.
    #[inline]
    pub fn free(&self) -> usize {
        (self.cap - self.len) as usize
    }

    /// The oldest flit, if any.
    #[inline]
    pub fn front(&self) -> Option<&Flit> {
        if self.len == 0 {
            None
        } else {
            Some(&self.slots[self.head as usize])
        }
    }

    /// Append a flit.
    ///
    /// # Panics
    /// Panics when full (callers must check credits/space first; a push
    /// into a full lane is a flow-control bug, not a recoverable event).
    #[inline]
    pub fn push(&mut self, flit: Flit) {
        assert!(
            !self.is_full(),
            "flit queue overflow: flow control violated"
        );
        let idx = (self.head as usize + self.len as usize) & (MAX_DEPTH - 1);
        self.slots[idx] = flit;
        self.len += 1;
    }

    /// Remove and return the oldest flit.
    #[inline]
    pub fn pop(&mut self) -> Option<Flit> {
        if self.len == 0 {
            return None;
        }
        let f = self.slots[self.head as usize];
        self.head = ((self.head as usize + 1) & (MAX_DEPTH - 1)) as u8;
        self.len -= 1;
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{HEAD, TAIL};

    fn f(p: u32) -> Flit {
        Flit {
            packet: p,
            moved: 0,
            flags: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = FlitQueue::new(4);
        assert!(q.is_empty());
        for i in 0..4 {
            q.push(f(i));
        }
        assert!(q.is_full());
        assert_eq!(q.free(), 0);
        for i in 0..4 {
            assert_eq!(q.pop().unwrap().packet, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn wraps_around() {
        let mut q = FlitQueue::new(3);
        for round in 0..10u32 {
            q.push(f(round));
            assert_eq!(q.pop().unwrap().packet, round);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut q = FlitQueue::new(2);
        q.push(Flit {
            packet: 9,
            moved: 3,
            flags: HEAD | TAIL,
        });
        assert_eq!(q.front().unwrap().packet, 9);
        assert_eq!(q.len(), 1);
        assert!(q.front().unwrap().is_head());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q = FlitQueue::new(1);
        q.push(f(0));
        q.push(f(1));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = FlitQueue::new(0);
    }

    #[test]
    fn interleaved_capacity_respected() {
        let mut q = FlitQueue::new(4);
        q.push(f(0));
        q.push(f(1));
        q.pop();
        q.push(f(2));
        q.push(f(3));
        q.push(f(4));
        assert!(q.is_full());
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|x| x.packet).collect();
        assert_eq!(drained, vec![1, 2, 3, 4]);
    }
}
