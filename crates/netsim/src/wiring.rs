//! Flattened, validated wiring tables derived from a [`Topology`].
//!
//! The engine's inner loops index flat arrays; this module lowers the
//! object-level [`Topology`] interface into those arrays once, at
//! simulation construction, and revalidates the structure on the way.

use topology::graph::PortPeer;
use topology::{NodeId, PortRef, RouterId, Topology};

/// What the far side of a (router, port) is, in flat-index form.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Peer {
    /// Another router's port.
    Router {
        /// Peer router index.
        router: u32,
        /// Peer port index.
        port: u16,
    },
    /// A processing node.
    Node(u32),
    /// Uncabled.
    None,
}

/// Flattened topology description.
#[derive(Clone, Debug)]
pub struct Wiring {
    /// Number of routers.
    pub num_routers: usize,
    /// Number of processing nodes.
    pub num_nodes: usize,
    /// Ports per router (uniform across the network).
    pub ports: usize,
    /// `peers[router * ports + port]`.
    pub peers: Vec<Peer>,
    /// For each node: the (router, port) it is attached to.
    pub node_ports: Vec<(u32, u16)>,
}

impl Wiring {
    /// Lower a topology into flat tables.
    ///
    /// # Panics
    /// Panics if the topology fails validation or routers have
    /// non-uniform port counts (both would be construction bugs in the
    /// topology crate, caught early here).
    pub fn from_topology(topo: &dyn Topology) -> Self {
        topology::validate(topo).expect("topology must validate");
        let num_routers = topo.num_routers();
        let num_nodes = topo.num_nodes();
        let ports = topo.ports(RouterId(0));
        let mut peers = Vec::with_capacity(num_routers * ports);
        for r in 0..num_routers {
            let rid = RouterId(r as u32);
            assert_eq!(
                topo.ports(rid),
                ports,
                "non-uniform port counts unsupported"
            );
            for p in 0..ports {
                peers.push(match topo.peer(PortRef::new(rid, p)) {
                    PortPeer::Router(pr) => Peer::Router {
                        router: pr.router.0,
                        port: pr.port as u16,
                    },
                    PortPeer::Node(n) => Peer::Node(n.0),
                    PortPeer::Unconnected => Peer::None,
                });
            }
        }
        let node_ports = (0..num_nodes)
            .map(|n| {
                let pr = topo.node_port(NodeId(n as u32));
                (pr.router.0, pr.port as u16)
            })
            .collect();
        Wiring {
            num_routers,
            num_nodes,
            ports,
            peers,
            node_ports,
        }
    }

    /// Peer of `(router, port)`.
    #[inline]
    pub fn peer(&self, router: usize, port: usize) -> Peer {
        self.peers[router * self.ports + port]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{KAryNCube, KAryNTree};

    #[test]
    fn cube_wiring_shape() {
        let cube = KAryNCube::new(4, 2);
        let w = Wiring::from_topology(&cube);
        assert_eq!(w.num_routers, 16);
        assert_eq!(w.num_nodes, 16);
        assert_eq!(w.ports, 5);
        // Every node port points back at the co-located router.
        for (n, &(r, p)) in w.node_ports.iter().enumerate() {
            assert_eq!(r as usize, n);
            assert_eq!(w.peer(r as usize, p as usize), Peer::Node(n as u32));
        }
    }

    #[test]
    fn tree_wiring_is_symmetric() {
        let tree = KAryNTree::new(3, 3);
        let w = Wiring::from_topology(&tree);
        assert_eq!(w.ports, 6);
        for r in 0..w.num_routers {
            for p in 0..w.ports {
                if let Peer::Router { router, port } = w.peer(r, p) {
                    assert_eq!(
                        w.peer(router as usize, port as usize),
                        Peer::Router {
                            router: r as u32,
                            port: p as u16
                        }
                    );
                }
            }
        }
    }

    #[test]
    fn root_up_ports_uncabled() {
        let tree = KAryNTree::new(2, 3);
        let w = Wiring::from_topology(&tree);
        // Roots are routers 0..k^(n-1) = 0..4 in level-major order.
        for r in 0..4 {
            assert_eq!(w.peer(r, 2), Peer::None);
            assert_eq!(w.peer(r, 3), Peer::None);
        }
    }
}
