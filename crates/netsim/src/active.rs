//! Active-set worklists: fixed-capacity bitsets over router/node ids.
//!
//! The engine's per-cycle cost must be proportional to *active* work,
//! not network size: each pipeline phase keeps a bitset of the routers
//! (or nodes) that can possibly do anything this cycle, and walks only
//! the set bits with `trailing_zeros`. Because the words are scanned in
//! ascending order, iteration visits members in ascending id order —
//! exactly the order of the naive `for r in 0..n` scan it replaces,
//! which is what keeps the optimized engine bit-identical to the
//! reference step (the routing phase consumes a shared RNG stream, so
//! visit *order* is observable).
//!
//! Membership updates during a phase are restricted by construction:
//! a phase may remove the member it is currently visiting (it drained)
//! and may insert into the worklists of *later* phases, but never
//! inserts into the set it is iterating. [`ActiveSet::for_each_ascending`]
//! relies on this: it snapshots one word at a time, so removals of
//! already-cleared bits and insertions elsewhere cannot be missed.

/// A bitset over `0..capacity` ids supporting ascending iteration.
#[derive(Clone, Debug)]
pub struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    /// An empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        ActiveSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Add `id` (idempotent).
    #[inline]
    pub fn insert(&mut self, id: usize) {
        self.words[id >> 6] |= 1u64 << (id & 63);
    }

    /// Remove `id` (idempotent).
    #[inline]
    pub fn remove(&mut self, id: usize) {
        self.words[id >> 6] &= !(1u64 << (id & 63));
    }

    /// Whether `id` is a member.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        self.words[id >> 6] & (1u64 << (id & 63)) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of words (used by the engine's iteration loops, which
    /// cannot borrow `self` across the visit callback).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Snapshot of word `wi` (bits `wi*64 .. wi*64+64`).
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        self.words[wi]
    }

    /// The backing words as a shared slice (read-only snapshot view).
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// The backing words as a mutable slice. Used by the sharded
    /// stepper, which hands each worker the word sub-range covering its
    /// id range; shard boundaries are 64-aligned, so the per-shard word
    /// slices partition the set exactly.
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Visit every member in ascending order. The callback may mutate
    /// the set through other references only per the module contract
    /// (remove the current member / insert into *other* sets); this
    /// method takes `&self` snapshots word by word.
    pub fn for_each_ascending(&self, mut f: impl FnMut(usize)) {
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let id = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveSet::new(200);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(199);
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(65));
        s.remove(63);
        s.remove(63); // idempotent
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = ActiveSet::new(300);
        let members = [5usize, 0, 255, 64, 63, 128, 299];
        for &m in &members {
            s.insert(m);
        }
        let mut seen = Vec::new();
        s.for_each_ascending(|id| seen.push(id));
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn word_snapshots_match() {
        let mut s = ActiveSet::new(130);
        s.insert(1);
        s.insert(129);
        assert_eq!(s.num_words(), 3);
        assert_eq!(s.word(0), 2);
        assert_eq!(s.word(2), 2);
    }
}
