//! Simulation configuration, measurement protocol, and outcomes.
//!
//! Implements the measurement discipline of Section 6: statistics are
//! collected only after a warm-up period "to allow the network to reach
//! steady state", accepted bandwidth is the sustained delivery rate, and
//! network latency is averaged over packets injected during the
//! measurement window (source queueing excluded).

use crate::engine::{Engine, Stall};
use crate::fault::{FaultModel, NoFaults};
use crate::flit::NEVER;
use netstats::{Accumulator, Histogram};
use routing::RoutingAlgorithm;
use telemetry::{NullProbe, Probe};
use traffic::{Bernoulli, InjectionProcess, OnOffBursty, Pattern, Periodic, TrafficGen};

/// Why a checked simulation run could not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The engine's liveness watchdog tripped: flits in flight but no
    /// movement for the watchdog horizon. With the deadlock-free
    /// routing functions this indicates a wedged fault configuration
    /// (or an engine bug), reported as data instead of a panic.
    Deadlock(Stall),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// How packets are created at each node.
#[derive(Clone, Copy, Debug)]
pub enum InjectionSpec {
    /// Bernoulli process (the paper's choice).
    Bernoulli {
        /// Packets per node per cycle.
        packets_per_cycle: f64,
    },
    /// Deterministic: one packet every `period` cycles.
    Periodic {
        /// Inter-arrival period in cycles.
        period: u64,
    },
    /// Two-state bursty process (extension).
    OnOff {
        /// Packets per node per cycle while in the on state.
        peak_rate: f64,
        /// Mean on-state duration in cycles.
        mean_on: f64,
        /// Mean off-state duration in cycles.
        mean_off: f64,
    },
}

impl InjectionSpec {
    /// Long-run packets per node per cycle.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            InjectionSpec::Bernoulli { packets_per_cycle } => packets_per_cycle,
            InjectionSpec::Periodic { period } => 1.0 / period as f64,
            InjectionSpec::OnOff {
                peak_rate,
                mean_on,
                mean_off,
            } => peak_rate * mean_on / (mean_on + mean_off),
        }
    }

    fn build(&self) -> Box<dyn InjectionProcess> {
        match *self {
            InjectionSpec::Bernoulli { packets_per_cycle } => {
                Box::new(Bernoulli::new(packets_per_cycle))
            }
            InjectionSpec::Periodic { period } => Box::new(Periodic::every(period)),
            InjectionSpec::OnOff {
                peak_rate,
                mean_on,
                mean_off,
            } => Box::new(OnOffBursty::new(peak_rate, mean_on, mean_off)),
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Master seed; the run is a pure function of config + seed.
    pub seed: u64,
    /// Warm-up cycles excluded from measurement (paper: 2000).
    pub warmup_cycles: u32,
    /// Total simulated cycles (paper: 20000).
    pub total_cycles: u32,
    /// Lane depth in flits (paper: 4 for both input and output lanes).
    pub buffer_depth: usize,
    /// Flits per packet (16 on the cube, 32 on the tree).
    pub flits_per_packet: u16,
    /// Theoretical per-node capacity in flits/cycle (normalization).
    pub capacity_flits_per_cycle: f64,
    /// Packet creation process.
    pub injection: InjectionSpec,
    /// Destination pattern.
    pub pattern: Pattern,
    /// Limited injection: a node may start a new packet only while
    /// fewer than this many network output lanes of its local router
    /// are allocated (the source-throttling mechanism of the paper's
    /// reference \[28\]). `None` disables the throttle.
    pub injection_limit: Option<u32>,
    /// Request-reply mode (extension): every delivered packet generated
    /// by the pattern is treated as a request and answered with a
    /// same-size reply, modelling shared-memory read traffic.
    pub request_reply: bool,
}

impl SimConfig {
    /// The paper's measurement protocol with the given load.
    pub fn paper_protocol(
        pattern: Pattern,
        injection: InjectionSpec,
        flits_per_packet: u16,
        capacity_flits_per_cycle: f64,
    ) -> Self {
        SimConfig {
            seed: 0x5EED,
            warmup_cycles: 2_000,
            total_cycles: 20_000,
            buffer_depth: 4,
            flits_per_packet,
            capacity_flits_per_cycle,
            injection,
            pattern,
            injection_limit: None,
            request_reply: false,
        }
    }

    /// Nominal offered load as a fraction of capacity.
    pub fn offered_fraction(&self) -> f64 {
        self.injection.mean_rate() * self.flits_per_packet as f64 / self.capacity_flits_per_cycle
    }
}

/// Measured results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Nominal offered load (fraction of capacity) from the config.
    pub offered_fraction: f64,
    /// Offered load actually generated during the measurement window
    /// (differs from nominal for patterns with silent nodes and by
    /// Bernoulli noise).
    pub generated_fraction: f64,
    /// Accepted bandwidth as a fraction of capacity.
    pub accepted_fraction: f64,
    /// Accepted bandwidth in flits per node per cycle.
    pub accepted_flits_per_node_cycle: f64,
    /// Network latency statistics in cycles over measured packets.
    pub latency: Accumulator,
    /// Latency histogram (8-cycle bins up to 4096 cycles).
    pub latency_hist: Histogram,
    /// Packets delivered during the measurement window.
    pub delivered_packets: u64,
    /// Packets created during the measurement window.
    pub created_packets: u64,
    /// Total packets queued at sources (or streaming) when the run ended
    /// — grows without bound above saturation.
    pub backlog_packets: usize,
    /// Fraction of routed headers that used an escape lane.
    pub escape_fraction: f64,
    /// Packets dropped in-network by the fault plane during the
    /// measurement window (same window as `created_packets`); zero
    /// without faults.
    pub dropped_packets: u64,
    /// Packets abandoned at the source (dead endpoint) during the
    /// measurement window; zero without faults.
    pub unroutable_packets: u64,
    /// 95% batch-means confidence interval for the accepted bandwidth
    /// (in flits per node per cycle, 10 batches over the measurement
    /// window).
    pub accepted_ci: netstats::ConfidenceInterval,
}

impl SimOutcome {
    /// Mean latency in cycles (`NaN` if nothing was delivered).
    pub fn mean_latency_cycles(&self) -> f64 {
        self.latency.mean()
    }

    /// Whether the run was saturated: accepted visibly below offered.
    pub fn is_saturated(&self, tol: f64) -> bool {
        self.accepted_fraction < (1.0 - tol) * self.generated_fraction
    }
}

/// Run one simulation to completion under the given configuration.
///
/// Generic over the routing algorithm: calling it with a concrete
/// algorithm type monomorphizes the whole engine (the per-header route
/// call inlines into the routing phase); the historical
/// `&dyn RoutingAlgorithm` form still compiles unchanged.
///
/// # Panics
/// Panics on flow-control violations or deadlock (watchdog) — both are
/// bugs, not outcomes.
pub fn run_simulation<A: RoutingAlgorithm + ?Sized>(algo: &A, cfg: &SimConfig) -> SimOutcome {
    run_simulation_probed(algo, cfg, NullProbe).0
}

/// [`run_simulation`] with a telemetry probe attached to the engine.
///
/// The probe observes the whole run, warm-up included (filter on the
/// recorded injection cycles to restrict analysis to the measurement
/// window), and is returned alongside the outcome. The probe is a pure
/// observer: the outcome is bit-identical to the unprobed run.
pub fn run_simulation_probed<A: RoutingAlgorithm + ?Sized, P: Probe>(
    algo: &A,
    cfg: &SimConfig,
    probe: P,
) -> (SimOutcome, P) {
    run_simulation_faulted(algo, cfg, probe, NoFaults).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_simulation_probed`] with a fault model degrading the network,
/// and the watchdog reporting instead of panicking: a wedged run
/// returns [`SimError::Deadlock`] as data.
///
/// With [`NoFaults`] this is bit-identical to the fault-free run — the
/// engine's fault checks compile out — which is exactly what
/// `run_simulation_probed` calls.
pub fn run_simulation_faulted<A: RoutingAlgorithm + ?Sized, P: Probe, F: FaultModel>(
    algo: &A,
    cfg: &SimConfig,
    probe: P,
    faults: F,
) -> Result<(SimOutcome, P), SimError> {
    measure(algo, cfg, probe, faults, |eng, cycles| {
        eng.run_checked(cycles)
    })
}

/// [`run_simulation_faulted`] on the sharded stepper: the run is
/// decomposed into `shards` domains stepped by `threads` worker threads
/// (see [`Engine::shard_plan`]). Bit-identical to the serial run for
/// every shard/thread count; `shards <= 1` *is* the serial run.
pub fn run_simulation_faulted_sharded<A: RoutingAlgorithm + ?Sized, P: Probe, F>(
    algo: &A,
    cfg: &SimConfig,
    probe: P,
    faults: F,
    shards: usize,
    threads: usize,
) -> Result<(SimOutcome, P), SimError>
where
    F: FaultModel + Sync,
{
    let mut plan = None;
    measure(algo, cfg, probe, faults, |eng, cycles| {
        let plan = plan.get_or_insert_with(|| eng.shard_plan(shards, threads));
        eng.run_checked_sharded(cycles, plan)
    })
}

/// The shared measurement protocol: build the engine, run the warm-up,
/// run the measurement window in batches through `run` (which chooses
/// the stepper), and assemble the outcome.
fn measure<A: RoutingAlgorithm + ?Sized, P: Probe, F: FaultModel>(
    algo: &A,
    cfg: &SimConfig,
    probe: P,
    faults: F,
    mut run: impl FnMut(&mut Engine<'_, A, P, F>, u32) -> Result<(), Stall>,
) -> Result<(SimOutcome, P), SimError> {
    assert!(cfg.warmup_cycles < cfg.total_cycles);
    let num_nodes = algo.topology().num_nodes();
    let pattern = TrafficGen::new(cfg.pattern, num_nodes);
    let injection = cfg.injection;
    let mut eng = Engine::with_probe_and_faults(
        algo,
        cfg.buffer_depth,
        cfg.flits_per_packet,
        pattern,
        &move |_| injection.build(),
        cfg.seed,
        probe,
        faults,
    );
    eng.set_injection_limit(cfg.injection_limit);
    eng.set_request_reply(cfg.request_reply);

    run(&mut eng, cfg.warmup_cycles).map_err(SimError::Deadlock)?;
    let warm = eng.counters();

    // Run the measurement window in NUM_BATCHES contiguous batches and
    // collect per-batch accepted rates for a batch-means confidence
    // interval (see `netstats::batch`).
    const NUM_BATCHES: u32 = 10;
    let window_cycles = cfg.total_cycles - cfg.warmup_cycles;
    let mut batches = netstats::BatchMeans::new();
    let mut prev_delivered = warm.delivered_flits;
    let mut remaining = window_cycles;
    for b in 0..NUM_BATCHES {
        let this = remaining / (NUM_BATCHES - b);
        remaining -= this;
        if this == 0 {
            continue;
        }
        run(&mut eng, this).map_err(SimError::Deadlock)?;
        let now = eng.counters().delivered_flits;
        batches.push((now - prev_delivered) as f64 / (this as f64 * num_nodes as f64));
        prev_delivered = now;
    }
    let end = eng.counters();

    let window = window_cycles as f64;
    let delivered_flits = (end.delivered_flits - warm.delivered_flits) as f64;
    let accepted_rate = delivered_flits / (window * num_nodes as f64);
    let created = end.created_packets - warm.created_packets;
    let generated_rate = created as f64 * cfg.flits_per_packet as f64 / (window * num_nodes as f64);

    let mut latency = Accumulator::new();
    let mut latency_hist = Histogram::new(8.0, 512);
    let mut delivered_measured = 0u64;
    for p in eng.packets() {
        if p.injected == NEVER || p.injected < cfg.warmup_cycles {
            continue;
        }
        if let Some(l) = p.latency() {
            latency.push(l as f64);
            latency_hist.record(l as f64);
            delivered_measured += 1;
        }
    }

    let routed = end.routed_headers.max(1);
    let outcome = SimOutcome {
        offered_fraction: cfg.offered_fraction(),
        generated_fraction: generated_rate / cfg.capacity_flits_per_cycle,
        accepted_fraction: accepted_rate / cfg.capacity_flits_per_cycle,
        accepted_flits_per_node_cycle: accepted_rate,
        latency,
        latency_hist,
        delivered_packets: delivered_measured,
        created_packets: created,
        backlog_packets: eng.source_queue_len(),
        escape_fraction: end.escape_routings as f64 / routed as f64,
        dropped_packets: end.dropped_packets - warm.dropped_packets,
        unroutable_packets: end.unroutable_packets - warm.unroutable_packets,
        accepted_ci: batches.ci95(),
    };
    Ok((outcome, eng.into_probe()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing::{CubeDeterministic, CubeDuato, TreeAdaptive};
    use topology::{KAryNCube, KAryNTree};

    fn quick(pattern: Pattern, rate: f64, flits: u16, cap: f64) -> SimConfig {
        SimConfig {
            seed: 1,
            warmup_cycles: 500,
            total_cycles: 4000,
            buffer_depth: 4,
            flits_per_packet: flits,
            capacity_flits_per_cycle: cap,
            injection: InjectionSpec::Bernoulli {
                packets_per_cycle: rate,
            },
            pattern,
            injection_limit: None,
            request_reply: false,
        }
    }

    #[test]
    fn below_saturation_accepted_tracks_offered() {
        // Small cube, Duato, 20% load: open-loop equilibrium.
        let algo = CubeDuato::new(KAryNCube::new(4, 2));
        let cap = 2.0; // 8/k for k=4, capped at... 8/4 = 2 -> use raw
        let cfg = quick(Pattern::Uniform, 0.2 * cap / 16.0, 16, cap);
        let out = run_simulation(&algo, &cfg);
        assert!(!out.is_saturated(0.05), "20% load must not saturate");
        assert!(
            (out.accepted_fraction - out.generated_fraction).abs() < 0.02,
            "accepted {} vs generated {}",
            out.accepted_fraction,
            out.generated_fraction
        );
        assert!(out.latency.mean() > 10.0);
        assert!(out.delivered_packets > 100);
    }

    #[test]
    fn saturation_shows_backlog_and_gap() {
        // Drive the small cube way past capacity.
        let algo = CubeDeterministic::new(KAryNCube::new(4, 2));
        let cube_cap = KAryNCube::new(4, 2).uniform_capacity_flits_per_cycle();
        let cfg = quick(Pattern::Uniform, 2.0 * cube_cap / 16.0, 16, cube_cap);
        let out = run_simulation(&algo, &cfg);
        assert!(out.is_saturated(0.02));
        assert!(out.backlog_packets > 50, "backlog {}", out.backlog_packets);
        assert!(out.accepted_fraction < 1.0);
        assert!(out.accepted_fraction > 0.2, "network still moves packets");
    }

    #[test]
    fn tree_accepts_more_with_more_vcs_under_uniform_pressure() {
        // The paper's core flow-control result, on a small tree at high
        // load: more virtual channels => more accepted bandwidth.
        let tree = KAryNTree::new(2, 4); // 16 nodes
        let mut accepted = Vec::new();
        for vcs in [1usize, 4] {
            let algo = TreeAdaptive::new(tree.clone(), vcs);
            let cfg = SimConfig {
                seed: 2,
                warmup_cycles: 1000,
                total_cycles: 8000,
                buffer_depth: 4,
                flits_per_packet: 32,
                capacity_flits_per_cycle: 1.0,
                injection: InjectionSpec::Bernoulli {
                    packets_per_cycle: 0.9 / 32.0,
                },
                pattern: Pattern::Uniform,
                injection_limit: None,
                request_reply: false,
            };
            accepted.push(run_simulation(&algo, &cfg).accepted_fraction);
        }
        assert!(
            accepted[1] > accepted[0] * 1.15,
            "4 VCs ({}) should clearly beat 1 VC ({})",
            accepted[1],
            accepted[0]
        );
    }

    #[test]
    fn offered_fraction_roundtrip() {
        let cfg = quick(Pattern::Uniform, 0.5 / 32.0, 32, 1.0);
        assert!((cfg.offered_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn injection_spec_rates() {
        assert!(
            (InjectionSpec::Bernoulli {
                packets_per_cycle: 0.25
            }
            .mean_rate()
                - 0.25)
                .abs()
                < 1e-12
        );
        assert!((InjectionSpec::Periodic { period: 8 }.mean_rate() - 0.125).abs() < 1e-12);
        let oo = InjectionSpec::OnOff {
            peak_rate: 0.5,
            mean_on: 100.0,
            mean_off: 300.0,
        };
        assert!((oo.mean_rate() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn zero_load_runs_clean() {
        let algo = CubeDuato::new(KAryNCube::new(4, 2));
        let cfg = quick(Pattern::Uniform, 0.0, 16, 2.0);
        let out = run_simulation(&algo, &cfg);
        assert_eq!(out.delivered_packets, 0);
        assert_eq!(out.accepted_fraction, 0.0);
        assert!(out.latency.mean().is_nan());
    }
}
