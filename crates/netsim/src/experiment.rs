//! The paper's experiment harness: the five router configurations,
//! load sweeps, and CNF curve generation.
//!
//! Figures 5–7 all derive from the same experiment shape: fix a network
//! and routing algorithm, sweep the offered load from a few percent of
//! capacity up to (and past) 100%, and record accepted bandwidth and
//! mean network latency at each point. This module packages the five
//! configurations of the paper —
//!
//! * 16-ary 2-cube with deterministic routing,
//! * 16-ary 2-cube with Duato's minimal adaptive routing,
//! * 4-ary 4-tree with adaptive routing and 1, 2 or 4 virtual channels —
//!
//! together with their Chien-model timings and normalizations, and runs
//! sweeps in parallel with `std::thread::scope`.

use crate::sim::{run_simulation, InjectionSpec, SimConfig, SimOutcome};
use costmodel::chien::{cube_deterministic_timing, cube_duato_timing, tree_adaptive_timing};
use costmodel::normalize::NetworkNormalization;
use netstats::SweepCurve;
use routing::{CubeDeterministic, CubeDuato, RoutingAlgorithm, TreeAdaptive};
use topology::{KAryNCube, KAryNTree};
use traffic::Pattern;

/// Parameters of a k-ary n-cube experiment network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CubeParams {
    /// Radix (nodes per dimension).
    pub k: usize,
    /// Dimension.
    pub n: usize,
}

impl CubeParams {
    /// The paper's 16-ary 2-cube (256 nodes).
    pub fn paper() -> Self {
        CubeParams { k: 16, n: 2 }
    }

    /// A 16-node cube for fast tests.
    pub fn tiny() -> Self {
        CubeParams { k: 4, n: 2 }
    }

    fn build(&self) -> KAryNCube {
        KAryNCube::new(self.k, self.n)
    }
}

/// Parameters of a k-ary n-tree experiment network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeParams {
    /// Arity.
    pub k: usize,
    /// Number of levels.
    pub n: usize,
}

impl TreeParams {
    /// The paper's 4-ary 4-tree (256 nodes).
    pub fn paper() -> Self {
        TreeParams { k: 4, n: 4 }
    }

    /// A 16-node tree for fast tests.
    pub fn tiny() -> Self {
        TreeParams { k: 4, n: 2 }
    }

    fn build(&self) -> KAryNTree {
        KAryNTree::new(self.k, self.n)
    }
}

/// One of the paper's router configurations, bound to a network size.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    label: String,
    kind: SpecKind,
}

#[derive(Clone, Copy, Debug)]
enum SpecKind {
    CubeDet(CubeParams),
    CubeDuato(CubeParams),
    Tree(TreeParams, usize),
}

/// Run-length of a simulation.
#[derive(Clone, Copy, Debug)]
pub struct RunLength {
    /// Warm-up cycles excluded from measurement.
    pub warmup: u32,
    /// Total cycles.
    pub total: u32,
}

impl RunLength {
    /// The paper's protocol: 2000 warm-up, halt at 20000.
    pub fn paper() -> Self {
        RunLength { warmup: 2_000, total: 20_000 }
    }

    /// A shorter protocol for tests and quick looks (noisier).
    pub fn quick() -> Self {
        RunLength { warmup: 1_000, total: 6_000 }
    }
}

impl ExperimentSpec {
    /// Cube with dimension-order deterministic routing.
    pub fn cube_deterministic(p: CubeParams) -> Self {
        ExperimentSpec { label: "cube, deterministic".into(), kind: SpecKind::CubeDet(p) }
    }

    /// Cube with Duato's minimal adaptive routing.
    pub fn cube_duato(p: CubeParams) -> Self {
        ExperimentSpec { label: "cube, Duato".into(), kind: SpecKind::CubeDuato(p) }
    }

    /// Fat-tree with adaptive routing and `vcs` virtual channels.
    pub fn tree_adaptive(p: TreeParams, vcs: usize) -> Self {
        assert!(vcs >= 1);
        ExperimentSpec { label: format!("fat tree, {vcs} vc"), kind: SpecKind::Tree(p, vcs) }
    }

    /// The five configurations of the paper's evaluation, bound to the
    /// paper's 256-node networks.
    pub fn paper_five() -> Vec<ExperimentSpec> {
        vec![
            ExperimentSpec::cube_deterministic(CubeParams::paper()),
            ExperimentSpec::cube_duato(CubeParams::paper()),
            ExperimentSpec::tree_adaptive(TreeParams::paper(), 1),
            ExperimentSpec::tree_adaptive(TreeParams::paper(), 2),
            ExperimentSpec::tree_adaptive(TreeParams::paper(), 4),
        ]
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Instantiate the routing algorithm (and with it the network).
    pub fn build_algorithm(&self) -> Box<dyn RoutingAlgorithm> {
        match self.kind {
            SpecKind::CubeDet(p) => Box::new(CubeDeterministic::new(p.build())),
            SpecKind::CubeDuato(p) => Box::new(CubeDuato::new(p.build())),
            SpecKind::Tree(p, vcs) => Box::new(TreeAdaptive::new(p.build(), vcs)),
        }
    }

    /// Call `v` with this spec's routing algorithm as a *concrete* type
    /// — the monomorphization point: everything downstream of
    /// [`SpecVisitor::visit`] (engine, routing phase, per-header route
    /// calls) is compiled per algorithm with static dispatch.
    pub fn with_algorithm<V: SpecVisitor>(&self, v: V) -> V::Out {
        match self.kind {
            SpecKind::CubeDet(p) => v.visit(CubeDeterministic::new(p.build())),
            SpecKind::CubeDuato(p) => v.visit(CubeDuato::new(p.build())),
            SpecKind::Tree(p, vcs) => v.visit(TreeAdaptive::new(p.build(), vcs)),
        }
    }

    /// The physical normalization (flit width, capacity, Chien timing).
    pub fn normalization(&self) -> NetworkNormalization {
        match self.kind {
            SpecKind::CubeDet(p) => {
                NetworkNormalization::cube(&p.build(), cube_deterministic_timing())
            }
            SpecKind::CubeDuato(p) => {
                NetworkNormalization::cube(&p.build(), cube_duato_timing())
            }
            SpecKind::Tree(p, vcs) => {
                NetworkNormalization::tree(&p.build(), tree_adaptive_timing(p.k, vcs))
            }
        }
    }

    /// A simulation config for this spec at the given offered load
    /// (fraction of capacity).
    pub fn config_at(&self, pattern: Pattern, fraction: f64, len: RunLength) -> SimConfig {
        let norm = self.normalization();
        let mut cfg = SimConfig::paper_protocol(
            pattern,
            InjectionSpec::Bernoulli { packets_per_cycle: norm.packet_rate(fraction) },
            norm.flits_per_packet() as u16,
            norm.capacity_flits_per_cycle(),
        );
        cfg.warmup_cycles = len.warmup;
        cfg.total_cycles = len.total;
        // Source throttling for the cube algorithms, after the paper's
        // reference [28]: a node holds new packets back while half or
        // more of its router's network output lanes are allocated. This
        // is what keeps throughput stable above saturation (Section 3);
        // the tree needs no such mechanism — its saturation is
        // intrinsically stable.
        cfg.injection_limit = match self.kind {
            SpecKind::CubeDet(p) | SpecKind::CubeDuato(p) => {
                // Half of the 2n*V network lanes (8 of 16 for the
                // paper's cube). Large enough not to cap pre-saturation
                // throughput for any pattern, small enough to keep the
                // uniform and complement curves flat after saturation
                // and to preserve Section 9's complement inversion
                // (deterministic > Duato). A tighter threshold would
                // also stabilize bit-reversal above saturation but
                // over-corrects complement — see
                // `ablation_injection_limit.csv` and EXPERIMENTS.md.
                let algo = self.build_algorithm();
                Some((p.n * algo.num_vcs()) as u32)
            }
            SpecKind::Tree(..) => None,
        };
        // Independent but reproducible seed per (spec, pattern, load).
        cfg.seed = seed_for(&self.label, pattern, fraction);
        cfg
    }
}

fn seed_for(label: &str, pattern: Pattern, fraction: f64) -> u64 {
    // FNV-1a over the identifying data: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    };
    label.bytes().for_each(&mut eat);
    pattern.name().bytes().for_each(&mut eat);
    fraction.to_bits().to_le_bytes().iter().copied().for_each(&mut eat);
    h
}

/// A generic callback for [`ExperimentSpec::with_algorithm`]: the trait
/// method is generic over the algorithm type, so implementors receive
/// the concrete `CubeDeterministic`/`CubeDuato`/`TreeAdaptive` value
/// rather than a trait object.
pub trait SpecVisitor {
    /// Result produced from the algorithm.
    type Out;

    /// Called exactly once with the spec's algorithm.
    fn visit<A: RoutingAlgorithm>(self, algo: A) -> Self::Out;
}

/// Simulate one configuration at one offered load.
///
/// Dispatches once on the spec kind to a fully monomorphized engine
/// (`Engine<'_, CubeDuato>` etc.), so the per-header routing call is
/// statically bound inside the cycle loop.
pub fn simulate_load(
    spec: &ExperimentSpec,
    pattern: Pattern,
    fraction: f64,
    len: RunLength,
) -> SimOutcome {
    struct Run<'c>(&'c SimConfig);
    impl SpecVisitor for Run<'_> {
        type Out = SimOutcome;
        fn visit<A: RoutingAlgorithm>(self, algo: A) -> SimOutcome {
            run_simulation(&algo, self.0)
        }
    }
    let cfg = spec.config_at(pattern, fraction, len);
    spec.with_algorithm(Run(&cfg))
}

/// The default load grid used for the figures: 5% to 100% of capacity in
/// 5% steps.
pub fn default_load_grid() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.05).collect()
}

/// Sweep a configuration over a load grid, in parallel, returning the
/// accepted-bandwidth and latency curves (x = offered fraction of
/// capacity).
pub fn sweep(
    spec: &ExperimentSpec,
    pattern: Pattern,
    fractions: &[f64],
    len: RunLength,
) -> SweepCurve {
    let outcomes = sweep_outcomes(spec, pattern, fractions, len);
    let mut curve = SweepCurve::new(spec.label());
    for (f, out) in fractions.iter().zip(&outcomes) {
        let lat = out.mean_latency_cycles();
        curve.push(*f, out.accepted_fraction, if lat.is_nan() { 0.0 } else { lat });
    }
    curve
}

/// Worker-thread count for [`sweep_outcomes`]: the `NETPERF_THREADS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn sweep_threads() -> usize {
    std::env::var("NETPERF_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        })
}

/// Like [`sweep`], but returning the full outcome at every load point.
///
/// Load points are distributed over worker threads by work stealing
/// (each run is a pure function of the spec, so order does not matter);
/// finished outcomes flow back over a channel tagged with their grid
/// index and are placed without any shared mutable state. Thread count
/// can be pinned with `NETPERF_THREADS`.
pub fn sweep_outcomes(
    spec: &ExperimentSpec,
    pattern: Pattern,
    fractions: &[f64],
    len: RunLength,
) -> Vec<SimOutcome> {
    let threads = sweep_threads().min(fractions.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, SimOutcome)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            s.spawn(|| {
                let tx = tx; // move the clone, not the original
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= fractions.len() {
                        break;
                    }
                    let out = simulate_load(spec, pattern, fractions[i], len);
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx); // all worker clones are done; close the channel
    let mut results: Vec<Option<SimOutcome>> = vec![None; fractions.len()];
    for (i, out) in rx {
        debug_assert!(results[i].is_none(), "load point {i} simulated twice");
        results[i] = Some(out);
    }
    results.into_iter().map(|o| o.expect("all points simulated")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_five_shapes() {
        let specs = ExperimentSpec::paper_five();
        assert_eq!(specs.len(), 5);
        let labels: Vec<&str> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "cube, deterministic",
                "cube, Duato",
                "fat tree, 1 vc",
                "fat tree, 2 vc",
                "fat tree, 4 vc"
            ]
        );
        for s in &specs {
            let algo = s.build_algorithm();
            assert_eq!(algo.topology().num_nodes(), 256);
            assert_eq!(algo.topology().num_routers(), 256);
        }
    }

    #[test]
    fn config_matches_normalization() {
        let spec = ExperimentSpec::cube_duato(CubeParams::paper());
        let cfg = spec.config_at(Pattern::Uniform, 0.5, RunLength::paper());
        assert_eq!(cfg.flits_per_packet, 16);
        assert!((cfg.offered_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(cfg.warmup_cycles, 2000);
        assert_eq!(cfg.total_cycles, 20000);

        let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), 4);
        let cfg = spec.config_at(Pattern::Transpose, 1.0, RunLength::paper());
        assert_eq!(cfg.flits_per_packet, 32);
        assert!((cfg.injection.mean_rate() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let a = seed_for("x", Pattern::Uniform, 0.5);
        let b = seed_for("x", Pattern::Uniform, 0.55);
        let c = seed_for("y", Pattern::Uniform, 0.5);
        let d = seed_for("x", Pattern::Transpose, 0.5);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, seed_for("x", Pattern::Uniform, 0.5));
    }

    #[test]
    fn tiny_sweep_is_monotone_then_flat() {
        // A coarse sweep on the tiny cube: accepted grows with offered
        // and the curve saturates below 1.0.
        let spec = ExperimentSpec::cube_duato(CubeParams::tiny());
        let grid = [0.2, 0.6, 1.0];
        let curve = sweep(&spec, Pattern::Uniform, &grid, RunLength::quick());
        let ys: Vec<f64> = curve.accepted.points.iter().map(|&(_, y)| y).collect();
        assert!(ys[0] < ys[1] + 0.05);
        assert!(ys[2] <= 1.0);
        assert!(ys[1] > 0.3);
        // Latency grows with load.
        let ls: Vec<f64> = curve.latency.points.iter().map(|&(_, y)| y).collect();
        assert!(ls[2] > ls[0]);
    }

    #[test]
    fn parallel_sweep_equals_serial() {
        let spec = ExperimentSpec::cube_deterministic(CubeParams::tiny());
        let grid = [0.3, 0.9];
        let par = sweep_outcomes(&spec, Pattern::Transpose, &grid, RunLength::quick());
        let ser: Vec<SimOutcome> = grid
            .iter()
            .map(|&f| simulate_load(&spec, Pattern::Transpose, f, RunLength::quick()))
            .collect();
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.delivered_packets, s.delivered_packets);
            assert_eq!(p.created_packets, s.created_packets);
            assert!((p.accepted_fraction - s.accepted_fraction).abs() < 1e-12);
        }
    }

    #[test]
    fn default_grid_covers_5_to_100() {
        let g = default_load_grid();
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[19] - 1.0).abs() < 1e-12);
    }
}
