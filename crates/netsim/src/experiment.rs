//! The historical experiment harness, now a thin wrapper over the
//! [`crate::scenario`] plane.
//!
//! `ExperimentSpec` predates [`Scenario`] and is kept for API stability:
//! every constructor, accessor and sweep helper here delegates to an
//! underlying scenario, and the five paper configurations come from the
//! scenario registry rather than an enum. New code should use
//! [`Scenario`] / [`ScenarioBuilder`](crate::scenario::ScenarioBuilder)
//! directly — they expose the full design space (meshes, injection
//! models, seeding policies) that this wrapper does not.
//!
//! Bit-compatibility: for the five paper configurations,
//! [`ExperimentSpec::config_at`] produces configs — including FNV-derived
//! seeds — identical to the pre-scenario implementation, so counters and
//! artifacts are unchanged. `tests/scenario_equivalence.rs` pins this.

use crate::scenario::{RoutingKind, Scenario, SeedMode, TopologySpec};
use crate::sim::{SimConfig, SimOutcome};
use costmodel::normalize::NetworkNormalization;
use netstats::SweepCurve;
use routing::RoutingAlgorithm;
use topology::{KAryNCube, KAryNTree};
use traffic::Pattern;

pub use crate::scenario::{default_load_grid, sweep_threads, RunLength, SpecVisitor};

/// Parameters of a k-ary n-cube experiment network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CubeParams {
    /// Radix (nodes per dimension).
    pub k: usize,
    /// Dimension.
    pub n: usize,
}

impl CubeParams {
    /// The paper's 16-ary 2-cube (256 nodes).
    pub fn paper() -> Self {
        CubeParams { k: 16, n: 2 }
    }

    /// A 16-node cube for fast tests.
    pub fn tiny() -> Self {
        CubeParams { k: 4, n: 2 }
    }

    /// Build the topology.
    pub fn build(&self) -> KAryNCube {
        KAryNCube::new(self.k, self.n)
    }
}

/// Parameters of a k-ary n-tree experiment network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeParams {
    /// Arity.
    pub k: usize,
    /// Number of levels.
    pub n: usize,
}

impl TreeParams {
    /// The paper's 4-ary 4-tree (256 nodes).
    pub fn paper() -> Self {
        TreeParams { k: 4, n: 4 }
    }

    /// A 16-node tree for fast tests.
    pub fn tiny() -> Self {
        TreeParams { k: 4, n: 2 }
    }

    /// Build the topology.
    pub fn build(&self) -> KAryNTree {
        KAryNTree::new(self.k, self.n)
    }
}

/// One of the paper's router configurations, bound to a network size.
///
/// Deprecated in spirit (kept as a stable alias): this is a view over
/// [`Scenario`] restricted to the cube/tree configurations the paper
/// evaluates. Use [`Scenario::builder`] for anything richer.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    scenario: Scenario,
}

impl ExperimentSpec {
    /// Cube with dimension-order deterministic routing.
    pub fn cube_deterministic(p: CubeParams) -> Self {
        ExperimentSpec {
            scenario: Scenario::builder()
                .topology(TopologySpec::cube(p.k, p.n))
                .routing(RoutingKind::Deterministic)
                .build()
                .expect("legal cube configuration"),
        }
    }

    /// Cube with Duato's minimal adaptive routing.
    pub fn cube_duato(p: CubeParams) -> Self {
        ExperimentSpec {
            scenario: Scenario::builder()
                .topology(TopologySpec::cube(p.k, p.n))
                .routing(RoutingKind::Duato)
                .build()
                .expect("legal cube configuration"),
        }
    }

    /// Fat-tree with adaptive routing and `vcs` virtual channels.
    pub fn tree_adaptive(p: TreeParams, vcs: usize) -> Self {
        assert!(vcs >= 1);
        ExperimentSpec {
            scenario: Scenario::builder()
                .topology(TopologySpec::tree(p.k, p.n))
                .routing(RoutingKind::Adaptive)
                .vcs(vcs)
                .build()
                .expect("legal tree configuration"),
        }
    }

    /// The five configurations of the paper's evaluation, bound to the
    /// paper's 256-node networks (the scenario registry's paper
    /// entries).
    pub fn paper_five() -> Vec<ExperimentSpec> {
        crate::scenario::paper_scenarios()
            .into_iter()
            .map(ExperimentSpec::from_scenario)
            .collect()
    }

    /// Wrap an arbitrary scenario in the legacy interface.
    ///
    /// The wrapper's `config_at`/sweep helpers override the scenario's
    /// pattern and run length with their own arguments; everything else
    /// (topology, routing, VCs, seeding, throttle) is taken from the
    /// scenario.
    pub fn from_scenario(scenario: Scenario) -> Self {
        ExperimentSpec { scenario }
    }

    /// The underlying scenario (with the spec's default pattern and run
    /// length).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &str {
        self.scenario.label()
    }

    /// Instantiate the routing algorithm (and with it the network).
    pub fn build_algorithm(&self) -> Box<dyn RoutingAlgorithm> {
        self.scenario.build_algorithm()
    }

    /// Call `v` with this spec's routing algorithm as a *concrete* type
    /// — see [`Scenario::with_algorithm`].
    pub fn with_algorithm<V: SpecVisitor>(&self, v: V) -> V::Out {
        self.scenario.with_algorithm(v)
    }

    /// The physical normalization (flit width, capacity, Chien timing).
    pub fn normalization(&self) -> NetworkNormalization {
        self.scenario.normalization()
    }

    /// The scenario at a given pattern and run length (the legacy
    /// call-shape: pattern and length as arguments, not state).
    fn at(&self, pattern: Pattern, len: RunLength) -> Scenario {
        self.scenario
            .clone()
            .with_pattern(pattern)
            .with_run_length(len)
    }

    /// A simulation config for this spec at the given offered load
    /// (fraction of capacity).
    pub fn config_at(&self, pattern: Pattern, fraction: f64, len: RunLength) -> SimConfig {
        self.at(pattern, len).config_at(fraction)
    }
}

/// Simulate one configuration at one offered load.
///
/// Dispatches once on the scenario to a fully monomorphized engine
/// (`Engine<'_, CubeDuato>` etc.), so the per-header routing call is
/// statically bound inside the cycle loop.
pub fn simulate_load(
    spec: &ExperimentSpec,
    pattern: Pattern,
    fraction: f64,
    len: RunLength,
) -> SimOutcome {
    spec.at(pattern, len).simulate(fraction)
}

/// Sweep a configuration over a load grid, in parallel, returning the
/// accepted-bandwidth and latency curves (x = offered fraction of
/// capacity).
pub fn sweep(
    spec: &ExperimentSpec,
    pattern: Pattern,
    fractions: &[f64],
    len: RunLength,
) -> SweepCurve {
    spec.at(pattern, len).sweep_curve(fractions)
}

/// Like [`sweep`], but returning the full outcome at every load point.
///
/// See [`Scenario::sweep_outcomes`] for the scheduling details.
pub fn sweep_outcomes(
    spec: &ExperimentSpec,
    pattern: Pattern,
    fractions: &[f64],
    len: RunLength,
) -> Vec<SimOutcome> {
    spec.at(pattern, len).sweep_outcomes(fractions)
}

/// Like [`sweep_outcomes`], with the derived per-point seeds XOR'd with
/// `salt`. Salt 0 is bit-identical to [`sweep_outcomes`]; any other
/// value reruns the same sweep under an independent noise realization.
pub fn sweep_outcomes_salted(
    spec: &ExperimentSpec,
    pattern: Pattern,
    fractions: &[f64],
    len: RunLength,
    salt: u64,
) -> Vec<SimOutcome> {
    spec.at(pattern, len)
        .with_seed(SeedMode::Derived { salt })
        .sweep_outcomes(fractions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::derived_seed;

    #[test]
    fn paper_five_shapes() {
        let specs = ExperimentSpec::paper_five();
        assert_eq!(specs.len(), 5);
        let labels: Vec<&str> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "cube, deterministic",
                "cube, Duato",
                "fat tree, 1 vc",
                "fat tree, 2 vc",
                "fat tree, 4 vc"
            ]
        );
        for s in &specs {
            let algo = s.build_algorithm();
            assert_eq!(algo.topology().num_nodes(), 256);
            assert_eq!(algo.topology().num_routers(), 256);
        }
    }

    #[test]
    fn config_matches_normalization() {
        let spec = ExperimentSpec::cube_duato(CubeParams::paper());
        let cfg = spec.config_at(Pattern::Uniform, 0.5, RunLength::paper());
        assert_eq!(cfg.flits_per_packet, 16);
        assert!((cfg.offered_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(cfg.warmup_cycles, 2000);
        assert_eq!(cfg.total_cycles, 20000);

        let spec = ExperimentSpec::tree_adaptive(TreeParams::paper(), 4);
        let cfg = spec.config_at(Pattern::Transpose, 1.0, RunLength::paper());
        assert_eq!(cfg.flits_per_packet, 32);
        assert!((cfg.injection.mean_rate() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let a = derived_seed("x", Pattern::Uniform, 0.5);
        let b = derived_seed("x", Pattern::Uniform, 0.55);
        let c = derived_seed("y", Pattern::Uniform, 0.5);
        let d = derived_seed("x", Pattern::Transpose, 0.5);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, derived_seed("x", Pattern::Uniform, 0.5));
    }

    #[test]
    fn config_seed_comes_from_the_label() {
        let spec = ExperimentSpec::cube_duato(CubeParams::paper());
        let cfg = spec.config_at(Pattern::Uniform, 0.5, RunLength::paper());
        assert_eq!(cfg.seed, derived_seed("cube, Duato", Pattern::Uniform, 0.5));
    }

    #[test]
    fn tiny_sweep_is_monotone_then_flat() {
        // A coarse sweep on the tiny cube: accepted grows with offered
        // and the curve saturates below 1.0.
        let spec = ExperimentSpec::cube_duato(CubeParams::tiny());
        let grid = [0.2, 0.6, 1.0];
        let curve = sweep(&spec, Pattern::Uniform, &grid, RunLength::quick());
        let ys: Vec<f64> = curve.accepted.points.iter().map(|&(_, y)| y).collect();
        assert!(ys[0] < ys[1] + 0.05);
        assert!(ys[2] <= 1.0);
        assert!(ys[1] > 0.3);
        // Latency grows with load.
        let ls: Vec<f64> = curve.latency.points.iter().map(|&(_, y)| y).collect();
        assert!(ls[2] > ls[0]);
    }

    #[test]
    fn parallel_sweep_equals_serial() {
        let spec = ExperimentSpec::cube_deterministic(CubeParams::tiny());
        let grid = [0.3, 0.9];
        let par = sweep_outcomes(&spec, Pattern::Transpose, &grid, RunLength::quick());
        let ser: Vec<SimOutcome> = grid
            .iter()
            .map(|&f| simulate_load(&spec, Pattern::Transpose, f, RunLength::quick()))
            .collect();
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.delivered_packets, s.delivered_packets);
            assert_eq!(p.created_packets, s.created_packets);
            assert!((p.accepted_fraction - s.accepted_fraction).abs() < 1e-12);
        }
    }

    #[test]
    fn salted_sweep_differs_but_salt_zero_matches() {
        let spec = ExperimentSpec::cube_duato(CubeParams::tiny());
        let grid = [0.5];
        let len = RunLength::quick();
        let base = sweep_outcomes(&spec, Pattern::Uniform, &grid, len);
        let zero = sweep_outcomes_salted(&spec, Pattern::Uniform, &grid, len, 0);
        assert_eq!(base[0].created_packets, zero[0].created_packets);
        assert_eq!(base[0].delivered_packets, zero[0].delivered_packets);
        let salted = sweep_outcomes_salted(&spec, Pattern::Uniform, &grid, len, 0xA5A5);
        assert_ne!(
            (base[0].created_packets, base[0].delivered_packets),
            (salted[0].created_packets, salted[0].delivered_packets),
            "different salt should change the realization"
        );
    }

    #[test]
    fn default_grid_covers_5_to_100() {
        let g = default_load_grid();
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[19] - 1.0).abs() < 1e-12);
    }
}
