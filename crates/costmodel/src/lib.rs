//! Physical-constraint cost modelling (Section 5 of the paper).
//!
//! Two ingredients make the paper's comparison "apples with apples":
//!
//! 1. **Chien's router cost model** ([`chien`]) converts the structural
//!    complexity of a routing algorithm — degrees of freedom `F`,
//!    crossbar ports `P`, virtual channels `V`, wire length class — into
//!    gate-level delays for a 0.8 µm CMOS gate array, and from those the
//!    router clock period.
//! 2. **Performance normalization** ([`normalize`]) equalizes pin count
//!    and peak bandwidth between the two networks (2-byte flits on the
//!    fat-tree vs 4-byte flits on the cube), defines the per-node
//!    capacity under uniform traffic, and converts simulator outputs
//!    (flits/cycle, cycles) into the absolute units of Figure 7
//!    (bits/ns, ns).

#![warn(missing_docs)]
pub mod chien;
pub mod normalize;

pub use chien::{ChienModel, RouterTiming, WireClass};
pub use normalize::{NetworkKind, NetworkNormalization};
