//! Physical-constraint cost modelling (Section 5 of the paper).
//!
//! Two ingredients make the paper's comparison "apples with apples":
//!
//! 1. **Chien's router cost model** ([`chien`]) converts the structural
//!    complexity of a routing algorithm — degrees of freedom `F`,
//!    crossbar ports `P`, virtual channels `V`, wire length class — into
//!    gate-level delays for a 0.8 µm CMOS gate array, and from those the
//!    router clock period.
//! 2. **Performance normalization** ([`normalize`]) equalizes pin count
//!    and peak bandwidth between the two networks (2-byte flits on the
//!    fat-tree vs 4-byte flits on the cube), defines the per-node
//!    capacity under uniform traffic, and converts simulator outputs
//!    (flits/cycle, cycles) into the absolute units of Figure 7
//!    (bits/ns, ns).
//!
//! The [`design`] module turns the two ingredients into an optimizer:
//! given a node count and a per-router pin budget it enumerates every
//! registered topology family's candidate shapes, prices each with the
//! Chien-derived clock and the bisection capacity, and screens them
//! with the closed-form models from the `analytic` crate where one
//! exists. The `netperf design` subcommand ranks the feasible
//! survivors by short simulations.

#![warn(missing_docs)]
pub mod chien;
pub mod design;
pub mod normalize;

pub use chien::{ChienModel, RouterTiming, WireClass};
pub use design::{enumerate as enumerate_designs, DesignBudget, DesignPoint};
pub use normalize::{NetworkKind, NetworkNormalization};
