//! Design-space enumeration under physical constraints.
//!
//! The paper's comparison is a two-point design study: at equal pin
//! count and equal peak bandwidth, is the 256-node machine better built
//! as a 16-ary 2-cube or a 4-ary 4-tree? This module generalizes the
//! question into an optimizer over the whole registered family table:
//! given a node count and a per-router pin budget, enumerate every
//! `(family, k, n, taper, vcs)` candidate, derive its router clock from
//! [`crate::chien`], its capacity from the topology's bisection, and an
//! analytic throughput screen where the workspace has an exact model
//! (cube and tree; the tapered tree reuses the tree model scaled by its
//! taper — documented approximation; mesh and THC pass through to
//! simulation unscreened).
//!
//! ## The pin model
//!
//! A router's dominant package cost is its data pins. Following the
//! paper's normalization — 4-byte flits/data paths on direct networks,
//! 2-byte on indirect ones, transferred as half-flit *phits* so a port
//! carries `flit_bits / 2` wires per direction:
//!
//! ```text
//! pins(router) = ports * 2 directions * flit_bits / 2
//! ```
//!
//! This reproduces the paper's equal-cost pairing exactly: the 16-ary
//! 2-cube router (5 ports x 2 x 16) and the 4-ary 4-tree switch
//! (8 ports x 2 x 8) both come out near the ~200-pin envelope of a
//! 0.8 um gate array (160 and 128 data pins respectively), while a
//! 256-node torus-embedded hypercube (13 ports x 2 x 16 = 416) is
//! honestly over any such budget.
//!
//! The enumeration *keeps* infeasible points (flagged) so a design
//! report shows what the budget excluded; the simulation stage in the
//! `netperf design` subcommand runs only the feasible survivors.

use crate::chien::RouterClass;
use crate::normalize::NetworkNormalization;
use analytic::{CubeModel, TreeModel};
use topology::{KAryNCube, KAryNMesh, KAryNTree, TaperedKAryNTree, Topology, TorusHypercube};

/// The two physical constraints a design study fixes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DesignBudget {
    /// Number of processing nodes the machine must connect.
    pub nodes: usize,
    /// Data-pin budget per router package.
    pub pin_budget: usize,
}

/// One priced point of the design space.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignPoint {
    /// Family slug from the topology registry.
    pub family: &'static str,
    /// Radix / arity.
    pub k: usize,
    /// Dimensions / levels (binary dimensions for the THC).
    pub n: usize,
    /// Oversubscription ratio (1 except tapered trees).
    pub taper: usize,
    /// Virtual channels per link.
    pub vcs: usize,
    /// Routing algorithm the family's default scenario uses.
    pub routing: &'static str,
    /// Node count (equals the budget's by construction).
    pub nodes: usize,
    /// Router / switch count.
    pub routers: usize,
    /// Ports per router, node/link ports included.
    pub ports_per_router: usize,
    /// Flit and data-path width in bytes (4 direct, 2 indirect).
    pub flit_bytes: usize,
    /// Data pins per router under the phit model.
    pub pins_per_router: usize,
    /// Whether the point fits the pin budget.
    pub feasible: bool,
    /// Bidirectional links across the narrowest canonical bisection.
    pub bisection_links: usize,
    /// Per-node uniform-traffic capacity, flits/cycle.
    pub capacity_flits_per_cycle: f64,
    /// Router clock period from Chien's model, ns.
    pub clock_ns: f64,
    /// Which router stage limits the clock.
    pub clock_bottleneck: &'static str,
    /// Aggregate capacity in absolute units, bits/ns.
    pub capacity_bits_per_ns: f64,
    /// Analytic saturation estimate as a fraction of capacity, where a
    /// closed-form model exists (`None`: screen in simulation only).
    pub analytic_saturation_fraction: Option<f64>,
    /// The screen's absolute throughput estimate, bits/ns.
    pub predicted_bits_per_ns: Option<f64>,
}

impl DesignPoint {
    /// Stable one-line identity for reports, e.g.
    /// `tapered-tree k=4 n=4 taper=2 adaptive-4vc`.
    pub fn id(&self) -> String {
        let mut s = format!("{} k={} n={}", self.family, self.k, self.n);
        if self.taper != 1 {
            s.push_str(&format!(" taper={}", self.taper));
        }
        s.push_str(&format!(" {}-{}vc", self.routing, self.vcs));
        s
    }
}

/// Integer `n`-th roots of `nodes`: every `(k, n)` with `k^n == nodes`,
/// `k >= 2`, `n >= 1`, smallest `n` first.
fn shapes_of(nodes: usize) -> Vec<(usize, usize)> {
    let mut shapes = Vec::new();
    for n in 1..=usize::BITS as usize {
        let k = (nodes as f64).powf(1.0 / n as f64).round() as usize;
        if k < 2 {
            break;
        }
        if (k as u64).checked_pow(n as u32) == Some(nodes as u64) {
            shapes.push((k, n));
        }
    }
    shapes
}

/// Virtual-channel axis each family's default routing algorithm
/// supports (the paper's evaluated settings).
const TREE_VCS: &[usize] = &[1, 2, 4];

/// The enumeration axes of one candidate: which family/routing row it
/// came from and the shape knobs it was instantiated with.
struct Axes {
    family: &'static str,
    routing: &'static str,
    k: usize,
    n: usize,
    taper: usize,
    vcs: usize,
}

fn point(
    budget: &DesignBudget,
    axes: Axes,
    topo: &dyn Topology,
    bisection_links: usize,
    class: RouterClass,
    norm: NetworkNormalization,
    analytic_saturation_fraction: Option<f64>,
) -> DesignPoint {
    let ports = topo.ports(topology::RouterId(0));
    let flit_bytes = norm.flit_bytes();
    // ports x 2 directions x (flit_bits / 2) phit wires.
    let pins = ports * flit_bytes * 8;
    let timing = class.timing();
    DesignPoint {
        family: axes.family,
        k: axes.k,
        n: axes.n,
        taper: axes.taper,
        vcs: axes.vcs,
        routing: axes.routing,
        nodes: topo.num_nodes(),
        routers: topo.num_routers(),
        ports_per_router: ports,
        flit_bytes,
        pins_per_router: pins,
        feasible: pins <= budget.pin_budget,
        bisection_links,
        capacity_flits_per_cycle: norm.capacity_flits_per_cycle(),
        clock_ns: timing.clock_ns(),
        clock_bottleneck: timing.bottleneck(),
        capacity_bits_per_ns: norm.capacity_bits_per_ns(),
        analytic_saturation_fraction,
        predicted_bits_per_ns: analytic_saturation_fraction
            .map(|f| norm.fraction_to_bits_per_ns(f.min(1.0))),
    }
}

/// Enumerate and price every design point with exactly `budget.nodes`
/// nodes, feasible or not. Points are emitted family by family in
/// registry order; the caller ranks them (analytically via
/// [`DesignPoint::predicted_bits_per_ns`], or by simulating the
/// feasible ones).
///
/// Families whose canonical bisection needs an even radix (cube, mesh,
/// tree, tapered tree) skip odd-`k` shapes; the THC accepts any radix.
pub fn enumerate(budget: &DesignBudget) -> Vec<DesignPoint> {
    let mut points = Vec::new();
    let shapes = shapes_of(budget.nodes);

    for &(k, n) in &shapes {
        if !k.is_multiple_of(2) {
            continue;
        }
        // Direct pair: cube under Duato (the paper's stronger cube
        // algorithm), mesh under dimension order — both at the cube's
        // canonical 4 VCs.
        let cube = KAryNCube::new(k, n);
        let model = CubeModel::new(k, n, 16);
        points.push(point(
            budget,
            Axes {
                family: "cube",
                routing: "duato",
                k,
                n,
                taper: 1,
                vcs: 4,
            },
            &cube,
            cube.bisection_links(),
            RouterClass::CubeDuato { n, vcs: 4 },
            NetworkNormalization::cube(&cube, RouterClass::CubeDuato { n, vcs: 4 }.timing()),
            Some(model.saturation_fraction()),
        ));
        let mesh = KAryNMesh::new(k, n);
        points.push(point(
            budget,
            Axes {
                family: "mesh",
                routing: "deterministic",
                k,
                n,
                taper: 1,
                vcs: 4,
            },
            &mesh,
            mesh.bisection_links(),
            RouterClass::MeshDeterministic { n, vcs: 4 },
            NetworkNormalization::mesh(
                &mesh,
                RouterClass::MeshDeterministic { n, vcs: 4 }.timing(),
            ),
            None, // no closed-form mesh model in the workspace
        ));
    }

    for &(k, n) in &shapes {
        if !k.is_multiple_of(2) {
            continue;
        }
        for &vcs in TREE_VCS {
            let tree = KAryNTree::new(k, n);
            let model = TreeModel::new(k, n, 32);
            points.push(point(
                budget,
                Axes {
                    family: "tree",
                    routing: "adaptive",
                    k,
                    n,
                    taper: 1,
                    vcs,
                },
                &tree,
                tree.bisection_links(),
                RouterClass::TreeAdaptive { k, vcs },
                NetworkNormalization::tree(&tree, RouterClass::TreeAdaptive { k, vcs }.timing()),
                Some(model.saturation_fraction()),
            ));
        }
        // Tapered variants: practical oversubscription ratios (powers of
        // two, plus the full collapse to one up link), one point per
        // distinct surviving up-link count (different tapers can round
        // to the same `ceil(k/taper)`).
        let tapers = (1..)
            .map(|e| 1usize << e)
            .take_while(|t| *t < k)
            .chain(std::iter::once(k));
        let mut seen_up = vec![k];
        for taper in tapers {
            let up = k.div_ceil(taper);
            if seen_up.contains(&up) {
                continue;
            }
            seen_up.push(up);
            for &vcs in TREE_VCS {
                let tree = TaperedKAryNTree::new(k, n, taper);
                // Approximation: the full tree's contention model, with
                // saturation clipped to the tapered capacity.
                let model = TreeModel::new(k, n, 32);
                let sat = model
                    .saturation_fraction()
                    .min(tree.uniform_capacity_flits_per_cycle());
                points.push(point(
                    budget,
                    Axes {
                        family: "tapered-tree",
                        routing: "adaptive",
                        k,
                        n,
                        taper,
                        vcs,
                    },
                    &tree,
                    tree.bisection_links(),
                    RouterClass::TaperedTreeAdaptive { k, up, vcs },
                    NetworkNormalization::tapered_tree(
                        &tree,
                        RouterClass::TaperedTreeAdaptive { k, up, vcs }.timing(),
                    ),
                    Some(sat),
                ));
            }
        }
    }

    // THC shapes: k^2 * 2^d == nodes, d >= 1.
    for k in 2..budget.nodes {
        let square = k * k;
        if square * 2 > budget.nodes {
            break;
        }
        let rest = budget.nodes / square;
        if square * rest != budget.nodes || !rest.is_power_of_two() {
            continue;
        }
        let d = rest.trailing_zeros() as usize;
        let thc = TorusHypercube::new(k, d);
        let dims = thc.dims();
        points.push(point(
            budget,
            Axes {
                family: "thc",
                routing: "deterministic",
                k,
                n: d,
                taper: 1,
                vcs: 4,
            },
            &thc,
            thc.bisection_links(),
            RouterClass::CubeDeterministic { n: dims, vcs: 4 },
            NetworkNormalization::thc(
                &thc,
                RouterClass::CubeDeterministic { n: dims, vcs: 4 }.timing(),
            ),
            None, // screened in simulation only
        ));
    }

    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_budget() -> DesignBudget {
        DesignBudget {
            nodes: 256,
            pin_budget: 160,
        }
    }

    #[test]
    fn shapes_are_exact_roots() {
        assert_eq!(shapes_of(256), vec![(256, 1), (16, 2), (4, 4), (2, 8)]);
        assert_eq!(shapes_of(81), vec![(81, 1), (9, 2), (3, 4)]);
        assert_eq!(shapes_of(7), vec![(7, 1)]);
    }

    #[test]
    fn the_papers_two_designs_are_both_feasible_at_160_pins() {
        let points = enumerate(&paper_budget());
        let cube = points
            .iter()
            .find(|p| p.family == "cube" && p.k == 16 && p.n == 2)
            .unwrap();
        assert_eq!(cube.pins_per_router, 160); // 5 ports x 2 x 16
        assert!(cube.feasible);
        let tree = points
            .iter()
            .find(|p| p.family == "tree" && p.k == 4 && p.n == 4 && p.vcs == 4)
            .unwrap();
        assert_eq!(tree.pins_per_router, 128); // 8 ports x 2 x 8
        assert!(tree.feasible);
    }

    #[test]
    fn every_256_node_thc_busts_the_paper_pin_budget() {
        let points = enumerate(&paper_budget());
        let thcs: Vec<_> = points.iter().filter(|p| p.family == "thc").collect();
        assert!(!thcs.is_empty());
        // Smallest 256-node THC router: 2x2 torus x 6-cube, 17 ports.
        assert!(thcs.iter().all(|p| !p.feasible && p.pins_per_router > 160));
    }

    #[test]
    fn all_points_have_the_budgeted_node_count() {
        let points = enumerate(&paper_budget());
        assert!(
            points.len() > 20,
            "expected a rich space, got {}",
            points.len()
        );
        for p in &points {
            assert_eq!(p.nodes, 256, "{}", p.id());
            assert!(p.clock_ns > 0.0);
            assert!(p.capacity_bits_per_ns > 0.0);
            if let Some(f) = p.analytic_saturation_fraction {
                assert!(f > 0.0, "{}", p.id());
            }
        }
    }

    #[test]
    fn tapered_points_dedupe_on_surviving_up_links() {
        let points = enumerate(&paper_budget());
        // k=4: taper 2 (up 2) and taper >= 4 (up 1); taper 3 duplicates
        // up 2 and must not appear.
        let tapers: Vec<usize> = points
            .iter()
            .filter(|p| p.family == "tapered-tree" && p.k == 4 && p.vcs == 4)
            .map(|p| p.taper)
            .collect();
        assert_eq!(tapers, vec![2, 4]);
    }

    #[test]
    fn analytic_screen_reproduces_the_papers_ordering_at_equal_cost() {
        // At the paper's budget the screened throughput of the cube
        // exceeds the tree's: the core claim of Section 10.
        let points = enumerate(&paper_budget());
        let cube = points
            .iter()
            .find(|p| p.family == "cube" && p.k == 16)
            .unwrap();
        let tree = points
            .iter()
            .find(|p| p.family == "tree" && p.k == 4 && p.vcs == 4)
            .unwrap();
        assert!(
            cube.predicted_bits_per_ns.unwrap() > tree.predicted_bits_per_ns.unwrap(),
            "cube {:?} vs tree {:?}",
            cube.predicted_bits_per_ns,
            tree.predicted_bits_per_ns
        );
    }

    #[test]
    fn ids_are_stable_and_readable() {
        let p = enumerate(&paper_budget())
            .into_iter()
            .find(|p| p.family == "tapered-tree" && p.k == 4 && p.taper == 2 && p.vcs == 4)
            .unwrap();
        assert_eq!(p.id(), "tapered-tree k=4 n=4 taper=2 adaptive-4vc");
    }
}
