//! The paper's performance normalization (Section 5).
//!
//! "In our experiments we normalize the communication performance by
//! setting the flit and the data path size on the fat-tree at two bytes
//! and at four bytes on the cube." The quaternary fat-tree switch has
//! arity 8, the cube routing chip arity 4 (node channel excluded):
//! doubling the cube's data path equalizes the **pin count** of the two
//! routing chips and, since the tree has twice as many links, the
//! overall **peak bandwidth** as well.
//!
//! The same normalization gives both networks the same theoretical upper
//! bound under uniform traffic, expressed per node in flits/cycle:
//!
//! * cube: `2B/N` where `B` is the bisection bandwidth (half of uniform
//!   traffic crosses the bisection), i.e. `8/k` flits/cycle — 0.5 for
//!   the 16-ary 2-cube;
//! * tree: not bisection limited; the bound is the unidirectional
//!   node-to-switch link bandwidth, 1 flit/cycle.
//!
//! With 64-byte packets both bounds equal **one packet per node per 32
//! cycles**, which is what makes the normalized load axes of Figures 5
//! and 6 directly comparable.
//!
//! [`NetworkNormalization`] bundles these constants with a router clock
//! from [`crate::chien`] and converts between the simulator's natural
//! units (flits, cycles) and the absolute units of Figure 7 (bits/ns,
//! ns).

use crate::chien::RouterTiming;
use topology::{KAryNCube, KAryNMesh, KAryNTree, TaperedKAryNTree, TorusHypercube};

/// Which family a normalization describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetworkKind {
    /// k-ary n-cube with 4-byte flits.
    Cube,
    /// k-ary n-tree with 2-byte flits.
    Tree,
    /// k-ary n-mesh with 4-byte flits (extension: a cube without the
    /// wrap-around links, same router pin count as the cube).
    Mesh,
    /// Tapered k-ary n-tree with 2-byte flits (extension: same switch
    /// data path as the full tree, fewer up links).
    TaperedTree,
    /// Torus-embedded hypercube with 4-byte flits (extension: a direct
    /// network like the cube).
    Thc,
}

/// Physical normalization of one network configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetworkNormalization {
    kind: NetworkKind,
    num_nodes: usize,
    flit_bytes: usize,
    capacity_flits_per_cycle: f64,
    timing: RouterTiming,
}

/// Packet size used throughout the paper, in bytes.
pub const PACKET_BYTES: usize = 64;

impl NetworkNormalization {
    /// Normalization for a k-ary n-cube (4-byte flits and data paths).
    pub fn cube(cube: &KAryNCube, timing: RouterTiming) -> Self {
        use topology::Topology;
        NetworkNormalization {
            kind: NetworkKind::Cube,
            num_nodes: cube.num_nodes(),
            flit_bytes: 4,
            capacity_flits_per_cycle: cube.uniform_capacity_flits_per_cycle(),
            timing,
        }
    }

    /// Normalization for a k-ary n-tree (2-byte flits and data paths).
    pub fn tree(tree: &KAryNTree, timing: RouterTiming) -> Self {
        use topology::Topology;
        NetworkNormalization {
            kind: NetworkKind::Tree,
            num_nodes: tree.num_nodes(),
            flit_bytes: 2,
            capacity_flits_per_cycle: tree.uniform_capacity_flits_per_cycle(),
            timing,
        }
    }

    /// Normalization for a k-ary n-mesh (extension; 4-byte flits like
    /// the cube, whose router it shares pin-for-pin).
    pub fn mesh(mesh: &KAryNMesh, timing: RouterTiming) -> Self {
        use topology::Topology;
        NetworkNormalization {
            kind: NetworkKind::Mesh,
            num_nodes: mesh.num_nodes(),
            flit_bytes: 4,
            capacity_flits_per_cycle: mesh.uniform_capacity_flits_per_cycle(),
            timing,
        }
    }

    /// Normalization for a tapered k-ary n-tree (extension; 2-byte flits
    /// like the full tree, capacity cut by the root-level taper).
    pub fn tapered_tree(tree: &TaperedKAryNTree, timing: RouterTiming) -> Self {
        use topology::Topology;
        NetworkNormalization {
            kind: NetworkKind::TaperedTree,
            num_nodes: tree.num_nodes(),
            flit_bytes: 2,
            capacity_flits_per_cycle: tree.uniform_capacity_flits_per_cycle(),
            timing,
        }
    }

    /// Normalization for a torus-embedded hypercube (extension; 4-byte
    /// flits like the cube, capacity from its narrowest bisection).
    pub fn thc(thc: &TorusHypercube, timing: RouterTiming) -> Self {
        use topology::Topology;
        NetworkNormalization {
            kind: NetworkKind::Thc,
            num_nodes: thc.num_nodes(),
            flit_bytes: 4,
            capacity_flits_per_cycle: thc.uniform_capacity_flits_per_cycle(),
            timing,
        }
    }

    /// The network family.
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// Flit (= data path) width in bytes: 4 on the cube, 2 on the tree.
    pub fn flit_bytes(&self) -> usize {
        self.flit_bytes
    }

    /// Number of flits in one 64-byte packet: 16 on the cube, 32 on the
    /// tree ("worms of the same size require more flits").
    pub fn flits_per_packet(&self) -> usize {
        PACKET_BYTES / self.flit_bytes
    }

    /// Theoretical per-node capacity under uniform traffic, flits/cycle.
    pub fn capacity_flits_per_cycle(&self) -> f64 {
        self.capacity_flits_per_cycle
    }

    /// The router timing (clock period etc.).
    pub fn timing(&self) -> RouterTiming {
        self.timing
    }

    /// Packets per node per cycle corresponding to an offered load given
    /// as a fraction of capacity (the x-axis of the CNF plots).
    pub fn packet_rate(&self, fraction_of_capacity: f64) -> f64 {
        assert!(fraction_of_capacity >= 0.0);
        fraction_of_capacity * self.capacity_flits_per_cycle / self.flits_per_packet() as f64
    }

    /// Inverse of [`Self::packet_rate`].
    pub fn fraction_of_capacity(&self, packets_per_node_cycle: f64) -> f64 {
        packets_per_node_cycle * self.flits_per_packet() as f64 / self.capacity_flits_per_cycle
    }

    /// Convert an accepted/offered bandwidth fraction into the aggregate
    /// absolute traffic of Figure 7, in bits per nanosecond.
    pub fn fraction_to_bits_per_ns(&self, fraction_of_capacity: f64) -> f64 {
        let flits_per_cycle =
            fraction_of_capacity * self.capacity_flits_per_cycle * self.num_nodes as f64;
        flits_per_cycle * (self.flit_bytes * 8) as f64 / self.timing.clock_ns()
    }

    /// Convert a latency in cycles into nanoseconds.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles * self.timing.clock_ns()
    }

    /// The aggregate capacity in bits/ns (the saturation ceiling of the
    /// Figure 7 x-axis for this configuration).
    pub fn capacity_bits_per_ns(&self) -> f64 {
        self.fraction_to_bits_per_ns(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chien::{cube_deterministic_timing, cube_duato_timing, tree_adaptive_timing};

    fn paper_cube() -> KAryNCube {
        KAryNCube::new(16, 2)
    }

    fn paper_tree() -> KAryNTree {
        KAryNTree::new(4, 4)
    }

    #[test]
    fn flit_counts() {
        let c = NetworkNormalization::cube(&paper_cube(), cube_duato_timing());
        let t = NetworkNormalization::tree(&paper_tree(), tree_adaptive_timing(4, 4));
        assert_eq!(c.flits_per_packet(), 16);
        assert_eq!(t.flits_per_packet(), 32);
    }

    #[test]
    fn capacities_match_one_packet_per_32_cycles() {
        let c = NetworkNormalization::cube(&paper_cube(), cube_duato_timing());
        let t = NetworkNormalization::tree(&paper_tree(), tree_adaptive_timing(4, 1));
        assert!((c.packet_rate(1.0) - 1.0 / 32.0).abs() < 1e-12);
        assert!((t.packet_rate(1.0) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_roundtrip() {
        let c = NetworkNormalization::cube(&paper_cube(), cube_deterministic_timing());
        for f in [0.0, 0.1, 0.5, 0.72, 1.0] {
            let back = c.fraction_of_capacity(c.packet_rate(f));
            assert!((back - f).abs() < 1e-12);
        }
    }

    #[test]
    fn figure7_saturation_scale_checks() {
        // Section 10 headline numbers are consistent with this
        // normalization: Duato saturates at ~80% of capacity which in
        // absolute terms is ~440 bits/ns.
        let duato = NetworkNormalization::cube(&paper_cube(), cube_duato_timing());
        let at80 = duato.fraction_to_bits_per_ns(0.80);
        assert!(
            (at80 - 420.0).abs() < 25.0,
            "Duato at 80%: {at80:.0} bits/ns"
        );

        let det = NetworkNormalization::cube(&paper_cube(), cube_deterministic_timing());
        let at60 = det.fraction_to_bits_per_ns(0.60);
        assert!((at60 - 388.0).abs() < 40.0, "det at 60%: {at60:.0} bits/ns");

        let t4 = NetworkNormalization::tree(&paper_tree(), tree_adaptive_timing(4, 4));
        let at72 = t4.fraction_to_bits_per_ns(0.72);
        assert!(
            (at72 - 272.0).abs() < 20.0,
            "tree-4vc at 72%: {at72:.0} bits/ns"
        );

        let t1 = NetworkNormalization::tree(&paper_tree(), tree_adaptive_timing(4, 1));
        let at36 = t1.fraction_to_bits_per_ns(0.36);
        assert!(
            (at36 - 153.0).abs() < 15.0,
            "tree-1vc at 36%: {at36:.0} bits/ns"
        );
    }

    #[test]
    fn cube_latency_scale_check() {
        // "In the cube the latency of both algorithms before saturation
        // is stable at about half a microsecond": ~70 cycles * ~7 ns.
        let duato = NetworkNormalization::cube(&paper_cube(), cube_duato_timing());
        let ns = duato.cycles_to_ns(70.0);
        assert!((400.0..700.0).contains(&ns), "{ns} ns");
    }

    #[test]
    fn mesh_normalization_mirrors_the_cube() {
        use crate::chien::RouterClass;
        let m = NetworkNormalization::mesh(
            &KAryNMesh::new(16, 2),
            RouterClass::MeshDeterministic { n: 2, vcs: 4 }.timing(),
        );
        assert_eq!(m.kind(), NetworkKind::Mesh);
        assert_eq!(m.flit_bytes(), 4);
        assert_eq!(m.flits_per_packet(), 16);
        // Half the bisection of the torus: half the uniform capacity.
        assert!((m.capacity_flits_per_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tapered_tree_normalization_caps_at_the_taper() {
        use crate::chien::RouterClass;
        let t = TaperedKAryNTree::new(4, 4, 2);
        let timing = RouterClass::TaperedTreeAdaptive {
            k: 4,
            up: 2,
            vcs: 4,
        }
        .timing();
        let n = NetworkNormalization::tapered_tree(&t, timing);
        assert_eq!(n.kind(), NetworkKind::TaperedTree);
        assert_eq!(n.flits_per_packet(), 32);
        // 2:1 taper over 3 switch levels: (1/2)^3 of full bisection,
        // capacity 2 * (1/2)^3 = 0.25 flits/node/cycle.
        assert!((n.capacity_flits_per_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn thc_normalization_mirrors_the_cube_family() {
        use crate::chien::RouterClass;
        let t = TorusHypercube::new(4, 4);
        let timing = RouterClass::CubeDeterministic { n: 6, vcs: 4 }.timing();
        let n = NetworkNormalization::thc(&t, timing);
        assert_eq!(n.kind(), NetworkKind::Thc);
        assert_eq!(n.flits_per_packet(), 16);
        // The 4x4 torus cut (2N/k = 128) matches the hypercube cut
        // (N/2 = 128): full capacity, clipped at 1 flit/node/cycle.
        assert!((n.capacity_flits_per_cycle() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_bits_per_ns_ordering() {
        // The deterministic cube has the shortest clock, hence the
        // largest absolute capacity; the 4-VC tree the longest clock.
        let det = NetworkNormalization::cube(&paper_cube(), cube_deterministic_timing());
        let duato = NetworkNormalization::cube(&paper_cube(), cube_duato_timing());
        let t1 = NetworkNormalization::tree(&paper_tree(), tree_adaptive_timing(4, 1));
        let t4 = NetworkNormalization::tree(&paper_tree(), tree_adaptive_timing(4, 4));
        assert!(det.capacity_bits_per_ns() > duato.capacity_bits_per_ns());
        assert!(duato.capacity_bits_per_ns() > t1.capacity_bits_per_ns());
        assert!(t1.capacity_bits_per_ns() > t4.capacity_bits_per_ns());
    }
}
