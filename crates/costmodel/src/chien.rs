//! Chien's cost and speed model for wormhole routers.
//!
//! A. A. Chien, *A Cost and Speed Model for k-ary n-cube Wormhole
//! Routers*, Hot Interconnects '93 — as instantiated by the paper for a
//! 0.8 µm CMOS gate-array implementation:
//!
//! * routing decision, logarithmic in the degrees of freedom `F`:
//!   `T_routing = 4.7 + 1.2 log2 F` ns (Equation 1);
//! * crossbar traversal + flow control + output latch, logarithmic in
//!   the number of crossbar ports `P`:
//!   `T_crossbar = 3.4 + 0.6 log2 P` ns (Equation 2);
//! * link traversal with the virtual-channel controller logarithmic in
//!   `V`: `T_link = 5.14 + 0.6 log2 V` ns for **short** wires (a cube
//!   embedded in 3-space with constant-length wires, Equation 3) and
//!   `T_link = 9.64 + 0.6 log2 V` ns for **medium** wires (a 256-node
//!   fat-tree, Equation 4).
//!
//! The router runs every stage in a single clock whose period is the
//! maximum of the three delays. Tables 1 and 2 of the paper are
//! reproduced verbatim by the unit tests below.

/// Wire length class of the physical links (Section 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireClass {
    /// Constant-length short wires: low-dimensional cubes embedded in
    /// three-dimensional space.
    Short,
    /// Medium-length wires: the 256-node quaternary fat-tree, whose
    /// embedding necessarily stretches some wires.
    Medium,
}

/// The instantiated delay model.
///
/// ```
/// use costmodel::chien::{ChienModel, WireClass};
///
/// // Table 1's deterministic row: F = 2, P = 17, V = 4, short wires.
/// let t = ChienModel::timing(2, 17, 4, WireClass::Short);
/// assert!((t.t_routing_ns - 5.9).abs() < 0.01);
/// assert!((t.clock_ns() - 6.34).abs() < 0.01); // link-limited
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChienModel;

impl ChienModel {
    /// Equation (1): routing-decision delay in ns for `f` degrees of
    /// freedom.
    ///
    /// # Panics
    /// Panics if `f == 0`.
    pub fn routing_delay_ns(f: usize) -> f64 {
        assert!(f >= 1, "degree of freedom must be positive");
        4.7 + 1.2 * (f as f64).log2()
    }

    /// Equation (2): crossbar delay in ns for `p` crossbar ports.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn crossbar_delay_ns(p: usize) -> f64 {
        assert!(p >= 1, "crossbar needs at least one port");
        3.4 + 0.6 * (p as f64).log2()
    }

    /// Equations (3)/(4): link delay in ns for `v` virtual channels on
    /// wires of the given class.
    ///
    /// # Panics
    /// Panics if `v == 0`.
    pub fn link_delay_ns(v: usize, wires: WireClass) -> f64 {
        assert!(v >= 1, "need at least one virtual channel");
        let base = match wires {
            WireClass::Short => 5.14,
            WireClass::Medium => 9.64,
        };
        base + 0.6 * (v as f64).log2()
    }

    /// Full router timing for a configuration.
    pub fn timing(f: usize, p: usize, v: usize, wires: WireClass) -> RouterTiming {
        RouterTiming {
            t_routing_ns: Self::routing_delay_ns(f),
            t_crossbar_ns: Self::crossbar_delay_ns(p),
            t_link_ns: Self::link_delay_ns(v, wires),
        }
    }
}

/// The three stage delays of a router and the derived clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterTiming {
    /// `T_routing`: address decoding, routing decision, header selection.
    pub t_routing_ns: f64,
    /// `T_crossbar`: internal flow control, crossbar, output latch.
    pub t_crossbar_ns: f64,
    /// `T_link`: wire plus destination latch plus VC controller.
    pub t_link_ns: f64,
}

impl RouterTiming {
    /// The clock period: "the delays are equalized to a single clock
    /// cycle, which is set to the maximum of the three delays"
    /// (Section 5).
    pub fn clock_ns(&self) -> f64 {
        self.t_routing_ns
            .max(self.t_crossbar_ns)
            .max(self.t_link_ns)
    }

    /// Which stage limits the clock.
    pub fn bottleneck(&self) -> &'static str {
        let c = self.clock_ns();
        if c == self.t_routing_ns {
            "routing"
        } else if c == self.t_link_ns {
            "link"
        } else {
            "crossbar"
        }
    }
}

/// A router configuration whose Chien parameters — degrees of freedom
/// `F`, crossbar ports `P`, virtual channels `V` and wire class — are
/// **derived** from the topology shape and routing algorithm rather
/// than hand-picked per experiment.
///
/// The paper instantiates the model only for its five configurations
/// (Tables 1 and 2); this enum generalizes the same derivations so a
/// scenario at any radix/dimension/VC count gets a consistent clock:
///
/// * cube, deterministic: `F = 2` (the dateline choice between the two
///   virtual networks), `P = 2n·V + 1` (every lane of the `2n` links
///   plus the injection channel);
/// * cube, Duato: `V - 2` adaptive lanes usable in any of the `n`
///   minimal dimensions plus the two escape lanes, `F = n·(V-2) + 2`,
///   same crossbar;
/// * tree, adaptive: `F = (2k-1)·V`, `P = 2k·V` (Section 5);
/// * mesh, deterministic: `F = 1` (dimension order leaves no choice),
///   `P = 2n·V + 1`;
/// * mesh, adaptive: `V - 1` adaptive lanes in any of the `n` minimal
///   dimensions plus one escape lane, `F = n·(V-1) + 1`.
///
/// Cubes and meshes embed in 3-space with short constant-length wires;
/// 256-node-class fat-trees need medium wires (Section 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterClass {
    /// Dimension-order routing on a k-ary n-cube (dateline scheme).
    CubeDeterministic {
        /// Cube dimension.
        n: usize,
        /// Virtual channels per physical link direction.
        vcs: usize,
    },
    /// Duato's minimal adaptive routing on a k-ary n-cube.
    CubeDuato {
        /// Cube dimension.
        n: usize,
        /// Virtual channels (two of them escape lanes); must be >= 3.
        vcs: usize,
    },
    /// Minimal adaptive routing on a k-ary n-tree.
    TreeAdaptive {
        /// Tree arity.
        k: usize,
        /// Virtual channels.
        vcs: usize,
    },
    /// Minimal adaptive routing on a tapered k-ary n-tree: `k` down
    /// links but only `up = ceil(k/taper)` up links per switch, so
    /// `F = (k + up - 1)·V` and `P = (k + up)·V`. Reduces to
    /// [`RouterClass::TreeAdaptive`] at `up = k`.
    TaperedTreeAdaptive {
        /// Tree arity (down links per switch).
        k: usize,
        /// Surviving up links per switch, `ceil(k/taper)`.
        up: usize,
        /// Virtual channels.
        vcs: usize,
    },
    /// Dimension-order routing on a k-ary n-mesh.
    MeshDeterministic {
        /// Mesh dimension.
        n: usize,
        /// Virtual channels.
        vcs: usize,
    },
    /// Minimal adaptive routing on a k-ary n-mesh (last lane = escape).
    MeshAdaptive {
        /// Mesh dimension.
        n: usize,
        /// Virtual channels (the last is the escape); must be >= 2.
        vcs: usize,
    },
}

impl RouterClass {
    /// The derived Chien parameters `(F, P, V, wire class)`.
    ///
    /// # Panics
    /// Panics if the VC count is too small for the algorithm (Duato
    /// needs at least three lanes, mesh-adaptive at least two).
    pub fn chien_parameters(&self) -> (usize, usize, usize, WireClass) {
        match *self {
            RouterClass::CubeDeterministic { n, vcs } => {
                (2, 2 * n * vcs + 1, vcs, WireClass::Short)
            }
            RouterClass::CubeDuato { n, vcs } => {
                assert!(
                    vcs >= 3,
                    "Duato needs adaptive lanes besides the two escapes"
                );
                (n * (vcs - 2) + 2, 2 * n * vcs + 1, vcs, WireClass::Short)
            }
            RouterClass::TreeAdaptive { k, vcs } => {
                ((2 * k - 1) * vcs, 2 * k * vcs, vcs, WireClass::Medium)
            }
            RouterClass::TaperedTreeAdaptive { k, up, vcs } => {
                assert!(up >= 1 && up <= k, "taper must leave 1..=k up links");
                ((k + up - 1) * vcs, (k + up) * vcs, vcs, WireClass::Medium)
            }
            RouterClass::MeshDeterministic { n, vcs } => {
                (1, 2 * n * vcs + 1, vcs, WireClass::Short)
            }
            RouterClass::MeshAdaptive { n, vcs } => {
                assert!(vcs >= 2, "mesh-adaptive needs an escape lane");
                (n * (vcs - 1) + 1, 2 * n * vcs + 1, vcs, WireClass::Short)
            }
        }
    }

    /// The router timing implied by the derived parameters.
    pub fn timing(&self) -> RouterTiming {
        let (f, p, v, wires) = self.chien_parameters();
        ChienModel::timing(f, p, v, wires)
    }
}

/// Table 1: timing of the deterministic algorithm on the cube
/// (`F = 2`, `P = 17`, `V = 4`, short wires).
pub fn cube_deterministic_timing() -> RouterTiming {
    RouterClass::CubeDeterministic { n: 2, vcs: 4 }.timing()
}

/// Table 1: timing of Duato's adaptive algorithm on the cube
/// (`F = 6`, `P = 17`, `V = 4`, short wires).
pub fn cube_duato_timing() -> RouterTiming {
    RouterClass::CubeDuato { n: 2, vcs: 4 }.timing()
}

/// Table 2: timing of the fat-tree adaptive algorithm with `v` virtual
/// channels on a k-ary n-tree of arity `k`
/// (`F = (2k-1)·V`, `P = 2k·V`, medium wires).
pub fn tree_adaptive_timing(k: usize, v: usize) -> RouterTiming {
    RouterClass::TreeAdaptive { k, vcs: v }.timing()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper prints delays truncated/rounded to 2 decimals; compare
    /// with a tolerance of one unit in the second decimal place.
    fn close(actual: f64, paper: f64) {
        assert!(
            (actual - paper).abs() < 0.015,
            "model gives {actual:.4}, paper prints {paper}"
        );
    }

    #[test]
    fn table1_deterministic_row() {
        let t = cube_deterministic_timing();
        close(t.t_routing_ns, 5.9);
        close(t.t_crossbar_ns, 5.85);
        close(t.t_link_ns, 6.34);
        close(t.clock_ns(), 6.34);
        assert_eq!(t.bottleneck(), "link");
    }

    #[test]
    fn table1_duato_row() {
        let t = cube_duato_timing();
        close(t.t_routing_ns, 7.8);
        close(t.t_crossbar_ns, 5.85);
        close(t.t_link_ns, 6.34);
        close(t.clock_ns(), 7.8);
        assert_eq!(t.bottleneck(), "routing");
    }

    #[test]
    fn table2_tree_rows() {
        // (V, T_routing, T_crossbar, T_link, T_clock) from Table 2.
        let rows = [
            (1usize, 8.06, 5.2, 9.64, 9.64),
            (2, 9.26, 5.8, 10.24, 10.24),
            (4, 10.46, 6.4, 10.84, 10.84),
        ];
        for (v, tr, tc, tl, clk) in rows {
            let t = tree_adaptive_timing(4, v);
            close(t.t_routing_ns, tr);
            close(t.t_crossbar_ns, tc);
            close(t.t_link_ns, tl);
            close(t.clock_ns(), clk);
            assert_eq!(t.bottleneck(), "link", "trees are wire-limited up to 4 VCs");
        }
    }

    #[test]
    fn tree_becomes_routing_limited_beyond_four_vcs() {
        // Section 11: "when we use four virtual channels the routing
        // delay is equalized with the wire delay, so we expect a
        // diminishing return with more virtual channels".
        let t8 = tree_adaptive_timing(4, 8);
        assert_eq!(t8.bottleneck(), "routing");
    }

    #[test]
    fn delays_grow_logarithmically() {
        assert!(ChienModel::routing_delay_ns(4) - ChienModel::routing_delay_ns(2) - 1.2 < 1e-9);
        assert!(ChienModel::crossbar_delay_ns(32) - ChienModel::crossbar_delay_ns(16) - 0.6 < 1e-9);
        let d = ChienModel::link_delay_ns(8, WireClass::Short)
            - ChienModel::link_delay_ns(4, WireClass::Short);
        assert!((d - 0.6).abs() < 1e-9);
    }

    #[test]
    fn medium_wires_cost_exactly_4_5_ns() {
        for v in [1, 2, 4, 8] {
            let d = ChienModel::link_delay_ns(v, WireClass::Medium)
                - ChienModel::link_delay_ns(v, WireClass::Short);
            assert!((d - 4.5).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn zero_freedom_rejected() {
        let _ = ChienModel::routing_delay_ns(0);
    }

    #[test]
    fn derived_parameters_match_the_papers_hand_picked_values() {
        // Section 5 quotes F/P/V directly for the paper's five
        // configurations; the derivations must reproduce them exactly.
        assert_eq!(
            RouterClass::CubeDeterministic { n: 2, vcs: 4 }.chien_parameters(),
            (2, 17, 4, WireClass::Short)
        );
        assert_eq!(
            RouterClass::CubeDuato { n: 2, vcs: 4 }.chien_parameters(),
            (6, 17, 4, WireClass::Short)
        );
        for v in [1usize, 2, 4] {
            assert_eq!(
                RouterClass::TreeAdaptive { k: 4, vcs: v }.chien_parameters(),
                (7 * v, 8 * v, v, WireClass::Medium)
            );
        }
    }

    #[test]
    fn tapered_tree_reduces_to_the_full_tree_at_up_equals_k() {
        for (k, v) in [(4usize, 1usize), (4, 2), (4, 4), (8, 2)] {
            assert_eq!(
                RouterClass::TaperedTreeAdaptive { k, up: k, vcs: v }.chien_parameters(),
                RouterClass::TreeAdaptive { k, vcs: v }.chien_parameters()
            );
        }
        // A 2:1 taper shrinks both the decision logic and the crossbar.
        let tapered = RouterClass::TaperedTreeAdaptive {
            k: 4,
            up: 2,
            vcs: 2,
        };
        assert_eq!(tapered.chien_parameters(), (10, 12, 2, WireClass::Medium));
        let full = RouterClass::TreeAdaptive { k: 4, vcs: 2 };
        assert!(tapered.timing().clock_ns() <= full.timing().clock_ns());
    }

    #[test]
    fn mesh_classes_have_sane_timings() {
        // A mesh router is never slower than the equivalent adaptive
        // cube router (fewer degrees of freedom, same crossbar).
        let mesh = RouterClass::MeshDeterministic { n: 2, vcs: 4 }.timing();
        let cube = RouterClass::CubeDuato { n: 2, vcs: 4 }.timing();
        assert!(mesh.clock_ns() <= cube.clock_ns());
        let ma = RouterClass::MeshAdaptive { n: 2, vcs: 4 }.timing();
        assert!(ma.t_routing_ns > mesh.t_routing_ns);
    }

    #[test]
    #[should_panic]
    fn duato_rejects_too_few_lanes() {
        let _ = RouterClass::CubeDuato { n: 2, vcs: 2 }.chien_parameters();
    }
}
