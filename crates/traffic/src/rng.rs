//! Deterministic pseudo-random number generation.
//!
//! Network simulation studies must be exactly reproducible: the same
//! seed has to yield the same packet trace on every platform and in
//! every build, or regression comparisons (and the paper's figures)
//! become noise. We therefore ship a tiny self-contained generator
//! instead of depending on an external crate whose stream might change
//! between versions:
//!
//! * seeding via **SplitMix64** (Steele, Lea & Flood), the recommended
//!   initializer for xoshiro-family generators;
//! * generation via **xoshiro256\*\*** (Blackman & Vigna), which passes
//!   BigCrush and is more than fast enough to be invisible next to the
//!   per-cycle simulation work.
//!
//! Statistical quality matters here: the uniform traffic pattern draws a
//! destination per packet and the adaptive routers draw tie-breaks per
//! cycle, so a generator with detectable lattice structure could bias
//! saturation measurements.

/// A deterministic xoshiro256** generator.
///
/// ```
/// use traffic::Rng64;
///
/// let mut a = Rng64::seed_from(7);
/// let mut b = Rng64::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // bit-reproducible
/// assert!(a.below(10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and as a cheap stateless mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Create a generator from a 64-bit seed. Any seed is acceptable,
    /// including zero (SplitMix64 expansion guarantees a non-zero state).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Derive an independent stream for a sub-component (e.g. one per
    /// node), keyed by `stream`. Streams derived from the same base seed
    /// with different keys are statistically independent for simulation
    /// purposes.
    pub fn derive(&self, stream: u64) -> Rng64 {
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA24BAED4963EE407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // First outputs for the state {1, 2, 3, 4}, from the reference
        // C implementation by Blackman & Vigna.
        let mut rng = Rng64 { s: [1, 2, 3, 4] };
        let expected: [u64; 4] = [11520, 0, 1509978240, 1215971899390074240];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // From the SplitMix64 reference: seed 0 produces these values.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(&mut s), 0x6E789E6AA1B965F4);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from(42);
        let mut b = Rng64::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn derived_streams_differ() {
        let base = Rng64::seed_from(7);
        let mut s0 = base.derive(0);
        let mut s1 = base.derive(1);
        let overlap = (0..64).filter(|_| s0.next_u64() == s1.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng64::seed_from(1);
        let mut counts = [0usize; 10];
        let draws = 100_000;
        for _ in 0..draws {
            let v = rng.below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        let expect = draws as f64 / 10.0;
        for c in counts {
            assert!((c as f64 - expect).abs() < 5.0 * expect.sqrt(), "count {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::seed_from(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::seed_from(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = Rng64::seed_from(11);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
