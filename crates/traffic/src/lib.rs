//! Synthetic workload generation for the ICPP'97 reproduction.
//!
//! Section 7 of the paper drives both networks with four traffic
//! patterns — uniform, complement, bit-reversal and transpose — defined on
//! the binary representation `a_0 a_1 … a_{n log2(k) - 1}` of the node
//! address (most significant bit first). This crate implements those
//! patterns plus several classical extensions (shuffle, butterfly,
//! tornado, neighbor, hot-spot) behind a single [`pattern::Pattern`]
//! enum, together with:
//!
//! * [`bits`] — bit-string manipulation of node addresses,
//! * [`injection`] — stochastic injection processes (Bernoulli, periodic,
//!   bursty on/off) that decide *when* a node generates a packet,
//! * [`rng`] — a small, fully deterministic xoshiro256** generator so
//!   simulations are bit-reproducible across runs and platforms.

#![warn(missing_docs)]
pub mod bits;
pub mod injection;
pub mod pattern;
pub mod rng;

pub use bits::AddressBits;
pub use injection::{Bernoulli, InjectionProcess, OnOffBursty, Periodic};
pub use pattern::{Pattern, TrafficGen};
pub use rng::Rng64;
