//! The synthetic benchmark patterns of Section 7, plus extensions.
//!
//! Each node generates packets whose destinations follow one of these
//! patterns. The four patterns used in the paper are:
//!
//! * **Uniform** — destinations drawn uniformly at random among the
//!   other nodes. ("Representative of well-balanced shared-memory
//!   computations.") Self-sends are excluded; a node is never its own
//!   destination.
//! * **Complement** — `a_0 a_1 … a_{B-1} -> !a_0 !a_1 … !a_{B-1}`: every
//!   packet crosses the bisection of the network.
//! * **Bit reversal** — `a_{B-1} … a_0`, common in FFT-style computation.
//! * **Transpose** — `a_{B/2} … a_{B-1} a_0 … a_{B/2-1}`, i.e. matrix
//!   transpose.
//!
//! The deterministic patterns are permutations; a node whose image is
//! itself (e.g. the 16 palindromes under bit reversal on 256 nodes)
//! **injects nothing**, exactly as in the paper.
//!
//! As extensions we also provide perfect shuffle, butterfly, tornado,
//! nearest-neighbor and a parametric hot-spot pattern; these are not part
//! of the paper's evaluation but exercise the same machinery and are used
//! by the ablation benchmarks.

use crate::bits::AddressBits;
use crate::rng::Rng64;
use topology::NodeId;

/// A destination-selection pattern.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// Uniformly random destination, excluding the source itself.
    Uniform,
    /// Bitwise complement of the address.
    Complement,
    /// Bit-reversed address.
    BitReversal,
    /// Two halves of the bit string swapped.
    Transpose,
    /// Perfect shuffle (rotate bit string left by one). Extension.
    Shuffle,
    /// Swap most- and least-significant bits. Extension.
    Butterfly,
    /// Half-ring offset on the linear node ring:
    /// `dest = (src + ceil(N/2) - 1) mod N`. Extension (adversarial for
    /// tori: maximizes link load in one ring direction).
    Tornado,
    /// `dest = (src + 1) mod N`. Extension (best case for tori).
    NearestNeighbor,
    /// With probability `percent/100` send to `hot`, otherwise uniform.
    /// Extension (models a shared lock / home node).
    HotSpot {
        /// The hot node.
        hot: u32,
        /// Percentage of traffic directed at the hot node (0..=100).
        percent: u8,
    },
}

impl Pattern {
    /// The four patterns evaluated in the paper, in presentation order.
    pub const PAPER_SET: [Pattern; 4] = [
        Pattern::Uniform,
        Pattern::Complement,
        Pattern::Transpose,
        Pattern::BitReversal,
    ];

    /// Stable lowercase name, used in CSV headers and CLI arguments.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Complement => "complement",
            Pattern::BitReversal => "bitrev",
            Pattern::Transpose => "transpose",
            Pattern::Shuffle => "shuffle",
            Pattern::Butterfly => "butterfly",
            Pattern::Tornado => "tornado",
            Pattern::NearestNeighbor => "neighbor",
            Pattern::HotSpot { .. } => "hotspot",
        }
    }

    /// Title as used in the paper's figure captions (extensions get
    /// their conventional names).
    pub fn title(&self) -> &'static str {
        match self {
            Pattern::Uniform => "Uniform traffic",
            Pattern::Complement => "Complement traffic",
            Pattern::BitReversal => "Bit reversal traffic",
            Pattern::Transpose => "Transpose traffic",
            Pattern::Shuffle => "Perfect shuffle traffic",
            Pattern::Butterfly => "Butterfly traffic",
            Pattern::Tornado => "Tornado traffic",
            Pattern::NearestNeighbor => "Nearest neighbor traffic",
            Pattern::HotSpot { .. } => "Hot-spot traffic",
        }
    }

    /// Parse a pattern name (as produced by [`Pattern::name`]).
    /// `hotspot` uses node 0 and 20% hot traffic.
    pub fn parse(s: &str) -> Option<Pattern> {
        Some(match s {
            "uniform" => Pattern::Uniform,
            "complement" => Pattern::Complement,
            "bitrev" | "bit-reversal" | "bitreversal" => Pattern::BitReversal,
            "transpose" => Pattern::Transpose,
            "shuffle" => Pattern::Shuffle,
            "butterfly" => Pattern::Butterfly,
            "tornado" => Pattern::Tornado,
            "neighbor" => Pattern::NearestNeighbor,
            "hotspot" => Pattern::HotSpot {
                hot: 0,
                percent: 20,
            },
            _ => return None,
        })
    }

    /// Whether destinations are a deterministic function of the source.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, Pattern::Uniform | Pattern::HotSpot { .. })
    }
}

/// A pattern bound to a concrete network size, ready to generate
/// destinations.
///
/// ```
/// use traffic::{Pattern, Rng64, TrafficGen};
/// use topology::NodeId;
///
/// let gen = TrafficGen::new(Pattern::Complement, 256);
/// let mut rng = Rng64::seed_from(1);
/// assert_eq!(gen.dest(NodeId(0), &mut rng), Some(NodeId(255)));
/// // Palindromes under bit reversal stay silent:
/// let gen = TrafficGen::new(Pattern::BitReversal, 256);
/// assert_eq!(gen.dest(NodeId(0), &mut rng), None);
/// ```
#[derive(Clone, Debug)]
pub struct TrafficGen {
    pattern: Pattern,
    num_nodes: usize,
    /// Present when the pattern needs the bit-string view.
    bits: Option<AddressBits>,
}

impl TrafficGen {
    /// Bind `pattern` to a network with `num_nodes` nodes.
    ///
    /// # Panics
    /// Panics if a bit-defined pattern is used with a non-power-of-two
    /// node count, or a hot-spot node is out of range.
    pub fn new(pattern: Pattern, num_nodes: usize) -> Self {
        assert!(num_nodes >= 2, "need at least two nodes");
        let bits = match pattern {
            Pattern::Complement
            | Pattern::BitReversal
            | Pattern::Transpose
            | Pattern::Shuffle
            | Pattern::Butterfly => Some(AddressBits::for_nodes(num_nodes)),
            Pattern::HotSpot { hot, .. } => {
                assert!((hot as usize) < num_nodes, "hot node out of range");
                None
            }
            _ => None,
        };
        TrafficGen {
            pattern,
            num_nodes,
            bits,
        }
    }

    /// The bound pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The network size this generator was bound to.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Destination for a packet from `src`; `None` means the source does
    /// not inject (fixed point of a permutation pattern).
    pub fn dest(&self, src: NodeId, rng: &mut Rng64) -> Option<NodeId> {
        let s = src.index();
        debug_assert!(s < self.num_nodes);
        let d = match self.pattern {
            Pattern::Uniform => {
                // Uniform over the other N-1 nodes.
                let r = rng.index(self.num_nodes - 1);
                if r >= s {
                    r + 1
                } else {
                    r
                }
            }
            Pattern::Complement => self.bits.unwrap().complement(s),
            Pattern::BitReversal => self.bits.unwrap().reverse(s),
            Pattern::Transpose => self.bits.unwrap().transpose(s),
            Pattern::Shuffle => self.bits.unwrap().shuffle(s),
            Pattern::Butterfly => self.bits.unwrap().butterfly(s),
            Pattern::Tornado => (s + self.num_nodes.div_ceil(2) - 1) % self.num_nodes,
            Pattern::NearestNeighbor => (s + 1) % self.num_nodes,
            Pattern::HotSpot { hot, percent } => {
                if rng.chance(percent as f64 / 100.0) {
                    hot as usize
                } else {
                    let r = rng.index(self.num_nodes - 1);
                    if r >= s {
                        r + 1
                    } else {
                        r
                    }
                }
            }
        };
        if d == s {
            None
        } else {
            Some(NodeId(d as u32))
        }
    }

    /// For deterministic patterns: the underlying permutation as a
    /// function (fixed points included). `None` for stochastic patterns.
    pub fn permutation(&self) -> Option<impl Fn(NodeId) -> NodeId + '_> {
        if !self.pattern.is_deterministic() {
            return None;
        }
        let me = self.clone();
        Some(move |x: NodeId| {
            let mut unused = Rng64::seed_from(0);
            me.dest(x, &mut unused).unwrap_or(x)
        })
    }

    /// Fraction of nodes that actually inject (1.0 for stochastic
    /// patterns; less for permutations with fixed points).
    pub fn injecting_fraction(&self) -> f64 {
        if !self.pattern.is_deterministic() {
            return 1.0;
        }
        let mut rng = Rng64::seed_from(0);
        let injecting = (0..self.num_nodes)
            .filter(|&x| self.dest(NodeId(x as u32), &mut rng).is_some())
            .count();
        injecting as f64 / self.num_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(p: Pattern) -> TrafficGen {
        TrafficGen::new(p, 256)
    }

    #[test]
    fn names_round_trip_through_parse() {
        // The paper's four patterns, plus every extension with a
        // parameter-free name: `parse(name())` must be the identity.
        let mut all = Pattern::PAPER_SET.to_vec();
        all.extend([
            Pattern::Shuffle,
            Pattern::Butterfly,
            Pattern::Tornado,
            Pattern::NearestNeighbor,
        ]);
        for p in all {
            assert_eq!(
                Pattern::parse(p.name()),
                Some(p),
                "{} did not round-trip",
                p.name()
            );
        }
        // Hot-spot round-trips up to its defaults (the name drops the
        // node/percent parameters).
        let hs = Pattern::HotSpot {
            hot: 0,
            percent: 20,
        };
        assert_eq!(Pattern::parse(hs.name()), Some(hs));
    }

    #[test]
    fn parse_rejects_garbage() {
        for junk in [
            "",
            "unifrom",
            "UNIFORM",
            "uniform ",
            " uniform",
            "bit rev",
            "hotspot:3",
            "42",
            "--",
        ] {
            assert_eq!(Pattern::parse(junk), None, "{junk:?} should not parse");
        }
    }

    #[test]
    fn uniform_never_self_and_covers_everyone() {
        let g = gen(Pattern::Uniform);
        let mut rng = Rng64::seed_from(5);
        let src = NodeId(100);
        let mut seen = vec![false; 256];
        for _ in 0..20_000 {
            let d = g.dest(src, &mut rng).expect("uniform always injects");
            assert_ne!(d, src);
            seen[d.index()] = true;
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert_eq!(covered, 255);
    }

    #[test]
    fn complement_crosses_everything() {
        let g = gen(Pattern::Complement);
        let mut rng = Rng64::seed_from(0);
        assert_eq!(g.dest(NodeId(0), &mut rng), Some(NodeId(255)));
        assert_eq!(
            g.dest(NodeId(0b1010_1010), &mut rng),
            Some(NodeId(0b0101_0101))
        );
        // Complement has no fixed points: everyone injects.
        assert_eq!(g.injecting_fraction(), 1.0);
    }

    #[test]
    fn bitrev_palindromes_do_not_inject() {
        let g = gen(Pattern::BitReversal);
        // 16 palindromes out of 256 stay silent (Section 9).
        let frac = g.injecting_fraction();
        assert!((frac - 240.0 / 256.0).abs() < 1e-12, "{frac}");
    }

    #[test]
    fn transpose_diagonal_does_not_inject() {
        let g = gen(Pattern::Transpose);
        let frac = g.injecting_fraction();
        assert!((frac - 240.0 / 256.0).abs() < 1e-12, "{frac}");
        // The "diagonal" of the logically flattened torus: equal halves.
        let mut rng = Rng64::seed_from(0);
        assert_eq!(g.dest(NodeId(0x11), &mut rng), None);
        assert_eq!(g.dest(NodeId(0x2C), &mut rng), Some(NodeId(0xC2)));
    }

    #[test]
    fn deterministic_patterns_are_stable() {
        for p in [
            Pattern::Complement,
            Pattern::BitReversal,
            Pattern::Transpose,
        ] {
            let g = gen(p);
            let mut r1 = Rng64::seed_from(1);
            let mut r2 = Rng64::seed_from(999);
            for x in 0..256 {
                assert_eq!(
                    g.dest(NodeId(x), &mut r1),
                    g.dest(NodeId(x), &mut r2),
                    "pattern {p:?} should ignore the RNG"
                );
            }
        }
    }

    #[test]
    fn tornado_and_neighbor() {
        let g = gen(Pattern::Tornado);
        let mut rng = Rng64::seed_from(0);
        assert_eq!(g.dest(NodeId(0), &mut rng), Some(NodeId(127)));
        let g = gen(Pattern::NearestNeighbor);
        assert_eq!(g.dest(NodeId(255), &mut rng), Some(NodeId(0)));
    }

    #[test]
    fn hotspot_concentrates() {
        let g = TrafficGen::new(
            Pattern::HotSpot {
                hot: 7,
                percent: 50,
            },
            256,
        );
        let mut rng = Rng64::seed_from(3);
        let hits = (0..10_000)
            .filter(|_| g.dest(NodeId(100), &mut rng) == Some(NodeId(7)))
            .count();
        // ~50% + ~0.2% of the uniform remainder.
        assert!((hits as f64 / 10_000.0 - 0.502).abs() < 0.02, "{hits}");
    }

    #[test]
    fn parse_roundtrip() {
        for p in [
            Pattern::Uniform,
            Pattern::Complement,
            Pattern::BitReversal,
            Pattern::Transpose,
            Pattern::Shuffle,
            Pattern::Butterfly,
            Pattern::Tornado,
            Pattern::NearestNeighbor,
        ] {
            assert_eq!(Pattern::parse(p.name()), Some(p));
        }
        assert_eq!(Pattern::parse("nonsense"), None);
    }

    #[test]
    fn permutation_view_matches_dest() {
        let g = gen(Pattern::BitReversal);
        let perm = g.permutation().unwrap();
        let mut rng = Rng64::seed_from(0);
        for x in 0..256u32 {
            let via_dest = g.dest(NodeId(x), &mut rng).unwrap_or(NodeId(x));
            assert_eq!(perm(NodeId(x)), via_dest);
        }
        assert!(gen(Pattern::Uniform).permutation().is_none());
    }

    #[test]
    fn works_on_non_power_of_two_for_index_patterns() {
        let g = TrafficGen::new(Pattern::Tornado, 100);
        let mut rng = Rng64::seed_from(0);
        assert_eq!(g.dest(NodeId(0), &mut rng), Some(NodeId(49)));
        let g = TrafficGen::new(Pattern::Uniform, 100);
        for _ in 0..1000 {
            let d = g.dest(NodeId(50), &mut rng).unwrap();
            assert!(d.index() < 100);
        }
    }

    #[test]
    #[should_panic]
    fn bit_pattern_requires_power_of_two() {
        let _ = TrafficGen::new(Pattern::Transpose, 100);
    }
}
