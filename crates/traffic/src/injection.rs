//! Injection processes: *when* does a node generate a packet?
//!
//! The paper drives each node with an open-loop source: packets are
//! created at a controlled rate (a fraction of the network capacity)
//! regardless of network state, queue in an unbounded source queue, and
//! enter the router through a single injection channel. This module
//! provides the packet *creation* processes:
//!
//! * [`Bernoulli`] — geometric inter-arrival times; the standard choice
//!   in network-simulation studies and the one used for every figure.
//! * [`Periodic`] — deterministic inter-arrival times, useful for
//!   testing because offered load is exact rather than in expectation.
//! * [`OnOffBursty`] — a two-state Markov-modulated Bernoulli process
//!   for the "bursty applications that require peak performance for a
//!   short period of time" mentioned in Section 6.

use crate::rng::Rng64;

/// A per-node packet creation process. At most one packet is created per
/// node per cycle (rates are well below 1 in all experiments: at full
/// capacity a 64-byte packet is created once every 32 cycles).
///
/// `Send` is a supertrait so per-node state (which boxes one of these)
/// can migrate to the worker threads of the sharded engine stepper;
/// processes are plain state machines, so this costs implementations
/// nothing.
pub trait InjectionProcess: Send {
    /// Advance one cycle; return `true` if a packet is created.
    fn tick(&mut self, rng: &mut Rng64) -> bool;

    /// The long-run average rate in packets per cycle.
    fn mean_rate(&self) -> f64;
}

/// Bernoulli process: each cycle a packet is created with probability
/// `rate`.
#[derive(Clone, Debug)]
pub struct Bernoulli {
    rate: f64,
}

impl Bernoulli {
    /// Create a Bernoulli process with the given packets-per-cycle rate.
    ///
    /// # Panics
    /// Panics unless `0 <= rate <= 1`.
    pub fn new(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0,1]");
        Bernoulli { rate }
    }
}

impl InjectionProcess for Bernoulli {
    #[inline]
    fn tick(&mut self, rng: &mut Rng64) -> bool {
        rng.chance(self.rate)
    }

    fn mean_rate(&self) -> f64 {
        self.rate
    }
}

/// Deterministic process: a packet every `round(1/rate)` cycles.
#[derive(Clone, Debug)]
pub struct Periodic {
    period: u64,
    countdown: u64,
}

impl Periodic {
    /// Create a periodic process approximating the given rate. A rate of
    /// zero never fires.
    pub fn new(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0,1]");
        let period = if rate == 0.0 {
            u64::MAX
        } else {
            (1.0 / rate).round().max(1.0) as u64
        };
        Periodic {
            period,
            countdown: period,
        }
    }

    /// Create a process firing exactly every `period` cycles.
    pub fn every(period: u64) -> Self {
        assert!(period >= 1);
        Periodic {
            period,
            countdown: period,
        }
    }
}

impl InjectionProcess for Periodic {
    #[inline]
    fn tick(&mut self, _rng: &mut Rng64) -> bool {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.period;
            true
        } else {
            false
        }
    }

    fn mean_rate(&self) -> f64 {
        if self.period == u64::MAX {
            0.0
        } else {
            1.0 / self.period as f64
        }
    }
}

/// Two-state Markov-modulated Bernoulli process. In the **on** state
/// packets are created with probability `peak_rate` per cycle; in the
/// **off** state none are created. State sojourn times are geometric
/// with means `mean_on` and `mean_off` cycles.
#[derive(Clone, Debug)]
pub struct OnOffBursty {
    peak_rate: f64,
    p_on_to_off: f64,
    p_off_to_on: f64,
    on: bool,
}

impl OnOffBursty {
    /// Create a bursty process.
    ///
    /// # Panics
    /// Panics if `peak_rate` is outside [0, 1] or a mean sojourn is < 1.
    pub fn new(peak_rate: f64, mean_on: f64, mean_off: f64) -> Self {
        assert!((0.0..=1.0).contains(&peak_rate));
        assert!(mean_on >= 1.0 && mean_off >= 1.0);
        OnOffBursty {
            peak_rate,
            p_on_to_off: 1.0 / mean_on,
            p_off_to_on: 1.0 / mean_off,
            on: true,
        }
    }
}

impl InjectionProcess for OnOffBursty {
    fn tick(&mut self, rng: &mut Rng64) -> bool {
        let fire = self.on && rng.chance(self.peak_rate);
        // State transition at end of cycle.
        if self.on {
            if rng.chance(self.p_on_to_off) {
                self.on = false;
            }
        } else if rng.chance(self.p_off_to_on) {
            self.on = true;
        }
        fire
    }

    fn mean_rate(&self) -> f64 {
        let duty = self.p_off_to_on / (self.p_on_to_off + self.p_off_to_on);
        self.peak_rate * duty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(p: &mut dyn InjectionProcess, cycles: u64, seed: u64) -> f64 {
        let mut rng = Rng64::seed_from(seed);
        let fired = (0..cycles).filter(|_| p.tick(&mut rng)).count();
        fired as f64 / cycles as f64
    }

    #[test]
    fn bernoulli_hits_rate() {
        let mut p = Bernoulli::new(0.031_25); // 1/32: full load with 32-flit packets
        let measured = measure(&mut p, 200_000, 1);
        assert!((measured - p.mean_rate()).abs() < 0.002, "{measured}");
    }

    #[test]
    fn periodic_is_exact() {
        let mut p = Periodic::every(32);
        let measured = measure(&mut p, 32_000, 2);
        assert!((measured - 1.0 / 32.0).abs() < 1e-9);
        // First firing happens on cycle 32, not cycle 1.
        let mut p = Periodic::every(4);
        let mut rng = Rng64::seed_from(0);
        let first: Vec<bool> = (0..8).map(|_| p.tick(&mut rng)).collect();
        assert_eq!(
            first,
            [false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn periodic_from_rate() {
        let p = Periodic::new(0.25);
        assert!((p.mean_rate() - 0.25).abs() < 1e-12);
        let z = Periodic::new(0.0);
        assert_eq!(z.mean_rate(), 0.0);
    }

    #[test]
    fn bursty_long_run_rate() {
        let mut p = OnOffBursty::new(0.5, 100.0, 300.0);
        let expect = p.mean_rate();
        assert!((expect - 0.125).abs() < 1e-12);
        let measured = measure(&mut p, 2_000_000, 3);
        assert!((measured - expect).abs() < 0.01, "{measured} vs {expect}");
    }

    #[test]
    fn bursty_is_actually_bursty() {
        // Count packets in 100-cycle windows: variance must exceed the
        // Bernoulli variance at the same mean rate.
        let mut bursty = OnOffBursty::new(0.8, 200.0, 200.0);
        let mut bern = Bernoulli::new(bursty.mean_rate());
        let mut rng = Rng64::seed_from(4);
        let window = 100;
        let windows = 2_000;
        let var = |p: &mut dyn InjectionProcess, rng: &mut Rng64| {
            let counts: Vec<f64> = (0..windows)
                .map(|_| (0..window).filter(|_| p.tick(rng)).count() as f64)
                .collect();
            let mean = counts.iter().sum::<f64>() / windows as f64;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / windows as f64
        };
        let v_bursty = var(&mut bursty, &mut rng);
        let v_bern = var(&mut bern, &mut rng);
        assert!(
            v_bursty > 2.0 * v_bern,
            "bursty {v_bursty} vs bernoulli {v_bern}"
        );
    }

    #[test]
    #[should_panic]
    fn bernoulli_rejects_bad_rate() {
        let _ = Bernoulli::new(1.5);
    }
}
