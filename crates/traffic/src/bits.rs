//! Bit-string view of node addresses.
//!
//! Section 7 of the paper defines the permutation patterns on the binary
//! representation `a_0 a_1 … a_{B-1}` of the node label, with `a_0` the
//! most significant bit and `B = n log2 k`. [`AddressBits`] fixes that
//! convention once: every pattern below is a trivial composition of the
//! primitives here, and the unit tests pin the exact examples implied by
//! the paper (palindromic addresses, bisection crossing, etc.).

/// Bit-level codec for `B`-bit node addresses, `a_0` = MSB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressBits {
    bits: u32,
}

impl AddressBits {
    /// Codec for addresses of `num_nodes = 2^B` nodes.
    ///
    /// # Panics
    /// Panics unless `num_nodes` is a power of two `>= 2` (the paper
    /// assumes `k` a power of two and defines the patterns bit-wise).
    pub fn for_nodes(num_nodes: usize) -> Self {
        assert!(
            num_nodes >= 2 && num_nodes.is_power_of_two(),
            "bit-defined patterns need a power-of-two node count, got {num_nodes}"
        );
        AddressBits {
            bits: num_nodes.trailing_zeros(),
        }
    }

    /// Number of address bits `B`.
    #[inline]
    pub fn width(&self) -> u32 {
        self.bits
    }

    /// Number of representable addresses `2^B`.
    #[inline]
    pub fn count(&self) -> usize {
        1usize << self.bits
    }

    /// Bit `a_j` of `x` (0 = most significant).
    #[inline]
    pub fn bit(&self, x: usize, j: u32) -> usize {
        debug_assert!(j < self.bits);
        (x >> (self.bits - 1 - j)) & 1
    }

    /// Bitwise complement: `a_j -> !a_j` for all `j`.
    #[inline]
    pub fn complement(&self, x: usize) -> usize {
        !x & (self.count() - 1)
    }

    /// Bit reversal: `a_0 … a_{B-1} -> a_{B-1} … a_0`.
    #[inline]
    pub fn reverse(&self, x: usize) -> usize {
        (x as u64).reverse_bits() as usize >> (64 - self.bits)
    }

    /// Transpose (matrix transpose): swap the two halves of the bit
    /// string, `a_{B/2} … a_{B-1} a_0 … a_{B/2-1}`.
    ///
    /// # Panics
    /// Panics if `B` is odd.
    #[inline]
    pub fn transpose(&self, x: usize) -> usize {
        assert!(
            self.bits.is_multiple_of(2),
            "transpose needs an even number of bits"
        );
        let half = self.bits / 2;
        let mask = (1usize << half) - 1;
        ((x & mask) << half) | (x >> half)
    }

    /// Perfect shuffle: rotate the bit string left by one,
    /// `a_1 … a_{B-1} a_0`.
    #[inline]
    pub fn shuffle(&self, x: usize) -> usize {
        let top = x >> (self.bits - 1);
        ((x << 1) & (self.count() - 1)) | top
    }

    /// Butterfly: swap the most and least significant bits.
    #[inline]
    pub fn butterfly(&self, x: usize) -> usize {
        let b = self.bits;
        let msb = (x >> (b - 1)) & 1;
        let lsb = x & 1;
        if msb == lsb {
            x
        } else {
            x ^ 1 ^ (1 << (b - 1))
        }
    }

    /// Whether the address is a palindrome (fixed point of
    /// [`AddressBits::reverse`]). The paper notes the 16-ary 2-cube has
    /// 16 palindromic nodes that inject nothing under bit reversal.
    #[inline]
    pub fn is_palindrome(&self, x: usize) -> bool {
        self.reverse(x) == x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(AddressBits::for_nodes(256).width(), 8);
        assert_eq!(AddressBits::for_nodes(2).width(), 1);
        assert_eq!(AddressBits::for_nodes(1024).count(), 1024);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = AddressBits::for_nodes(100);
    }

    #[test]
    fn bit_msb_first() {
        let b = AddressBits::for_nodes(256);
        let x = 0b1000_0001;
        assert_eq!(b.bit(x, 0), 1);
        assert_eq!(b.bit(x, 1), 0);
        assert_eq!(b.bit(x, 7), 1);
    }

    #[test]
    fn complement_involution() {
        let b = AddressBits::for_nodes(256);
        assert_eq!(b.complement(0), 255);
        for x in 0..256 {
            assert_eq!(b.complement(b.complement(x)), x);
        }
    }

    #[test]
    fn reverse_examples_and_involution() {
        let b = AddressBits::for_nodes(256);
        assert_eq!(b.reverse(0b1000_0000), 0b0000_0001);
        assert_eq!(b.reverse(0b1100_0000), 0b0000_0011);
        for x in 0..256 {
            assert_eq!(b.reverse(b.reverse(x)), x);
        }
    }

    #[test]
    fn transpose_examples_and_involution() {
        let b = AddressBits::for_nodes(256);
        assert_eq!(b.transpose(0b1111_0000), 0b0000_1111);
        assert_eq!(b.transpose(0b1010_0110), 0b0110_1010);
        for x in 0..256 {
            assert_eq!(b.transpose(b.transpose(x)), x);
        }
    }

    #[test]
    fn sixteen_palindromes_in_256() {
        // Paper, Section 9: "There are 16 nodes that have a palindrome
        // bit string and do not inject any packet into the network."
        let b = AddressBits::for_nodes(256);
        let count = (0..256).filter(|&x| b.is_palindrome(x)).count();
        assert_eq!(count, 16);
    }

    #[test]
    fn transpose_fixed_points_in_256() {
        // Transpose fixes addresses whose two halves are equal: 16 of 256.
        let b = AddressBits::for_nodes(256);
        let count = (0..256).filter(|&x| b.transpose(x) == x).count();
        assert_eq!(count, 16);
    }

    #[test]
    fn shuffle_rotates() {
        let b = AddressBits::for_nodes(256);
        assert_eq!(b.shuffle(0b1000_0001), 0b0000_0011);
        // B applications of shuffle = identity.
        for x in 0..256 {
            let mut y = x;
            for _ in 0..8 {
                y = b.shuffle(y);
            }
            assert_eq!(y, x);
        }
    }

    #[test]
    fn butterfly_swaps_ends() {
        let b = AddressBits::for_nodes(256);
        assert_eq!(b.butterfly(0b1000_0000), 0b0000_0001);
        assert_eq!(b.butterfly(0b0000_0001), 0b1000_0000);
        assert_eq!(b.butterfly(0b1000_0001), 0b1000_0001);
        for x in 0..256 {
            assert_eq!(b.butterfly(b.butterfly(x)), x);
        }
    }

    #[test]
    fn patterns_are_permutations() {
        let b = AddressBits::for_nodes(256);
        for f in [
            AddressBits::complement as fn(&AddressBits, usize) -> usize,
            AddressBits::reverse,
            AddressBits::transpose,
            AddressBits::shuffle,
            AddressBits::butterfly,
        ] {
            let mut seen = vec![false; 256];
            for x in 0..256 {
                let y = f(&b, x);
                assert!(y < 256);
                assert!(!seen[y], "collision at {y}");
                seen[y] = true;
            }
        }
    }
}
