//! # netperf — "Network Performance under Physical Constraints", reproduced
//!
//! A production-quality Rust reproduction of Petrini & Vanneschi's ICPP'97
//! study comparing a quaternary fat-tree (4-ary 4-tree) against a
//! bi-dimensional cube (16-ary 2-cube) with a flit-level wormhole
//! simulation normalized for physical constraints (pin count, wire delay,
//! router complexity).
//!
//! This facade crate re-exports the public API of the workspace crates so
//! downstream users can depend on a single crate:
//!
//! * [`topology`] — k-ary n-cubes and k-ary n-trees.
//! * [`traffic`] — synthetic benchmark patterns and injection processes.
//! * [`routing`] — deterministic, Duato-adaptive and fat-tree-adaptive
//!   routing functions plus channel-dependency-graph deadlock analysis.
//! * [`costmodel`] — Chien's router cost model and the paper's
//!   performance normalization.
//! * [`netstats`] — statistics collection and CSV/JSON export.
//! * [`netsim`] — the flit-level wormhole simulator, the scenario
//!   plane (`netsim::scenario`), the fault plane (`netsim::fault`,
//!   deterministic link/router fault injection with degraded-mode
//!   routing) and the paper's experiment harness.
//! * [`telemetry`] — the observability plane: zero-cost-when-off
//!   engine probes, per-packet latency decomposition,
//!   channel-utilization time series, JSONL/Chrome event traces.
//! * [`analytic`] — closed-form latency/throughput baselines
//!   (Agarwal-style M/D/1 contention models).
//!
//! ## Quickstart
//!
//! ```
//! use netperf::prelude::*;
//!
//! // Simulate the paper's 16-ary 2-cube with Duato's adaptive routing
//! // under uniform traffic at 40% of capacity: look the configuration
//! // up in the scenario registry and run one load point.
//! let scenario = named("cube-duato").unwrap().with_run_length(RunLength::quick());
//! let outcome = scenario.simulate(0.4);
//! assert!(outcome.accepted_fraction > 0.35); // below saturation: accepted ~ offered
//!
//! // Or compose a custom design point with the builder.
//! let custom = Scenario::builder()
//!     .topology(TopologySpec::mesh(4, 2))
//!     .routing(RoutingKind::Adaptive)
//!     .vcs(2)
//!     .pattern(Pattern::Transpose)
//!     .build()
//!     .unwrap();
//! assert_eq!(custom.label(), "mesh, adaptive");
//! ```

#![warn(missing_docs)]

pub use analytic;
pub use costmodel;
pub use netsim;
pub use netstats;
pub use routing;
pub use telemetry;
pub use topology;
pub use traffic;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use costmodel::chien::{ChienModel, RouterTiming};
    pub use costmodel::normalize::NetworkNormalization;
    pub use netsim::experiment::{
        default_load_grid, simulate_load, sweep, sweep_outcomes, sweep_outcomes_salted, CubeParams,
        ExperimentSpec, RunLength, TreeParams,
    };
    pub use netsim::fault::{
        FaultError, FaultModel, FaultPlan, FaultState, NoFaults, TransientSpec,
    };
    pub use netsim::scenario::{
        derived_seed, named, paper_scenarios, registry, InjectionModel, NamedScenario, RoutingKind,
        Scenario, ScenarioBuilder, ScenarioError, SeedMode, Throttle, TopologySpec,
    };
    pub use netsim::sim::{
        run_simulation_faulted, run_simulation_probed, SimConfig, SimError, SimOutcome,
    };
    pub use netstats::export::{write_csv, write_manifest, Manifest, ManifestValue, Table};
    pub use routing::{CubeDeterministic, CubeDuato, TreeAdaptive};
    pub use telemetry::{
        Event, FlightRecorder, Geometry, LatencyBreakdown, NullProbe, Probe, TelemetryConfig,
    };
    pub use topology::{KAryNCube, KAryNTree, NodeId, RouterId, Topology};
    pub use traffic::pattern::Pattern;
}
