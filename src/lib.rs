//! # netperf — "Network Performance under Physical Constraints", reproduced
//!
//! A production-quality Rust reproduction of Petrini & Vanneschi's ICPP'97
//! study comparing a quaternary fat-tree (4-ary 4-tree) against a
//! bi-dimensional cube (16-ary 2-cube) with a flit-level wormhole
//! simulation normalized for physical constraints (pin count, wire delay,
//! router complexity).
//!
//! This facade crate re-exports the public API of the workspace crates so
//! downstream users can depend on a single crate:
//!
//! * [`topology`] — k-ary n-cubes and k-ary n-trees.
//! * [`traffic`] — synthetic benchmark patterns and injection processes.
//! * [`routing`] — deterministic, Duato-adaptive and fat-tree-adaptive
//!   routing functions plus channel-dependency-graph deadlock analysis.
//! * [`costmodel`] — Chien's router cost model and the paper's
//!   performance normalization.
//! * [`netstats`] — statistics collection and CSV/JSON export.
//! * [`netsim`] — the flit-level wormhole simulator and the paper's
//!   experiment harness.
//! * [`analytic`] — closed-form latency/throughput baselines
//!   (Agarwal-style M/D/1 contention models).
//!
//! ## Quickstart
//!
//! ```
//! use netperf::prelude::*;
//!
//! // Simulate the paper's 16-ary 2-cube with Duato's adaptive routing
//! // under uniform traffic at 40% of capacity.
//! let spec = ExperimentSpec::cube_duato(CubeParams::paper());
//! let outcome = simulate_load(&spec, Pattern::Uniform, 0.4, RunLength::quick());
//! assert!(outcome.accepted_fraction > 0.35); // below saturation: accepted ~ offered
//! ```

#![warn(missing_docs)]

pub use analytic;
pub use costmodel;
pub use netsim;
pub use netstats;
pub use routing;
pub use topology;
pub use traffic;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use costmodel::chien::{ChienModel, RouterTiming};
    pub use costmodel::normalize::NetworkNormalization;
    pub use netsim::experiment::{
        default_load_grid, simulate_load, sweep, sweep_outcomes, CubeParams, ExperimentSpec,
        RunLength, TreeParams,
    };
    pub use netsim::sim::{SimConfig, SimOutcome};
    pub use netstats::export::{write_csv, Table};
    pub use routing::{CubeDeterministic, CubeDuato, TreeAdaptive};
    pub use topology::{KAryNCube, KAryNTree, NodeId, RouterId, Topology};
    pub use traffic::pattern::Pattern;
}
