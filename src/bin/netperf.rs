//! `netperf` — command-line driver for the flit-level simulator.
//!
//! Run a single simulation or a load sweep on any supported network
//! without writing Rust:
//!
//! ```sh
//! netperf --topology cube --k 16 --n 2 --algo duato --pattern uniform --load 0.6
//! netperf --topology tree --k 4 --n 4 --algo adaptive --vcs 2 \
//!         --pattern transpose --sweep 0.1:1.0:0.1 --csv sweep.csv
//! netperf --topology mesh --k 8 --n 2 --algo det --pattern tornado --load 0.3
//! ```

use netperf::netsim::experiment::{default_load_grid, RunLength};
use netperf::netsim::sim::{run_simulation, InjectionSpec, SimConfig};
use netperf::prelude::*;
use netperf::routing::{MeshAdaptive, MeshDeterministic, RoutingAlgorithm};
use netperf::topology::KAryNMesh;
use netstats::{Cell, Table};

#[derive(Debug)]
struct Args {
    topology: String,
    k: usize,
    n: usize,
    algo: String,
    vcs: usize,
    pattern: Pattern,
    load: f64,
    sweep: Option<Vec<f64>>,
    cycles: u32,
    warmup: u32,
    seed: u64,
    buffer: usize,
    packet_bytes: usize,
    csv: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            topology: "cube".into(),
            k: 16,
            n: 2,
            algo: "duato".into(),
            vcs: 4,
            pattern: Pattern::Uniform,
            load: 0.5,
            sweep: None,
            cycles: 20_000,
            warmup: 2_000,
            seed: 0x5EED,
            buffer: 4,
            packet_bytes: 64,
            csv: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: netperf [options]\n\
         --topology cube|tree|mesh   network family (default cube)\n\
         --k <int>                   radix / arity (default 16)\n\
         --n <int>                   dimension / levels (default 2)\n\
         --algo det|duato|adaptive   routing algorithm (default duato)\n\
         --vcs <int>                 virtual channels (tree/mesh; default 4)\n\
         --pattern <name>            uniform|complement|bitrev|transpose|shuffle|\n\
                                     butterfly|tornado|neighbor|hotspot (default uniform)\n\
         --load <frac>               offered load, fraction of capacity (default 0.5)\n\
         --sweep a:b:step            sweep loads instead of a single run\n\
         --cycles <int>              total cycles (default 20000)\n\
         --warmup <int>              warm-up cycles (default 2000)\n\
         --seed <int>                RNG seed (default 0x5EED)\n\
         --buffer <int>              lane depth in flits (default 4)\n\
         --packet-bytes <int>        packet size (default 64)\n\
         --csv <path>                write results as CSV"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--topology" => a.topology = val("--topology"),
            "--k" => a.k = val("--k").parse().unwrap_or_else(|_| usage()),
            "--n" => a.n = val("--n").parse().unwrap_or_else(|_| usage()),
            "--algo" => a.algo = val("--algo"),
            "--vcs" => a.vcs = val("--vcs").parse().unwrap_or_else(|_| usage()),
            "--pattern" => {
                let name = val("--pattern");
                a.pattern = Pattern::parse(&name).unwrap_or_else(|| {
                    eprintln!("error: unknown pattern {name}");
                    usage()
                });
            }
            "--load" => a.load = val("--load").parse().unwrap_or_else(|_| usage()),
            "--sweep" => {
                let spec = val("--sweep");
                let parts: Vec<f64> =
                    spec.split(':').map(|x| x.parse().unwrap_or_else(|_| usage())).collect();
                let grid = match parts.as_slice() {
                    [a, b, step] if *step > 0.0 && b >= a => {
                        let mut g = Vec::new();
                        let mut x = *a;
                        while x <= b + 1e-9 {
                            g.push(x);
                            x += step;
                        }
                        g
                    }
                    _ => usage(),
                };
                a.sweep = Some(grid);
            }
            "--cycles" => a.cycles = val("--cycles").parse().unwrap_or_else(|_| usage()),
            "--warmup" => a.warmup = val("--warmup").parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--buffer" => a.buffer = val("--buffer").parse().unwrap_or_else(|_| usage()),
            "--packet-bytes" => {
                a.packet_bytes = val("--packet-bytes").parse().unwrap_or_else(|_| usage())
            }
            "--csv" => a.csv = Some(val("--csv")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other}");
                usage();
            }
        }
    }
    a
}

/// Build the algorithm and the physical parameters for the CLI request.
fn build(args: &Args) -> (Box<dyn RoutingAlgorithm>, usize, f64) {
    match (args.topology.as_str(), args.algo.as_str()) {
        ("cube", "det") => {
            let cube = KAryNCube::new(args.k, args.n);
            let cap = cube.uniform_capacity_flits_per_cycle();
            (Box::new(CubeDeterministic::new(cube)), 4, cap)
        }
        ("cube", "duato") => {
            let cube = KAryNCube::new(args.k, args.n);
            let cap = cube.uniform_capacity_flits_per_cycle();
            (Box::new(CubeDuato::new(cube)), 4, cap)
        }
        ("tree", "adaptive") => {
            let tree = KAryNTree::new(args.k, args.n);
            (Box::new(TreeAdaptive::new(tree, args.vcs)), 2, 1.0)
        }
        ("mesh", "det") => {
            let mesh = KAryNMesh::new(args.k, args.n);
            let cap = mesh.uniform_capacity_flits_per_cycle();
            (Box::new(MeshDeterministic::new(mesh, args.vcs)), 4, cap)
        }
        ("mesh", "adaptive" | "duato") => {
            let mesh = KAryNMesh::new(args.k, args.n);
            let cap = mesh.uniform_capacity_flits_per_cycle();
            (Box::new(MeshAdaptive::new(mesh, args.vcs.max(2))), 4, cap)
        }
        (topo, algo) => {
            eprintln!("error: unsupported combination --topology {topo} --algo {algo}");
            eprintln!("supported: cube+det, cube+duato, tree+adaptive, mesh+det, mesh+adaptive");
            std::process::exit(2);
        }
    }
}

fn config(args: &Args, flit_bytes: usize, cap: f64, load: f64) -> SimConfig {
    let flits = (args.packet_bytes / flit_bytes).max(1) as u16;
    SimConfig {
        seed: args.seed,
        warmup_cycles: args.warmup,
        total_cycles: args.cycles,
        buffer_depth: args.buffer,
        flits_per_packet: flits,
        capacity_flits_per_cycle: cap,
        injection: InjectionSpec::Bernoulli {
            packets_per_cycle: load * cap / flits as f64,
        },
        pattern: args.pattern,
        injection_limit: None,
        request_reply: false,
    }
}

fn main() {
    let args = parse_args();
    let (algo, flit_bytes, cap) = build(&args);
    let _ = (RunLength::paper(), default_load_grid()); // referenced for docs

    let loads: Vec<f64> = args.sweep.clone().unwrap_or_else(|| vec![args.load]);
    let mut table = Table::with_columns([
        "offered_fraction",
        "generated_fraction",
        "accepted_fraction",
        "latency_cycles",
        "latency_p99_cycles",
        "delivered_packets",
        "backlog_packets",
    ]);
    println!(
        "{} | {} | {} | {} flits/packet | capacity {:.3} flits/node/cycle",
        algo.topology().label(),
        algo.name(),
        args.pattern.name(),
        (args.packet_bytes / flit_bytes).max(1),
        cap,
    );
    for &load in &loads {
        let cfg = config(&args, flit_bytes, cap, load);
        let out = run_simulation(algo.as_ref(), &cfg);
        let p99 = out.latency_hist.quantile(0.99).unwrap_or(f64::NAN);
        println!(
            "load {:>5.2}: accepted {:>6.3} of capacity, latency {:>7.1} cycles (p99 {:>6.0}), {} packets",
            load,
            out.accepted_fraction,
            out.mean_latency_cycles(),
            p99,
            out.delivered_packets
        );
        table.push_row(vec![
            Cell::Num(load),
            Cell::Num(out.generated_fraction),
            Cell::Num(out.accepted_fraction),
            Cell::Num(out.mean_latency_cycles()),
            Cell::Num(p99),
            Cell::Num(out.delivered_packets as f64),
            Cell::Num(out.backlog_packets as f64),
        ]);
    }
    if let Some(path) = &args.csv {
        netstats::write_csv(&table, path).expect("write csv");
        eprintln!("wrote {path}");
    }
}
